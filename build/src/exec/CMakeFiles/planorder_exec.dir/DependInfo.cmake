
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/dependent_join.cc" "src/exec/CMakeFiles/planorder_exec.dir/dependent_join.cc.o" "gcc" "src/exec/CMakeFiles/planorder_exec.dir/dependent_join.cc.o.d"
  "/root/repo/src/exec/mediator.cc" "src/exec/CMakeFiles/planorder_exec.dir/mediator.cc.o" "gcc" "src/exec/CMakeFiles/planorder_exec.dir/mediator.cc.o.d"
  "/root/repo/src/exec/pipeline.cc" "src/exec/CMakeFiles/planorder_exec.dir/pipeline.cc.o" "gcc" "src/exec/CMakeFiles/planorder_exec.dir/pipeline.cc.o.d"
  "/root/repo/src/exec/source_access.cc" "src/exec/CMakeFiles/planorder_exec.dir/source_access.cc.o" "gcc" "src/exec/CMakeFiles/planorder_exec.dir/source_access.cc.o.d"
  "/root/repo/src/exec/synthetic_domain.cc" "src/exec/CMakeFiles/planorder_exec.dir/synthetic_domain.cc.o" "gcc" "src/exec/CMakeFiles/planorder_exec.dir/synthetic_domain.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/planorder_core.dir/DependInfo.cmake"
  "/root/repo/build/src/reformulation/CMakeFiles/planorder_reformulation.dir/DependInfo.cmake"
  "/root/repo/build/src/utility/CMakeFiles/planorder_utility.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/planorder_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/planorder_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/planorder_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
