# Empty compiler generated dependencies file for planorder_exec.
# This may be replaced when dependencies are built.
