file(REMOVE_RECURSE
  "CMakeFiles/planorder_exec.dir/dependent_join.cc.o"
  "CMakeFiles/planorder_exec.dir/dependent_join.cc.o.d"
  "CMakeFiles/planorder_exec.dir/mediator.cc.o"
  "CMakeFiles/planorder_exec.dir/mediator.cc.o.d"
  "CMakeFiles/planorder_exec.dir/pipeline.cc.o"
  "CMakeFiles/planorder_exec.dir/pipeline.cc.o.d"
  "CMakeFiles/planorder_exec.dir/source_access.cc.o"
  "CMakeFiles/planorder_exec.dir/source_access.cc.o.d"
  "CMakeFiles/planorder_exec.dir/synthetic_domain.cc.o"
  "CMakeFiles/planorder_exec.dir/synthetic_domain.cc.o.d"
  "libplanorder_exec.a"
  "libplanorder_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planorder_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
