file(REMOVE_RECURSE
  "libplanorder_exec.a"
)
