# Empty compiler generated dependencies file for planorder_base.
# This may be replaced when dependencies are built.
