# Empty dependencies file for planorder_base.
# This may be replaced when dependencies are built.
