file(REMOVE_RECURSE
  "libplanorder_base.a"
)
