file(REMOVE_RECURSE
  "CMakeFiles/planorder_base.dir/interval.cc.o"
  "CMakeFiles/planorder_base.dir/interval.cc.o.d"
  "CMakeFiles/planorder_base.dir/status.cc.o"
  "CMakeFiles/planorder_base.dir/status.cc.o.d"
  "libplanorder_base.a"
  "libplanorder_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planorder_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
