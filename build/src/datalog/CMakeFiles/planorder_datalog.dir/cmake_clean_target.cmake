file(REMOVE_RECURSE
  "libplanorder_datalog.a"
)
