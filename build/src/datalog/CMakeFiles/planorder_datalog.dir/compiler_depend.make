# Empty compiler generated dependencies file for planorder_datalog.
# This may be replaced when dependencies are built.
