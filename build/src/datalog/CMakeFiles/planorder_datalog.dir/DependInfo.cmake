
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalog/atom.cc" "src/datalog/CMakeFiles/planorder_datalog.dir/atom.cc.o" "gcc" "src/datalog/CMakeFiles/planorder_datalog.dir/atom.cc.o.d"
  "/root/repo/src/datalog/builtins.cc" "src/datalog/CMakeFiles/planorder_datalog.dir/builtins.cc.o" "gcc" "src/datalog/CMakeFiles/planorder_datalog.dir/builtins.cc.o.d"
  "/root/repo/src/datalog/conjunctive_query.cc" "src/datalog/CMakeFiles/planorder_datalog.dir/conjunctive_query.cc.o" "gcc" "src/datalog/CMakeFiles/planorder_datalog.dir/conjunctive_query.cc.o.d"
  "/root/repo/src/datalog/containment.cc" "src/datalog/CMakeFiles/planorder_datalog.dir/containment.cc.o" "gcc" "src/datalog/CMakeFiles/planorder_datalog.dir/containment.cc.o.d"
  "/root/repo/src/datalog/evaluator.cc" "src/datalog/CMakeFiles/planorder_datalog.dir/evaluator.cc.o" "gcc" "src/datalog/CMakeFiles/planorder_datalog.dir/evaluator.cc.o.d"
  "/root/repo/src/datalog/parser.cc" "src/datalog/CMakeFiles/planorder_datalog.dir/parser.cc.o" "gcc" "src/datalog/CMakeFiles/planorder_datalog.dir/parser.cc.o.d"
  "/root/repo/src/datalog/source.cc" "src/datalog/CMakeFiles/planorder_datalog.dir/source.cc.o" "gcc" "src/datalog/CMakeFiles/planorder_datalog.dir/source.cc.o.d"
  "/root/repo/src/datalog/term.cc" "src/datalog/CMakeFiles/planorder_datalog.dir/term.cc.o" "gcc" "src/datalog/CMakeFiles/planorder_datalog.dir/term.cc.o.d"
  "/root/repo/src/datalog/unify.cc" "src/datalog/CMakeFiles/planorder_datalog.dir/unify.cc.o" "gcc" "src/datalog/CMakeFiles/planorder_datalog.dir/unify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/planorder_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
