file(REMOVE_RECURSE
  "CMakeFiles/planorder_datalog.dir/atom.cc.o"
  "CMakeFiles/planorder_datalog.dir/atom.cc.o.d"
  "CMakeFiles/planorder_datalog.dir/builtins.cc.o"
  "CMakeFiles/planorder_datalog.dir/builtins.cc.o.d"
  "CMakeFiles/planorder_datalog.dir/conjunctive_query.cc.o"
  "CMakeFiles/planorder_datalog.dir/conjunctive_query.cc.o.d"
  "CMakeFiles/planorder_datalog.dir/containment.cc.o"
  "CMakeFiles/planorder_datalog.dir/containment.cc.o.d"
  "CMakeFiles/planorder_datalog.dir/evaluator.cc.o"
  "CMakeFiles/planorder_datalog.dir/evaluator.cc.o.d"
  "CMakeFiles/planorder_datalog.dir/parser.cc.o"
  "CMakeFiles/planorder_datalog.dir/parser.cc.o.d"
  "CMakeFiles/planorder_datalog.dir/source.cc.o"
  "CMakeFiles/planorder_datalog.dir/source.cc.o.d"
  "CMakeFiles/planorder_datalog.dir/term.cc.o"
  "CMakeFiles/planorder_datalog.dir/term.cc.o.d"
  "CMakeFiles/planorder_datalog.dir/unify.cc.o"
  "CMakeFiles/planorder_datalog.dir/unify.cc.o.d"
  "libplanorder_datalog.a"
  "libplanorder_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planorder_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
