file(REMOVE_RECURSE
  "libplanorder_core.a"
)
