file(REMOVE_RECURSE
  "CMakeFiles/planorder_core.dir/abstraction.cc.o"
  "CMakeFiles/planorder_core.dir/abstraction.cc.o.d"
  "CMakeFiles/planorder_core.dir/batch_topk.cc.o"
  "CMakeFiles/planorder_core.dir/batch_topk.cc.o.d"
  "CMakeFiles/planorder_core.dir/drips.cc.o"
  "CMakeFiles/planorder_core.dir/drips.cc.o.d"
  "CMakeFiles/planorder_core.dir/greedy.cc.o"
  "CMakeFiles/planorder_core.dir/greedy.cc.o.d"
  "CMakeFiles/planorder_core.dir/idrips.cc.o"
  "CMakeFiles/planorder_core.dir/idrips.cc.o.d"
  "CMakeFiles/planorder_core.dir/merged.cc.o"
  "CMakeFiles/planorder_core.dir/merged.cc.o.d"
  "CMakeFiles/planorder_core.dir/pi.cc.o"
  "CMakeFiles/planorder_core.dir/pi.cc.o.d"
  "CMakeFiles/planorder_core.dir/plan_space.cc.o"
  "CMakeFiles/planorder_core.dir/plan_space.cc.o.d"
  "CMakeFiles/planorder_core.dir/streamer.cc.o"
  "CMakeFiles/planorder_core.dir/streamer.cc.o.d"
  "libplanorder_core.a"
  "libplanorder_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planorder_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
