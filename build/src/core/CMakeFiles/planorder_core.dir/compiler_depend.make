# Empty compiler generated dependencies file for planorder_core.
# This may be replaced when dependencies are built.
