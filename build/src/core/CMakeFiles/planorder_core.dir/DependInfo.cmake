
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/abstraction.cc" "src/core/CMakeFiles/planorder_core.dir/abstraction.cc.o" "gcc" "src/core/CMakeFiles/planorder_core.dir/abstraction.cc.o.d"
  "/root/repo/src/core/batch_topk.cc" "src/core/CMakeFiles/planorder_core.dir/batch_topk.cc.o" "gcc" "src/core/CMakeFiles/planorder_core.dir/batch_topk.cc.o.d"
  "/root/repo/src/core/drips.cc" "src/core/CMakeFiles/planorder_core.dir/drips.cc.o" "gcc" "src/core/CMakeFiles/planorder_core.dir/drips.cc.o.d"
  "/root/repo/src/core/greedy.cc" "src/core/CMakeFiles/planorder_core.dir/greedy.cc.o" "gcc" "src/core/CMakeFiles/planorder_core.dir/greedy.cc.o.d"
  "/root/repo/src/core/idrips.cc" "src/core/CMakeFiles/planorder_core.dir/idrips.cc.o" "gcc" "src/core/CMakeFiles/planorder_core.dir/idrips.cc.o.d"
  "/root/repo/src/core/merged.cc" "src/core/CMakeFiles/planorder_core.dir/merged.cc.o" "gcc" "src/core/CMakeFiles/planorder_core.dir/merged.cc.o.d"
  "/root/repo/src/core/pi.cc" "src/core/CMakeFiles/planorder_core.dir/pi.cc.o" "gcc" "src/core/CMakeFiles/planorder_core.dir/pi.cc.o.d"
  "/root/repo/src/core/plan_space.cc" "src/core/CMakeFiles/planorder_core.dir/plan_space.cc.o" "gcc" "src/core/CMakeFiles/planorder_core.dir/plan_space.cc.o.d"
  "/root/repo/src/core/streamer.cc" "src/core/CMakeFiles/planorder_core.dir/streamer.cc.o" "gcc" "src/core/CMakeFiles/planorder_core.dir/streamer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/utility/CMakeFiles/planorder_utility.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/planorder_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/planorder_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
