# Empty compiler generated dependencies file for planorder_stats.
# This may be replaced when dependencies are built.
