
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/coverage_universe.cc" "src/stats/CMakeFiles/planorder_stats.dir/coverage_universe.cc.o" "gcc" "src/stats/CMakeFiles/planorder_stats.dir/coverage_universe.cc.o.d"
  "/root/repo/src/stats/source_stats.cc" "src/stats/CMakeFiles/planorder_stats.dir/source_stats.cc.o" "gcc" "src/stats/CMakeFiles/planorder_stats.dir/source_stats.cc.o.d"
  "/root/repo/src/stats/workload.cc" "src/stats/CMakeFiles/planorder_stats.dir/workload.cc.o" "gcc" "src/stats/CMakeFiles/planorder_stats.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/planorder_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
