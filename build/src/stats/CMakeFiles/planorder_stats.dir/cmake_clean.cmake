file(REMOVE_RECURSE
  "CMakeFiles/planorder_stats.dir/coverage_universe.cc.o"
  "CMakeFiles/planorder_stats.dir/coverage_universe.cc.o.d"
  "CMakeFiles/planorder_stats.dir/source_stats.cc.o"
  "CMakeFiles/planorder_stats.dir/source_stats.cc.o.d"
  "CMakeFiles/planorder_stats.dir/workload.cc.o"
  "CMakeFiles/planorder_stats.dir/workload.cc.o.d"
  "libplanorder_stats.a"
  "libplanorder_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planorder_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
