file(REMOVE_RECURSE
  "libplanorder_stats.a"
)
