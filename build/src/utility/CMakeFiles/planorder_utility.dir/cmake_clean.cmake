file(REMOVE_RECURSE
  "CMakeFiles/planorder_utility.dir/combined_model.cc.o"
  "CMakeFiles/planorder_utility.dir/combined_model.cc.o.d"
  "CMakeFiles/planorder_utility.dir/cost_models.cc.o"
  "CMakeFiles/planorder_utility.dir/cost_models.cc.o.d"
  "CMakeFiles/planorder_utility.dir/coverage_model.cc.o"
  "CMakeFiles/planorder_utility.dir/coverage_model.cc.o.d"
  "CMakeFiles/planorder_utility.dir/measures.cc.o"
  "CMakeFiles/planorder_utility.dir/measures.cc.o.d"
  "libplanorder_utility.a"
  "libplanorder_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planorder_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
