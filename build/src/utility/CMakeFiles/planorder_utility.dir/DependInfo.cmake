
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/utility/combined_model.cc" "src/utility/CMakeFiles/planorder_utility.dir/combined_model.cc.o" "gcc" "src/utility/CMakeFiles/planorder_utility.dir/combined_model.cc.o.d"
  "/root/repo/src/utility/cost_models.cc" "src/utility/CMakeFiles/planorder_utility.dir/cost_models.cc.o" "gcc" "src/utility/CMakeFiles/planorder_utility.dir/cost_models.cc.o.d"
  "/root/repo/src/utility/coverage_model.cc" "src/utility/CMakeFiles/planorder_utility.dir/coverage_model.cc.o" "gcc" "src/utility/CMakeFiles/planorder_utility.dir/coverage_model.cc.o.d"
  "/root/repo/src/utility/measures.cc" "src/utility/CMakeFiles/planorder_utility.dir/measures.cc.o" "gcc" "src/utility/CMakeFiles/planorder_utility.dir/measures.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/planorder_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/planorder_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
