file(REMOVE_RECURSE
  "libplanorder_utility.a"
)
