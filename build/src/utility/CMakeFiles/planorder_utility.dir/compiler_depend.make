# Empty compiler generated dependencies file for planorder_utility.
# This may be replaced when dependencies are built.
