# Empty dependencies file for planorder_utility.
# This may be replaced when dependencies are built.
