file(REMOVE_RECURSE
  "libplanorder_reformulation.a"
)
