
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reformulation/bucket.cc" "src/reformulation/CMakeFiles/planorder_reformulation.dir/bucket.cc.o" "gcc" "src/reformulation/CMakeFiles/planorder_reformulation.dir/bucket.cc.o.d"
  "/root/repo/src/reformulation/executable_order.cc" "src/reformulation/CMakeFiles/planorder_reformulation.dir/executable_order.cc.o" "gcc" "src/reformulation/CMakeFiles/planorder_reformulation.dir/executable_order.cc.o.d"
  "/root/repo/src/reformulation/inverse_rules.cc" "src/reformulation/CMakeFiles/planorder_reformulation.dir/inverse_rules.cc.o" "gcc" "src/reformulation/CMakeFiles/planorder_reformulation.dir/inverse_rules.cc.o.d"
  "/root/repo/src/reformulation/minicon.cc" "src/reformulation/CMakeFiles/planorder_reformulation.dir/minicon.cc.o" "gcc" "src/reformulation/CMakeFiles/planorder_reformulation.dir/minicon.cc.o.d"
  "/root/repo/src/reformulation/minicon_ordering.cc" "src/reformulation/CMakeFiles/planorder_reformulation.dir/minicon_ordering.cc.o" "gcc" "src/reformulation/CMakeFiles/planorder_reformulation.dir/minicon_ordering.cc.o.d"
  "/root/repo/src/reformulation/rewriting.cc" "src/reformulation/CMakeFiles/planorder_reformulation.dir/rewriting.cc.o" "gcc" "src/reformulation/CMakeFiles/planorder_reformulation.dir/rewriting.cc.o.d"
  "/root/repo/src/reformulation/statistics.cc" "src/reformulation/CMakeFiles/planorder_reformulation.dir/statistics.cc.o" "gcc" "src/reformulation/CMakeFiles/planorder_reformulation.dir/statistics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datalog/CMakeFiles/planorder_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/planorder_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/planorder_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
