# Empty dependencies file for planorder_reformulation.
# This may be replaced when dependencies are built.
