file(REMOVE_RECURSE
  "CMakeFiles/planorder_reformulation.dir/bucket.cc.o"
  "CMakeFiles/planorder_reformulation.dir/bucket.cc.o.d"
  "CMakeFiles/planorder_reformulation.dir/executable_order.cc.o"
  "CMakeFiles/planorder_reformulation.dir/executable_order.cc.o.d"
  "CMakeFiles/planorder_reformulation.dir/inverse_rules.cc.o"
  "CMakeFiles/planorder_reformulation.dir/inverse_rules.cc.o.d"
  "CMakeFiles/planorder_reformulation.dir/minicon.cc.o"
  "CMakeFiles/planorder_reformulation.dir/minicon.cc.o.d"
  "CMakeFiles/planorder_reformulation.dir/minicon_ordering.cc.o"
  "CMakeFiles/planorder_reformulation.dir/minicon_ordering.cc.o.d"
  "CMakeFiles/planorder_reformulation.dir/rewriting.cc.o"
  "CMakeFiles/planorder_reformulation.dir/rewriting.cc.o.d"
  "CMakeFiles/planorder_reformulation.dir/statistics.cc.o"
  "CMakeFiles/planorder_reformulation.dir/statistics.cc.o.d"
  "libplanorder_reformulation.a"
  "libplanorder_reformulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planorder_reformulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
