# Empty compiler generated dependencies file for bench_fig6_failure_nocache.
# This may be replaced when dependencies are built.
