file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_failure_nocache.dir/bench_fig6_failure_nocache.cc.o"
  "CMakeFiles/bench_fig6_failure_nocache.dir/bench_fig6_failure_nocache.cc.o.d"
  "bench_fig6_failure_nocache"
  "bench_fig6_failure_nocache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_failure_nocache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
