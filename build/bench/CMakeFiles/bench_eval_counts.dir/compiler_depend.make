# Empty compiler generated dependencies file for bench_eval_counts.
# This may be replaced when dependencies are built.
