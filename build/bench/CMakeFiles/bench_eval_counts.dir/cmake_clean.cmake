file(REMOVE_RECURSE
  "CMakeFiles/bench_eval_counts.dir/bench_eval_counts.cc.o"
  "CMakeFiles/bench_eval_counts.dir/bench_eval_counts.cc.o.d"
  "bench_eval_counts"
  "bench_eval_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eval_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
