# Empty compiler generated dependencies file for bench_abstraction_ablation.
# This may be replaced when dependencies are built.
