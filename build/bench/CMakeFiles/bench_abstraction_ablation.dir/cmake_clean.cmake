file(REMOVE_RECURSE
  "CMakeFiles/bench_abstraction_ablation.dir/bench_abstraction_ablation.cc.o"
  "CMakeFiles/bench_abstraction_ablation.dir/bench_abstraction_ablation.cc.o.d"
  "bench_abstraction_ablation"
  "bench_abstraction_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abstraction_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
