# Empty dependencies file for bench_query_length.
# This may be replaced when dependencies are built.
