file(REMOVE_RECURSE
  "CMakeFiles/bench_query_length.dir/bench_query_length.cc.o"
  "CMakeFiles/bench_query_length.dir/bench_query_length.cc.o.d"
  "bench_query_length"
  "bench_query_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
