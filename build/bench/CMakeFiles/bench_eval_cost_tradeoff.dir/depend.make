# Empty dependencies file for bench_eval_cost_tradeoff.
# This may be replaced when dependencies are built.
