file(REMOVE_RECURSE
  "CMakeFiles/bench_eval_cost_tradeoff.dir/bench_eval_cost_tradeoff.cc.o"
  "CMakeFiles/bench_eval_cost_tradeoff.dir/bench_eval_cost_tradeoff.cc.o.d"
  "bench_eval_cost_tradeoff"
  "bench_eval_cost_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eval_cost_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
