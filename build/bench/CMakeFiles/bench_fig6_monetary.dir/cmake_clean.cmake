file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_monetary.dir/bench_fig6_monetary.cc.o"
  "CMakeFiles/bench_fig6_monetary.dir/bench_fig6_monetary.cc.o.d"
  "bench_fig6_monetary"
  "bench_fig6_monetary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_monetary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
