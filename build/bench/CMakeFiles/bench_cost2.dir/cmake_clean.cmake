file(REMOVE_RECURSE
  "CMakeFiles/bench_cost2.dir/bench_cost2.cc.o"
  "CMakeFiles/bench_cost2.dir/bench_cost2.cc.o.d"
  "bench_cost2"
  "bench_cost2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cost2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
