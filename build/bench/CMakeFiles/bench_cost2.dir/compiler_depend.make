# Empty compiler generated dependencies file for bench_cost2.
# This may be replaced when dependencies are built.
