# Empty dependencies file for bench_probe_ablation.
# This may be replaced when dependencies are built.
