file(REMOVE_RECURSE
  "CMakeFiles/bench_probe_ablation.dir/bench_probe_ablation.cc.o"
  "CMakeFiles/bench_probe_ablation.dir/bench_probe_ablation.cc.o.d"
  "bench_probe_ablation"
  "bench_probe_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_probe_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
