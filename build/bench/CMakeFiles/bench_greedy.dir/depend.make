# Empty dependencies file for bench_greedy.
# This may be replaced when dependencies are built.
