file(REMOVE_RECURSE
  "CMakeFiles/bench_greedy.dir/bench_greedy.cc.o"
  "CMakeFiles/bench_greedy.dir/bench_greedy.cc.o.d"
  "bench_greedy"
  "bench_greedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
