file(REMOVE_RECURSE
  "CMakeFiles/bench_batch_vs_incremental.dir/bench_batch_vs_incremental.cc.o"
  "CMakeFiles/bench_batch_vs_incremental.dir/bench_batch_vs_incremental.cc.o.d"
  "bench_batch_vs_incremental"
  "bench_batch_vs_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batch_vs_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
