# Empty dependencies file for bench_fig6_failure_cache.
# This may be replaced when dependencies are built.
