file(REMOVE_RECURSE
  "CMakeFiles/camera_shopping.dir/camera_shopping.cpp.o"
  "CMakeFiles/camera_shopping.dir/camera_shopping.cpp.o.d"
  "camera_shopping"
  "camera_shopping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camera_shopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
