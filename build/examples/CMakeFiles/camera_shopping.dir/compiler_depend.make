# Empty compiler generated dependencies file for camera_shopping.
# This may be replaced when dependencies are built.
