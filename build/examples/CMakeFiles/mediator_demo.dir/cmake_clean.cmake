file(REMOVE_RECURSE
  "CMakeFiles/mediator_demo.dir/mediator_demo.cpp.o"
  "CMakeFiles/mediator_demo.dir/mediator_demo.cpp.o.d"
  "mediator_demo"
  "mediator_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mediator_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
