# Empty compiler generated dependencies file for mediator_demo.
# This may be replaced when dependencies are built.
