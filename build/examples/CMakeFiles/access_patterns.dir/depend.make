# Empty dependencies file for access_patterns.
# This may be replaced when dependencies are built.
