file(REMOVE_RECURSE
  "CMakeFiles/access_patterns.dir/access_patterns.cpp.o"
  "CMakeFiles/access_patterns.dir/access_patterns.cpp.o.d"
  "access_patterns"
  "access_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
