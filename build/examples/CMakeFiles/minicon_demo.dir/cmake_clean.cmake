file(REMOVE_RECURSE
  "CMakeFiles/minicon_demo.dir/minicon_demo.cpp.o"
  "CMakeFiles/minicon_demo.dir/minicon_demo.cpp.o.d"
  "minicon_demo"
  "minicon_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicon_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
