# Empty dependencies file for minicon_demo.
# This may be replaced when dependencies are built.
