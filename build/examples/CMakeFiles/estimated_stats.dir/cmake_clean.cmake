file(REMOVE_RECURSE
  "CMakeFiles/estimated_stats.dir/estimated_stats.cpp.o"
  "CMakeFiles/estimated_stats.dir/estimated_stats.cpp.o.d"
  "estimated_stats"
  "estimated_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimated_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
