# Empty compiler generated dependencies file for estimated_stats.
# This may be replaced when dependencies are built.
