# Empty dependencies file for planorder_cli.
# This may be replaced when dependencies are built.
