file(REMOVE_RECURSE
  "CMakeFiles/planorder_cli.dir/planorder_cli.cpp.o"
  "CMakeFiles/planorder_cli.dir/planorder_cli.cpp.o.d"
  "planorder_cli"
  "planorder_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planorder_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
