file(REMOVE_RECURSE
  "CMakeFiles/cost_models_test.dir/cost_models_test.cc.o"
  "CMakeFiles/cost_models_test.dir/cost_models_test.cc.o.d"
  "cost_models_test"
  "cost_models_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
