# Empty dependencies file for cost_models_test.
# This may be replaced when dependencies are built.
