# Empty dependencies file for coverage_universe_test.
# This may be replaced when dependencies are built.
