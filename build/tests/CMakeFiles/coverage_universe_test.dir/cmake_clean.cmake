file(REMOVE_RECURSE
  "CMakeFiles/coverage_universe_test.dir/coverage_universe_test.cc.o"
  "CMakeFiles/coverage_universe_test.dir/coverage_universe_test.cc.o.d"
  "coverage_universe_test"
  "coverage_universe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_universe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
