# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for reformulation_fuzz_test.
