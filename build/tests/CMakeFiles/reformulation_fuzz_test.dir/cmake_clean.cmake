file(REMOVE_RECURSE
  "CMakeFiles/reformulation_fuzz_test.dir/reformulation_fuzz_test.cc.o"
  "CMakeFiles/reformulation_fuzz_test.dir/reformulation_fuzz_test.cc.o.d"
  "reformulation_fuzz_test"
  "reformulation_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reformulation_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
