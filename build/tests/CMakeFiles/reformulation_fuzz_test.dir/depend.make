# Empty dependencies file for reformulation_fuzz_test.
# This may be replaced when dependencies are built.
