# Empty compiler generated dependencies file for merged_orderer_test.
# This may be replaced when dependencies are built.
