file(REMOVE_RECURSE
  "CMakeFiles/merged_orderer_test.dir/merged_orderer_test.cc.o"
  "CMakeFiles/merged_orderer_test.dir/merged_orderer_test.cc.o.d"
  "merged_orderer_test"
  "merged_orderer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merged_orderer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
