# Empty dependencies file for comparisons_test.
# This may be replaced when dependencies are built.
