file(REMOVE_RECURSE
  "CMakeFiles/comparisons_test.dir/comparisons_test.cc.o"
  "CMakeFiles/comparisons_test.dir/comparisons_test.cc.o.d"
  "comparisons_test"
  "comparisons_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comparisons_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
