file(REMOVE_RECURSE
  "CMakeFiles/abstraction_test.dir/abstraction_test.cc.o"
  "CMakeFiles/abstraction_test.dir/abstraction_test.cc.o.d"
  "abstraction_test"
  "abstraction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abstraction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
