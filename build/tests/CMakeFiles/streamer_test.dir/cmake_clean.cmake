file(REMOVE_RECURSE
  "CMakeFiles/streamer_test.dir/streamer_test.cc.o"
  "CMakeFiles/streamer_test.dir/streamer_test.cc.o.d"
  "streamer_test"
  "streamer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
