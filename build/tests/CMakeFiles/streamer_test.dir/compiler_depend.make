# Empty compiler generated dependencies file for streamer_test.
# This may be replaced when dependencies are built.
