# Empty dependencies file for executable_order_test.
# This may be replaced when dependencies are built.
