file(REMOVE_RECURSE
  "CMakeFiles/executable_order_test.dir/executable_order_test.cc.o"
  "CMakeFiles/executable_order_test.dir/executable_order_test.cc.o.d"
  "executable_order_test"
  "executable_order_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executable_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
