file(REMOVE_RECURSE
  "CMakeFiles/batch_topk_test.dir/batch_topk_test.cc.o"
  "CMakeFiles/batch_topk_test.dir/batch_topk_test.cc.o.d"
  "batch_topk_test"
  "batch_topk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_topk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
