# Empty compiler generated dependencies file for batch_topk_test.
# This may be replaced when dependencies are built.
