# Empty dependencies file for coverage_model_test.
# This may be replaced when dependencies are built.
