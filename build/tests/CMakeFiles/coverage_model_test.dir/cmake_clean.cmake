file(REMOVE_RECURSE
  "CMakeFiles/coverage_model_test.dir/coverage_model_test.cc.o"
  "CMakeFiles/coverage_model_test.dir/coverage_model_test.cc.o.d"
  "coverage_model_test"
  "coverage_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
