file(REMOVE_RECURSE
  "CMakeFiles/synthetic_domain_test.dir/synthetic_domain_test.cc.o"
  "CMakeFiles/synthetic_domain_test.dir/synthetic_domain_test.cc.o.d"
  "synthetic_domain_test"
  "synthetic_domain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_domain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
