# Empty compiler generated dependencies file for orderer_agreement_test.
# This may be replaced when dependencies are built.
