file(REMOVE_RECURSE
  "CMakeFiles/orderer_agreement_test.dir/orderer_agreement_test.cc.o"
  "CMakeFiles/orderer_agreement_test.dir/orderer_agreement_test.cc.o.d"
  "orderer_agreement_test"
  "orderer_agreement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orderer_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
