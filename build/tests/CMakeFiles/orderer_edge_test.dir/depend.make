# Empty dependencies file for orderer_edge_test.
# This may be replaced when dependencies are built.
