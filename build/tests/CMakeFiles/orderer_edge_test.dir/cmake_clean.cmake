file(REMOVE_RECURSE
  "CMakeFiles/orderer_edge_test.dir/orderer_edge_test.cc.o"
  "CMakeFiles/orderer_edge_test.dir/orderer_edge_test.cc.o.d"
  "orderer_edge_test"
  "orderer_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orderer_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
