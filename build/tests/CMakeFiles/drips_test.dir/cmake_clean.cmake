file(REMOVE_RECURSE
  "CMakeFiles/drips_test.dir/drips_test.cc.o"
  "CMakeFiles/drips_test.dir/drips_test.cc.o.d"
  "drips_test"
  "drips_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drips_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
