# Empty compiler generated dependencies file for drips_test.
# This may be replaced when dependencies are built.
