# Empty dependencies file for unify_test.
# This may be replaced when dependencies are built.
