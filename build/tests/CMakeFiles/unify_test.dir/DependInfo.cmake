
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/unify_test.cc" "tests/CMakeFiles/unify_test.dir/unify_test.cc.o" "gcc" "tests/CMakeFiles/unify_test.dir/unify_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/planorder_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/reformulation/CMakeFiles/planorder_reformulation.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/planorder_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/planorder_core.dir/DependInfo.cmake"
  "/root/repo/build/src/utility/CMakeFiles/planorder_utility.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/planorder_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/planorder_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
