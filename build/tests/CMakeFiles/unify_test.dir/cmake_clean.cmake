file(REMOVE_RECURSE
  "CMakeFiles/unify_test.dir/unify_test.cc.o"
  "CMakeFiles/unify_test.dir/unify_test.cc.o.d"
  "unify_test"
  "unify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
