file(REMOVE_RECURSE
  "CMakeFiles/inverse_rules_test.dir/inverse_rules_test.cc.o"
  "CMakeFiles/inverse_rules_test.dir/inverse_rules_test.cc.o.d"
  "inverse_rules_test"
  "inverse_rules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inverse_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
