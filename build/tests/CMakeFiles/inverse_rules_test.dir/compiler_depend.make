# Empty compiler generated dependencies file for inverse_rules_test.
# This may be replaced when dependencies are built.
