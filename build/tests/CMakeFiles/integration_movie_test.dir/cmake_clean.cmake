file(REMOVE_RECURSE
  "CMakeFiles/integration_movie_test.dir/integration_movie_test.cc.o"
  "CMakeFiles/integration_movie_test.dir/integration_movie_test.cc.o.d"
  "integration_movie_test"
  "integration_movie_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_movie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
