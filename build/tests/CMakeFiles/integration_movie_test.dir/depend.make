# Empty dependencies file for integration_movie_test.
# This may be replaced when dependencies are built.
