file(REMOVE_RECURSE
  "CMakeFiles/plan_space_test.dir/plan_space_test.cc.o"
  "CMakeFiles/plan_space_test.dir/plan_space_test.cc.o.d"
  "plan_space_test"
  "plan_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
