# Empty compiler generated dependencies file for plan_space_test.
# This may be replaced when dependencies are built.
