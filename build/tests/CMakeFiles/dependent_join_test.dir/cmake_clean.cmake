file(REMOVE_RECURSE
  "CMakeFiles/dependent_join_test.dir/dependent_join_test.cc.o"
  "CMakeFiles/dependent_join_test.dir/dependent_join_test.cc.o.d"
  "dependent_join_test"
  "dependent_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependent_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
