# Empty dependencies file for dependent_join_test.
# This may be replaced when dependencies are built.
