file(REMOVE_RECURSE
  "CMakeFiles/cost_validation_test.dir/cost_validation_test.cc.o"
  "CMakeFiles/cost_validation_test.dir/cost_validation_test.cc.o.d"
  "cost_validation_test"
  "cost_validation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
