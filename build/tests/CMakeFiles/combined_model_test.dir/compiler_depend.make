# Empty compiler generated dependencies file for combined_model_test.
# This may be replaced when dependencies are built.
