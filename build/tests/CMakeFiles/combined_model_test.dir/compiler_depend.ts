# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for combined_model_test.
