file(REMOVE_RECURSE
  "CMakeFiles/combined_model_test.dir/combined_model_test.cc.o"
  "CMakeFiles/combined_model_test.dir/combined_model_test.cc.o.d"
  "combined_model_test"
  "combined_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combined_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
