/// Figure 6.a-c: plan coverage — time from query issue until the first
/// k in {1, 10, 100} best plans are found, vs bucket size, for Streamer,
/// iDrips and PI (query length 3, overlap rate 0.3).
///
/// Paper shape: Streamer fastest for the first several plans (its
/// abstraction evaluates <4% of PI's plans in iteration one and recycles
/// dominance links afterwards); iDrips also beats PI early but falls behind
/// PI by the 100th plan as the cardinality-grouping heuristic stops implying
/// "similar new-tuple contribution".

#include "bench_util.h"

namespace planorder::bench {
namespace {

void RegisterAll() {
  stats::WorkloadOptions base;
  base.query_length = 3;
  base.overlap_rate = 0.3;
  base.regions_per_bucket = 16;
  base.seed = 2002;
  RegisterGrid("fig6.coverage", utility::MeasureKind::kCoverage,
               {Algo::kStreamer, Algo::kIDrips, Algo::kPi},
               /*sizes=*/{4, 8, 12, 16, 20},
               /*ks=*/{1, 10, 100}, base);
}

}  // namespace
}  // namespace planorder::bench

int main(int argc, char** argv) {
  planorder::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
