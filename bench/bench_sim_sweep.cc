/// Throughput of the simulation harness itself (src/sim/): scenarios
/// verified per second, and the relative cost of the exhaustive-order
/// oracle versus simply draining an orderer. The sweep is the correctness
/// backstop every later perf/refactor PR runs in CI (DESIGN.md §7), so its
/// own cost budget matters: the `checks_per_scenario` counter shows how
/// much differential coverage one generated scenario buys, and the oracle
/// benchmark bounds how large a plan space the O(plans^2) recomputation can
/// afford inside the tier-1 smoke.

#include "bench_util.h"
#include "sim/harness.h"
#include "sim/oracle.h"
#include "sim/scenario.h"

namespace planorder::bench {
namespace {

void RegisterAll() {
  benchmark::RegisterBenchmark(
      "sim-scenarios",
      [](benchmark::State& state) {
        sim::SimOptions options;
        sim::SimReport report;
        int step = 0;
        for (auto _ : state) {
          const sim::Scenario scenario = sim::MakeScenario(2026, step++);
          Status status = sim::RunScenario(scenario, options, &report);
          if (!status.ok()) {
            state.SkipWithError(std::string(status.message()).c_str());
            return;
          }
        }
        state.counters["checks_per_scenario"] =
            double(report.checks) / double(std::max(step, 1));
        state.counters["scenarios_per_s"] = benchmark::Counter(
            double(step), benchmark::Counter::kIsRate);
      })
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.5);

  for (int size : {3, 4, 5}) {
    stats::WorkloadOptions options;
    options.query_length = 3;
    options.bucket_size = size;
    options.regions_per_bucket = 12;
    options.overlap_rate = 0.3;
    options.seed = 2026;
    const std::string name =
        "sim-oracle/plans:" + std::to_string(size * size * size);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [options](benchmark::State& state) {
          const stats::Workload& workload = CachedWorkload(options);
          const std::vector<core::PlanSpace> spaces = {
              core::PlanSpace::FullSpace(workload)};
          auto model =
              utility::MakeMeasure(utility::MeasureKind::kCoverage, &workload);
          if (!model.ok()) {
            state.SkipWithError("measure rejected workload");
            return;
          }
          auto orderer = sim::MakeOrderer(sim::AlgoKind::kPi, &workload,
                                          model->get(),
                                          /*probe_lower_bounds=*/false);
          if (!orderer.ok()) {
            state.SkipWithError("orderer construction failed");
            return;
          }
          auto emissions = sim::Drain(**orderer, /*pool=*/nullptr);
          if (!emissions.ok()) {
            state.SkipWithError("drain failed");
            return;
          }
          for (auto _ : state) {
            Status status = sim::VerifyExactOrder(
                workload, utility::MeasureKind::kCoverage, spaces, *emissions,
                1e-9);
            if (!status.ok()) {
              state.SkipWithError(std::string(status.message()).c_str());
              return;
            }
          }
        })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.1);
  }
}

}  // namespace
}  // namespace planorder::bench

int main(int argc, char** argv) {
  planorder::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
