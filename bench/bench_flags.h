#ifndef PLANORDER_BENCH_BENCH_FLAGS_H_
#define PLANORDER_BENCH_BENCH_FLAGS_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/logging.h"

namespace planorder::bench {

/// Shared command-line handling of the plain-main benchmarks (the ones that
/// write a BENCH_*.json instead of going through the google-benchmark
/// driver). Accepted forms:
///   bench [output.json] [--threads=N[,M...]] [--repeats=R]
///         [--k=K[,K2...]] [--weights-seed=S]
/// The first non-flag argument is the output path; --threads sets the
/// thread-count sweep, --repeats the per-point repetitions, --k the ranked
/// answer-count sweep and --weights-seed the tuple-weight seed (the latter
/// two consumed by bench_anyk, accepted everywhere). Every parse failure —
/// unknown flag, malformed list, out-of-range value — aborts with the same
/// full usage message so CI typos fail loudly and identically across all
/// benches.
struct BenchFlags {
  std::string output;
  std::vector<int> threads;
  int repeats = 0;
  /// Ranked-enumeration sweep: the k values of "time to the k-th answer".
  std::vector<int> ks;
  uint64_t weights_seed = 1;
};

/// The one usage string of every ParseBenchFlags error path. Listing the
/// full flag set (including the PR-6 additions --k / --weights-seed) in one
/// place keeps the message consistent across all benches and all failure
/// modes.
inline std::string BenchUsage(const char* argv0) {
  return std::string("usage: ") + argv0 +
         " [output.json] [--threads=N[,M...]] [--repeats=R]" +
         " [--k=K[,K2...]] [--weights-seed=S]";
}

/// True when the run's thread sweep oversubscribes the machine — some
/// requested pool exceeds the hardware thread count, so throughput numbers
/// measure contention rather than scaling. Surfaced both as a stderr warning
/// at parse time and as a field of the JSON artifact, because the artifact
/// outlives the terminal that saw the warning.
inline bool DegradedParallelism(const BenchFlags& flags) {
  const unsigned hardware = std::thread::hardware_concurrency();
  if (hardware == 0 || flags.threads.empty()) return false;
  const int max_requested =
      *std::max_element(flags.threads.begin(), flags.threads.end());
  return max_requested > int(hardware);
}

inline BenchFlags ParseBenchFlags(int argc, char** argv,
                                  std::string default_output,
                                  std::vector<int> default_threads = {},
                                  int default_repeats = 0,
                                  std::vector<int> default_ks = {}) {
  BenchFlags flags;
  flags.output = std::move(default_output);
  flags.threads = std::move(default_threads);
  flags.repeats = default_repeats;
  flags.ks = std::move(default_ks);
  const std::string usage = BenchUsage(argv[0]);
  bool have_output = false;
  // Every malformed value funnels through these CHECKs, so every error path
  // — not just unknown flags — prints the full usage (a bare stoi would
  // abort with an opaque exception instead).
  auto parse_int = [&usage](const std::string& arg, const std::string& item) {
    PLANORDER_CHECK(!item.empty() && item.size() <= 9 &&
                    item.find_first_not_of("0123456789") == std::string::npos)
        << usage << "; bad value in '" << arg << "'";
    return std::stoi(item);
  };
  auto parse_int_list = [&usage, &parse_int](const std::string& arg,
                                             size_t prefix_len,
                                             std::vector<int>* out) {
    out->clear();
    std::string list = arg.substr(prefix_len);
    size_t pos = 0;
    while (pos < list.size()) {
      const size_t comma = list.find(',', pos);
      const std::string item =
          list.substr(pos, comma == std::string::npos ? comma : comma - pos);
      out->push_back(parse_int(arg, item));
      PLANORDER_CHECK_GE(out->back(), 1)
          << usage << "; bad value in '" << arg << "'";
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    PLANORDER_CHECK(!out->empty()) << usage << "; empty list in '" << arg << "'";
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      parse_int_list(arg, 10, &flags.threads);
    } else if (arg.rfind("--k=", 0) == 0) {
      parse_int_list(arg, 4, &flags.ks);
    } else if (arg.rfind("--repeats=", 0) == 0) {
      flags.repeats = parse_int(arg, arg.substr(10));
      PLANORDER_CHECK_GE(flags.repeats, 1)
          << usage << "; bad value in '" << arg << "'";
    } else if (arg.rfind("--weights-seed=", 0) == 0) {
      const std::string item = arg.substr(15);
      PLANORDER_CHECK(!item.empty() && item.size() <= 19 &&
                      item.find_first_not_of("0123456789") ==
                          std::string::npos)
          << usage << "; bad value in '" << arg << "'";
      flags.weights_seed = std::stoull(item);
    } else {
      PLANORDER_CHECK(!arg.empty() && arg[0] != '-' && !have_output)
          << usage << "; got '" << arg << "'";
      flags.output = arg;
      have_output = true;
    }
  }
  if (DegradedParallelism(flags)) {
    std::cerr << "warning: --threads requests "
              << *std::max_element(flags.threads.begin(), flags.threads.end())
              << " workers but the machine has "
              << std::thread::hardware_concurrency()
              << " hardware threads; timings will reflect oversubscription "
                 "(artifact flags degraded_parallelism=true)\n";
  }
  return flags;
}

/// The "host" object every BENCH_*.json carries: the machine's hardware
/// thread count plus the effective flag values of the run, so a benchmark
/// artifact is self-describing when compared across CI runs.
inline std::string HostMetadataJson(const BenchFlags& flags) {
  auto int_list = [](const std::vector<int>& values) {
    std::string out = "[";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(values[i]);
    }
    return out + "]";
  };
  std::string out = "{";
  out += "\"hardware_threads\": " +
         std::to_string(std::thread::hardware_concurrency());
  out += ", \"repeats\": " + std::to_string(flags.repeats);
  out += ", \"threads\": " + int_list(flags.threads);
  out += ", \"k\": " + int_list(flags.ks);
  out += ", \"weights_seed\": " + std::to_string(flags.weights_seed);
  out += std::string(", \"degraded_parallelism\": ") +
         (DegradedParallelism(flags) ? "true" : "false");
  out += "}";
  return out;
}

/// Wall-clock timestamp (milliseconds) for timing the benchmarks
/// themselves. Benches measure real elapsed time by definition, so this is
/// the one sanctioned wall-clock read outside runtime/clock.h — everything
/// under src/ must charge time through runtime::Clock instead.
inline double NowWallMs() {
  return std::chrono::duration<double, std::milli>(
             // detlint: allow(D1, benches measure real wall-clock time)
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace planorder::bench

#endif  // PLANORDER_BENCH_BENCH_FLAGS_H_
