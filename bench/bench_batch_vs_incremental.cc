/// Related work (Section 7): Leser & Naumann's branch-and-bound "returns all
/// k plans at once" under full plan independence, and the paper notes it is
/// unclear whether it can be made incremental. This bench quantifies the
/// trade: batch top-k (BatchTopK) against the incremental Streamer and the
/// PI baseline on the failure-cost measure (full independence), for k known
/// up front. Batch avoids all dominance-graph upkeep but cannot stream:
/// plan k+1 requires a rerun.

#include "bench_util.h"

#include "core/batch_topk.h"

namespace planorder::bench {
namespace {

void RegisterAll() {
  for (int size : {12, 20}) {
    for (int k : {1, 10, 100}) {
      stats::WorkloadOptions options;
      options.query_length = 3;
      options.bucket_size = size;
      options.regions_per_bucket = 16;
      options.overlap_rate = 0.3;
      options.failure_min = 0.05;
      options.failure_max = 0.5;
      options.seed = 2016;
      const std::string suffix =
          "/size:" + std::to_string(size) + "/k:" + std::to_string(k);
      benchmark::RegisterBenchmark(
          ("batch-vs-incremental/batch-topk" + suffix).c_str(),
          [options, k](benchmark::State& state) {
            const stats::Workload& workload = CachedWorkload(options);
            int64_t evals = 0;
            for (auto _ : state) {
              auto model = utility::MakeMeasure(
                  utility::MeasureKind::kFailureNoCache, &workload);
              PLANORDER_CHECK(model.ok());
              evals = 0;
              auto best = core::BatchTopK(
                  &workload, model->get(),
                  {core::PlanSpace::FullSpace(workload)}, k,
                  core::AbstractionHeuristic::kByCardinality, &evals);
              PLANORDER_CHECK(best.ok()) << best.status();
              benchmark::DoNotOptimize(best->size());
            }
            state.counters["evals"] = double(evals);
          })
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.02);
      for (Algo algo : {Algo::kStreamer, Algo::kPi}) {
        benchmark::RegisterBenchmark(
            ("batch-vs-incremental/" + std::string(AlgoName(algo)) + suffix)
                .c_str(),
            [algo, options, k](benchmark::State& state) {
              const stats::Workload& workload = CachedWorkload(options);
              EpisodeResult last;
              for (auto _ : state) {
                last = RunEpisode(algo, utility::MeasureKind::kFailureNoCache,
                                  workload, k);
              }
              state.counters["evals"] = double(last.evaluations);
            })
            ->Unit(benchmark::kMillisecond)
            ->MinTime(0.02);
      }
    }
  }
}

}  // namespace
}  // namespace planorder::bench

int main(int argc, char** argv) {
  planorder::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
