/// Benchmark of the parallel, incremental ordering core: full-order emission
/// (every plan of the space, figure-6 style coverage workload) through the
/// persistent-frontier iDrips orderer,
///   - serially and with a thread pool injected (per --threads), checking
///     the emitted (plan, utility) sequence is byte-identical throughout and
///     reporting the wall-clock speedups, and
///   - against the rebuild-every-emission mode (the pre-incremental
///     behavior), reporting utility evaluations per emission for both.
/// Results go to BENCH_core.json.
///
/// Usage: bench_core_parallel [output.json] [--threads=N[,M...]]
///        [--repeats=R]
/// --threads sets the pool sizes swept against the serial run (default
/// 2,4,8); wall-clock per configuration is the best of R runs (default 3).

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.h"
#include "bench_util.h"
#include "runtime/thread_pool.h"

namespace planorder::bench {
namespace {

struct RunResult {
  double ms = 0.0;
  int64_t evaluations = 0;
  std::vector<core::OrderedPlan> emissions;
};

/// One full-order emission episode: build the orderer over the full plan
/// space and drain it. The timed region spans orderer construction through
/// the last emission, the paper's "time to find the first k plans" with k =
/// everything.
RunResult RunIDrips(const stats::Workload& workload, bool persistent,
                    runtime::ThreadPool* pool) {
  auto model = utility::MakeMeasure(utility::MeasureKind::kCoverage, &workload);
  PLANORDER_CHECK(model.ok()) << model.status();
  core::IDripsOptions options;
  options.persistent_frontier = persistent;
  // Wide refinement rounds: more abstract candidates split per round means
  // bigger evaluation batches for the pool. Fixed across thread counts, so
  // every configuration performs the identical evaluation sequence.
  options.refine_width = 32;
  RunResult result;
  const double start_ms = NowWallMs();
  auto orderer = core::IDripsOrderer::Create(
      &workload, model->get(), {core::PlanSpace::FullSpace(workload)},
      options);
  PLANORDER_CHECK(orderer.ok()) << orderer.status();
  if (pool != nullptr) (*orderer)->set_eval_pool(pool);
  while (true) {
    auto next = (*orderer)->Next();
    if (!next.ok()) {
      PLANORDER_CHECK(next.status().code() == StatusCode::kNotFound)
          << next.status();
      break;
    }
    result.emissions.push_back(*next);
  }
  result.ms = NowWallMs() - start_ms;
  result.evaluations = (*orderer)->plan_evaluations();
  return result;
}

/// Byte-identical emission sequences: same plans, bit-equal utilities.
bool SameEmissions(const std::vector<core::OrderedPlan>& a,
                   const std::vector<core::OrderedPlan>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].plan != b[i].plan || a[i].utility != b[i].utility) return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  const BenchFlags flags =
      ParseBenchFlags(argc, argv, "BENCH_core.json", {2, 4, 8}, 3);
  const int repeats = std::max(flags.repeats, 1);

  // The figure-6 coverage setting (bench_fig6_coverage.cc) at its largest
  // bucket size, full-order emission.
  stats::WorkloadOptions wopts;
  wopts.query_length = 4;
  wopts.bucket_size = 8;
  wopts.overlap_rate = 0.4;
  wopts.regions_per_bucket = 32;
  wopts.seed = 21;
  const stats::Workload& workload = CachedWorkload(wopts);

  // Serial persistent-frontier reference: emissions and evaluation counts of
  // every other configuration must match it exactly.
  RunResult serial = RunIDrips(workload, /*persistent=*/true, nullptr);
  for (int r = 1; r < repeats; ++r) {
    serial.ms =
        std::min(serial.ms, RunIDrips(workload, true, nullptr).ms);
  }
  const size_t plans = serial.emissions.size();
  std::cout << "full order: " << plans << " plans, serial " << serial.ms
            << " ms, " << serial.evaluations << " evals\n";

  struct ParallelPoint {
    int threads = 0;
    double ms = 0.0;
    bool identical = false;
  };
  std::vector<ParallelPoint> points;
  for (int threads : flags.threads) {
    runtime::ThreadPool pool(threads);
    RunResult best = RunIDrips(workload, true, &pool);
    bool identical = SameEmissions(serial.emissions, best.emissions) &&
                     best.evaluations == serial.evaluations;
    for (int r = 1; r < repeats; ++r) {
      const RunResult run = RunIDrips(workload, true, &pool);
      identical = identical && SameEmissions(serial.emissions, run.emissions) &&
                  run.evaluations == serial.evaluations;
      best.ms = std::min(best.ms, run.ms);
    }
    PLANORDER_CHECK(identical)
        << threads << "-thread run diverged from the serial order";
    points.push_back({threads, best.ms, identical});
    std::cout << "  " << threads << " threads: " << best.ms << " ms ("
              << serial.ms / best.ms << "x, order identical)\n";
  }

  // Evaluations per emission: persistent frontier vs rebuild-from-roots (the
  // seed behavior). One run — it is 30x slower and only the counter matters.
  RunResult rebuild = RunIDrips(workload, /*persistent=*/false, nullptr);
  PLANORDER_CHECK(rebuild.emissions.size() == plans);
  for (size_t i = 0; i < plans; ++i) {
    // Exact ordering either way: identical utility sequences (plans may
    // differ on exact ties).
    PLANORDER_CHECK(
        std::abs(rebuild.emissions[i].utility - serial.emissions[i].utility) <=
        1e-9)
        << "rebuild mode diverged at emission " << i;
  }
  const double persistent_per_emission =
      double(serial.evaluations) / double(plans);
  const double rebuild_per_emission =
      double(rebuild.evaluations) / double(plans);
  std::cout << "evals/emission: persistent " << persistent_per_emission
            << " vs rebuild " << rebuild_per_emission << " ("
            << rebuild_per_emission / persistent_per_emission
            << "x fewer), wall clock " << serial.ms << " vs " << rebuild.ms
            << " ms\n";

  // Evaluation throughput: evaluations are identical across configurations
  // (checked above), so per-second rates are comparable and survive workload
  // retuning better than raw milliseconds.
  const double serial_evals_per_sec =
      double(serial.evaluations) / (serial.ms / 1000.0);
  std::cout << "serial throughput: " << serial_evals_per_sec << " evals/s\n";

  // Headline: the whole PR against the seed's rebuild-every-emission iDrips.
  // Per-thread scaling above is bounded by the physical cores of the host
  // (hardware_threads in the JSON); this one is not.
  double best_parallel_ms = serial.ms;
  for (const ParallelPoint& p : points) {
    best_parallel_ms = std::min(best_parallel_ms, p.ms);
  }
  const double speedup_vs_seed = rebuild.ms / best_parallel_ms;
  std::cout << "speedup vs seed (rebuild-mode) iDrips: " << speedup_vs_seed
            << "x\n";

  std::ostringstream json;
  json << "{\n  \"bench\": \"core_parallel\",\n"
       << "  \"host\": " << HostMetadataJson(flags) << ",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"workload\": {\"query_length\": " << wopts.query_length
       << ", \"bucket_size\": " << wopts.bucket_size
       << ", \"overlap_rate\": " << wopts.overlap_rate
       << ", \"regions_per_bucket\": " << wopts.regions_per_bucket
       << ", \"seed\": " << wopts.seed << ", \"measure\": \"coverage\"},\n"
       << "  \"plans_emitted\": " << plans << ",\n"
       << "  \"repeats\": " << repeats << ",\n"
       << "  \"serial_ms\": " << serial.ms << ",\n"
       << "  \"serial_evals_per_sec\": " << serial_evals_per_sec << ",\n"
       // The checked-in serial result before the flat ordering core (arena +
       // bitmask coverage + frontier heaps + lazy refresh) landed, so the
       // regenerated JSON records the improvement next to the old numbers.
       << "  \"baseline\": {\"serial_ms\": 1014.04, "
       << "\"persistent_total_evaluations\": 659822},\n"
       << "  \"serial_speedup_vs_baseline\": " << 1014.04 / serial.ms << ",\n"
       << "  \"parallel\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const ParallelPoint& p = points[i];
    json << "    {\"threads\": " << p.threads << ", \"ms\": " << p.ms
         << ", \"speedup\": " << serial.ms / p.ms << ", \"evals_per_sec\": "
         << double(serial.evaluations) / (p.ms / 1000.0)
         << ", \"order_identical\": " << (p.identical ? "true" : "false")
         << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"evaluations\": {\n"
       << "    \"persistent_total\": " << serial.evaluations << ",\n"
       << "    \"rebuild_total\": " << rebuild.evaluations << ",\n"
       << "    \"persistent_per_emission\": " << persistent_per_emission
       << ",\n"
       << "    \"rebuild_per_emission\": " << rebuild_per_emission << ",\n"
       << "    \"reduction_factor\": "
       << rebuild_per_emission / persistent_per_emission << ",\n"
       << "    \"rebuild_serial_ms\": " << rebuild.ms << "\n"
       << "  },\n"
       << "  \"speedup_vs_seed_idrips\": " << speedup_vs_seed << "\n}\n";
  std::ofstream out(flags.output);
  PLANORDER_CHECK(out.good()) << "cannot write " << flags.output;
  out << json.str();
  std::cout << "wrote " << flags.output << "\n";
  return 0;
}

}  // namespace
}  // namespace planorder::bench

int main(int argc, char** argv) { return planorder::bench::Main(argc, argv); }
