/// Benchmark of the resilient concurrent source-access runtime
/// (src/runtime/): sweeps injected per-call latency and transient failure
/// rates over a synthetic integration domain and reports, as JSON
/// (BENCH_runtime.json),
///   - serial vs parallel wall-clock time of a full mediation run
///     (time_dilation = 1.0: simulated source latency is really slept), and
///   - answers recovered when sources are permanently killed mid-workload
///     (graceful degradation instead of an aborted run).
///
/// Usage: bench_runtime_resilience [output.json] [--threads=N[,M...]]
///        [--repeats=R]
/// --threads sets the parallel thread counts swept against the serial run
/// (default 4,8); --repeats takes the best of R runs per point (default 1).

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "base/logging.h"
#include "bench_util.h"
#include "core/streamer.h"
#include "exec/mediator.h"
#include "exec/source_access.h"
#include "exec/synthetic_domain.h"
#include "runtime/source_runtime.h"
#include "utility/coverage_model.h"

namespace planorder::bench {
namespace {

constexpr int kMaxPlans = 12;

struct SweepPoint {
  double per_binding_latency_ms = 0.0;
  double transient_failure_rate = 0.0;
  double serial_ms = 0.0;
  /// (thread count, wall-clock ms) per --threads entry.
  std::vector<std::pair<int, double>> parallel_ms;
  size_t answers = 0;
};

struct FailurePoint {
  int killed_sources = 0;
  size_t baseline_answers = 0;
  size_t recovered_answers = 0;
  size_t failed_plans = 0;
};

exec::SourceRegistry BuildRegistry(const exec::SyntheticDomain& d) {
  exec::SourceRegistry registry;
  for (datalog::SourceId id = 0; id < d.catalog.num_sources(); ++id) {
    const std::string& name = d.catalog.source(id).name;
    auto source = registry.Register(name, 2);
    PLANORDER_CHECK(source.ok()) << source.status();
    for (const auto& tuple : d.source_facts.TuplesFor(name)) {
      PLANORDER_CHECK((*source)->Add(tuple).ok());
    }
  }
  return registry;
}

/// One full mediation run through the runtime; returns wall-clock ms.
double TimedRun(const exec::SyntheticDomain& d, exec::SourceRegistry& registry,
                const runtime::RuntimeOptions& options,
                exec::MediatorResult* out) {
  utility::CoverageModel model(&d.workload);
  auto orderer = core::StreamerOrderer::Create(
      &d.workload, &model, {core::PlanSpace::FullSpace(d.workload)});
  PLANORDER_CHECK(orderer.ok()) << orderer.status();
  exec::Mediator mediator(&d.catalog, d.query, &d.source_facts, d.source_ids);
  runtime::SourceRuntime rt(&registry, options);
  exec::Mediator::RunLimits limits;
  limits.max_plans = kMaxPlans;
  const double start_ms = NowWallMs();
  auto result = mediator.Run(**orderer, limits, rt);
  const double elapsed_ms = NowWallMs() - start_ms;
  PLANORDER_CHECK(result.ok()) << result.status();
  if (out != nullptr) *out = std::move(*result);
  return elapsed_ms;
}

runtime::RuntimeOptions BaseOptions(int threads, const SweepPoint& point) {
  runtime::RuntimeOptions options;
  options.num_threads = threads;
  options.seed = 7;
  options.time_dilation = 1.0;  // really sleep the simulated latency
  options.default_model.base_latency_ms = 0.2;
  options.default_model.per_binding_latency_ms = point.per_binding_latency_ms;
  options.default_model.per_tuple_latency_ms = 0.002;
  options.default_model.latency_jitter = 0.2;
  options.default_model.transient_failure_rate = point.transient_failure_rate;
  options.retry.max_attempts = 16;
  options.retry.initial_backoff_ms = 0.2;
  options.retry.max_backoff_ms = 2.0;
  return options;
}

std::vector<SweepPoint> RunLatencySweep(const exec::SyntheticDomain& d,
                                        exec::SourceRegistry& registry,
                                        const BenchFlags& flags) {
  const int repeats = std::max(flags.repeats, 1);
  auto best_of = [&](const runtime::RuntimeOptions& options,
                     exec::MediatorResult* out) {
    double best = TimedRun(d, registry, options, out);
    for (int r = 1; r < repeats; ++r) {
      best = std::min(best, TimedRun(d, registry, options, nullptr));
    }
    return best;
  };
  std::vector<SweepPoint> sweep;
  for (double latency : {0.02, 0.08}) {
    for (double failure_rate : {0.0, 0.15}) {
      SweepPoint point;
      point.per_binding_latency_ms = latency;
      point.transient_failure_rate = failure_rate;

      runtime::RuntimeOptions serial = BaseOptions(1, point);
      serial.max_partitions_per_call = 1;
      exec::MediatorResult serial_result;
      point.serial_ms = best_of(serial, &serial_result);
      point.answers = serial_result.total_answers;

      std::cout << "latency=" << latency << "ms fail=" << failure_rate
                << "  serial=" << point.serial_ms << "ms";
      for (int threads : flags.threads) {
        exec::MediatorResult parallel_result;
        const double ms =
            best_of(BaseOptions(threads, point), &parallel_result);
        // Same seed, same fault draws: the answer stream must be identical.
        PLANORDER_CHECK(parallel_result.total_answers ==
                        serial_result.total_answers)
            << "parallel run diverged from serial";
        point.parallel_ms.emplace_back(threads, ms);
        std::cout << "  " << threads << "thr=" << ms << "ms";
      }
      sweep.push_back(point);
      std::cout << "  answers=" << point.answers << "\n";
    }
  }
  return sweep;
}

std::vector<FailurePoint> RunFailureRecovery(const exec::SyntheticDomain& d,
                                             exec::SourceRegistry& registry) {
  // Baseline: nothing killed, logic-only (no sleeping).
  SweepPoint quiet;
  runtime::RuntimeOptions options = BaseOptions(4, quiet);
  options.time_dilation = 0.0;
  options.retry.max_attempts = 3;
  exec::MediatorResult baseline;
  TimedRun(d, registry, options, &baseline);

  std::vector<FailurePoint> recovery;
  const std::vector<std::string> names = [&] {
    std::vector<std::string> all;
    for (datalog::SourceId id = 0; id < d.catalog.num_sources(); ++id) {
      all.push_back(d.catalog.source(id).name);
    }
    return all;
  }();
  for (int killed : {1, 2, 4}) {
    utility::CoverageModel model(&d.workload);
    auto orderer = core::StreamerOrderer::Create(
        &d.workload, &model, {core::PlanSpace::FullSpace(d.workload)});
    PLANORDER_CHECK(orderer.ok());
    exec::Mediator mediator(&d.catalog, d.query, &d.source_facts,
                            d.source_ids);
    runtime::SourceRuntime rt(&registry, options);
    runtime::NetworkModel dead;
    dead.permanently_failed = true;
    // Deterministically kill every (num/killed)-th source.
    for (int i = 0; i < killed; ++i) {
      const std::string& victim =
          names[size_t(i) * names.size() / size_t(killed)];
      PLANORDER_CHECK(rt.remotes().Configure(victim, dead).ok());
    }
    exec::Mediator::RunLimits limits;
    limits.max_plans = kMaxPlans;
    auto result = mediator.Run(**orderer, limits, rt);
    PLANORDER_CHECK(result.ok()) << result.status();

    FailurePoint point;
    point.killed_sources = killed;
    point.baseline_answers = baseline.total_answers;
    point.recovered_answers = result->total_answers;
    point.failed_plans = result->failed_plans;
    recovery.push_back(point);
    std::cout << "killed=" << killed << "  recovered "
              << point.recovered_answers << "/" << point.baseline_answers
              << " answers, " << point.failed_plans
              << " plans discarded gracefully\n";
  }
  return recovery;
}

void WriteJson(const BenchFlags& flags, const std::vector<SweepPoint>& sweep,
               const std::vector<FailurePoint>& recovery) {
  const std::string& path = flags.output;
  std::ostringstream json;
  json << "{\n  \"bench\": \"runtime_resilience\",\n";
  json << "  \"host\": " << HostMetadataJson(flags) << ",\n";
  json << "  \"max_plans\": " << kMaxPlans << ",\n";
  json << "  \"latency_sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    json << "    {\"per_binding_latency_ms\": " << p.per_binding_latency_ms
         << ", \"transient_failure_rate\": " << p.transient_failure_rate
         << ", \"serial_ms\": " << p.serial_ms;
    for (const auto& [threads, ms] : p.parallel_ms) {
      json << ", \"parallel" << threads << "_ms\": " << ms << ", \"speedup"
           << threads << "\": " << p.serial_ms / ms;
    }
    json << ", \"answers\": " << p.answers << "}"
         << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"failure_recovery\": [\n";
  for (size_t i = 0; i < recovery.size(); ++i) {
    const FailurePoint& p = recovery[i];
    json << "    {\"killed_sources\": " << p.killed_sources
         << ", \"baseline_answers\": " << p.baseline_answers
         << ", \"recovered_answers\": " << p.recovered_answers
         << ", \"failed_plans\": " << p.failed_plans << "}"
         << (i + 1 < recovery.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::ofstream out(path);
  out << json.str();
  if (!out) {
    std::cerr << "failed to write " << path << "\n";
    std::exit(1);
  }
  std::cout << "wrote " << path << "\n";
}

int Main(int argc, char** argv) {
  stats::WorkloadOptions wopts;
  wopts.query_length = 3;
  wopts.bucket_size = 4;
  wopts.overlap_rate = 0.4;
  wopts.regions_per_bucket = 8;
  wopts.seed = 41;
  auto domain = exec::BuildSyntheticDomain(wopts, /*num_answers=*/400);
  PLANORDER_CHECK(domain.ok()) << domain.status();
  const exec::SyntheticDomain& d = **domain;
  exec::SourceRegistry registry = BuildRegistry(d);

  const BenchFlags flags =
      ParseBenchFlags(argc, argv, "BENCH_runtime.json", {4, 8});
  const std::vector<SweepPoint> sweep = RunLatencySweep(d, registry, flags);
  const std::vector<FailurePoint> recovery = RunFailureRecovery(d, registry);
  WriteJson(flags, sweep, recovery);
  return 0;
}

}  // namespace
}  // namespace planorder::bench

int main(int argc, char** argv) { return planorder::bench::Main(argc, argv); }
