/// Figure 6.g-i: cost measure (2) with source failure AND operation caching
/// — time to the first k in {1, 10, 100} plans vs bucket size. Caching
/// zeroes the cost of operations an executed plan already performed, so
/// plans sharing a source operation are dependent and diminishing returns
/// fails: Streamer is NOT applicable (its factory refuses the measure), so
/// the series compare iDrips against PI.
///
/// Paper shape: iDrips finds the first several plans very fast compared to
/// PI — the abstraction heuristic stays effective across iterations.

#include "bench_util.h"

namespace planorder::bench {
namespace {

void RegisterAll() {
  stats::WorkloadOptions base;
  base.query_length = 3;
  base.overlap_rate = 0.3;
  base.regions_per_bucket = 16;
  base.failure_min = 0.05;
  base.failure_max = 0.5;
  base.seed = 2004;
  RegisterGrid("fig6.failure-cache", utility::MeasureKind::kFailureCache,
               {Algo::kIDrips, Algo::kPi},
               /*sizes=*/{4, 8, 12, 16, 20},
               /*ks=*/{1, 10, 100}, base);
}

}  // namespace
}  // namespace planorder::bench

int main(int argc, char** argv) {
  planorder::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
