/// Plan-evaluation-count reproduction of two quantitative claims:
///
///  1. Section 6, coverage: "across all runs the number of plans evaluated
///     by Streamer in the first iteration is less than 4% of the number of
///     plans evaluated by PI." The `streamer_pct_of_pi` counter reports the
///     measured percentage per bucket size.
///
///  2. Section 5.1's worked example: Drips finds the best of a 3x3 plan
///     space evaluating about 6 of the 9 plans (a ~33% saving); the
///     `evals` counter of the micro benchmark reports the measured count on
///     a 3x3 coverage space.

#include "bench_util.h"

namespace planorder::bench {
namespace {

void RegisterAll() {
  for (int size : {8, 12, 16, 20, 24}) {
    stats::WorkloadOptions options;
    options.query_length = 3;
    options.bucket_size = size;
    options.regions_per_bucket = 16;
    options.overlap_rate = 0.3;
    options.seed = 2011;
    std::string name =
        "first-iteration-evals/size:" + std::to_string(size);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [options](benchmark::State& state) {
          const stats::Workload& workload = CachedWorkload(options);
          EpisodeResult streamer, pi;
          for (auto _ : state) {
            streamer = RunEpisode(Algo::kStreamer,
                                  utility::MeasureKind::kCoverage, workload, 1);
            pi = RunEpisode(Algo::kPi, utility::MeasureKind::kCoverage,
                            workload, 1);
          }
          state.counters["streamer_evals"] = double(streamer.evaluations);
          state.counters["pi_evals"] = double(pi.evaluations);
          state.counters["streamer_pct_of_pi"] =
              100.0 * double(streamer.evaluations) / double(pi.evaluations);
        })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.02);
  }

  benchmark::RegisterBenchmark(
      "drips-3x3-micro",
      [](benchmark::State& state) {
        stats::WorkloadOptions options;
        options.query_length = 2;
        options.bucket_size = 3;
        options.regions_per_bucket = 8;
        options.overlap_rate = 0.4;
        options.seed = 2012;
        const stats::Workload& workload = CachedWorkload(options);
        EpisodeResult last;
        for (auto _ : state) {
          last = RunEpisode(Algo::kIDrips, utility::MeasureKind::kCoverage,
                            workload, 1);
        }
        state.counters["evals"] = double(last.evaluations);
        state.counters["brute_force_evals"] = 9.0;
      })
      ->Unit(benchmark::kMicrosecond)
      ->MinTime(0.02);
}

}  // namespace
}  // namespace planorder::bench

int main(int argc, char** argv) {
  planorder::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
