/// Figure 6.j-l: average monetary cost per output tuple, in both the
/// no-caching and caching variants — time to the first k in {1, 10, 100}
/// plans vs bucket size.
///
/// Paper shape: both Streamer and iDrips perform WORSE than PI here. The
/// ratio utility makes the cardinality-grouping abstraction ineffective
/// (cost and output tuples move together, so group intervals stay wide and
/// little is pruned), while the per-plan overhead of maintaining abstract
/// plans remains. Streamer applies only to the no-caching variant.

#include "bench_util.h"

namespace planorder::bench {
namespace {

void RegisterAll() {
  stats::WorkloadOptions base;
  base.query_length = 3;
  base.overlap_rate = 0.3;
  base.regions_per_bucket = 16;
  base.seed = 2005;
  RegisterGrid("fig6.monetary", utility::MeasureKind::kMonetary,
               {Algo::kStreamer, Algo::kIDrips, Algo::kPi},
               /*sizes=*/{4, 8, 12, 16},
               /*ks=*/{1, 10, 100}, base);
  RegisterGrid("fig6.monetary-cache", utility::MeasureKind::kMonetaryCache,
               {Algo::kIDrips, Algo::kPi},
               /*sizes=*/{4, 8, 12, 16},
               /*ks=*/{1, 10, 100}, base);
}

}  // namespace
}  // namespace planorder::bench

int main(int argc, char** argv) {
  planorder::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
