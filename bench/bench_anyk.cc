/// Benchmark of ranked (any-k) answer enumeration: Fig-6-style
/// time-to-first-k sweep over bucket size. For each (bucket_size, k) point it
/// times
///   - anyk_first_k_ms: opening a RankedAnswerStream (plan phase: every sound
///     plan pulled from iDrips in utility order, one bottom-up DP each) and
///     pulling the first k ranked answers lazily, and
///   - sort_all_ms: the classic materialize-then-sort baseline — every sound,
///     executable rewriting of the full Cartesian product joined by the
///     brute-force backtracking evaluator, deduplicated and globally sorted
///     (the k-th answer is not available any earlier than the whole order).
/// A full stream drain (anyk_full_ms) is reported alongside so the sweep
/// shows first-k latency growing sublinearly in the answer count while the
/// baseline pays the full materialization regardless of k.
/// Results go to BENCH_anyk.json.
///
/// Usage: bench_anyk [output.json] [--k=K[,K2...]] [--repeats=R]
///        [--weights-seed=S]

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "anyk/brute_force.h"
#include "anyk/ranked_stream.h"
#include "base/logging.h"
#include "bench_util.h"
#include "core/plan_space.h"
#include "exec/synthetic_domain.h"
#include "reformulation/executable_order.h"
#include "reformulation/rewriting.h"

namespace planorder::bench {
namespace {

/// Opens the ranked stream over the full plan budget: measure model + iDrips
/// orderer + plan phase. Everything here is inside the caller's timed region.
anyk::RankedAnswerStream OpenStream(const exec::SyntheticDomain& domain,
                                    const anyk::WeightOptions& weights,
                                    int max_plans) {
  auto model = utility::MakeMeasure(utility::MeasureKind::kCoverage,
                                    &domain.workload);
  PLANORDER_CHECK(model.ok()) << model.status();
  auto orderer = core::IDripsOrderer::Create(
      &domain.workload, model->get(),
      {core::PlanSpace::FullSpace(domain.workload)});
  PLANORDER_CHECK(orderer.ok()) << orderer.status();
  anyk::RankedAnswerStream::Options options;
  options.weights = weights;
  options.max_plans = max_plans;
  auto stream = anyk::RankedAnswerStream::Open(
      domain.catalog, domain.query, domain.source_facts, domain.source_ids,
      **orderer, options);
  PLANORDER_CHECK(stream.ok()) << stream.status();
  return std::move(*stream);
}

struct TimedRun {
  double ms = 0.0;
  size_t answers = 0;
};

/// Time from query issue to the k-th ranked answer (fewer if the union is
/// smaller); k <= 0 drains the stream completely.
TimedRun TimeAnyK(const exec::SyntheticDomain& domain,
                  const anyk::WeightOptions& weights, int max_plans, int k) {
  const double start_ms = NowWallMs();
  anyk::RankedAnswerStream stream = OpenStream(domain, weights, max_plans);
  TimedRun run;
  while (k <= 0 || run.answers < size_t(k)) {
    auto next = stream.Next();
    if (!next.ok()) {
      PLANORDER_CHECK(next.status().code() == StatusCode::kNotFound)
          << next.status();
      break;
    }
    benchmark::DoNotOptimize(next->weight);
    ++run.answers;
  }
  run.ms = NowWallMs() - start_ms;
  return run;
}

/// The materialize-then-sort baseline: every sound, executable rewriting of
/// the full Cartesian product, evaluated by the naive backtracking join and
/// globally sorted. The rewriting enumeration is part of the timed region —
/// the baseline, too, starts from the raw query.
TimedRun TimeSortAll(const exec::SyntheticDomain& domain,
                     const anyk::WeightOptions& weights) {
  const double start_ms = NowWallMs();
  std::vector<datalog::ConjunctiveQuery> rewritings;
  const size_t num_buckets = domain.source_ids.size();
  std::vector<size_t> odometer(num_buckets, 0);
  while (true) {
    std::vector<datalog::SourceId> choice(num_buckets);
    for (size_t b = 0; b < num_buckets; ++b) {
      choice[b] = domain.source_ids[b][odometer[b]];
    }
    auto plan =
        reformulation::BuildSoundPlan(domain.query, domain.catalog, choice);
    PLANORDER_CHECK(plan.ok()) << plan.status();
    if (plan->has_value()) {
      auto ordered =
          reformulation::FindExecutableOrder(**plan, domain.catalog);
      if (ordered.ok()) {
        rewritings.push_back((**plan).rewriting);
      } else {
        PLANORDER_CHECK(ordered.status().code() ==
                        StatusCode::kFailedPrecondition)
            << ordered.status();
      }
    }
    size_t b = 0;
    for (; b < num_buckets; ++b) {
      if (++odometer[b] < domain.source_ids[b].size()) break;
      odometer[b] = 0;
    }
    if (b == num_buckets) break;
  }
  auto all = anyk::BruteForceRankedUnion(rewritings, domain.source_facts,
                                         weights);
  PLANORDER_CHECK(all.ok()) << all.status();
  benchmark::DoNotOptimize(all->data());
  TimedRun run;
  run.ms = NowWallMs() - start_ms;
  run.answers = all->size();
  return run;
}

struct GridPoint {
  int bucket_size = 0;
  uint64_t plans = 0;
  size_t answers = 0;
  int k = 0;
  size_t emitted = 0;
  double anyk_first_k_ms = 0.0;
  double anyk_full_ms = 0.0;
  double sort_all_ms = 0.0;
};

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv, "BENCH_anyk.json",
                                           /*default_threads=*/{},
                                           /*default_repeats=*/3,
                                           /*default_ks=*/{1, 10, 100});
  const int repeats = std::max(flags.repeats, 1);
  anyk::WeightOptions weights;
  weights.seed = flags.weights_seed;
  weights.aggregation = anyk::Aggregation::kSum;

  const std::vector<int> sizes = {2, 4, 8};
  std::vector<GridPoint> points;
  for (int size : sizes) {
    stats::WorkloadOptions wopts;
    wopts.query_length = 3;
    wopts.bucket_size = size;
    wopts.overlap_rate = 0.4;
    wopts.regions_per_bucket = 16;
    wopts.seed = 31;
    auto domain = exec::BuildSyntheticDomain(wopts, /*num_answers=*/400);
    PLANORDER_CHECK(domain.ok()) << domain.status();
    const exec::SyntheticDomain& d = **domain;
    const uint64_t plans =
        core::PlanSpace::FullSpace(d.workload).NumPlans();

    TimedRun sort_all = TimeSortAll(d, weights);
    TimedRun full = TimeAnyK(d, weights, int(plans), /*k=*/0);
    for (int r = 1; r < repeats; ++r) {
      sort_all.ms = std::min(sort_all.ms, TimeSortAll(d, weights).ms);
      full.ms = std::min(full.ms, TimeAnyK(d, weights, int(plans), 0).ms);
    }
    PLANORDER_CHECK(full.answers == sort_all.answers)
        << "stream drained " << full.answers << " answers, sort-all baseline "
        << sort_all.answers;

    for (int k : flags.ks) {
      TimedRun first_k = TimeAnyK(d, weights, int(plans), k);
      for (int r = 1; r < repeats; ++r) {
        first_k.ms =
            std::min(first_k.ms, TimeAnyK(d, weights, int(plans), k).ms);
      }
      GridPoint point;
      point.bucket_size = size;
      point.plans = plans;
      point.answers = sort_all.answers;
      point.k = k;
      point.emitted = first_k.answers;
      point.anyk_first_k_ms = first_k.ms;
      point.anyk_full_ms = full.ms;
      point.sort_all_ms = sort_all.ms;
      points.push_back(point);
      std::cout << "size=" << size << " plans=" << plans << " answers="
                << point.answers << " k=" << k << ": any-k " << first_k.ms
                << " ms to the first " << first_k.answers
                << ", sort-all " << sort_all.ms << " ms ("
                << sort_all.ms / std::max(first_k.ms, 1e-9) << "x)\n";
    }
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"anyk\",\n"
       << "  \"host\": " << HostMetadataJson(flags) << ",\n"
       << "  \"weights\": {\"seed\": " << weights.seed
       << ", \"aggregation\": \""
       << anyk::AggregationName(weights.aggregation) << "\"},\n"
       << "  \"sweep\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const GridPoint& p = points[i];
    json << "    {\"bucket_size\": " << p.bucket_size << ", \"plans\": "
         << p.plans << ", \"answers\": " << p.answers << ", \"k\": " << p.k
         << ", \"emitted\": " << p.emitted << ", \"anyk_first_k_ms\": "
         << p.anyk_first_k_ms << ", \"anyk_full_ms\": " << p.anyk_full_ms
         << ", \"sort_all_ms\": " << p.sort_all_ms
         << ", \"speedup_first_k\": "
         << p.sort_all_ms / std::max(p.anyk_first_k_ms, 1e-9) << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::ofstream out(flags.output);
  PLANORDER_CHECK(out.good()) << "cannot write " << flags.output;
  out << json.str();
  std::cout << "wrote " << flags.output << "\n";
  return 0;
}

}  // namespace
}  // namespace planorder::bench

int main(int argc, char** argv) { return planorder::bench::Main(argc, argv); }
