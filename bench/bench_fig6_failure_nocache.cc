/// Figure 6.d-f: cost measure (2) with probability of source failure, NO
/// caching — time to the first k in {1, 10, 100} plans vs bucket size.
/// Full plan independence holds (nothing executed changes any other plan's
/// cost) and so does diminishing returns, so Streamer applies.
///
/// Paper shape: Streamer substantially beats both iDrips and PI — its
/// dominance links never invalidate, so later plans come almost for free,
/// while iDrips rebuilds its abstraction reasoning every iteration.

#include "bench_util.h"

namespace planorder::bench {
namespace {

void RegisterAll() {
  stats::WorkloadOptions base;
  base.query_length = 3;
  base.overlap_rate = 0.3;
  base.regions_per_bucket = 16;
  base.failure_min = 0.05;
  base.failure_max = 0.5;
  base.seed = 2003;
  RegisterGrid("fig6.failure-nocache", utility::MeasureKind::kFailureNoCache,
               {Algo::kStreamer, Algo::kIDrips, Algo::kPi},
               /*sizes=*/{4, 8, 12, 16, 20},
               /*ks=*/{1, 10, 100}, base);
}

}  // namespace
}  // namespace planorder::bench

int main(int argc, char** argv) {
  planorder::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
