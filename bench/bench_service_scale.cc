/// Open-loop load harness of the sharded query cluster (src/cluster/): a
/// Poisson arrival process sweeps over arrival rates, each arrival issuing
/// one query class (rotated-head variants, so classes spread across shards)
/// against a ShardedService over the resilient runtime. Open loop means the
/// schedule never waits for completions — arrivals keep coming past
/// saturation, so the harness observes the service's actual overload
/// behavior: admission control sheds (kResourceExhausted) instead of letting
/// latency collapse. Each rate point runs once with the cross-session
/// source-operation cache and once without; cached points show the
/// throughput head-room that zero-latency repeat fetches buy. Reports
/// per-point throughput, shed rate, source-cache hit rate and client-side
/// p50/p99 latency as JSON (BENCH_service_scale.json).
///
/// Usage: bench_service_scale [output.json] [--rates=R1,R2,...]
///        [--duration-ms=D] [--shards=N] [--source-cache=on|off|both]
///        plus the shared bench flags (bench_flags.h).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.h"
#include "base/rng.h"
#include "bench_flags.h"
#include "cluster/sharded_service.h"
#include "cluster/source_cache.h"
#include "datalog/unify.h"
#include "exec/synthetic_domain.h"
#include "runtime/source_runtime.h"

namespace planorder::bench {
namespace {

constexpr int kQueryClasses = 4;
constexpr int kMaxPlans = 2;
constexpr double kSourceLatencyMs = 2.0;

/// Distinct query classes over one catalog: rotating the head argument
/// order changes the canonical form (unlike variable renaming), so the
/// classes hash to different shards while sharing every source — exactly
/// the regime where the cross-session cache pays across shards.
std::vector<datalog::ConjunctiveQuery> MakeQueryClasses(
    const datalog::ConjunctiveQuery& query, int count) {
  std::vector<datalog::ConjunctiveQuery> classes;
  const size_t arity = query.head.args.size();
  for (int c = 0; c < count; ++c) {
    datalog::ConjunctiveQuery rotated = query;
    if (arity > 1) {
      for (size_t a = 0; a < arity; ++a) {
        rotated.head.args[a] = query.head.args[(a + size_t(c)) % arity];
      }
    }
    classes.push_back(std::move(rotated));
  }
  return classes;
}

struct PointResult {
  double rate_per_s = 0.0;
  bool cache_on = false;
  int arrivals = 0;
  int completed = 0;
  int shed = 0;
  double elapsed_ms = 0.0;
  double throughput_per_s = 0.0;
  double shed_rate = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  double cache_hit_rate = 0.0;
  int64_t runtime_cache_hits = 0;
  int64_t queue_depth_peak = 0;
};

double NearestRank(std::vector<double>& sorted_samples, double percentile) {
  if (sorted_samples.empty()) return 0.0;
  const size_t n = sorted_samples.size();
  size_t rank = size_t(std::ceil(percentile / 100.0 * double(n)));
  if (rank < 1) rank = 1;
  return sorted_samples[rank - 1];
}

/// One rate point: replays a precomputed Poisson schedule against a fresh
/// cluster. One thread per arrival (arrivals are bounded by rate * duration;
/// a short-lived thread per request keeps the client truly open-loop — no
/// client-side queue that would soften the offered load).
PointResult RunPoint(const exec::SyntheticDomain& domain,
                     const std::vector<datalog::ConjunctiveQuery>& classes,
                     double rate_per_s, double duration_ms, int num_shards,
                     bool cache_on, uint64_t seed) {
  // Precompute the exponential inter-arrival schedule so the dispatcher does
  // no RNG work on the critical path.
  Rng rng(seed);
  std::vector<double> offsets_ms;
  double t = 0.0;
  const double mean_gap_ms = 1000.0 / rate_per_s;
  while (t < duration_ms) {
    const double u = rng.UniformReal(1e-12, 1.0);
    t += -mean_gap_ms * std::log(u);
    if (t < duration_ms) offsets_ms.push_back(t);
  }

  exec::SourceRegistry registry;
  for (datalog::SourceId id = 0; id < domain.catalog.num_sources(); ++id) {
    const std::string& name = domain.catalog.source(id).name;
    auto source = registry.Register(name, 2);
    PLANORDER_CHECK(source.ok()) << source.status();
    for (const auto& tuple : domain.source_facts.TuplesFor(name)) {
      PLANORDER_CHECK((*source)->Add(tuple).ok());
    }
  }

  cluster::SourceOperationCache cache;
  runtime::RuntimeOptions ropts;
  ropts.num_threads = int(std::thread::hardware_concurrency());
  if (ropts.num_threads < 2) ropts.num_threads = 2;
  ropts.seed = seed;
  ropts.default_model.base_latency_ms = kSourceLatencyMs;
  if (cache_on) ropts.source_cache = &cache;
  runtime::SourceRuntime runtime(&registry, ropts);

  cluster::ClusterOptions copts;
  copts.num_shards = num_shards;
  if (cache_on) copts.source_cache = &cache;
  // Saturation point: few slots, no queueing grace — a full shard sheds
  // instantly, which is the overload behavior the sweep measures.
  copts.shard.max_active_sessions = 4;
  copts.shard.max_queued_admissions = 4;
  copts.shard.admission_timeout_ms = 0.0;
  cluster::ShardedService service(&domain.catalog, &domain.source_facts,
                                  copts, &runtime);

  exec::Mediator::RunLimits limits;
  limits.max_plans = kMaxPlans;

  const int arrivals = int(offsets_ms.size());
  std::vector<double> latencies_ms(size_t(arrivals), -1.0);  // -1 = shed
  std::vector<std::thread> requests;
  requests.reserve(size_t(arrivals));
  const double start_ms = NowWallMs();
  for (int i = 0; i < arrivals; ++i) {
    const double wait_ms = start_ms + offsets_ms[size_t(i)] - NowWallMs();
    if (wait_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(wait_ms));
    }
    requests.emplace_back([&service, &classes, &limits, &latencies_ms, i] {
      const auto& query = classes[size_t(i) % classes.size()];
      const double issued_ms = NowWallMs();
      auto result = service.RunQuery(query, limits);
      if (result.ok()) {
        latencies_ms[size_t(i)] = NowWallMs() - issued_ms;
      } else {
        PLANORDER_CHECK(result.status().code() ==
                        StatusCode::kResourceExhausted)
            << result.status();
      }
    });
  }
  for (std::thread& request : requests) request.join();
  const double elapsed_ms = NowWallMs() - start_ms;

  PointResult point;
  point.rate_per_s = rate_per_s;
  point.cache_on = cache_on;
  point.arrivals = arrivals;
  point.elapsed_ms = elapsed_ms;
  std::vector<double> completed_ms;
  for (double latency : latencies_ms) {
    if (latency >= 0.0) {
      completed_ms.push_back(latency);
    } else {
      ++point.shed;
    }
  }
  point.completed = int(completed_ms.size());
  point.throughput_per_s =
      elapsed_ms > 0.0 ? 1000.0 * double(point.completed) / elapsed_ms : 0.0;
  point.shed_rate =
      arrivals > 0 ? double(point.shed) / double(arrivals) : 0.0;
  std::sort(completed_ms.begin(), completed_ms.end());
  point.p50_ms = NearestRank(completed_ms, 50.0);
  point.p99_ms = NearestRank(completed_ms, 99.0);

  const runtime::SourceResultCacheStats cache_stats = cache.stats();
  point.cache_hits = cache_stats.hits;
  point.cache_misses = cache_stats.misses;
  const int64_t lookups = cache_stats.hits + cache_stats.misses;
  point.cache_hit_rate =
      lookups > 0 ? double(cache_stats.hits) / double(lookups) : 0.0;
  const service::ServiceMetricsSnapshot merged = service.MergedMetrics();
  point.runtime_cache_hits = merged.runtime.source_cache_hits;
  point.queue_depth_peak = merged.queue_depth_peak;
  PLANORDER_CHECK(merged.sessions_completed == int64_t(point.completed))
      << "service metrics disagree with the client-side count";
  return point;
}

void AppendPoint(std::ostringstream& json, const PointResult& p, bool last) {
  json << "    {\"rate_per_s\": " << p.rate_per_s
       << ", \"source_cache\": " << (p.cache_on ? "true" : "false")
       << ", \"arrivals\": " << p.arrivals
       << ", \"completed\": " << p.completed << ", \"shed\": " << p.shed
       << ", \"elapsed_ms\": " << p.elapsed_ms
       << ", \"throughput_per_s\": " << p.throughput_per_s
       << ", \"shed_rate\": " << p.shed_rate
       << ", \"latency_p50_ms\": " << p.p50_ms
       << ", \"latency_p99_ms\": " << p.p99_ms
       << ", \"cache_hits\": " << p.cache_hits
       << ", \"cache_misses\": " << p.cache_misses
       << ", \"cache_hit_rate\": " << p.cache_hit_rate
       << ", \"runtime_cache_hits\": " << p.runtime_cache_hits
       << ", \"queue_depth_peak\": " << p.queue_depth_peak << "}"
       << (last ? "\n" : ",\n");
}

int Main(int argc, char** argv) {
  // Harness-specific flags, stripped before the shared parser (which aborts
  // on flags it does not know).
  std::vector<double> rates = {25.0, 50.0, 100.0, 200.0};
  double duration_ms = 1000.0;
  int num_shards = 2;
  std::string cache_mode = "both";  // on | off | both
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--rates=", 0) == 0) {
      rates.clear();
      std::istringstream stream(arg.substr(8));
      std::string item;
      while (std::getline(stream, item, ',')) {
        if (!item.empty()) rates.push_back(std::stod(item));
      }
      PLANORDER_CHECK(!rates.empty()) << "empty --rates list";
    } else if (arg.rfind("--duration-ms=", 0) == 0) {
      duration_ms = std::stod(arg.substr(14));
      PLANORDER_CHECK(duration_ms > 0.0) << "bad --duration-ms";
    } else if (arg.rfind("--shards=", 0) == 0) {
      num_shards = std::stoi(arg.substr(9));
      PLANORDER_CHECK_GE(num_shards, 1);
    } else if (arg.rfind("--source-cache=", 0) == 0) {
      cache_mode = arg.substr(15);
      PLANORDER_CHECK(cache_mode == "on" || cache_mode == "off" ||
                      cache_mode == "both")
          << "--source-cache wants on|off|both, got '" << cache_mode << "'";
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const BenchFlags flags =
      ParseBenchFlags(int(passthrough.size()), passthrough.data(),
                      "BENCH_service_scale.json");

  stats::WorkloadOptions wopts;
  wopts.query_length = 2;
  wopts.bucket_size = 4;
  wopts.overlap_rate = 0.4;
  wopts.regions_per_bucket = 8;
  wopts.seed = 17;
  auto domain = exec::BuildSyntheticDomain(wopts, /*num_answers=*/200);
  PLANORDER_CHECK(domain.ok()) << domain.status();
  const exec::SyntheticDomain& d = **domain;
  const std::vector<datalog::ConjunctiveQuery> classes =
      MakeQueryClasses(d.query, kQueryClasses);

  std::vector<PointResult> points;
  for (double rate : rates) {
    for (bool cache_on : {false, true}) {
      if (cache_mode == "on" && !cache_on) continue;
      if (cache_mode == "off" && cache_on) continue;
      PointResult point =
          RunPoint(d, classes, rate, duration_ms, num_shards, cache_on,
                   flags.weights_seed + uint64_t(rate));
      std::cout << "rate " << rate << "/s cache=" << (cache_on ? "on" : "off")
                << ": " << point.completed << "/" << point.arrivals
                << " completed (" << point.throughput_per_s
                << "/s), shed rate " << point.shed_rate << ", hit rate "
                << point.cache_hit_rate << ", p50 " << point.p50_ms
                << " ms, p99 " << point.p99_ms << " ms\n";
      points.push_back(point);
    }
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"service_scale\",\n"
       << "  \"host\": " << HostMetadataJson(flags) << ",\n"
       << "  \"num_shards\": " << num_shards << ",\n"
       << "  \"query_classes\": " << kQueryClasses << ",\n"
       << "  \"max_plans\": " << kMaxPlans << ",\n"
       << "  \"duration_ms\": " << duration_ms << ",\n"
       << "  \"source_latency_ms\": " << kSourceLatencyMs << ",\n"
       << "  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    AppendPoint(json, points[i], i + 1 == points.size());
  }
  json << "  ]\n}\n";

  std::ofstream out(flags.output);
  PLANORDER_CHECK(out.good()) << "cannot write " << flags.output;
  out << json.str();
  std::cout << "wrote " << flags.output << "\n";
  return 0;
}

}  // namespace
}  // namespace planorder::bench

int main(int argc, char** argv) { return planorder::bench::Main(argc, argv); }
