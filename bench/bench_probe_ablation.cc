/// Ablation: probe-lifted lower bounds vs plain interval bounds.
///
/// Optionally the orderers evaluate one representative concrete member (a
/// "probe") per abstract plan and use its exact utility as the pruning
/// lower bound — sound under the paper's dominance definition, which only
/// needs one concrete plan of p to beat all of q. Measured result: with the
/// measures' tightened upper bounds in place (e.g. coverage's best-member
/// bound), best-first refinement reaches a strong concrete plan quickly and
/// its exact point utility prunes as well as a probe would, so probes only
/// add an extra evaluation per abstract plan (counts roughly double with
/// probes on). They are therefore OFF by default; this bench documents the
/// tradeoff and the general sensitivity of abstraction effectiveness to
/// bound quality — the phenomenon behind the paper's Figure 6.j-l, where
/// wide ratio intervals made abstraction lose to brute force.

#include "bench_util.h"

namespace planorder::bench {
namespace {

EpisodeResult RunAblated(Algo algo, utility::MeasureKind measure,
                         const stats::Workload& workload, int k,
                         bool probes) {
  auto model = utility::MakeMeasure(measure, &workload);
  PLANORDER_CHECK(model.ok()) << model.status();
  std::vector<core::PlanSpace> spaces = {core::PlanSpace::FullSpace(workload)};
  std::unique_ptr<core::Orderer> orderer;
  if (algo == Algo::kStreamer) {
    auto o = core::StreamerOrderer::Create(
        &workload, model->get(), std::move(spaces),
        core::AbstractionHeuristic::kByCardinality, probes);
    PLANORDER_CHECK(o.ok()) << o.status();
    orderer = std::move(*o);
  } else {
    auto o = core::IDripsOrderer::Create(
        &workload, model->get(), std::move(spaces),
        core::AbstractionHeuristic::kByCardinality, probes);
    PLANORDER_CHECK(o.ok()) << o.status();
    orderer = std::move(*o);
  }
  EpisodeResult result;
  for (int i = 0; i < k; ++i) {
    auto next = orderer->Next();
    if (!next.ok()) break;
    ++result.plans_emitted;
  }
  result.evaluations = orderer->plan_evaluations();
  return result;
}

void RegisterAll() {
  for (utility::MeasureKind measure :
       {utility::MeasureKind::kCoverage, utility::MeasureKind::kMonetary}) {
    for (Algo algo : {Algo::kStreamer, Algo::kIDrips}) {
      for (bool probes : {true, false}) {
        for (int k : {1, 10}) {
          stats::WorkloadOptions options;
          options.query_length = 3;
          options.bucket_size = 12;
          options.regions_per_bucket = 16;
          options.overlap_rate = 0.3;
          options.seed = 2015;
          std::string name = std::string("probe-ablation/") +
                             utility::MeasureKindName(measure) + "/" +
                             AlgoName(algo) + "/probes:" +
                             (probes ? "on" : "off") +
                             "/k:" + std::to_string(k);
          benchmark::RegisterBenchmark(
              name.c_str(),
              [measure, algo, probes, options, k](benchmark::State& state) {
                const stats::Workload& workload = CachedWorkload(options);
                EpisodeResult last;
                for (auto _ : state) {
                  last = RunAblated(algo, measure, workload, k, probes);
                }
                state.counters["evals"] = double(last.evaluations);
              })
              ->Unit(benchmark::kMillisecond)
              ->MinTime(0.02);
        }
      }
    }
  }
}

}  // namespace
}  // namespace planorder::bench

int main(int argc, char** argv) {
  planorder::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
