/// Section 4: the Greedy algorithm for fully monotonic measures. The paper
/// proves an O(m n^2 k^2) bound and notes Greedy "clearly outperforms the
/// other algorithms when applicable"; these series show time to the first k
/// plans vs bucket size for Greedy against PI and the naive brute force, on
/// measure (1) (additive cost) and on measure (2) with uniform transmission
/// costs (the Section 3 example of a monotonic instance of (2)).
///
/// Expected shape: Greedy's time to the first plans is near-constant in the
/// bucket size (one evaluation per split space), while PI scales with the
/// full Cartesian product.

#include "bench_util.h"

namespace planorder::bench {
namespace {

void RegisterAll() {
  stats::WorkloadOptions base;
  base.query_length = 3;
  base.overlap_rate = 0.3;
  base.regions_per_bucket = 16;
  base.seed = 2007;
  RegisterGrid("greedy.additive", utility::MeasureKind::kAdditive,
               {Algo::kGreedy, Algo::kPi, Algo::kNaive},
               /*sizes=*/{8, 16, 32, 48, 64},
               /*ks=*/{1, 10, 100}, base);

  stats::WorkloadOptions uniform = base;
  uniform.alpha_min = 0.3;
  uniform.alpha_max = 0.3;
  uniform.seed = 2008;
  RegisterGrid("greedy.cost2-uniform-alpha",
               utility::MeasureKind::kCost2UniformAlpha,
               {Algo::kGreedy, Algo::kPi},
               /*sizes=*/{8, 16, 32, 48, 64},
               /*ks=*/{1, 10, 100}, uniform);
}

}  // namespace
}  // namespace planorder::bench

int main(int argc, char** argv) {
  planorder::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
