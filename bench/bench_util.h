#ifndef PLANORDER_BENCH_BENCH_UTIL_H_
#define PLANORDER_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "base/logging.h"
#include "bench_flags.h"
#include "core/greedy.h"
#include "core/idrips.h"
#include "core/pi.h"
#include "core/streamer.h"
#include "utility/measures.h"

namespace planorder::bench {

// BenchFlags / ParseBenchFlags / HostMetadataJson / NowWallMs live in
// bench_flags.h (no google-benchmark dependency) so tests/bench_flags_test.cc
// can exercise the flag parser without linking the benchmark driver.

/// The ordering algorithms under comparison (Section 6): Streamer and iDrips
/// versus the PI reference, plus Greedy and the naive brute force for the
/// supplementary experiments.
enum class Algo { kStreamer, kIDrips, kPi, kNaive, kGreedy };

inline const char* AlgoName(Algo algo) {
  switch (algo) {
    case Algo::kStreamer:
      return "streamer";
    case Algo::kIDrips:
      return "idrips";
    case Algo::kPi:
      return "pi";
    case Algo::kNaive:
      return "naive";
    case Algo::kGreedy:
      return "greedy";
  }
  return "?";
}

/// Workloads are cached per option signature so that the timed region of a
/// benchmark covers exactly what the paper measures: from query issue (given
/// buckets) until the first k plans are found. Bucket/statistics generation
/// is excluded, as in Section 6.
inline const stats::Workload& CachedWorkload(
    const stats::WorkloadOptions& options) {
  static auto* cache = new std::map<std::string, stats::Workload>();
  std::string key = std::to_string(options.query_length) + "/" +
                    std::to_string(options.bucket_size) + "/" +
                    std::to_string(options.overlap_rate) + "/" +
                    std::to_string(options.regions_per_bucket) + "/" +
                    std::to_string(options.seed);
  auto it = cache->find(key);
  if (it == cache->end()) {
    auto workload = stats::Workload::Generate(options);
    PLANORDER_CHECK(workload.ok()) << workload.status();
    it = cache->emplace(key, std::move(*workload)).first;
  }
  return it->second;
}

struct EpisodeResult {
  int64_t evaluations = 0;
  int plans_emitted = 0;
};

/// One ordering episode: build the orderer over the full plan space and emit
/// the first k plans (fewer if the space is smaller).
inline EpisodeResult RunEpisode(
    Algo algo, utility::MeasureKind measure, const stats::Workload& workload,
    int k,
    core::AbstractionHeuristic heuristic =
        core::AbstractionHeuristic::kByCardinality) {
  auto model = utility::MakeMeasure(measure, &workload);
  PLANORDER_CHECK(model.ok()) << model.status();
  std::vector<core::PlanSpace> spaces = {core::PlanSpace::FullSpace(workload)};
  std::unique_ptr<core::Orderer> orderer;
  switch (algo) {
    case Algo::kStreamer: {
      auto o = core::StreamerOrderer::Create(&workload, model->get(),
                                             std::move(spaces), heuristic);
      PLANORDER_CHECK(o.ok()) << o.status();
      orderer = std::move(*o);
      break;
    }
    case Algo::kIDrips: {
      auto o = core::IDripsOrderer::Create(&workload, model->get(),
                                           std::move(spaces), heuristic);
      PLANORDER_CHECK(o.ok()) << o.status();
      orderer = std::move(*o);
      break;
    }
    case Algo::kPi:
    case Algo::kNaive: {
      auto o = core::PiOrderer::Create(&workload, model->get(),
                                       std::move(spaces),
                                       /*use_independence=*/algo == Algo::kPi);
      PLANORDER_CHECK(o.ok()) << o.status();
      orderer = std::move(*o);
      break;
    }
    case Algo::kGreedy: {
      auto o = core::GreedyOrderer::Create(&workload, model->get(),
                                           std::move(spaces));
      PLANORDER_CHECK(o.ok()) << o.status();
      orderer = std::move(*o);
      break;
    }
  }
  EpisodeResult result;
  for (int i = 0; i < k; ++i) {
    auto next = orderer->Next();
    if (!next.ok()) break;
    benchmark::DoNotOptimize(next->utility);
    ++result.plans_emitted;
  }
  result.evaluations = orderer->plan_evaluations();
  return result;
}

/// Registers the Figure-6 style grid for one measure: time to the first k
/// plans vs bucket size, one series per algorithm. Benchmark names look like
///   fig6.coverage/streamer/size:12/k:10
/// and the `evals` counter reports plan evaluations per episode.
inline void RegisterGrid(const std::string& label,
                         utility::MeasureKind measure,
                         const std::vector<Algo>& algos,
                         const std::vector<int>& sizes,
                         const std::vector<int>& ks,
                         stats::WorkloadOptions base) {
  for (Algo algo : algos) {
    for (int size : sizes) {
      for (int k : ks) {
        stats::WorkloadOptions options = base;
        options.bucket_size = size;
        std::string name = label + "/" + AlgoName(algo) +
                           "/size:" + std::to_string(size) +
                           "/k:" + std::to_string(k);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [algo, measure, options, k](benchmark::State& state) {
              const stats::Workload& workload = CachedWorkload(options);
              EpisodeResult last;
              for (auto _ : state) {
                last = RunEpisode(algo, measure, workload, k);
              }
              state.counters["evals"] = double(last.evaluations);
              state.counters["emitted"] = double(last.plans_emitted);
            })
            ->Unit(benchmark::kMillisecond)
            ->MinTime(0.02);
      }
    }
  }
}

}  // namespace planorder::bench

#endif  // PLANORDER_BENCH_BENCH_UTIL_H_
