#ifndef PLANORDER_BENCH_BENCH_UTIL_H_
#define PLANORDER_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "base/logging.h"
#include "core/greedy.h"
#include "core/idrips.h"
#include "core/pi.h"
#include "core/streamer.h"
#include "utility/measures.h"

namespace planorder::bench {

/// Shared command-line handling of the plain-main benchmarks (the ones that
/// write a BENCH_*.json instead of going through the google-benchmark
/// driver). Accepted forms:
///   bench [output.json] [--threads=N[,M...]] [--repeats=R]
///         [--k=K[,K2...]] [--weights-seed=S]
/// The first non-flag argument is the output path; --threads sets the
/// thread-count sweep, --repeats the per-point repetitions, --k the ranked
/// answer-count sweep and --weights-seed the tuple-weight seed (the latter
/// two consumed by bench_anyk, accepted everywhere). Unknown flags abort
/// with a usage message so CI typos fail loudly.
struct BenchFlags {
  std::string output;
  std::vector<int> threads;
  int repeats = 0;
  /// Ranked-enumeration sweep: the k values of "time to the k-th answer".
  std::vector<int> ks;
  uint64_t weights_seed = 1;
};

inline BenchFlags ParseBenchFlags(int argc, char** argv,
                                  std::string default_output,
                                  std::vector<int> default_threads = {},
                                  int default_repeats = 0,
                                  std::vector<int> default_ks = {}) {
  BenchFlags flags;
  flags.output = std::move(default_output);
  flags.threads = std::move(default_threads);
  flags.repeats = default_repeats;
  flags.ks = std::move(default_ks);
  bool have_output = false;
  auto parse_int_list = [](const std::string& arg, size_t prefix_len,
                           std::vector<int>* out) {
    out->clear();
    std::string list = arg.substr(prefix_len);
    size_t pos = 0;
    while (pos < list.size()) {
      const size_t comma = list.find(',', pos);
      const std::string item =
          list.substr(pos, comma == std::string::npos ? comma : comma - pos);
      PLANORDER_CHECK(!item.empty()) << "empty entry in " << arg;
      out->push_back(std::stoi(item));
      PLANORDER_CHECK_GE(out->back(), 1) << "bad " << arg;
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    PLANORDER_CHECK(!out->empty()) << "bad " << arg;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      parse_int_list(arg, 10, &flags.threads);
    } else if (arg.rfind("--k=", 0) == 0) {
      parse_int_list(arg, 4, &flags.ks);
    } else if (arg.rfind("--repeats=", 0) == 0) {
      flags.repeats = std::stoi(arg.substr(10));
      PLANORDER_CHECK_GE(flags.repeats, 1) << "bad " << arg;
    } else if (arg.rfind("--weights-seed=", 0) == 0) {
      flags.weights_seed = std::stoull(arg.substr(15));
    } else {
      PLANORDER_CHECK(!arg.empty() && arg[0] != '-' && !have_output)
          << "usage: " << argv[0]
          << " [output.json] [--threads=N[,M...]] [--repeats=R]"
          << " [--k=K[,K2...]] [--weights-seed=S]; got '" << arg << "'";
      flags.output = arg;
      have_output = true;
    }
  }
  return flags;
}

/// The "host" object every BENCH_*.json carries: the machine's hardware
/// thread count plus the effective flag values of the run, so a benchmark
/// artifact is self-describing when compared across CI runs.
inline std::string HostMetadataJson(const BenchFlags& flags) {
  auto int_list = [](const std::vector<int>& values) {
    std::string out = "[";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(values[i]);
    }
    return out + "]";
  };
  std::string out = "{";
  out += "\"hardware_threads\": " +
         std::to_string(std::thread::hardware_concurrency());
  out += ", \"repeats\": " + std::to_string(flags.repeats);
  out += ", \"threads\": " + int_list(flags.threads);
  out += ", \"k\": " + int_list(flags.ks);
  out += ", \"weights_seed\": " + std::to_string(flags.weights_seed);
  out += "}";
  return out;
}

/// The ordering algorithms under comparison (Section 6): Streamer and iDrips
/// versus the PI reference, plus Greedy and the naive brute force for the
/// supplementary experiments.
enum class Algo { kStreamer, kIDrips, kPi, kNaive, kGreedy };

inline const char* AlgoName(Algo algo) {
  switch (algo) {
    case Algo::kStreamer:
      return "streamer";
    case Algo::kIDrips:
      return "idrips";
    case Algo::kPi:
      return "pi";
    case Algo::kNaive:
      return "naive";
    case Algo::kGreedy:
      return "greedy";
  }
  return "?";
}

/// Workloads are cached per option signature so that the timed region of a
/// benchmark covers exactly what the paper measures: from query issue (given
/// buckets) until the first k plans are found. Bucket/statistics generation
/// is excluded, as in Section 6.
inline const stats::Workload& CachedWorkload(
    const stats::WorkloadOptions& options) {
  static auto* cache = new std::map<std::string, stats::Workload>();
  std::string key = std::to_string(options.query_length) + "/" +
                    std::to_string(options.bucket_size) + "/" +
                    std::to_string(options.overlap_rate) + "/" +
                    std::to_string(options.regions_per_bucket) + "/" +
                    std::to_string(options.seed);
  auto it = cache->find(key);
  if (it == cache->end()) {
    auto workload = stats::Workload::Generate(options);
    PLANORDER_CHECK(workload.ok()) << workload.status();
    it = cache->emplace(key, std::move(*workload)).first;
  }
  return it->second;
}

struct EpisodeResult {
  int64_t evaluations = 0;
  int plans_emitted = 0;
};

/// One ordering episode: build the orderer over the full plan space and emit
/// the first k plans (fewer if the space is smaller).
inline EpisodeResult RunEpisode(
    Algo algo, utility::MeasureKind measure, const stats::Workload& workload,
    int k,
    core::AbstractionHeuristic heuristic =
        core::AbstractionHeuristic::kByCardinality) {
  auto model = utility::MakeMeasure(measure, &workload);
  PLANORDER_CHECK(model.ok()) << model.status();
  std::vector<core::PlanSpace> spaces = {core::PlanSpace::FullSpace(workload)};
  std::unique_ptr<core::Orderer> orderer;
  switch (algo) {
    case Algo::kStreamer: {
      auto o = core::StreamerOrderer::Create(&workload, model->get(),
                                             std::move(spaces), heuristic);
      PLANORDER_CHECK(o.ok()) << o.status();
      orderer = std::move(*o);
      break;
    }
    case Algo::kIDrips: {
      auto o = core::IDripsOrderer::Create(&workload, model->get(),
                                           std::move(spaces), heuristic);
      PLANORDER_CHECK(o.ok()) << o.status();
      orderer = std::move(*o);
      break;
    }
    case Algo::kPi:
    case Algo::kNaive: {
      auto o = core::PiOrderer::Create(&workload, model->get(),
                                       std::move(spaces),
                                       /*use_independence=*/algo == Algo::kPi);
      PLANORDER_CHECK(o.ok()) << o.status();
      orderer = std::move(*o);
      break;
    }
    case Algo::kGreedy: {
      auto o = core::GreedyOrderer::Create(&workload, model->get(),
                                           std::move(spaces));
      PLANORDER_CHECK(o.ok()) << o.status();
      orderer = std::move(*o);
      break;
    }
  }
  EpisodeResult result;
  for (int i = 0; i < k; ++i) {
    auto next = orderer->Next();
    if (!next.ok()) break;
    benchmark::DoNotOptimize(next->utility);
    ++result.plans_emitted;
  }
  result.evaluations = orderer->plan_evaluations();
  return result;
}

/// Registers the Figure-6 style grid for one measure: time to the first k
/// plans vs bucket size, one series per algorithm. Benchmark names look like
///   fig6.coverage/streamer/size:12/k:10
/// and the `evals` counter reports plan evaluations per episode.
inline void RegisterGrid(const std::string& label,
                         utility::MeasureKind measure,
                         const std::vector<Algo>& algos,
                         const std::vector<int>& sizes,
                         const std::vector<int>& ks,
                         stats::WorkloadOptions base) {
  for (Algo algo : algos) {
    for (int size : sizes) {
      for (int k : ks) {
        stats::WorkloadOptions options = base;
        options.bucket_size = size;
        std::string name = label + "/" + AlgoName(algo) +
                           "/size:" + std::to_string(size) +
                           "/k:" + std::to_string(k);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [algo, measure, options, k](benchmark::State& state) {
              const stats::Workload& workload = CachedWorkload(options);
              EpisodeResult last;
              for (auto _ : state) {
                last = RunEpisode(algo, measure, workload, k);
              }
              state.counters["evals"] = double(last.evaluations);
              state.counters["emitted"] = double(last.plans_emitted);
            })
            ->Unit(benchmark::kMillisecond)
            ->MinTime(0.02);
      }
    }
  }
}

}  // namespace planorder::bench

#endif  // PLANORDER_BENCH_BENCH_UTIL_H_
