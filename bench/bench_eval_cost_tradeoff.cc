/// Evaluation-cost / overhead tradeoff (the paper's Summary: "performance of
/// Streamer and iDrips depends on the tradeoff between the number of plans
/// evaluated and the overhead of maintaining the dominance graph...").
///
/// Our region-bitset coverage evaluation costs ~0.3us per plan — orders of
/// magnitude cheaper, relative to CPU, than the probabilistic statistics
/// computations of the paper's 2002 testbed. That shifts the balance toward
/// the brute-force PI at large k. This benchmark makes the regime explicit:
/// it wraps the coverage measure with a configurable amount of artificial
/// per-evaluation work (emulating heavier statistics machinery) and sweeps
/// it, showing the crossover where the abstraction algorithms' evaluation
/// savings overwhelm their bookkeeping overhead — the paper's regime.

#include "bench_util.h"
#include "utility/coverage_model.h"

namespace planorder::bench {
namespace {

/// Decorator adding `spin` floating-point operations to every evaluation.
class CostlyStatisticsModel : public utility::UtilityModel {
 public:
  CostlyStatisticsModel(const stats::Workload* workload,
                        utility::UtilityModel* inner, int spin)
      : UtilityModel(workload), inner_(inner), spin_(spin) {}

  std::string name() const override {
    return inner_->name() + "+spin" + std::to_string(spin_);
  }
  Interval Evaluate(utility::NodeSpan nodes,
                    const utility::ExecutionContext& ctx) const override {
    double x = 1.0;
    for (int i = 0; i < spin_; ++i) x = x * 1.0000000001 + 1e-12;
    benchmark::DoNotOptimize(x);
    return inner_->Evaluate(nodes, ctx);
  }
  bool fully_monotonic() const override { return inner_->fully_monotonic(); }
  double MonotoneScore(int bucket, int source) const override {
    return inner_->MonotoneScore(bucket, source);
  }
  bool diminishing_returns() const override {
    return inner_->diminishing_returns();
  }
  bool Independent(const utility::ConcretePlan& a,
                   const utility::ConcretePlan& b) const override {
    return inner_->Independent(a, b);
  }
  bool GroupIndependentOf(utility::NodeSpan nodes,
                          const utility::ConcretePlan& plan) const override {
    return inner_->GroupIndependentOf(nodes, plan);
  }
  std::optional<utility::ConcretePlan> FindIndependentGroupPlan(
      utility::NodeSpan nodes,
      const std::vector<const utility::ConcretePlan*>& others) const override {
    return inner_->FindIndependentGroupPlan(nodes, others);
  }
  int ProbeMember(const stats::StatSummary& summary) const override {
    return inner_->ProbeMember(summary);
  }

 private:
  utility::UtilityModel* inner_;
  int spin_;
};

EpisodeResult RunCostlyEpisode(Algo algo, const stats::Workload& workload,
                               int spin, int k) {
  utility::CoverageModel coverage(&workload);
  CostlyStatisticsModel model(&workload, &coverage, spin);
  std::vector<core::PlanSpace> spaces = {core::PlanSpace::FullSpace(workload)};
  std::unique_ptr<core::Orderer> orderer;
  if (algo == Algo::kStreamer) {
    auto o = core::StreamerOrderer::Create(&workload, &model,
                                           std::move(spaces));
    PLANORDER_CHECK(o.ok()) << o.status();
    orderer = std::move(*o);
  } else if (algo == Algo::kIDrips) {
    auto o =
        core::IDripsOrderer::Create(&workload, &model, std::move(spaces));
    PLANORDER_CHECK(o.ok()) << o.status();
    orderer = std::move(*o);
  } else {
    auto o = core::PiOrderer::Create(&workload, &model, std::move(spaces));
    PLANORDER_CHECK(o.ok()) << o.status();
    orderer = std::move(*o);
  }
  EpisodeResult result;
  for (int i = 0; i < k; ++i) {
    auto next = orderer->Next();
    if (!next.ok()) break;
    ++result.plans_emitted;
  }
  result.evaluations = orderer->plan_evaluations();
  return result;
}

void RegisterAll() {
  // spin ~ extra FLOPs per evaluation; 3000 is roughly 1 microsecond.
  for (int spin : {0, 3000, 30000}) {
    for (Algo algo : {Algo::kStreamer, Algo::kIDrips, Algo::kPi}) {
      for (int k : {10, 100}) {
        stats::WorkloadOptions options;
        options.query_length = 3;
        options.bucket_size = 12;
        options.regions_per_bucket = 16;
        options.overlap_rate = 0.3;
        options.seed = 2014;
        std::string name = std::string("eval-cost-tradeoff/") +
                           AlgoName(algo) + "/spin:" + std::to_string(spin) +
                           "/k:" + std::to_string(k);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [algo, spin, options, k](benchmark::State& state) {
              const stats::Workload& workload = CachedWorkload(options);
              EpisodeResult last;
              for (auto _ : state) {
                last = RunCostlyEpisode(algo, workload, spin, k);
              }
              state.counters["evals"] = double(last.evaluations);
            })
            ->Unit(benchmark::kMillisecond)
            ->MinTime(0.02);
      }
    }
  }
}

}  // namespace
}  // namespace planorder::bench

int main(int argc, char** argv) {
  planorder::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
