/// Section 6 text, plan coverage: "Streamer's relative performance compared
/// to PI in finding subsequent plans decreases as the degree of plan
/// independence decreases (i.e., as the overlap rate increases)" — more
/// overlap invalidates more dominance links, so Streamer recycles fewer.
///
/// Series: time to the first 10 and 50 plans at bucket size 12, query
/// length 3, overlap rate swept over {0.1, 0.3, 0.5, 0.7, 0.9}, for
/// Streamer and PI; the `evals` counter exposes the recycling effect
/// directly.

#include "bench_util.h"

namespace planorder::bench {
namespace {

void RegisterAll() {
  for (double overlap : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    for (Algo algo : {Algo::kStreamer, Algo::kPi}) {
      for (int k : {10, 50}) {
        stats::WorkloadOptions options;
        options.query_length = 3;
        options.bucket_size = 12;
        options.regions_per_bucket = 16;
        options.overlap_rate = overlap;
        options.seed = 2009;
        std::string name = std::string("overlap-sweep/") + AlgoName(algo) +
                           "/overlap:" + std::to_string(overlap).substr(0, 3) +
                           "/k:" + std::to_string(k);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [algo, options, k](benchmark::State& state) {
              const stats::Workload& workload = CachedWorkload(options);
              EpisodeResult last;
              for (auto _ : state) {
                last = RunEpisode(algo, utility::MeasureKind::kCoverage,
                                  workload, k);
              }
              state.counters["evals"] = double(last.evaluations);
            })
            ->Unit(benchmark::kMillisecond)
            ->MinTime(0.02);
      }
    }
  }
}

}  // namespace
}  // namespace planorder::bench

int main(int argc, char** argv) {
  planorder::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
