/// Benchmark of the concurrent multi-query mediator service (src/service/):
/// a repeated-query workload — T client threads each issuing isomorphic
/// variants of one conjunctive query — runs once against a service with the
/// canonical-reformulation cache enabled and once with it disabled. The
/// cache collapses every variant to one canonical form, so all but the first
/// query skip the bucket algorithm and the instance-driven workload
/// estimation (the expensive front half of mediation). Reports aggregate
/// wall-clock, per-query latency percentiles, cache statistics and the
/// cached-vs-uncached speedup as JSON (BENCH_service.json).
///
/// Usage: bench_service_throughput [output.json] [--threads=T] [--repeats=Q]
/// where T is the number of client threads and Q the queries each issues.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.h"
#include "bench_util.h"
#include "datalog/unify.h"
#include "exec/synthetic_domain.h"
#include "service/query_service.h"

namespace planorder::bench {
namespace {

int kClientThreads = 4;    // --threads
int kQueriesPerClient = 8; // --repeats
constexpr int kVariants = 8;
constexpr int kMaxPlans = 1;

/// Isomorphic copies of `query`: every variable renamed with a per-variant
/// suffix. All canonicalize to the same form; none is textually identical.
std::vector<datalog::ConjunctiveQuery> MakeVariants(
    const datalog::ConjunctiveQuery& query, int count) {
  std::vector<datalog::ConjunctiveQuery> variants;
  for (int v = 0; v < count; ++v) {
    datalog::Substitution renaming;
    auto collect = [&renaming, v](const datalog::Atom& atom) {
      for (const datalog::Term& term : atom.args) {
        if (term.is_variable()) {
          renaming[term.name()] = datalog::Term::Variable(
              term.name() + "_client" + std::to_string(v));
        }
      }
    };
    collect(query.head);
    for (const datalog::Atom& atom : query.body) collect(atom);
    datalog::ConjunctiveQuery variant(
        datalog::ApplySubstitution(query.head, renaming), {});
    for (const datalog::Atom& atom : query.body) {
      variant.body.push_back(datalog::ApplySubstitution(atom, renaming));
    }
    variants.push_back(std::move(variant));
  }
  return variants;
}

exec::Mediator::RunLimits Limits() {
  exec::Mediator::RunLimits limits;
  limits.max_plans = kMaxPlans;
  return limits;
}

/// Drives the repeated-query workload: kClientThreads threads, each issuing
/// kQueriesPerClient queries round-robin over the variants. Returns the
/// aggregate wall-clock in milliseconds and checks every query agrees on the
/// total answer count (all variants are the same query).
double DriveWorkload(service::QueryService& service,
                     const std::vector<datalog::ConjunctiveQuery>& variants,
                     size_t* answers) {
  std::vector<size_t> totals(size_t(kClientThreads), 0);
  const double start_ms = NowWallMs();
  std::vector<std::thread> clients;
  clients.reserve(size_t(kClientThreads));
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&service, &variants, &totals, t] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const auto& query =
            variants[size_t(t * kQueriesPerClient + q) % variants.size()];
        auto result = service.RunQuery(query, Limits());
        PLANORDER_CHECK(result.ok()) << result.status();
        if (q == 0) {
          totals[size_t(t)] = result->total_answers;
        } else {
          PLANORDER_CHECK(totals[size_t(t)] == result->total_answers)
              << "variant runs diverged";
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  const double elapsed_ms = NowWallMs() - start_ms;
  for (size_t total : totals) {
    PLANORDER_CHECK(total == totals[0]) << "client runs diverged";
  }
  *answers = totals[0];
  return elapsed_ms;
}

void AppendMetrics(std::ostringstream& json, const char* label,
                   const service::ServiceMetricsSnapshot& m) {
  json << "  \"" << label << "\": {\n"
       << "    \"sessions_completed\": " << m.sessions_completed << ",\n"
       << "    \"sessions_shed\": " << m.sessions_shed << ",\n"
       << "    \"queue_depth_peak\": " << m.queue_depth_peak << ",\n"
       << "    \"cache_hits\": " << m.cache.hits << ",\n"
       << "    \"cache_misses\": " << m.cache.misses << ",\n"
       << "    \"cache_evictions\": " << m.cache.evictions << ",\n"
       << "    \"cache_verifications\": " << m.cache_verifications << ",\n"
       << "    \"latency_p50_ms\": " << m.latency_p50_ms << ",\n"
       << "    \"latency_p95_ms\": " << m.latency_p95_ms << ",\n"
       << "    \"latency_p99_ms\": " << m.latency_p99_ms << ",\n"
       << "    \"latency_max_ms\": " << m.latency_max_ms << "\n"
       << "  }";
}

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(
      argc, argv, "BENCH_service.json", {kClientThreads}, kQueriesPerClient);
  kClientThreads = flags.threads.front();
  kQueriesPerClient = flags.repeats;
  const std::string& out_path = flags.output;

  // A source-rich domain: instance statistics scan every source in every
  // bucket (cost grows with bucket_size), while executing one plan touches
  // just one source per subgoal. That is the regime the reformulation cache
  // targets — many candidate sources, moderate per-plan execution.
  stats::WorkloadOptions wopts;
  wopts.query_length = 3;
  wopts.bucket_size = 64;
  wopts.overlap_rate = 0.4;
  wopts.regions_per_bucket = 16;
  wopts.seed = 11;
  auto domain = exec::BuildSyntheticDomain(wopts, /*num_answers=*/600);
  PLANORDER_CHECK(domain.ok()) << domain.status();
  const exec::SyntheticDomain& d = **domain;

  const std::vector<datalog::ConjunctiveQuery> variants =
      MakeVariants(d.query, kVariants);

  service::ServiceOptions base;
  base.max_active_sessions = kClientThreads;
  base.max_queued_admissions = kClientThreads * kQueriesPerClient;
  base.admission_timeout_ms = 60000.0;

  service::ServiceOptions uncached = base;
  uncached.cache_capacity = 0;
  service::QueryService cold_service(&d.catalog, &d.source_facts, uncached);
  size_t cold_answers = 0;
  const double cold_ms = DriveWorkload(cold_service, variants, &cold_answers);

  service::QueryService warm_service(&d.catalog, &d.source_facts, base);
  size_t warm_answers = 0;
  const double warm_ms = DriveWorkload(warm_service, variants, &warm_answers);

  PLANORDER_CHECK(cold_answers == warm_answers)
      << "cached run diverged from uncached run";
  const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;

  const service::ServiceMetricsSnapshot cold_metrics = cold_service.Metrics();
  const service::ServiceMetricsSnapshot warm_metrics = warm_service.Metrics();
  std::cout << "repeated-query workload: " << kClientThreads << " clients x "
            << kQueriesPerClient << " queries over " << kVariants
            << " isomorphic variants\n"
            << "  no cache:   " << cold_ms << " ms total, p95 "
            << cold_metrics.latency_p95_ms << " ms\n"
            << "  with cache: " << warm_ms << " ms total, p95 "
            << warm_metrics.latency_p95_ms << " ms, "
            << warm_metrics.cache.hits << " hits / "
            << warm_metrics.cache.misses << " misses\n"
            << "  aggregate throughput speedup: " << speedup << "x\n";

  std::ostringstream json;
  json << "{\n  \"bench\": \"service_throughput\",\n"
       << "  \"host\": " << HostMetadataJson(flags) << ",\n"
       << "  \"client_threads\": " << kClientThreads << ",\n"
       << "  \"queries_per_client\": " << kQueriesPerClient << ",\n"
       << "  \"isomorphic_variants\": " << kVariants << ",\n"
       << "  \"max_plans\": " << kMaxPlans << ",\n"
       << "  \"answers_per_query\": " << warm_answers << ",\n"
       << "  \"uncached_total_ms\": " << cold_ms << ",\n"
       << "  \"cached_total_ms\": " << warm_ms << ",\n"
       << "  \"speedup\": " << speedup << ",\n";
  AppendMetrics(json, "uncached_metrics", cold_metrics);
  json << ",\n";
  AppendMetrics(json, "cached_metrics", warm_metrics);
  json << "\n}\n";

  std::ofstream out(out_path);
  PLANORDER_CHECK(out.good()) << "cannot write " << out_path;
  out << json.str();
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace planorder::bench

int main(int argc, char** argv) { return planorder::bench::Main(argc, argv); }
