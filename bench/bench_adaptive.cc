/// Warm-restart and mid-stream re-rank benchmark of the adaptive layer
/// (DESIGN.md §12), written as BENCH_adaptive.json:
///
///   cold    — fresh service, empty plan store: time-to-first-emission pays
///             the bucket algorithm plus the full-instance statistics scan.
///   warm    — fresh service over the store the cold run persisted: the
///             reformulation comes back from disk, so the first emission
///             skips both. The run must replay the cold session byte for
///             byte (checked, and recorded as "byte_identical").
///   drifted — an AdaptiveOrderer whose observed statistics drift out of
///             band mid-stream: measures the cost of discard-and-reorder
///             (per-rebuild latency) against a blind run of the same stream.
///
/// Usage: bench_adaptive [output.json] [--repeats=R] (bench_flags.h).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "adaptive/adaptive_orderer.h"
#include "adaptive/observed_stats.h"
#include "adaptive/plan_store.h"
#include "base/logging.h"
#include "bench_flags.h"
#include "datalog/unify.h"
#include "exec/synthetic_domain.h"
#include "service/query_service.h"
#include "stats/workload.h"

namespace planorder::bench {
namespace {

constexpr int kMaxPlans = 24;

struct SessionRun {
  double open_ms = 0.0;        // OpenSession alone (reformulation path)
  double first_step_ms = 0.0;  // open + first emission: time-to-first
  double total_ms = 0.0;       // open + full drain
  std::vector<exec::MediatorStep> steps;
  std::set<std::string> answers;
};

std::set<std::string> AnswerSet(
    const std::vector<std::vector<datalog::Term>>& tuples) {
  std::set<std::string> rendered;
  for (const auto& tuple : tuples) {
    std::string row;
    for (const datalog::Term& term : tuple) row += term.ToString() + "|";
    rendered.insert(row);
  }
  return rendered;
}

SessionRun DrainOnce(service::QueryService& service,
                     const datalog::ConjunctiveQuery& query) {
  exec::Mediator::RunLimits limits;
  limits.max_plans = kMaxPlans;
  SessionRun run;
  const double start_ms = NowWallMs();
  auto session = service.OpenSession(query, limits);
  PLANORDER_CHECK(session.ok()) << session.status();
  run.open_ms = NowWallMs() - start_ms;
  bool first = true;
  while (true) {
    auto step = (*session)->NextStep();
    if (!step.ok()) break;
    if (first) {
      run.first_step_ms = NowWallMs() - start_ms;
      first = false;
    }
    run.steps.push_back(*step);
  }
  run.total_ms = NowWallMs() - start_ms;
  run.answers = AnswerSet((*session)->Answers());
  (void)(*session)->Finish();
  return run;
}

bool SameTrace(const SessionRun& a, const SessionRun& b) {
  if (a.steps.size() != b.steps.size()) return false;
  for (size_t i = 0; i < a.steps.size(); ++i) {
    if (a.steps[i].plan != b.steps[i].plan ||
        a.steps[i].new_answers != b.steps[i].new_answers ||
        a.steps[i].total_answers != b.steps[i].total_answers) {
      return false;
    }
  }
  return a.answers == b.answers;
}

double MinOf(const std::vector<double>& samples) {
  return *std::min_element(samples.begin(), samples.end());
}

double MeanOf(const std::vector<double>& samples) {
  double sum = 0.0;
  for (double s : samples) sum += s;
  return samples.empty() ? 0.0 : sum / double(samples.size());
}

/// The drifted leg: drain an AdaptiveOrderer over a generated workload,
/// feeding every emission's sources back at `factor` times their estimated
/// cardinality. factor=1 stays in band (no rebuilds); a large factor forces
/// mid-stream discard-and-reorder, whose cost is the per-emission delta.
struct DriftRun {
  int emissions = 0;
  int rebuilds = 0;
  double total_ms = 0.0;
};

DriftRun DrainAdaptive(const stats::Workload& workload, double factor) {
  std::vector<std::vector<std::string>> names(size_t(workload.num_buckets()));
  for (int b = 0; b < workload.num_buckets(); ++b) {
    for (int i = 0; i < workload.bucket_size(b); ++i) {
      names[size_t(b)].push_back("b" + std::to_string(b) + "_s" +
                                 std::to_string(i));
    }
  }
  adaptive::ObservedStats observed;
  adaptive::AdaptiveOptions options;
  options.inner = adaptive::InnerOrderer::kIDrips;
  options.measure = utility::MeasureKind::kCost2;
  options.drift.band = 2.0;
  options.drift.min_calls = 1;
  auto orderer =
      adaptive::AdaptiveOrderer::Create(&workload, names, &observed, options);
  PLANORDER_CHECK(orderer.ok()) << orderer.status();

  DriftRun run;
  const double start_ms = NowWallMs();
  while (true) {
    auto next = (*orderer)->Next();
    if (!next.ok()) break;
    ++run.emissions;
    for (size_t b = 0; b < next->plan.size(); ++b) {
      runtime::SourceObservation obs;
      obs.rows = int64_t(
          workload.source(int(b), next->plan[b]).cardinality * factor);
      obs.attempts = 1;
      obs.latency_micros = 1000;
      observed.RecordFetch(names[b][size_t(next->plan[b])], obs);
    }
    observed.FoldWindow();
  }
  run.total_ms = NowWallMs() - start_ms;
  run.rebuilds = (*orderer)->rebuilds();
  return run;
}

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv, "BENCH_adaptive.json",
                                           /*default_threads=*/{},
                                           /*default_repeats=*/5);
  const int repeats = flags.repeats > 0 ? flags.repeats : 5;

  stats::WorkloadOptions wopts;
  wopts.query_length = 3;
  wopts.bucket_size = 4;
  wopts.overlap_rate = 0.3;
  wopts.regions_per_bucket = 8;
  wopts.seed = 23;
  auto domain = exec::BuildSyntheticDomain(wopts, /*num_answers=*/400);
  PLANORDER_CHECK(domain.ok()) << domain.status();
  const exec::SyntheticDomain& d = **domain;

  const std::string store_path = "bench_adaptive.planstore";
  std::remove(store_path.c_str());

  std::vector<double> cold_first, cold_total, warm_first, warm_total;
  SessionRun cold_reference;
  bool byte_identical = true;
  int64_t entries_loaded = 0;
  for (int r = 0; r < repeats; ++r) {
    // Cold: every repeat starts from an absent store and pays the full
    // reformulation; the run persists it for the warm leg below.
    std::remove(store_path.c_str());
    adaptive::PlanStore store(store_path);
    service::ServiceOptions options;
    options.plan_store = &store;
    {
      service::QueryService cold(&d.catalog, &d.source_facts, options);
      SessionRun run = DrainOnce(cold, d.query);
      cold_first.push_back(run.first_step_ms);
      cold_total.push_back(run.total_ms);
      if (r == 0) cold_reference = std::move(run);
    }
    // Warm: a fresh service over the just-persisted store. Identical answers
    // in identical order are part of the contract being measured.
    service::QueryService warm(&d.catalog, &d.source_facts, options);
    entries_loaded = warm.Metrics().plan_store_entries_loaded;
    PLANORDER_CHECK(entries_loaded > 0) << "warm leg found an empty store";
    SessionRun run = DrainOnce(warm, d.query);
    warm_first.push_back(run.first_step_ms);
    warm_total.push_back(run.total_ms);
    byte_identical = byte_identical && SameTrace(run, cold_reference);
  }
  std::remove(store_path.c_str());
  PLANORDER_CHECK(byte_identical)
      << "warm restart diverged from the cold session";

  // Drifted leg over the estimate workload of the same shape.
  auto workload = stats::Workload::Generate(wopts);
  PLANORDER_CHECK(workload.ok()) << workload.status();
  std::vector<double> blind_ms, drift_ms;
  DriftRun drifted;
  for (int r = 0; r < repeats; ++r) {
    blind_ms.push_back(DrainAdaptive(*workload, 1.0).total_ms);
    drifted = DrainAdaptive(*workload, 12.0);
    drift_ms.push_back(drifted.total_ms);
  }
  PLANORDER_CHECK(drifted.rebuilds > 0)
      << "drifted leg never left the divergence band";

  const double speedup =
      MinOf(warm_first) > 0.0 ? MinOf(cold_first) / MinOf(warm_first) : 0.0;
  std::cout << "cold  time-to-first " << MinOf(cold_first) << " ms (min of "
            << repeats << ")\nwarm  time-to-first " << MinOf(warm_first)
            << " ms  (" << speedup << "x, byte-identical)\ndrift "
            << drifted.rebuilds << " rebuilds over " << drifted.emissions
            << " emissions, " << MinOf(drift_ms) << " ms vs "
            << MinOf(blind_ms) << " ms blind\n";

  std::ostringstream json;
  json << "{\n  \"bench\": \"adaptive\",\n"
       << "  \"host\": " << HostMetadataJson(flags) << ",\n"
       << "  \"max_plans\": " << kMaxPlans << ",\n"
       << "  \"repeats\": " << repeats << ",\n"
       << "  \"store_entries_loaded\": " << entries_loaded << ",\n"
       << "  \"cold\": {\"first_emission_ms_min\": " << MinOf(cold_first)
       << ", \"first_emission_ms_mean\": " << MeanOf(cold_first)
       << ", \"total_ms_min\": " << MinOf(cold_total) << "},\n"
       << "  \"warm\": {\"first_emission_ms_min\": " << MinOf(warm_first)
       << ", \"first_emission_ms_mean\": " << MeanOf(warm_first)
       << ", \"total_ms_min\": " << MinOf(warm_total)
       << ", \"byte_identical\": " << (byte_identical ? "true" : "false")
       << ", \"first_emission_speedup\": " << speedup << "},\n"
       << "  \"drifted\": {\"emissions\": " << drifted.emissions
       << ", \"rebuilds\": " << drifted.rebuilds
       << ", \"total_ms_min\": " << MinOf(drift_ms)
       << ", \"blind_total_ms_min\": " << MinOf(blind_ms) << "}\n}\n";

  std::ofstream out(flags.output);
  PLANORDER_CHECK(out.good()) << "cannot write " << flags.output;
  out << json.str();
  std::cout << "wrote " << flags.output << "\n";
  return 0;
}

}  // namespace
}  // namespace planorder::bench

int main(int argc, char** argv) { return planorder::bench::Main(argc, argv); }
