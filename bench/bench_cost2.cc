/// Section 6 supplementary row: cost measure (2) with varying transmission
/// costs and NO failure term. The paper reports results "very similar" to
/// the failure variant (Figures 6.d-f): Streamer clearly fastest, iDrips in
/// between, PI paying the full plan-space evaluation.

#include "bench_util.h"

namespace planorder::bench {
namespace {

void RegisterAll() {
  stats::WorkloadOptions base;
  base.query_length = 3;
  base.overlap_rate = 0.3;
  base.regions_per_bucket = 16;
  base.seed = 2006;
  RegisterGrid("cost2", utility::MeasureKind::kCost2,
               {Algo::kStreamer, Algo::kIDrips, Algo::kPi},
               /*sizes=*/{4, 8, 12, 16, 20},
               /*ks=*/{1, 10, 100}, base);
}

}  // namespace
}  // namespace planorder::bench

int main(int argc, char** argv) {
  planorder::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
