/// Section 6 text: "We also experimented with varying query length from 1
/// to 7, and observed the same trends, but with increasing performance gaps
/// as the query length increases."
///
/// Series: time to the first 10 plans, bucket size 4, query length swept
/// 1..7, for Streamer / iDrips / PI on plan coverage and on cost with
/// failure (no caching). PI's work grows with the full 4^m product while
/// the abstraction algorithms touch a sliver of it.

#include "bench_util.h"

namespace planorder::bench {
namespace {

void RegisterLengths(const std::string& label,
                     utility::MeasureKind measure) {
  for (int m = 1; m <= 7; ++m) {
    for (Algo algo : {Algo::kStreamer, Algo::kIDrips, Algo::kPi}) {
      stats::WorkloadOptions options;
      options.query_length = m;
      options.bucket_size = 4;
      options.regions_per_bucket = 8;
      options.overlap_rate = 0.3;
      options.seed = 2010;
      std::string name =
          label + "/" + AlgoName(algo) + "/m:" + std::to_string(m) + "/k:10";
      benchmark::RegisterBenchmark(
          name.c_str(),
          [algo, measure, options](benchmark::State& state) {
            const stats::Workload& workload = CachedWorkload(options);
            EpisodeResult last;
            for (auto _ : state) {
              last = RunEpisode(algo, measure, workload, 10);
            }
            state.counters["evals"] = double(last.evaluations);
          })
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.02);
    }
  }
}

void RegisterAll() {
  RegisterLengths("query-length.coverage", utility::MeasureKind::kCoverage);
  RegisterLengths("query-length.failure-nocache",
                  utility::MeasureKind::kFailureNoCache);
}

}  // namespace
}  // namespace planorder::bench

int main(int argc, char** argv) {
  planorder::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
