/// Ablation over the abstraction heuristic (Section 3 "Source Similarity" /
/// Section 6 "a simple abstraction heuristic that groups sources based on
/// their similarity wrt the number of expected output tuples"). The paper
/// stresses that the algorithms only win "when the domain is amenable to
/// abstraction and an effective abstraction heuristic is used"; these series
/// quantify that by running Streamer and iDrips under
///   - by-cardinality grouping (the paper's heuristic),
///   - by-mask-similarity grouping (groups sources with similar coverage),
///   - random grouping (the floor),
/// on plan coverage, reporting time and plan evaluations to the first 10
/// plans.

#include "bench_util.h"

namespace planorder::bench {
namespace {

const char* HeuristicName(core::AbstractionHeuristic h) {
  switch (h) {
    case core::AbstractionHeuristic::kByCardinality:
      return "by-cardinality";
    case core::AbstractionHeuristic::kByMaskSimilarity:
      return "by-mask-similarity";
    case core::AbstractionHeuristic::kRandom:
      return "random";
  }
  return "?";
}

void RegisterAll() {
  for (Algo algo : {Algo::kStreamer, Algo::kIDrips}) {
    for (core::AbstractionHeuristic h :
         {core::AbstractionHeuristic::kByCardinality,
          core::AbstractionHeuristic::kByMaskSimilarity,
          core::AbstractionHeuristic::kRandom}) {
      for (int size : {8, 16}) {
        stats::WorkloadOptions options;
        options.query_length = 3;
        options.bucket_size = size;
        options.regions_per_bucket = 16;
        options.overlap_rate = 0.3;
        options.seed = 2013;
        std::string name = std::string("abstraction-ablation/") +
                           AlgoName(algo) + "/" + HeuristicName(h) +
                           "/size:" + std::to_string(size) + "/k:10";
        benchmark::RegisterBenchmark(
            name.c_str(),
            [algo, h, options](benchmark::State& state) {
              const stats::Workload& workload = CachedWorkload(options);
              EpisodeResult last;
              for (auto _ : state) {
                last = RunEpisode(algo, utility::MeasureKind::kCoverage,
                                  workload, 10, h);
              }
              state.counters["evals"] = double(last.evaluations);
            })
            ->Unit(benchmark::kMillisecond)
            ->MinTime(0.02);
      }
    }
  }
}

}  // namespace
}  // namespace planorder::bench

int main(int argc, char** argv) {
  planorder::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
