#include "scanner.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace planorder::detlint {
namespace {

namespace fs = std::filesystem;

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

/// Splits `text` into lines (no trailing '\n' kept). A final line without a
/// newline still counts.
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  lines.push_back(std::move(current));
  return lines;
}

/// The comment/string stripper. Produces two same-shaped views of the file:
/// `code` (comments and literal contents blanked to spaces) and `comments`
/// (everything but comment text blanked). Newlines survive in both, so line
/// numbers line up with the original.
struct StrippedFile {
  std::string code;
  std::string comments;
};

StrippedFile StripCommentsAndStrings(const std::string& contents) {
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  StrippedFile out;
  out.code.reserve(contents.size());
  out.comments.reserve(contents.size());
  State state = State::kCode;
  std::string raw_delim;  // the )delim" closer of an active raw string
  size_t i = 0;
  const size_t n = contents.size();
  auto emit = [&out](char code_c, char comment_c) {
    out.code += code_c;
    out.comments += comment_c;
  };
  while (i < n) {
    const char c = contents[i];
    const char next = i + 1 < n ? contents[i + 1] : '\0';
    if (c == '\n') {
      emit('\n', '\n');
      if (state == State::kLine) state = State::kCode;
      ++i;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          emit(' ', ' ');
          emit(' ', ' ');
          i += 2;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          emit(' ', ' ');
          emit(' ', ' ');
          i += 2;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   contents[i - 1])) &&
                               contents[i - 1] != '_'))) {
          // Raw string literal: R"delim( ... )delim"
          size_t j = i + 2;
          std::string delim;
          while (j < n && contents[j] != '(' && contents[j] != '\n') {
            delim += contents[j];
            ++j;
          }
          raw_delim = ")" + delim + "\"";
          state = State::kRaw;
          for (size_t k = i; k <= j && k < n; ++k) emit(' ', ' ');
          i = j + 1;
        } else if (c == '"') {
          state = State::kString;
          emit(' ', ' ');
          ++i;
        } else if (c == '\'' && !(i > 0 &&
                                  (std::isdigit(static_cast<unsigned char>(
                                       contents[i - 1])) ||
                                   contents[i - 1] == '\''))) {
          // Skip digit separators like 1'000'000.
          state = State::kChar;
          emit(' ', ' ');
          ++i;
        } else {
          emit(c, ' ');
          ++i;
        }
        break;
      case State::kLine:
        emit(' ', c);
        ++i;
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          state = State::kCode;
          emit(' ', ' ');
          emit(' ', ' ');
          i += 2;
        } else {
          emit(' ', c);
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < n) {
          emit(' ', ' ');
          emit(' ', ' ');
          i += 2;
        } else {
          if (c == '"') state = State::kCode;
          emit(' ', ' ');
          ++i;
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < n) {
          emit(' ', ' ');
          emit(' ', ' ');
          i += 2;
        } else {
          if (c == '\'') state = State::kCode;
          emit(' ', ' ');
          ++i;
        }
        break;
      case State::kRaw:
        if (contents.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = 0; k < raw_delim.size(); ++k) emit(' ', ' ');
          i += raw_delim.size();
          state = State::kCode;
        } else {
          emit(c == '\n' ? '\n' : ' ', ' ');
          ++i;
        }
        break;
    }
  }
  return out;
}

struct Pattern {
  std::regex re;
  std::string message;
};

/// D1 — ambient nondeterminism. Word-ish boundaries are enforced in the
/// patterns so `sleep_time(` or `bitset<` style identifiers never match.
const std::vector<Pattern>& D1Patterns() {
  static const std::vector<Pattern>* patterns = new std::vector<Pattern>{
      {std::regex(R"(std\s*::\s*rand\b)"),
       "std::rand — use base/rng.h (seeded, splittable)"},
      {std::regex(R"((^|[^\w.>:])rand\s*\()"),
       "rand() — use base/rng.h (seeded, splittable)"},
      {std::regex(R"(\bsrand\s*\()"),
       "srand — seeding ambient state; use base/rng.h"},
      {std::regex(R"(\brandom_device\b)"),
       "std::random_device — ambient entropy; use base/rng.h"},
      {std::regex(R"(\bsystem_clock\b)"),
       "system_clock — wall time; inject runtime::Clock"},
      {std::regex(R"(\bsteady_clock\b)"),
       "steady_clock — wall time; inject runtime::Clock"},
      {std::regex(R"(\bhigh_resolution_clock\b)"),
       "high_resolution_clock — wall time; inject runtime::Clock"},
      {std::regex(R"(\bgetenv\b)"),
       "getenv — environment read; thread options through flags"},
      {std::regex(R"(std\s*::\s*time\s*\()"),
       "std::time — wall time; inject runtime::Clock"},
      {std::regex(R"((^|[^\w.>:])time\s*\()"),
       "time() — wall time; inject runtime::Clock"},
  };
  return *patterns;
}

/// D2 — unordered containers where hash order could reach an output.
const std::regex& D2Pattern() {
  static const std::regex* re =
      new std::regex(R"(\bunordered_(map|set|multimap|multiset)\b)");
  return *re;
}

/// D3 — floating-point accumulation in the weight fold paths.
const std::vector<Pattern>& D3Patterns() {
  static const std::vector<Pattern>* patterns = new std::vector<Pattern>{
      {std::regex(R"(\bfloat\b)"),
       "float narrows the dyadic-rational weight invariant; use double"},
      {std::regex(R"(std\s*::\s*(accumulate|reduce|inner_product|fma)\s*[(<])"),
       "fold primitive in a weight path; fold through AggregationCombine"},
  };
  return *patterns;
}

/// A floating literal with a real digit-and-dot or exponent shape. The
/// leading [^\w.] guard keeps hex literals (0x9e37...) from matching on
/// their embedded 'e'.
const std::regex& FloatLiteralPattern() {
  static const std::regex* re = new std::regex(
      R"((^|[^\w.])((\d+\.\d*|\.\d+)([eE][-+]?\d+)?|\d+[eE][-+]?\d+)[fF]?\b)");
  return *re;
}

const std::regex& CompoundAssignPattern() {
  // += -= *= /= as their own tokens (not ==, <=, >=, !=, <<=, etc.).
  static const std::regex* re =
      new std::regex(R"((^|[^-+*/<>=!&|^])[-+*/]=($|[^=]))");
  return *re;
}

/// D4 — associative containers keyed by pointer value. Matches a map/set
/// whose first template argument contains '*' before any comma or nested
/// angle bracket.
const std::regex& D4Pattern() {
  static const std::regex* re = new std::regex(
      R"(\b(unordered_)?(multi)?(map|set)\s*<\s*(const\s+)?[^,<>]*\*)");
  return *re;
}

bool IsPreprocessorLine(const std::string& code_line) {
  const std::string trimmed = Trim(code_line);
  return !trimmed.empty() && trimmed[0] == '#';
}

std::string ReadFileOrEmpty(const fs::path& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (ok != nullptr) *ok = false;
    return "";
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (ok != nullptr) *ok = true;
  return buffer.str();
}

std::vector<CheckId> ParseCheckList(const std::string& text) {
  std::vector<CheckId> checks;
  std::string token;
  std::istringstream in(text);
  while (std::getline(in, token, ',')) {
    CheckId check;
    if (ParseCheckId(Trim(token), &check)) checks.push_back(check);
  }
  return checks;
}

}  // namespace

std::string CheckName(CheckId check) {
  switch (check) {
    case CheckId::kD1:
      return "D1";
    case CheckId::kD2:
      return "D2";
    case CheckId::kD3:
      return "D3";
    case CheckId::kD4:
      return "D4";
  }
  return "D?";
}

std::string CheckTitle(CheckId check) {
  switch (check) {
    case CheckId::kD1:
      return "banned nondeterminism source (wall clock / ambient randomness / "
             "environment) outside src/runtime/clock.* and src/base/rng.h";
    case CheckId::kD2:
      return "unordered container in an ordering/emission/answer path "
             "(src/core, src/anyk, src/adaptive, src/exec, src/sim, "
             "src/cluster, src/stats coverage/bitmask universes)";
    case CheckId::kD3:
      return "floating-point accumulation in a weight fold path (src/anyk); "
             "breaks the dyadic-rational bit-exactness invariant";
    case CheckId::kD4:
      return "associative container keyed by pointer value; iteration order "
             "is the allocator's";
  }
  return "unknown check";
}

bool ParseCheckId(const std::string& text, CheckId* out) {
  if (text.size() != 2 || (text[0] != 'D' && text[0] != 'd')) return false;
  switch (text[1]) {
    case '1':
      *out = CheckId::kD1;
      return true;
    case '2':
      *out = CheckId::kD2;
      return true;
    case '3':
      *out = CheckId::kD3;
      return true;
    case '4':
      *out = CheckId::kD4;
      return true;
    default:
      return false;
  }
}

bool CheckAppliesTo(CheckId check, const std::string& relpath) {
  switch (check) {
    case CheckId::kD1:
      // Everywhere except the shims that exist precisely to own these calls.
      return relpath != "src/runtime/clock.h" &&
             relpath != "src/runtime/clock.cc" && relpath != "src/base/rng.h";
    case CheckId::kD2:
      // The coverage/bitmask universes feed utility intervals that decide
      // emission order, so they are ordering paths like src/core proper.
      // src/adaptive folds observations into blended statistics that re-rank
      // a live plan stream: hash-order iteration there would surface
      // directly as emission-order nondeterminism.
      return StartsWith(relpath, "src/core/") ||
             StartsWith(relpath, "src/anyk/") ||
             StartsWith(relpath, "src/adaptive/") ||
             StartsWith(relpath, "src/exec/") ||
             StartsWith(relpath, "src/sim/") ||
             StartsWith(relpath, "src/cluster/") ||
             StartsWith(relpath, "src/stats/coverage_universe") ||
             StartsWith(relpath, "src/stats/bitmask_universe");
    case CheckId::kD3:
      return StartsWith(relpath, "src/anyk/");
    case CheckId::kD4:
      return StartsWith(relpath, "src/");
  }
  return false;
}

bool ScanVisits(const std::string& relpath) {
  if (!EndsWith(relpath, ".h") && !EndsWith(relpath, ".cc")) return false;
  if (StartsWith(relpath, "tools/detlint/")) return false;  // linter + corpus
  return StartsWith(relpath, "src/") || StartsWith(relpath, "bench/") ||
         StartsWith(relpath, "tests/") || StartsWith(relpath, "examples/") ||
         StartsWith(relpath, "tools/");
}

Directives ParseDirectives(const std::string& contents) {
  static const std::regex kScanAs(R"(detlint-scan-as:\s*(\S+))");
  static const std::regex kExpect(
      R"(detlint-expect(-suppressed)?:\s*([Dd][1-4](\s*,\s*[Dd][1-4])*))");
  static const std::regex kOrderInsensitive(
      R"(detlint:\s*order-insensitive\(([^)]*)\))");
  static const std::regex kAllow(
      R"(detlint:\s*allow\(\s*([Dd][1-4])\s*,\s*([^)]*)\))");

  Directives out;
  const StrippedFile stripped = StripCommentsAndStrings(contents);
  const std::vector<std::string> comment_lines = SplitLines(stripped.comments);
  for (size_t idx = 0; idx < comment_lines.size(); ++idx) {
    const std::string& text = comment_lines[idx];
    const int line = static_cast<int>(idx) + 1;
    std::smatch m;
    if (out.scan_as.empty() && std::regex_search(text, m, kScanAs)) {
      out.scan_as = m[1].str();
    }
    if (std::regex_search(text, m, kExpect)) {
      const bool suppressed = m[1].matched;
      for (CheckId check : ParseCheckList(m[2].str())) {
        out.expectations.push_back({line, check, suppressed});
      }
    }
    if (std::regex_search(text, m, kOrderInsensitive)) {
      Directives::Suppression s;
      s.line = line;
      s.any_check = false;
      s.check = CheckId::kD2;
      s.reason = Trim(m[1].str());
      out.suppressions.push_back(std::move(s));
    }
    if (std::regex_search(text, m, kAllow)) {
      Directives::Suppression s;
      s.line = line;
      s.any_check = false;
      CheckId check;
      if (ParseCheckId(m[1].str(), &check)) {
        s.check = check;
        s.reason = Trim(m[2].str());
        out.suppressions.push_back(std::move(s));
      }
    }
  }
  return out;
}

bool IsSuppressed(const Directives& directives, CheckId check, int line) {
  for (const Directives::Suppression& s : directives.suppressions) {
    if (s.reason.empty()) continue;  // a reason is mandatory, not decoration
    if (s.line != line && s.line != line - 1) continue;
    if (s.any_check || s.check == check) return true;
  }
  return false;
}

std::vector<Finding> ScanFile(const std::string& relpath,
                              const std::string& contents,
                              const ScanOptions& options) {
  const Directives directives = ParseDirectives(contents);
  const StrippedFile stripped = StripCommentsAndStrings(contents);
  const std::vector<std::string> code_lines = SplitLines(stripped.code);

  // At most one finding per (check, line): multiple pattern hits on one line
  // are one problem, and it keeps the corpus expectations exact.
  std::map<std::pair<int, int>, Finding> by_site;
  auto record = [&](CheckId check, int line, const std::string& message) {
    auto key = std::make_pair(static_cast<int>(check), line);
    if (by_site.count(key) > 0) return;
    Finding f;
    f.file = relpath;
    f.line = line;
    f.check = check;
    f.message = message;
    f.suppressed = IsSuppressed(directives, check, line);
    by_site.emplace(std::move(key), std::move(f));
  };

  for (size_t idx = 0; idx < code_lines.size(); ++idx) {
    const std::string& code = code_lines[idx];
    const int line = static_cast<int>(idx) + 1;
    if (code.find_first_not_of(" \t") == std::string::npos) continue;
    const bool preprocessor = IsPreprocessorLine(code);

    if (CheckAppliesTo(CheckId::kD1, relpath)) {
      for (const Pattern& p : D1Patterns()) {
        if (std::regex_search(code, p.re)) {
          record(CheckId::kD1, line, p.message);
          break;
        }
      }
    }
    if (!preprocessor && CheckAppliesTo(CheckId::kD2, relpath) &&
        std::regex_search(code, D2Pattern())) {
      record(CheckId::kD2, line,
             "unordered container in an ordering/emission/answer path; use an "
             "ordered container or annotate order-insensitive(reason)");
    }
    if (!preprocessor && CheckAppliesTo(CheckId::kD3, relpath)) {
      for (const Pattern& p : D3Patterns()) {
        if (std::regex_search(code, p.re)) {
          record(CheckId::kD3, line, p.message);
          break;
        }
      }
      if (std::regex_search(code, CompoundAssignPattern()) &&
          std::regex_search(code, FloatLiteralPattern())) {
        record(CheckId::kD3, line,
               "floating-point compound accumulation in a weight path; fold "
               "through AggregationCombine (anyk/weights.h)");
      }
    }
    if (!preprocessor && CheckAppliesTo(CheckId::kD4, relpath) &&
        std::regex_search(code, D4Pattern())) {
      record(CheckId::kD4, line,
             "associative container keyed by pointer value; key by a stable "
             "id instead");
    }
  }

  // A suppression without a reason is itself a finding (under the check it
  // names), never silenceable by another directive.
  std::vector<Finding> findings;
  for (auto& [unused, f] : by_site) {
    if (!f.suppressed || options.include_suppressed) {
      findings.push_back(std::move(f));
    }
  }
  for (const Directives::Suppression& s : directives.suppressions) {
    if (!s.reason.empty()) continue;
    Finding f;
    f.file = relpath;
    f.line = s.line;
    f.check = s.check;
    f.message = "suppression directive without a reason";
    findings.push_back(std::move(f));
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return static_cast<int>(a.check) < static_cast<int>(b.check);
            });
  return findings;
}

std::vector<Finding> ScanTree(const std::string& root,
                              const ScanOptions& options) {
  std::vector<std::string> relpaths;
  for (const char* top : {"src", "bench", "tests", "examples", "tools"}) {
    const fs::path dir = fs::path(root) / top;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file(ec)) continue;
      const std::string rel =
          fs::relative(it->path(), root, ec).generic_string();
      if (!ec && ScanVisits(rel)) relpaths.push_back(rel);
    }
  }
  std::sort(relpaths.begin(), relpaths.end());

  std::vector<Finding> findings;
  for (const std::string& rel : relpaths) {
    bool ok = false;
    const std::string contents = ReadFileOrEmpty(fs::path(root) / rel, &ok);
    if (!ok) continue;
    std::vector<Finding> file_findings = ScanFile(rel, contents, options);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

std::vector<std::string> SelfTest(
    const std::string& corpus_dir,
    const std::vector<Finding>* external_findings) {
  std::vector<std::string> errors;
  std::vector<fs::path> files;
  std::error_code ec;
  for (fs::directory_iterator it(corpus_dir, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    const std::string name = it->path().filename().string();
    if (EndsWith(name, ".cc") || EndsWith(name, ".h")) {
      files.push_back(it->path());
    }
  }
  if (files.empty()) {
    errors.push_back("no corpus files found under " + corpus_dir);
    return errors;
  }
  std::sort(files.begin(), files.end());

  // External findings (the LibTooling mode) arrive with arbitrary path
  // prefixes; compare by basename.
  auto basename = [](const std::string& path) {
    return fs::path(path).filename().string();
  };
  std::set<std::tuple<std::string, int, int>> external;
  if (external_findings != nullptr) {
    for (const Finding& f : *external_findings) {
      external.emplace(basename(f.file), f.line, static_cast<int>(f.check));
    }
  }

  for (const fs::path& path : files) {
    const std::string name = path.filename().string();
    bool ok = false;
    const std::string contents = ReadFileOrEmpty(path, &ok);
    if (!ok) {
      errors.push_back(name + ": unreadable");
      continue;
    }
    const Directives directives = ParseDirectives(contents);
    if (directives.scan_as.empty()) {
      errors.push_back(name + ": corpus file lacks a detlint-scan-as header");
      continue;
    }
    if (directives.expectations.empty()) {
      errors.push_back(name + ": corpus file has no detlint-expect lines");
      continue;
    }

    std::set<std::pair<int, int>> active;      // (line, check) that fired
    std::set<std::pair<int, int>> suppressed;  // matched but silenced
    if (external_findings != nullptr) {
      // The external mode reports only active findings; suppressed sites are
      // validated by their *absence* from the external list.
      for (const auto& [file, line, check] : external) {
        if (file == name) active.emplace(line, check);
      }
    } else {
      ScanOptions options;
      options.include_suppressed = true;
      for (const Finding& f :
           ScanFile(directives.scan_as, contents, options)) {
        (f.suppressed ? suppressed : active)
            .emplace(f.line, static_cast<int>(f.check));
      }
    }

    std::set<std::pair<int, int>> expected_active;
    std::set<std::pair<int, int>> expected_suppressed;
    for (const Directives::Expectation& e : directives.expectations) {
      const auto site = std::make_pair(e.line, static_cast<int>(e.check));
      if (e.suppressed) {
        expected_suppressed.insert(site);
        if (active.count(site) > 0) {
          errors.push_back(name + ":" + std::to_string(e.line) + ": " +
                           CheckName(e.check) +
                           " fired despite a suppression directive");
        } else if (external_findings == nullptr &&
                   suppressed.count(site) == 0) {
          errors.push_back(name + ":" + std::to_string(e.line) + ": " +
                           CheckName(e.check) +
                           " expected-suppressed but the pattern never "
                           "matched at all");
        }
      } else {
        expected_active.insert(site);
        if (active.count(site) == 0) {
          errors.push_back(name + ":" + std::to_string(e.line) + ": " +
                           CheckName(e.check) + " expected but did not fire");
        }
      }
    }
    for (const auto& site : active) {
      // A leaked suppressed site is already reported above.
      if (expected_suppressed.count(site) > 0) continue;
      if (expected_active.count(site) == 0) {
        CheckId check = static_cast<CheckId>(site.second);
        errors.push_back(name + ":" + std::to_string(site.first) + ": " +
                         CheckName(check) +
                         " fired without a detlint-expect annotation");
      }
    }
  }
  return errors;
}

std::string FormatFinding(const Finding& finding) {
  std::string out = finding.file + ":" + std::to_string(finding.line) + ": " +
                    CheckName(finding.check) + ": " + finding.message;
  if (finding.suppressed) out += " [suppressed]";
  return out;
}

}  // namespace planorder::detlint
