// detlint CLI — portable mode.
//
//   detlint scan --root=DIR [--include-suppressed]
//       Full-tree scan. Exit 0 clean, 1 findings, 2 usage/IO error.
//   detlint self-test --corpus=DIR [--findings=FILE]
//       Golden-corpus check: every seeded violation fires, every suppression
//       silences. With --findings, validates an external findings list (the
//       LibTooling mode's output in the shared "file:line: Dx: message"
//       format) against the same corpus instead of this scanner.
//   detlint list-checks
//
// The same corpus and exit-code contract apply to the clang LibTooling
// variant (detlint_clang.cc), so CI can assert both modes agree.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "scanner.h"

namespace detlint = planorder::detlint;

namespace {

int Usage() {
  std::cerr << "usage: detlint scan --root=DIR [--include-suppressed]\n"
            << "       detlint self-test --corpus=DIR [--findings=FILE]\n"
            << "       detlint list-checks\n";
  return 2;
}

bool FlagValue(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.compare(0, prefix.size(), prefix) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

/// Parses the interchange format back into findings; returns false on a
/// malformed line. Blank lines and lines starting with '#' are skipped so a
/// findings file can carry provenance comments.
bool ParseFindingsFile(const std::string& path,
                       std::vector<detlint::Finding>* out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "detlint: cannot read findings file " << path << "\n";
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // file:line: Dx: message   (file may itself contain ':' on exotic
    // platforms; parse from the check id outwards).
    detlint::Finding f;
    size_t pos = std::string::npos;
    for (int check = 1; check <= 4; ++check) {
      const std::string tag = ": D" + std::to_string(check) + ": ";
      pos = line.find(tag);
      if (pos != std::string::npos) {
        f.check = static_cast<detlint::CheckId>(check);
        f.message = line.substr(pos + tag.size());
        break;
      }
    }
    if (pos == std::string::npos) {
      std::cerr << "detlint: malformed findings line: " << line << "\n";
      return false;
    }
    const std::string location = line.substr(0, pos);
    const size_t colon = location.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "detlint: malformed findings line: " << line << "\n";
      return false;
    }
    f.file = location.substr(0, colon);
    try {
      f.line = std::stoi(location.substr(colon + 1));
    } catch (...) {
      std::cerr << "detlint: malformed findings line: " << line << "\n";
      return false;
    }
    out->push_back(std::move(f));
  }
  return true;
}

int RunScan(const std::vector<std::string>& args) {
  std::string root = ".";
  detlint::ScanOptions options;
  for (const std::string& arg : args) {
    std::string value;
    if (FlagValue(arg, "root", &value)) {
      root = value;
    } else if (arg == "--include-suppressed") {
      options.include_suppressed = true;
    } else {
      return Usage();
    }
  }
  const std::vector<detlint::Finding> findings =
      detlint::ScanTree(root, options);
  int active = 0;
  for (const detlint::Finding& f : findings) {
    std::cout << detlint::FormatFinding(f) << "\n";
    if (!f.suppressed) ++active;
  }
  if (active > 0) {
    std::cerr << "detlint: " << active << " finding(s)\n";
    return 1;
  }
  std::cerr << "detlint: clean\n";
  return 0;
}

int RunSelfTest(const std::vector<std::string>& args) {
  std::string corpus;
  std::string findings_file;
  for (const std::string& arg : args) {
    std::string value;
    if (FlagValue(arg, "corpus", &value)) {
      corpus = value;
    } else if (FlagValue(arg, "findings", &value)) {
      findings_file = value;
    } else {
      return Usage();
    }
  }
  if (corpus.empty()) return Usage();

  std::vector<detlint::Finding> external;
  const std::vector<detlint::Finding>* external_ptr = nullptr;
  if (!findings_file.empty()) {
    if (!ParseFindingsFile(findings_file, &external)) return 2;
    external_ptr = &external;
  }
  const std::vector<std::string> errors =
      detlint::SelfTest(corpus, external_ptr);
  for (const std::string& error : errors) {
    std::cerr << "detlint self-test: " << error << "\n";
  }
  if (!errors.empty()) return 1;
  std::cerr << "detlint self-test: pass ("
            << (external_ptr != nullptr ? "external findings" : "portable mode")
            << ")\n";
  return 0;
}

int RunListChecks() {
  using detlint::CheckId;
  for (CheckId check :
       {CheckId::kD1, CheckId::kD2, CheckId::kD3, CheckId::kD4}) {
    std::cout << detlint::CheckName(check) << "  "
              << detlint::CheckTitle(check) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return Usage();
  const std::string command = args.front();
  args.erase(args.begin());
  if (command == "scan") return RunScan(args);
  if (command == "self-test") return RunSelfTest(args);
  if (command == "list-checks" && args.empty()) return RunListChecks();
  return Usage();
}
