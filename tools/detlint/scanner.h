#ifndef PLANORDER_TOOLS_DETLINT_SCANNER_H_
#define PLANORDER_TOOLS_DETLINT_SCANNER_H_

#include <string>
#include <vector>

/// detlint — the project's determinism & concurrency static-analysis pass.
///
/// The system's headline guarantee (DESIGN.md §6, §8) is that emissions,
/// utilities, eval counts and ranked answers are byte-identical at any
/// thread count. The sim sweeps enforce that dynamically, for the schedules
/// a seed happens to exercise; detlint enforces the *sources* of
/// nondeterminism statically, for every line of the tree on every build:
///
///   D1  banned nondeterminism sources (wall clocks, ambient randomness,
///       environment reads) outside the whitelisted shims
///       (src/runtime/clock.*, src/base/rng.h)
///   D2  unordered containers in the ordering/emission/answer paths
///       (src/core, src/anyk, src/exec, src/sim, src/cluster), where
///       hash-iteration order could reach an output sequence
///   D3  floating-point accumulation in the weight fold paths (src/anyk),
///       which must preserve the dyadic-rational bit-exactness invariant of
///       anyk/weights.h by folding through AggregationCombine
///   D4  associative containers keyed by pointer values, whose order is
///       the allocator's, not the program's
///
/// Every check supports the same suppression syntax in both analysis modes
/// (this portable token scanner, and the clang LibTooling variant built when
/// a Clang development package is available):
///
///   // detlint: order-insensitive(reason)   — D2 only: the container's
///        iteration order provably cannot reach any output
///   // detlint: allow(D1, reason)           — any check, with a reason
///
/// A directive suppresses findings on its own line and the line directly
/// below it (so a directive comment line annotates the declaration that
/// follows). The golden corpus under tools/detlint/testdata/ seeds one or
/// more violations per check, annotated with
///
///   // detlint-expect: D1[, D2...]          — this line must fire
///   // detlint-expect-suppressed: D2        — would fire, must be silenced
///
/// and the self-test (run by both modes in CI) asserts exact agreement.
namespace planorder::detlint {

enum class CheckId { kD1 = 1, kD2, kD3, kD4 };

/// Stable check identifier: "D1" ... "D4".
std::string CheckName(CheckId check);

/// One-line description of what the check bans and why.
std::string CheckTitle(CheckId check);

/// Parses "D1".."D4" (case-insensitive); returns false on anything else.
bool ParseCheckId(const std::string& text, CheckId* out);

struct Finding {
  std::string file;  // repo-relative, '/'-separated
  int line = 1;      // 1-based
  CheckId check = CheckId::kD1;
  std::string message;
  /// True when an allow/order-insensitive directive covers the line. Scan
  /// reports only unsuppressed findings; the self-test looks at both.
  bool suppressed = false;
};

/// Scope/whitelist routing: whether `check` applies to the repo-relative
/// path at all (e.g. D1 everywhere except the clock/rng shims; D2 only in
/// the ordering/emission/answer directories).
bool CheckAppliesTo(CheckId check, const std::string& relpath);

/// True for paths the full-tree scan visits (.h/.cc under src/, bench/,
/// tests/, examples/ and tools/ minus detlint's own sources and corpus).
bool ScanVisits(const std::string& relpath);

/// Per-file comment directives, pre-parsed so both analysis modes share one
/// suppression semantics.
struct Directives {
  struct Suppression {
    int line = 0;        // the directive's own line
    bool any_check = false;  // order-insensitive(...) → D2
    CheckId check = CheckId::kD2;
    std::string reason;
  };
  struct Expectation {
    int line = 0;
    CheckId check = CheckId::kD1;
    bool suppressed = false;  // detlint-expect-suppressed
  };
  std::vector<Suppression> suppressions;
  std::vector<Expectation> expectations;
  /// Optional `// detlint-scan-as: <relpath>` header used by corpus files,
  /// which live outside the scanned trees but must exercise path scoping.
  std::string scan_as;
};

/// Extracts directives from comments. Also the place suppression *syntax*
/// is validated: a malformed directive (missing reason) is itself reported
/// by the scanner.
Directives ParseDirectives(const std::string& contents);

/// True when a finding of `check` at `line` is covered by a suppression on
/// the same line or the line directly above.
bool IsSuppressed(const Directives& directives, CheckId check, int line);

struct ScanOptions {
  /// Report suppressed findings too (self-test mode).
  bool include_suppressed = false;
};

/// Runs every check that applies to `relpath` over `contents`. Comments and
/// string/char literals are stripped before matching, so a banned token in a
/// message string never fires.
std::vector<Finding> ScanFile(const std::string& relpath,
                              const std::string& contents,
                              const ScanOptions& options = {});

/// Walks `root` for scannable files and runs ScanFile on each. Paths in the
/// returned findings are repo-relative. Files are visited in sorted path
/// order, so output is deterministic (of course).
std::vector<Finding> ScanTree(const std::string& root,
                              const ScanOptions& options = {});

/// Corpus self-test over a directory of seeded-violation files: asserts
/// that exactly the `detlint-expect` lines fire, that every
/// `detlint-expect-suppressed` line is matched-but-silenced, and nothing
/// else fires. `external_findings` substitutes findings produced by another
/// analysis mode (the LibTooling tool) for the same corpus; pass nullptr to
/// use this scanner. Returns human-readable failure lines; empty = pass.
std::vector<std::string> SelfTest(
    const std::string& corpus_dir,
    const std::vector<Finding>* external_findings = nullptr);

/// "file:line: Dx: message" — the interchange format of both modes.
std::string FormatFinding(const Finding& finding);

}  // namespace planorder::detlint

#endif  // PLANORDER_TOOLS_DETLINT_SCANNER_H_
