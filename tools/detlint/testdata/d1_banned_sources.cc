// Seeded D1 violations: one per banned nondeterminism source, plus a
// suppressed occurrence proving the allow() directive silences the check.
// detlint-scan-as: src/service/example.cc
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace corpus {

inline int AmbientRandom() {
  return std::rand();  // detlint-expect: D1
}

inline unsigned HardwareEntropy() {
  std::random_device device;  // detlint-expect: D1
  return device();
}

inline void SeedAmbient(unsigned seed) {
  std::srand(seed);  // detlint-expect: D1
}

inline double WallTimeMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now()  // detlint-expect: D1
                 .time_since_epoch())
      .count();
}

inline long long SystemClockNow() {
  return std::chrono::system_clock::now()  // detlint-expect: D1
      .time_since_epoch()
      .count();
}

inline long EpochSeconds() {
  return time(nullptr);  // detlint-expect: D1
}

inline const char* HomeDir() {
  return std::getenv("HOME");  // detlint-expect: D1
}

inline long AllowedWallTime() {
  // detlint: allow(D1, corpus: proves the directive silences the check)
  return std::time(nullptr);  // detlint-expect-suppressed: D1
}

}  // namespace corpus
