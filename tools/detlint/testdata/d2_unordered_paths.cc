// Seeded D2 violations: unordered containers declared in an answer path,
// plus an order-insensitive() annotation proving suppression.
// detlint-scan-as: src/exec/example.cc
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace corpus {

struct AnswerIndex {
  std::unordered_map<std::string, int> by_name;  // detlint-expect: D2
  std::unordered_set<int> emitted;  // detlint-expect: D2
};

inline int CountDistinct() {
  // detlint: order-insensitive(corpus: membership-only dedup, never iterated)
  std::unordered_set<int> seen;  // detlint-expect-suppressed: D2
  seen.insert(1);
  return static_cast<int>(seen.size());
}

}  // namespace corpus
