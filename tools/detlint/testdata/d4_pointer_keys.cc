// Seeded D4 violations: associative containers keyed by pointer value. The
// unordered one also trips D2 (it sits in an ordering path), proving one
// line can carry expectations for two checks.
// detlint-scan-as: src/core/example.cc
#include <map>
#include <set>
#include <unordered_set>

namespace corpus {

struct Node {
  int id = 0;
};

struct PointerKeyed {
  std::map<const Node*, int> rank_of;  // detlint-expect: D4
  std::set<Node*> visited;  // detlint-expect: D4
  std::unordered_set<const Node*> live;  // detlint-expect: D2, D4
};

inline int AllowedPointerKey(const Node* node) {
  // detlint: allow(D4, corpus: proves the directive silences the check)
  std::map<const Node*, int> scratch;  // detlint-expect-suppressed: D4
  scratch[node] = 1;
  return scratch.begin()->second;
}

}  // namespace corpus
