// Seeded D3 violations: floating-point accumulation outside the
// dyadic-rational fold contract of anyk/weights.h.
// detlint-scan-as: src/anyk/example.cc
#include <numeric>
#include <vector>

namespace corpus {

inline double LossyAverage(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    total += 0.5 * w;  // detlint-expect: D3
  }
  return weights.empty() ? 0.0 : total / double(weights.size());
}

inline double NarrowedScale() {
  float scale = 1.0f;  // detlint-expect: D3
  return double(scale);
}

inline double FoldPrimitive(const std::vector<double>& w) {
  return std::accumulate(w.begin(), w.end(), 0.0);  // detlint-expect: D3
}

inline double AllowedAccumulation(double base) {
  // detlint: allow(D3, corpus: proves the directive silences the check)
  base += 1.5;  // detlint-expect-suppressed: D3
  return base;
}

}  // namespace corpus
