// detlint — clang LibTooling mode.
//
// Type-aware variant of the portable token scanner (scanner.cc). Built only
// when CMake finds a Clang development package (find_package(Clang)); the
// portable mode is the always-available fallback with the same check IDs,
// the same suppression syntax and the same golden corpus.
//
// Division of labor per check:
//   D1  token-level via the shared core scanner (the banned identifiers are
//       unambiguous; macros hide from the AST anyway)
//   D2  AST: declarations whose desugared type is a std::unordered_*
//       container — catches typedef/alias-laundered types the token scan
//       can only see at the alias definition
//   D3  AST: compound assignment onto a floating-point lvalue, `float`
//       declarations, and calls to std::accumulate/reduce/inner_product/fma
//       — catches `total += w;` where no literal betrays the type
//   D4  AST: map/set specializations whose first template argument is a
//       pointer type, however many aliases deep
//
// Output is the shared interchange format ("file:line: Dx: message"), so CI
// validates this mode against the same corpus via
//
//   detlint-clang tools/detlint/testdata/*.cc -- -std=c++20 > findings.txt
//   detlint self-test --corpus=tools/detlint/testdata --findings=findings.txt
//
// Suppression directives are honored here exactly as in the portable mode:
// both modes call the same ParseDirectives/IsSuppressed from scanner.h.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/FrontendActions.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"

#include "scanner.h"

namespace detlint = planorder::detlint;

using clang::ast_matchers::MatchFinder;

namespace {

llvm::cl::OptionCategory kDetlintCategory("detlint options");
llvm::cl::opt<std::string> kRootFlag(
    "detlint-root",
    llvm::cl::desc("repo root for path scoping (default: cwd)"),
    llvm::cl::init("."), llvm::cl::cat(kDetlintCategory));

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Repo-relative '/'-separated path for scoping, preferring the corpus
/// files' detlint-scan-as header.
std::string ScopePath(const std::string& file,
                      const detlint::Directives& directives) {
  if (!directives.scan_as.empty()) return directives.scan_as;
  std::error_code ec;
  const auto rel =
      std::filesystem::relative(file, kRootFlag.getValue(), ec);
  if (ec) return file;
  return rel.generic_string();
}

class DetlintCallback : public MatchFinder::MatchCallback {
 public:
  std::vector<detlint::Finding> findings;

  void run(const MatchFinder::MatchResult& result) override {
    const clang::SourceManager& sm = *result.SourceManager;
    struct Site {
      const char* tag;
      detlint::CheckId check;
      const char* message;
    };
    static const Site kSites[] = {
        {"d2", detlint::CheckId::kD2,
         "unordered container in an ordering/emission/answer path; use an "
         "ordered container or annotate order-insensitive(reason)"},
        {"d3-acc", detlint::CheckId::kD3,
         "floating-point compound accumulation in a weight path; fold "
         "through AggregationCombine (anyk/weights.h)"},
        {"d3-float", detlint::CheckId::kD3,
         "float narrows the dyadic-rational weight invariant; use double"},
        {"d3-call", detlint::CheckId::kD3,
         "fold primitive in a weight path; fold through AggregationCombine"},
        {"d4", detlint::CheckId::kD4,
         "associative container keyed by pointer value; key by a stable id "
         "instead"},
    };
    for (const Site& site : kSites) {
      clang::SourceLocation loc;
      if (const auto* decl = result.Nodes.getNodeAs<clang::Decl>(site.tag)) {
        loc = decl->getBeginLoc();
      } else if (const auto* stmt =
                     result.Nodes.getNodeAs<clang::Stmt>(site.tag)) {
        loc = stmt->getBeginLoc();
      } else {
        continue;
      }
      loc = sm.getExpansionLoc(loc);
      if (loc.isInvalid() || !sm.isWrittenInMainFile(loc)) continue;
      Record(sm.getFilename(loc).str(), sm.getExpansionLineNumber(loc),
             site.check, site.message);
    }
  }

 private:
  struct FileInfo {
    detlint::Directives directives;
    std::string scope;
  };

  const FileInfo& InfoFor(const std::string& file) {
    auto it = files_.find(file);
    if (it == files_.end()) {
      FileInfo info;
      info.directives = detlint::ParseDirectives(ReadFileOrEmpty(file));
      info.scope = ScopePath(file, info.directives);
      it = files_.emplace(file, std::move(info)).first;
    }
    return it->second;
  }

  void Record(const std::string& file, int line, detlint::CheckId check,
              const char* message) {
    const FileInfo& info = InfoFor(file);
    if (!detlint::CheckAppliesTo(check, info.scope)) return;
    if (detlint::IsSuppressed(info.directives, check, line)) return;
    if (!seen_.emplace(file, line, static_cast<int>(check)).second) return;
    detlint::Finding f;
    f.file = file;
    f.line = line;
    f.check = check;
    f.message = message;
    findings.push_back(std::move(f));
  }

  std::map<std::string, FileInfo> files_;
  std::set<std::tuple<std::string, int, int>> seen_;
};

void AddMatchers(MatchFinder* finder, DetlintCallback* callback) {
  using namespace clang::ast_matchers;  // NOLINT: matcher DSL

  const auto unordered_container = hasUnqualifiedDesugaredType(
      recordType(hasDeclaration(namedDecl(hasAnyName(
          "::std::unordered_map", "::std::unordered_set",
          "::std::unordered_multimap", "::std::unordered_multiset")))));
  finder->addMatcher(
      valueDecl(hasType(qualType(unordered_container))).bind("d2"), callback);

  finder->addMatcher(
      compoundAssignOperator(hasLHS(expr(hasType(realFloatingPointType()))))
          .bind("d3-acc"),
      callback);
  finder->addMatcher(valueDecl(hasType(asString("float"))).bind("d3-float"),
                     callback);
  finder->addMatcher(
      callExpr(callee(functionDecl(
                   hasAnyName("::std::accumulate", "::std::reduce",
                              "::std::inner_product", "::std::fma"))))
          .bind("d3-call"),
      callback);

  const auto pointer_keyed = hasUnqualifiedDesugaredType(
      recordType(hasDeclaration(classTemplateSpecializationDecl(
          hasAnyName("::std::map", "::std::set", "::std::multimap",
                     "::std::multiset", "::std::unordered_map",
                     "::std::unordered_set", "::std::unordered_multimap",
                     "::std::unordered_multiset"),
          hasTemplateArgument(0, refersToType(pointerType()))))));
  finder->addMatcher(
      valueDecl(hasType(qualType(pointer_keyed))).bind("d4"), callback);
}

}  // namespace

int main(int argc, const char** argv) {
  auto options_or = clang::tooling::CommonOptionsParser::create(
      argc, argv, kDetlintCategory);
  if (!options_or) {
    llvm::errs() << llvm::toString(options_or.takeError()) << "\n";
    return 2;
  }
  clang::tooling::CommonOptionsParser& options = *options_or;
  clang::tooling::ClangTool tool(options.getCompilations(),
                                 options.getSourcePathList());

  DetlintCallback callback;
  MatchFinder finder;
  AddMatchers(&finder, &callback);
  const int tool_status =
      tool.run(clang::tooling::newFrontendActionFactory(&finder).get());
  if (tool_status != 0) {
    llvm::errs() << "detlint-clang: compilation failed\n";
    return 2;
  }

  // D1 rides on the shared token scanner, honoring scan-as and suppressions
  // exactly like the portable mode.
  for (const std::string& file : options.getSourcePathList()) {
    const std::string contents = ReadFileOrEmpty(file);
    const detlint::Directives directives = detlint::ParseDirectives(contents);
    const std::string scope = ScopePath(file, directives);
    for (detlint::Finding f : detlint::ScanFile(scope, contents)) {
      if (f.check != detlint::CheckId::kD1) continue;
      f.file = file;
      callback.findings.push_back(std::move(f));
    }
  }

  std::sort(callback.findings.begin(), callback.findings.end(),
            [](const detlint::Finding& a, const detlint::Finding& b) {
              return std::tie(a.file, a.line) < std::tie(b.file, b.line);
            });
  for (const detlint::Finding& f : callback.findings) {
    std::cout << detlint::FormatFinding(f) << "\n";
  }
  if (!callback.findings.empty()) {
    llvm::errs() << "detlint-clang: " << callback.findings.size()
                 << " finding(s)\n";
    return 1;
  }
  llvm::errs() << "detlint-clang: clean\n";
  return 0;
}
