#ifndef PLANORDER_RUNTIME_CLOCK_H_
#define PLANORDER_RUNTIME_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace planorder::runtime {

/// Time source of the simulated network. The runtime charges every latency,
/// backoff and hedge wait through a Clock, so a test or the simulation
/// harness (src/sim/) can substitute a virtual clock and replay a fault /
/// latency schedule deterministically with zero wall-clock cost — while
/// benchmarks keep the real, sleeping clock for wall-clock realism.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Charges `ms` simulated milliseconds. A real clock sleeps (scaled by
  /// `dilation`, see RemoteSource::set_time_dilation); a virtual clock only
  /// advances its counter. Must be safe to call from many threads at once.
  virtual void SleepMs(double ms, double dilation) = 0;

  /// Milliseconds elapsed on this clock since construction (virtual clocks)
  /// or an arbitrary fixed epoch (real clocks).
  virtual double NowMs() const = 0;
};

/// Wall-clock time: SleepMs really sleeps `ms * dilation` milliseconds.
/// Stateless; one process-wide instance is shared by default.
class RealClock : public Clock {
 public:
  void SleepMs(double ms, double dilation) override {
    if (ms <= 0.0 || dilation <= 0.0) return;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(ms * dilation));
  }

  double NowMs() const override {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// The default clock of every RemoteSource.
  static RealClock* Instance();
};

/// Deterministic simulated time: SleepMs never blocks, it atomically adds the
/// *undilated* simulated milliseconds to a counter. Because atomic addition
/// commutes, the total elapsed time after a set of calls is independent of
/// thread interleaving — the property the simulation harness asserts when it
/// replays one fault schedule at different thread counts.
///
/// Time is kept in integer nanoseconds so the accumulation is exact and
/// associative (no floating-point reassociation across threads).
class VirtualClock : public Clock {
 public:
  void SleepMs(double ms, double dilation) override {
    (void)dilation;  // virtual time is never scaled
    if (ms <= 0.0) return;
    now_ns_.fetch_add(static_cast<int64_t>(ms * 1e6),
                      std::memory_order_relaxed);
  }

  double NowMs() const override {
    return static_cast<double>(now_ns_.load(std::memory_order_relaxed)) * 1e-6;
  }

  void Reset() { now_ns_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> now_ns_{0};
};

}  // namespace planorder::runtime

#endif  // PLANORDER_RUNTIME_CLOCK_H_
