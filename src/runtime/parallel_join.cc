#include "runtime/parallel_join.h"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_set>
#include <utility>

#include "datalog/builtins.h"
#include "datalog/unify.h"

namespace planorder::runtime {

using datalog::Atom;
using datalog::Substitution;
using datalog::Term;

namespace {

struct PartitionResult {
  StatusOr<std::vector<std::vector<Term>>> rows =
      Status(StatusCode::kInternal, "partition not executed");
  double simulated_ms = 0.0;
  exec::RuntimeAccounting accounting;
};

/// Fetches `batch` split into at most `max_partitions` contiguous chunks run
/// concurrently on `pool`, merging chunk results in chunk order with
/// first-occurrence dedup (the serial FetchBatch row order). Returns the
/// slowest partition's simulated time via `*elapsed_ms`.
StatusOr<std::vector<std::vector<Term>>> FetchBatchPartitioned(
    RemoteSource& source, const std::vector<std::map<int, Term>>& batch,
    ThreadPool& pool, const ParallelJoinOptions& options, double* elapsed_ms,
    int64_t* partition_calls, exec::RuntimeAccounting* accounting) {
  if (batch.empty()) {
    *partition_calls = 0;
    return std::vector<std::vector<Term>>{};
  }
  const int min_size = std::max(1, options.min_partition_size);
  int partitions = std::min(
      {options.max_partitions, pool.num_threads(),
       static_cast<int>((batch.size() + size_t(min_size) - 1) /
                        size_t(min_size))});
  if (partitions < 1) partitions = 1;
  // Ceiling-divide can leave trailing chunks empty (e.g. 5 items over 4
  // partitions -> chunks of 2 fill after 3); recompute so every chunk is
  // non-empty and in range.
  const size_t chunk =
      (batch.size() + size_t(partitions) - 1) / size_t(partitions);
  partitions = static_cast<int>((batch.size() + chunk - 1) / chunk);
  *partition_calls = partitions;
  if (partitions == 1) {
    return source.FetchBatch(batch, options.retry, elapsed_ms, accounting);
  }

  std::vector<PartitionResult> results(static_cast<size_t>(partitions));
  {
    TaskGroup group(&pool);
    for (int p = 0; p < partitions; ++p) {
      const size_t lo = size_t(p) * chunk;
      const size_t hi = std::min(batch.size(), lo + chunk);
      group.Submit([&source, &batch, &options, &results, p, lo, hi] {
        std::vector<std::map<int, Term>> slice(batch.begin() + long(lo),
                                               batch.begin() + long(hi));
        PartitionResult& result = results[size_t(p)];
        result.rows = source.FetchBatch(slice, options.retry,
                                        &result.simulated_ms,
                                        &result.accounting);
      });
    }
    group.Wait();
  }

  // Concurrent partitions overlap in (simulated) time: the call's elapsed
  // time is the slowest partition, not the sum.
  double slowest = 0.0;
  for (const PartitionResult& result : results) {
    slowest = std::max(slowest, result.simulated_ms);
    if (accounting != nullptr) accounting->Merge(result.accounting);
  }
  if (elapsed_ms != nullptr) *elapsed_ms += slowest;
  // First failing partition (in deterministic chunk order) fails the call.
  for (const PartitionResult& result : results) {
    if (!result.rows.ok()) return result.rows.status();
  }
  std::vector<std::vector<Term>> merged;
  std::unordered_set<std::vector<Term>, datalog::TermVectorHash> seen;
  for (PartitionResult& result : results) {
    for (std::vector<Term>& row : *result.rows) {
      if (seen.insert(row).second) merged.push_back(std::move(row));
    }
  }
  return merged;
}

}  // namespace

StatusOr<std::vector<std::vector<Term>>> ExecutePlanDependentParallel(
    const datalog::ConjunctiveQuery& rewriting, RemoteRegistry& sources,
    ThreadPool& pool, const ParallelJoinOptions& options,
    exec::ExecutionTrace* trace, double* simulated_ms,
    exec::RuntimeAccounting* accounting) {
  PLANORDER_RETURN_IF_ERROR(rewriting.ValidateSafety());
  for (const Atom& atom : rewriting.body) {
    if (datalog::IsComparisonAtom(atom)) continue;
    const RemoteSource* source = sources.Find(atom.predicate);
    if (source == nullptr) {
      return NotFoundError("no remote source for '" + atom.predicate + "'");
    }
    if (source->underlying().arity() != atom.arity()) {
      return InvalidArgumentError("arity mismatch for '" + atom.predicate +
                                  "'");
    }
    for (const Term& arg : atom.args) {
      if (arg.is_function()) {
        return InvalidArgumentError(
            "function terms cannot be executed against sources");
      }
    }
  }
  if (trace != nullptr) trace->atoms.clear();

  double elapsed_ms = 0.0;  // simulated critical path across the plan
  // Partial bindings flowing left to right — identical to the serial
  // dependent join; only the per-atom batched fetch is parallelized.
  std::vector<Substitution> frontier = {Substitution{}};
  for (const Atom& atom : rewriting.body) {
    if (datalog::IsComparisonAtom(atom)) {
      std::vector<Substitution> kept;
      for (const Substitution& partial : frontier) {
        const Atom resolved = datalog::ApplySubstitution(atom, partial);
        if (!resolved.IsGround()) {
          return InvalidArgumentError(
              "comparison over unbound variables in execution order: " +
              atom.ToString());
        }
        PLANORDER_ASSIGN_OR_RETURN(bool holds,
                                   datalog::EvaluateComparison(resolved));
        if (holds) kept.push_back(partial);
      }
      frontier = std::move(kept);
      if (trace != nullptr) {
        exec::AtomAccess filter;
        filter.source = atom.predicate;
        trace->atoms.push_back(std::move(filter));
      }
      if (frontier.empty()) break;
      continue;
    }
    RemoteSource& source = *sources.Find(atom.predicate);

    // Distinct binding combinations the frontier sends to the source, in
    // first-seen order (matches the serial path exactly).
    std::vector<std::map<int, Term>> batch;
    std::map<std::string, size_t> combination_index;
    for (const Substitution& partial : frontier) {
      std::map<int, Term> bindings;
      std::string key;
      for (size_t pos = 0; pos < atom.args.size(); ++pos) {
        const Term resolved =
            datalog::ApplySubstitution(atom.args[pos], partial);
        if (resolved.IsGround()) {
          bindings[static_cast<int>(pos)] = resolved;
          key += resolved.ToString();
        }
        key += '\x1f';
      }
      auto [it, inserted] =
          combination_index.try_emplace(std::move(key), batch.size());
      if (inserted) batch.push_back(std::move(bindings));
    }
    if (!batch.empty()) {
      PLANORDER_RETURN_IF_ERROR(
          source.underlying().ValidateBindings(batch.front()));
    }

    exec::AtomAccess access;
    access.source = atom.predicate;
    std::vector<std::vector<Term>> rows;
    if (!batch.empty()) {
      PLANORDER_ASSIGN_OR_RETURN(
          rows, FetchBatchPartitioned(source, batch, pool, options,
                                      &elapsed_ms, &access.calls, accounting));
    }
    access.tuples_shipped = static_cast<int64_t>(rows.size());
    if (trace != nullptr) trace->atoms.push_back(std::move(access));
    if (options.plan_budget_ms > 0.0 && elapsed_ms > options.plan_budget_ms) {
      return DeadlineExceededError(
          "plan budget of " + std::to_string(options.plan_budget_ms) +
          "ms exhausted at '" + atom.predicate + "'");
    }

    std::vector<Substitution> next;
    for (const Substitution& partial : frontier) {
      for (const auto& row : rows) {
        Substitution extended = partial;
        bool ok = true;
        for (size_t pos = 0; pos < atom.args.size() && ok; ++pos) {
          ok = datalog::MatchTerm(atom.args[pos], row[pos], extended);
        }
        if (ok) next.push_back(std::move(extended));
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }

  std::unordered_set<std::vector<Term>, datalog::TermVectorHash> seen;
  std::vector<std::vector<Term>> answers;
  for (const Substitution& subst : frontier) {
    Atom head = datalog::ApplySubstitution(rewriting.head, subst);
    if (!head.IsGround()) {
      return InternalError("unbound head after safe execution");
    }
    if (seen.insert(head.args).second) answers.push_back(std::move(head.args));
  }
  // Keep trace length equal to the body even when the frontier drained.
  if (trace != nullptr) {
    while (trace->atoms.size() < rewriting.body.size()) {
      exec::AtomAccess empty;
      empty.source = rewriting.body[trace->atoms.size()].predicate;
      trace->atoms.push_back(std::move(empty));
    }
  }
  if (simulated_ms != nullptr) *simulated_ms = elapsed_ms;
  return answers;
}

}  // namespace planorder::runtime
