#ifndef PLANORDER_RUNTIME_SOURCE_RESULT_CACHE_H_
#define PLANORDER_RUNTIME_SOURCE_RESULT_CACHE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "datalog/term.h"

namespace planorder::runtime {

/// Counters of a shared source-operation result cache. Monotone except for
/// the resident_* gauges, which track the current contents.
struct SourceResultCacheStats {
  int64_t hits = 0;                // Acquire returned cached rows
  int64_t misses = 0;              // Acquire elected the caller leader
  int64_t single_flight_waits = 0; // Acquire blocked behind an in-flight fetch
  int64_t insertions = 0;          // successful Publish calls
  int64_t evictions = 0;           // entries removed to respect the byte bound
  int64_t resident_bytes = 0;      // current approximate payload bytes
  int64_t resident_entries = 0;    // current entry count
};

/// A cross-session cache of source-operation results, keyed by the full
/// content of a batched call — (source name, bound positions, binding
/// values). RemoteSource consults it before paying simulated network
/// latency: a hit returns the rows at zero cost and zero latency, which is
/// exactly the paper's Section 6 caching semantics ("a cached source access
/// has zero residual cost") lifted from one session to the whole service.
///
/// The protocol is single-flight. Acquire either returns the cached rows
/// (hit), or elects the caller *leader* for this key (miss, `*leader` set
/// true) — the leader must perform the real fetch and then call Publish on
/// success or Abort on failure. Concurrent Acquires for the same key block
/// until the leader resolves; on Abort one waiter is promoted to the new
/// leader, so a permanently failing fetch fails each caller individually
/// instead of wedging the key.
///
/// Implementations must be safe for concurrent use from many sessions and
/// must be deterministic given a deterministic caller schedule: the cache
/// stores exact fetched rows, so *which* session fetches never changes *what*
/// any session receives (AccessibleSource::FetchBatch is deterministic for
/// identical batches).
class SourceResultCache {
 public:
  virtual ~SourceResultCache() = default;

  /// Looks up the result of `batch` against `source_name`. Returns the rows
  /// on a hit. On a miss returns nullopt with `*leader == true`: the caller
  /// now owns the fetch and must Publish or Abort. If another caller is
  /// already fetching this key, blocks until that fetch resolves, then either
  /// returns the published rows or (after an Abort) may itself become leader.
  virtual std::optional<std::vector<std::vector<datalog::Term>>> Acquire(
      const std::string& source_name,
      const std::vector<std::map<int, datalog::Term>>& batch,
      bool* leader) = 0;

  /// Leader-only: stores the fetched rows and wakes all waiters with a hit.
  virtual void Publish(const std::string& source_name,
                       const std::vector<std::map<int, datalog::Term>>& batch,
                       const std::vector<std::vector<datalog::Term>>& rows) = 0;

  /// Leader-only: the fetch failed; wakes waiters so one can take over.
  virtual void Abort(const std::string& source_name,
                     const std::vector<std::map<int, datalog::Term>>& batch) = 0;
};

}  // namespace planorder::runtime

#endif  // PLANORDER_RUNTIME_SOURCE_RESULT_CACHE_H_
