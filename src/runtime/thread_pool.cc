#include "runtime/thread_pool.h"

#include <utility>

namespace planorder::runtime {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      cv_.Wait(lock, [this]() REQUIRES(mu_) {
        return shutdown_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // shutdown_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void TaskGroup::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, task = std::move(task)] {
    task();
    // Notify under the lock: once the count hits zero a waiter may destroy
    // this group the moment the mutex is released, so the worker must not
    // touch group state afterwards.
    MutexLock lock(mu_);
    --pending_;
    cv_.NotifyAll();
  });
}

void TaskGroup::Wait() {
  MutexLock lock(mu_);
  cv_.Wait(lock, [this]() REQUIRES(mu_) { return pending_ == 0; });
}

}  // namespace planorder::runtime
