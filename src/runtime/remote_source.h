#ifndef PLANORDER_RUNTIME_REMOTE_SOURCE_H_
#define PLANORDER_RUNTIME_REMOTE_SOURCE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "datalog/term.h"
#include "exec/mediator.h"
#include "exec/source_access.h"
#include "runtime/clock.h"
#include "runtime/retry_policy.h"
#include "runtime/source_result_cache.h"
#include "runtime/trace_sink.h"

namespace planorder::runtime {

/// Deterministic simulated network behavior of one autonomous source — the
/// failure model behind the paper's premise that "sources may be slow or
/// unavailable" (the Figure 6 failure panels). Latency is an affine function
/// of the work a batched call ships (a per-call overhead `h` plus per-binding
/// and per-tuple terms, mirroring cost measure (2)) with multiplicative
/// jitter; faults are transient (per-attempt, retryable) or permanent (the
/// source is dead for the whole run). All randomness is drawn by hashing the
/// call payload (see retry_policy.h), never from a shared stream, so a seed
/// fully determines every outcome regardless of thread scheduling.
struct NetworkModel {
  /// Fixed round-trip overhead per call attempt (the `h` of measure (2)).
  double base_latency_ms = 0.0;
  /// Added per binding combination in the batch (server-side probe work).
  double per_binding_latency_ms = 0.0;
  /// Added per result tuple shipped back (the `alpha` of measure (2)).
  double per_tuple_latency_ms = 0.0;
  /// Multiplicative spread: latency *= 1 + jitter * u, u ~ U[-1, 1).
  double latency_jitter = 0.0;
  /// Probability that an individual attempt fails transiently.
  double transient_failure_rate = 0.0;
  /// The source is down for the entire run; every call fails immediately
  /// with kUnavailable (no retries — the outage is not transient).
  bool permanently_failed = false;
  /// Attempts whose sampled latency exceeds this are cut off and count as
  /// retryable timeouts costing exactly the deadline. <= 0 disables.
  double call_deadline_ms = 0.0;
  /// When an attempt's sampled latency exceeds this, a backup (hedged) call
  /// is issued and the attempt completes at
  /// min(latency, hedge_delay + backup latency). <= 0 disables.
  double hedge_delay_ms = 0.0;
};

/// A resilient proxy over one exec::AccessibleSource: simulates the network
/// model, injects faults, retries transient ones per a RetryPolicy, and
/// accounts latency/retries/failures/hedges. Underlying fetches are
/// serialized by a per-source mutex, so one RemoteSource may be called from
/// many pool workers concurrently; the simulated latency (the expensive part)
/// is paid outside the lock.
///
/// Configuration (set_model / set_time_dilation) must happen before
/// concurrent calls begin — it is not synchronized against FetchBatch.
class RemoteSource {
 public:
  RemoteSource(exec::AccessibleSource* source, uint64_t seed)
      : source_(source), seed_(seed) {}

  const std::string& name() const { return source_->name(); }
  const exec::AccessibleSource& underlying() const { return *source_; }

  void set_model(const NetworkModel& model) { model_ = model; }
  const NetworkModel& model() const { return model_; }

  /// Scales real sleeping relative to simulated milliseconds: 1.0 sleeps the
  /// simulated latency for wall-clock realism (benchmarks), 0.0 never sleeps
  /// (logic tests). Accounting always records undilated simulated time.
  void set_time_dilation(double dilation) { time_dilation_ = dilation; }

  /// Substitutes the time source every simulated wait is charged through
  /// (borrowed; defaults to the process-wide RealClock). Inject a
  /// VirtualClock to replay fault/latency schedules deterministically with
  /// no real sleeping — the simulation harness's determinism hook. Like
  /// set_model, must be called before concurrent calls begin.
  void set_clock(Clock* clock) { clock_ = clock; }
  Clock& clock() const { return *clock_; }

  /// Attaches a shared cross-session result cache (borrowed, may be null).
  /// With a cache, FetchBatch first consults it: a hit returns the cached
  /// rows with zero simulated latency (and no network-model draws — the
  /// cached operation is free, per the Section 6 caching semantics); a miss
  /// elects this call single-flight leader, performs the real fetch and
  /// publishes the rows. Like set_model, must be called before concurrent
  /// calls begin.
  void set_result_cache(SourceResultCache* cache) { cache_ = cache; }

  /// Attaches an execution-trace sink (borrowed, may be null to detach).
  /// Every completed uncached call — success or failure — is reported once
  /// with its observed row count, attempt/failure counts and total simulated
  /// latency; cache hits are not reported. The sink itself must be
  /// thread-safe. Like set_model, must be called before concurrent calls
  /// begin.
  void set_trace_sink(SourceTraceSink* sink) { trace_sink_ = sink; }

  /// One resilient batched access (semantics of AccessibleSource::FetchBatch,
  /// including the uniform-position-set precondition). Transient failures
  /// and deadline timeouts are retried per `retry`; exhausting attempts or a
  /// permanent outage yields kUnavailable. On return `*simulated_ms` (if
  /// non-null) is increased by the call's total simulated time, including
  /// failed attempts and backoff waits — the quantity per-plan budgets meter.
  ///
  /// `*accounting` (if non-null) receives this call's accounting — the same
  /// increments recorded in the source's own stats, on success and failure
  /// paths alike. It is the caller-local attribution channel: many sessions
  /// can share one RemoteSource and still account their own calls exactly,
  /// without diffing the shared monotone stats (which interleave under
  /// concurrency).
  StatusOr<std::vector<std::vector<datalog::Term>>> FetchBatch(
      const std::vector<std::map<int, datalog::Term>>& batch,
      const RetryPolicy& retry, double* simulated_ms = nullptr,
      exec::RuntimeAccounting* accounting = nullptr) EXCLUDES(mu_);

  /// Snapshot of this source's runtime accounting.
  exec::RuntimeAccounting stats() const EXCLUDES(mu_);
  void ResetStats() EXCLUDES(mu_);

 private:
  /// The pre-cache fetch path: the full resilient access (network model,
  /// faults, retries, accounting). FetchBatch delegates here on a cache miss
  /// (as single-flight leader) or when no cache is attached.
  StatusOr<std::vector<std::vector<datalog::Term>>> FetchBatchUncached(
      const std::vector<std::map<int, datalog::Term>>& batch,
      const RetryPolicy& retry, double* simulated_ms,
      exec::RuntimeAccounting* accounting) EXCLUDES(mu_);

  exec::AccessibleSource* source_;  // fetches serialized under mu_
  uint64_t seed_;
  NetworkModel model_;
  double time_dilation_ = 1.0;
  Clock* clock_ = RealClock::Instance();
  SourceResultCache* cache_ = nullptr;
  SourceTraceSink* trace_sink_ = nullptr;
  mutable Mutex mu_;
  exec::RuntimeAccounting stats_ GUARDED_BY(mu_);
};

/// The runtime's view of the mediator's sources: one RemoteSource per entry
/// of an exec::SourceRegistry. Per-source seeds are derived from one run seed
/// via base/rng.h in sorted-name order, so a single recorded seed reproduces
/// the whole run.
class RemoteRegistry {
 public:
  RemoteRegistry(exec::SourceRegistry* underlying, uint64_t seed);

  RemoteSource* Find(const std::string& name);
  const RemoteSource* Find(const std::string& name) const;
  std::vector<std::string> Names() const;

  /// Applies `model` to every source / one source.
  void ConfigureAll(const NetworkModel& model);
  Status Configure(const std::string& name, const NetworkModel& model);
  void set_time_dilation(double dilation);
  /// Routes every source's simulated waits through `clock` (borrowed).
  void set_clock(Clock* clock);
  /// Attaches one shared result cache to every source (borrowed, may be
  /// null to detach).
  void set_result_cache(SourceResultCache* cache);
  /// Attaches one execution-trace sink to every source (borrowed, may be
  /// null to detach) — see RemoteSource::set_trace_sink.
  void set_trace_sink(SourceTraceSink* sink);

  /// Aggregated runtime accounting across sources.
  exec::RuntimeAccounting TotalStats() const;
  void ResetStats();

 private:
  std::map<std::string, std::unique_ptr<RemoteSource>> sources_;
};

}  // namespace planorder::runtime

#endif  // PLANORDER_RUNTIME_REMOTE_SOURCE_H_
