#ifndef PLANORDER_RUNTIME_SOURCE_RUNTIME_H_
#define PLANORDER_RUNTIME_SOURCE_RUNTIME_H_

#include <cstdint>

#include "base/status.h"
#include "datalog/conjunctive_query.h"
#include "exec/mediator.h"
#include "exec/source_access.h"
#include "runtime/parallel_join.h"
#include "runtime/remote_source.h"
#include "runtime/retry_policy.h"
#include "runtime/thread_pool.h"

namespace planorder::runtime {

/// Configuration of the resilient concurrent source-access runtime. One
/// options object fully determines a run together with the source contents:
/// the seed drives every simulated latency and fault draw.
struct RuntimeOptions {
  /// Worker threads in the pool.
  int num_threads = 4;
  /// Max concurrent partitions per batched source call; 0 = num_threads.
  int max_partitions_per_call = 0;
  /// Don't split batches below this many binding combinations.
  int min_partition_size = 1;
  /// Seed of the simulated network (see RemoteRegistry).
  uint64_t seed = 1;
  /// Wall-clock realism: 1.0 sleeps simulated milliseconds for real,
  /// 0.0 never sleeps (tests). See RemoteSource::set_time_dilation.
  double time_dilation = 1.0;
  /// Time source every simulated wait is charged through (borrowed; null =
  /// the process-wide RealClock). Inject a VirtualClock to replay fault /
  /// latency schedules deterministically — see runtime/clock.h.
  Clock* clock = nullptr;
  /// Applied to every source; override per source via remotes().Configure.
  NetworkModel default_model;
  RetryPolicy retry;
  /// Per-plan budget on simulated elapsed time; exceeded plans are reported
  /// as failed (discarded by the mediator). <= 0 = none.
  double plan_budget_ms = 0.0;
  /// Shared cross-session source-operation result cache (borrowed, may be
  /// null). When set, every RemoteSource consults it before paying network
  /// latency — see RemoteSource::set_result_cache and src/cluster/.
  SourceResultCache* source_cache = nullptr;
  /// Execution-trace sink (borrowed, may be null). Every completed uncached
  /// source call is reported with observed rows / attempts / failures /
  /// latency — the feed of the adaptive statistics layer
  /// (src/adaptive/observed_stats.h). See RemoteSource::set_trace_sink.
  SourceTraceSink* trace_sink = nullptr;
};

/// The runtime assembled: a thread pool + a RemoteRegistry over an
/// exec::SourceRegistry, exposed to the mediator as an exec::PlanExecutor.
/// Plug it into Mediator::Run(orderer, limits, runtime):
///
///   runtime::RuntimeOptions options;
///   options.num_threads = 8;
///   options.default_model.per_binding_latency_ms = 0.5;
///   options.default_model.transient_failure_rate = 0.05;
///   runtime::SourceRuntime rt(&registry, options);
///   auto result = mediator.Run(orderer, limits, rt);
///
/// Source failures degrade gracefully: a plan whose source dies (permanent
/// outage, retries exhausted, budget blown) comes back as a failed step and
/// is reported to the orderer as a discard — the run keeps collecting
/// answers from the surviving plans, exactly like the unsound-plan protocol.
class SourceRuntime : public exec::PlanExecutor {
 public:
  /// `sources` must outlive the runtime and already hold every source the
  /// executed plans reference.
  SourceRuntime(exec::SourceRegistry* sources, const RuntimeOptions& options);

  const RuntimeOptions& options() const { return options_; }
  RemoteRegistry& remotes() { return remotes_; }
  const RemoteRegistry& remotes() const { return remotes_; }
  ThreadPool& pool() { return pool_; }

  /// Executes one rewriting by parallel resilient dependent joins. Source
  /// failure is reported via PlanExecution::failed (never a non-OK status),
  /// so the mediator can discard the plan and continue.
  StatusOr<exec::PlanExecution> ExecutePlan(
      const datalog::ConjunctiveQuery& rewriting) override;

 private:
  RuntimeOptions options_;
  exec::SourceRegistry* sources_;
  ThreadPool pool_;
  RemoteRegistry remotes_;
  ParallelJoinOptions join_options_;
};

}  // namespace planorder::runtime

#endif  // PLANORDER_RUNTIME_SOURCE_RUNTIME_H_
