#ifndef PLANORDER_RUNTIME_PARALLEL_JOIN_H_
#define PLANORDER_RUNTIME_PARALLEL_JOIN_H_

#include <vector>

#include "base/status.h"
#include "datalog/conjunctive_query.h"
#include "exec/dependent_join.h"
#include "runtime/remote_source.h"
#include "runtime/retry_policy.h"
#include "runtime/thread_pool.h"

namespace planorder::runtime {

/// Knobs of one parallel plan execution.
struct ParallelJoinOptions {
  /// Upper bound on concurrent partitions per batched call (further clamped
  /// to the pool size and the batch size). 1 degenerates to the serial
  /// dependent join over RemoteSources.
  int max_partitions = 4;
  /// Batches smaller than this are not split (partition setup is not free).
  int min_partition_size = 1;
  RetryPolicy retry;
  /// Budget on the plan's *simulated elapsed* time: the sum over atoms of the
  /// slowest partition of each batched call (the critical path), including
  /// failed attempts and backoff waits. Exceeding it fails the plan with
  /// kDeadlineExceeded. <= 0 = no budget.
  double plan_budget_ms = 0.0;
};

/// Executes a rewriting by left-to-right dependent joins like
/// exec::ExecutePlanDependent, but against resilient RemoteSources with each
/// atom's batched semi-join *partitioned across the thread pool*: the
/// distinct binding combinations flowing in from the prefix are split into
/// contiguous chunks fetched concurrently, and the chunk results are merged
/// back in chunk order with first-occurrence deduplication — bit-identical to
/// the serial batch's row sequence, so with faults disabled this path returns
/// exactly the serial path's answers in the same order.
///
/// Failure semantics: a source outage that survives retries, or an exhausted
/// plan budget, fails the WHOLE PLAN with kUnavailable / kDeadlineExceeded —
/// the mediator degrades gracefully by discarding the plan (see
/// exec::PlanExecution::failed). Other statuses indicate real errors.
///
/// On success `*simulated_ms` (if non-null) holds the plan's simulated
/// elapsed time as defined above.
///
/// `*accounting` (if non-null) accumulates the runtime accounting of every
/// source call this plan made — populated on failure paths too (the work a
/// failed plan burned is part of its cost). This is the plan-local channel
/// that stays exact when many plans execute concurrently over one shared
/// RemoteRegistry; partition accountings are merged in deterministic chunk
/// order.
StatusOr<std::vector<std::vector<datalog::Term>>> ExecutePlanDependentParallel(
    const datalog::ConjunctiveQuery& rewriting, RemoteRegistry& sources,
    ThreadPool& pool, const ParallelJoinOptions& options,
    exec::ExecutionTrace* trace = nullptr, double* simulated_ms = nullptr,
    exec::RuntimeAccounting* accounting = nullptr);

}  // namespace planorder::runtime

#endif  // PLANORDER_RUNTIME_PARALLEL_JOIN_H_
