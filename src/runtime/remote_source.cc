#include "runtime/remote_source.h"

#include <cmath>

#include "base/rng.h"

namespace planorder::runtime {

namespace {

// Domain-separation salts so latency, fault, hedge and backoff draws of the
// same attempt are independent.
constexpr uint64_t kLatencySalt = 0x6c61746e63793031ULL;
constexpr uint64_t kFaultSalt = 0x6661756c74303132ULL;
constexpr uint64_t kHedgeSalt = 0x6865646765303133ULL;
constexpr uint64_t kBackoffSalt = 0x6261636b6f663134ULL;

/// Content hash of a batched call: the source's seed combined with every
/// bound position and value. Identical payloads hash identically on every
/// thread — the root of the runtime's schedule-independence.
uint64_t BatchHash(uint64_t seed,
                   const std::vector<std::map<int, datalog::Term>>& batch) {
  uint64_t h = MixHash(seed);
  for (const auto& bindings : batch) {
    uint64_t combo = 0x42;
    for (const auto& [position, value] : bindings) {
      combo = CombineHash(combo, uint64_t(position));
      combo = CombineHash(combo, HashString(value.ToString()));
    }
    h = CombineHash(h, combo);
  }
  return h;
}

double JitterMultiplier(double jitter, uint64_t hash) {
  if (jitter <= 0.0) return 1.0;
  return 1.0 + jitter * (2.0 * HashToUnit(hash) - 1.0);
}

}  // namespace

StatusOr<std::vector<std::vector<datalog::Term>>> RemoteSource::FetchBatch(
    const std::vector<std::map<int, datalog::Term>>& batch,
    const RetryPolicy& retry, double* simulated_ms,
    exec::RuntimeAccounting* accounting) {
  if (cache_ == nullptr) {
    return FetchBatchUncached(batch, retry, simulated_ms, accounting);
  }
  // Single-flight protocol: a hit returns the rows free of charge — no
  // latency draws, no sleeping, no retries — mirroring the zero residual
  // cost the utility measures assign to cached operations. On a miss this
  // call is the leader; it pays the full resilient fetch and publishes so
  // concurrent sessions waiting on the same key all hit. A failed leader
  // aborts, and Acquire promotes one waiter to retry — so permanent outages
  // fail every caller instead of wedging the key.
  while (true) {
    bool leader = false;
    std::optional<std::vector<std::vector<datalog::Term>>> hit =
        cache_->Acquire(name(), batch, &leader);
    if (hit.has_value()) {
      exec::RuntimeAccounting acct;
      ++acct.source_cache_hits;
      {
        MutexLock lock(mu_);
        stats_.Merge(acct);
      }
      if (accounting != nullptr) accounting->Merge(acct);
      return *std::move(hit);
    }
    if (!leader) continue;  // leader aborted before us; try again
    StatusOr<std::vector<std::vector<datalog::Term>>> rows =
        FetchBatchUncached(batch, retry, simulated_ms, accounting);
    if (rows.ok()) {
      cache_->Publish(name(), batch, *rows);
    } else {
      cache_->Abort(name(), batch);
    }
    return rows;
  }
}

StatusOr<std::vector<std::vector<datalog::Term>>>
RemoteSource::FetchBatchUncached(
    const std::vector<std::map<int, datalog::Term>>& batch,
    const RetryPolicy& retry, double* simulated_ms,
    exec::RuntimeAccounting* accounting) {
  // Accounting accrues call-locally and commits on every exit path: once
  // into the shared per-source stats (under the lock) and once into the
  // caller's attribution channel, so concurrent callers never see each
  // other's work in their own numbers.
  exec::RuntimeAccounting acct;
  const auto commit = [&] {
    {
      MutexLock lock(mu_);
      stats_.Merge(acct);
    }
    if (accounting != nullptr) accounting->Merge(acct);
  };
  // Trace export (the observe edge of the adaptive loop): one observation
  // per logical call, on every exit path. Latency is quantized to integer
  // microseconds so downstream accumulation commutes exactly.
  const auto report = [&](int64_t rows, int64_t attempts, int64_t failures,
                          double total_ms, bool call_failed) {
    if (trace_sink_ == nullptr) return;
    SourceObservation obs;
    obs.rows = rows;
    obs.attempts = attempts;
    obs.failures = failures;
    obs.latency_micros = llround(total_ms * 1000.0);
    obs.call_failed = call_failed;
    trace_sink_->RecordFetch(name(), obs);
  };
  if (model_.permanently_failed) {
    ++acct.permanent_failures;
    commit();
    report(/*rows=*/0, /*attempts=*/1, /*failures=*/1, /*total_ms=*/0.0,
           /*call_failed=*/true);
    return UnavailableError("source '" + name() + "' is permanently down");
  }
  const uint64_t call_hash = BatchHash(seed_, batch);
  const int max_attempts = retry.max_attempts < 1 ? 1 : retry.max_attempts;
  double call_total_ms = 0.0;   // everything this logical call cost
  double backoff_spent_ms = 0.0;
  for (int attempt = 1;; ++attempt) {
    const uint64_t attempt_hash = CombineHash(call_hash, uint64_t(attempt));
    double latency_ms =
        (model_.base_latency_ms +
         model_.per_binding_latency_ms * double(batch.size())) *
        JitterMultiplier(model_.latency_jitter,
                         CombineHash(attempt_hash, kLatencySalt));
    const bool transient_fault =
        model_.transient_failure_rate > 0.0 &&
        HashToUnit(CombineHash(attempt_hash, kFaultSalt)) <
            model_.transient_failure_rate;
    bool hedged = false;
    if (!transient_fault && model_.hedge_delay_ms > 0.0 &&
        latency_ms > model_.hedge_delay_ms) {
      // The primary is slow: race a backup call against it. The attempt
      // completes when the faster of the two responds.
      hedged = true;
      const double backup_ms =
          (model_.base_latency_ms +
           model_.per_binding_latency_ms * double(batch.size())) *
          JitterMultiplier(model_.latency_jitter,
                           CombineHash(attempt_hash, kHedgeSalt));
      const double raced = model_.hedge_delay_ms + backup_ms;
      if (raced < latency_ms) latency_ms = raced;
    }
    const bool timed_out =
        model_.call_deadline_ms > 0.0 && latency_ms > model_.call_deadline_ms;
    if (timed_out) latency_ms = model_.call_deadline_ms;

    if (!transient_fault && !timed_out) {
      // Attempt succeeds: perform the underlying fetch (fast, in-memory)
      // under the per-source mutex, then pay the simulated shipping time
      // outside it.
      StatusOr<std::vector<std::vector<datalog::Term>>> rows =
          [&]() -> StatusOr<std::vector<std::vector<datalog::Term>>> {
        MutexLock lock(mu_);
        return source_->FetchBatch(batch);
      }();
      if (!rows.ok()) {
        commit();
        return rows.status();  // contract violation, not a fault
      }
      latency_ms += model_.per_tuple_latency_ms * double(rows->size());
      call_total_ms += latency_ms;
      acct.latency_ms_total += latency_ms;
      if (latency_ms > acct.latency_ms_max) acct.latency_ms_max = latency_ms;
      if (hedged) ++acct.hedged_calls;
      commit();
      report(int64_t(rows->size()), attempt, attempt - 1, call_total_ms,
             /*call_failed=*/false);
      clock_->SleepMs(latency_ms, time_dilation_);
      if (simulated_ms != nullptr) *simulated_ms += call_total_ms;
      return rows;
    }

    // Failed attempt: it still cost its latency.
    call_total_ms += latency_ms;
    acct.latency_ms_total += latency_ms;
    if (latency_ms > acct.latency_ms_max) acct.latency_ms_max = latency_ms;
    if (timed_out) {
      ++acct.deadline_timeouts;
    } else {
      ++acct.transient_failures;
    }
    if (hedged) ++acct.hedged_calls;
    clock_->SleepMs(latency_ms, time_dilation_);
    if (attempt >= max_attempts) {
      commit();
      report(/*rows=*/0, attempt, attempt, call_total_ms,
             /*call_failed=*/true);
      if (simulated_ms != nullptr) *simulated_ms += call_total_ms;
      return UnavailableError("source '" + name() + "' failed " +
                              std::to_string(attempt) +
                              " attempts (retries exhausted)");
    }
    const double backoff_ms =
        retry.BackoffMs(attempt, CombineHash(attempt_hash, kBackoffSalt));
    backoff_spent_ms += backoff_ms;
    if (retry.retry_budget_ms > 0.0 &&
        backoff_spent_ms > retry.retry_budget_ms) {
      commit();
      report(/*rows=*/0, attempt, attempt, call_total_ms,
             /*call_failed=*/true);
      if (simulated_ms != nullptr) *simulated_ms += call_total_ms;
      return UnavailableError("source '" + name() +
                              "': retry budget exhausted after " +
                              std::to_string(attempt) + " attempts");
    }
    call_total_ms += backoff_ms;
    ++acct.retries;
    clock_->SleepMs(backoff_ms, time_dilation_);
  }
}

exec::RuntimeAccounting RemoteSource::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void RemoteSource::ResetStats() {
  MutexLock lock(mu_);
  stats_ = exec::RuntimeAccounting{};
}

RemoteRegistry::RemoteRegistry(exec::SourceRegistry* underlying,
                               uint64_t seed) {
  // Sorted-name iteration + one Rng stream: each source's key depends only on
  // (seed, its rank), so the same seed reproduces the same per-source
  // behavior across runs and platforms.
  Rng rng(seed);
  for (const std::string& name : underlying->Names()) {
    const uint64_t source_seed =
        CombineHash(rng.engine()(), HashString(name));
    sources_.emplace(name, std::make_unique<RemoteSource>(
                               underlying->Find(name), source_seed));
  }
}

RemoteSource* RemoteRegistry::Find(const std::string& name) {
  auto it = sources_.find(name);
  return it == sources_.end() ? nullptr : it->second.get();
}

const RemoteSource* RemoteRegistry::Find(const std::string& name) const {
  auto it = sources_.find(name);
  return it == sources_.end() ? nullptr : it->second.get();
}

std::vector<std::string> RemoteRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(sources_.size());
  for (const auto& [name, unused] : sources_) names.push_back(name);
  return names;
}

void RemoteRegistry::ConfigureAll(const NetworkModel& model) {
  for (auto& [unused, source] : sources_) source->set_model(model);
}

Status RemoteRegistry::Configure(const std::string& name,
                                 const NetworkModel& model) {
  RemoteSource* source = Find(name);
  if (source == nullptr) {
    return NotFoundError("no remote source '" + name + "'");
  }
  source->set_model(model);
  return OkStatus();
}

void RemoteRegistry::set_time_dilation(double dilation) {
  for (auto& [unused, source] : sources_) source->set_time_dilation(dilation);
}

void RemoteRegistry::set_clock(Clock* clock) {
  for (auto& [unused, source] : sources_) source->set_clock(clock);
}

void RemoteRegistry::set_result_cache(SourceResultCache* cache) {
  for (auto& [unused, source] : sources_) source->set_result_cache(cache);
}

void RemoteRegistry::set_trace_sink(SourceTraceSink* sink) {
  for (auto& [unused, source] : sources_) source->set_trace_sink(sink);
}

exec::RuntimeAccounting RemoteRegistry::TotalStats() const {
  exec::RuntimeAccounting total;
  for (const auto& [unused, source] : sources_) total.Merge(source->stats());
  return total;
}

void RemoteRegistry::ResetStats() {
  for (auto& [unused, source] : sources_) source->ResetStats();
}

}  // namespace planorder::runtime
