#include "runtime/retry_policy.h"

#include <algorithm>
#include <cmath>

namespace planorder::runtime {

uint64_t MixHash(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t CombineHash(uint64_t a, uint64_t b) {
  return MixHash(a ^ MixHash(b));
}

uint64_t HashString(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

double HashToUnit(uint64_t h) {
  // 53 high bits -> [0, 1) with full double precision.
  return double(h >> 11) * 0x1.0p-53;
}

double RetryPolicy::BackoffMs(int attempt, uint64_t hash) const {
  if (attempt < 1) attempt = 1;
  double backoff = initial_backoff_ms;
  for (int i = 1; i < attempt; ++i) {
    backoff *= backoff_multiplier;
    if (backoff >= max_backoff_ms) break;
  }
  backoff = std::min(backoff, max_backoff_ms);
  if (jitter_fraction > 0.0) {
    backoff *= 1.0 - jitter_fraction * HashToUnit(MixHash(hash));
  }
  return std::max(backoff, 0.0);
}

}  // namespace planorder::runtime
