#ifndef PLANORDER_RUNTIME_RETRY_POLICY_H_
#define PLANORDER_RUNTIME_RETRY_POLICY_H_

#include <cstdint>
#include <string_view>

namespace planorder::runtime {

/// Deterministic, schedule-independent randomness for the simulated network.
///
/// The runtime executes source calls on a thread pool, so consuming a
/// sequential RNG stream would make latency and fault draws depend on thread
/// interleaving. Instead every draw is a pure hash of *what* is being done —
/// (seed, source, call payload, attempt) — so a run with the same seed makes
/// identical decisions no matter how the scheduler slices it. base/rng.h
/// still seeds the per-source keys (see RemoteRegistry), keeping the single
/// recorded-seed reproducibility convention of the rest of the library.
///
/// MixHash is the SplitMix64 finalizer (Steele et al.), a strong 64-bit
/// mixer; CombineHash folds two words; HashString is FNV-1a.
uint64_t MixHash(uint64_t x);
uint64_t CombineHash(uint64_t a, uint64_t b);
uint64_t HashString(std::string_view s);

/// Maps a hash to a uniform real in [0, 1).
double HashToUnit(uint64_t h);

/// Capped exponential backoff with deterministic jitter and an optional
/// per-call retry budget. Attempt numbering is 1-based: attempt 1 is the
/// initial call; BackoffMs(k, h) is the wait before attempt k+1.
struct RetryPolicy {
  /// Total attempts per call, including the first. <= 1 disables retries.
  int max_attempts = 4;
  double initial_backoff_ms = 1.0;
  double backoff_multiplier = 2.0;
  /// Ceiling for a single backoff interval (pre-jitter).
  double max_backoff_ms = 64.0;
  /// "Equal jitter": the wait is backoff * (1 - jitter_fraction * u) with
  /// u ~ U[0,1) drawn from `hash`. 0 = full determinism without spread.
  double jitter_fraction = 0.5;
  /// Cap on the *summed* backoff a single call may accumulate across its
  /// retries; once exceeded the call gives up early. <= 0 = no budget.
  double retry_budget_ms = 0.0;

  /// The backoff before attempt `attempt + 1` (so attempt >= 1), jittered
  /// deterministically by `hash`.
  double BackoffMs(int attempt, uint64_t hash) const;
};

}  // namespace planorder::runtime

#endif  // PLANORDER_RUNTIME_RETRY_POLICY_H_
