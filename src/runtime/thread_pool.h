#ifndef PLANORDER_RUNTIME_THREAD_POOL_H_
#define PLANORDER_RUNTIME_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace planorder::runtime {

/// A fixed-size worker pool with a shared FIFO task queue. Tasks are opaque
/// thunks; completion is tracked per batch by TaskGroup, not by the pool
/// itself. The destructor drains the queue (every submitted task still runs)
/// and joins the workers, so a pool can be stack-allocated around a batch of
/// work.
///
/// The pool is the concurrency substrate of the resilient source-access
/// runtime: parallel dependent-join partitions (see parallel_join.h) and any
/// future parallel work (plan evaluation sharding, statistics estimation) go
/// through here rather than spawning ad-hoc threads.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Never blocks (unbounded queue); safe from any thread,
  /// including from inside a running task.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

/// Joins a batch of tasks submitted to a ThreadPool: Submit() forwards to the
/// pool and counts the task pending; Wait() blocks until every submitted task
/// has finished. A TaskGroup may be reused for consecutive batches, but
/// Submit() must not race with Wait() returning (one batch at a time per
/// group).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  /// Waits for any still-pending tasks (a TaskGroup never abandons work).
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submits `task` to the pool as part of this batch.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until every task submitted so far has completed.
  void Wait() EXCLUDES(mu_);

 private:
  ThreadPool* pool_;
  Mutex mu_;
  CondVar cv_;
  int pending_ GUARDED_BY(mu_) = 0;
};

}  // namespace planorder::runtime

#endif  // PLANORDER_RUNTIME_THREAD_POOL_H_
