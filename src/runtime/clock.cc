#include "runtime/clock.h"

namespace planorder::runtime {

RealClock* RealClock::Instance() {
  static RealClock* clock = new RealClock();
  return clock;
}

}  // namespace planorder::runtime
