#include "runtime/source_runtime.h"

#include <utility>

namespace planorder::runtime {

namespace {

/// Counter-wise after - before, to attribute registry-level accounting to a
/// single plan execution.
exec::RuntimeAccounting Delta(const exec::RuntimeAccounting& after,
                              const exec::RuntimeAccounting& before) {
  exec::RuntimeAccounting delta;
  delta.retries = after.retries - before.retries;
  delta.transient_failures =
      after.transient_failures - before.transient_failures;
  delta.deadline_timeouts = after.deadline_timeouts - before.deadline_timeouts;
  delta.permanent_failures =
      after.permanent_failures - before.permanent_failures;
  delta.hedged_calls = after.hedged_calls - before.hedged_calls;
  delta.latency_ms_total = after.latency_ms_total - before.latency_ms_total;
  delta.latency_ms_max = after.latency_ms_max;  // max is monotone; keep peak
  return delta;
}

}  // namespace

SourceRuntime::SourceRuntime(exec::SourceRegistry* sources,
                             const RuntimeOptions& options)
    : options_(options),
      sources_(sources),
      pool_(options.num_threads),
      remotes_(sources, options.seed) {
  remotes_.ConfigureAll(options_.default_model);
  remotes_.set_time_dilation(options_.time_dilation);
  join_options_.max_partitions = options_.max_partitions_per_call > 0
                                     ? options_.max_partitions_per_call
                                     : pool_.num_threads();
  join_options_.min_partition_size = options_.min_partition_size;
  join_options_.retry = options_.retry;
  join_options_.plan_budget_ms = options_.plan_budget_ms;
}

StatusOr<exec::PlanExecution> SourceRuntime::ExecutePlan(
    const datalog::ConjunctiveQuery& rewriting) {
  const exec::RuntimeAccounting runtime_before = remotes_.TotalStats();
  const exec::AccessStats access_before = sources_->TotalStats();

  exec::PlanExecution exec;
  exec::ExecutionTrace trace;
  auto tuples = ExecutePlanDependentParallel(rewriting, remotes_, pool_,
                                             join_options_, &trace);
  exec.runtime = Delta(remotes_.TotalStats(), runtime_before);
  const exec::AccessStats access_after = sources_->TotalStats();
  exec.source_calls = access_after.calls - access_before.calls;
  exec.tuples_shipped = access_after.tuples_shipped -
                        access_before.tuples_shipped;
  if (!tuples.ok()) {
    const StatusCode code = tuples.status().code();
    if (code == StatusCode::kUnavailable ||
        code == StatusCode::kDeadlineExceeded) {
      // Graceful degradation: the plan is lost to its sources, the run is
      // not. The mediator discards it like an unsound plan.
      exec.failed = true;
      exec.failure_reason = tuples.status().ToString();
      return exec;
    }
    return tuples.status();
  }
  exec.tuples = std::move(*tuples);
  return exec;
}

}  // namespace planorder::runtime
