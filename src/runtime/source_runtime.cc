#include "runtime/source_runtime.h"

#include <utility>

namespace planorder::runtime {

SourceRuntime::SourceRuntime(exec::SourceRegistry* sources,
                             const RuntimeOptions& options)
    : options_(options),
      sources_(sources),
      pool_(options.num_threads),
      remotes_(sources, options.seed) {
  remotes_.ConfigureAll(options_.default_model);
  remotes_.set_time_dilation(options_.time_dilation);
  if (options_.clock != nullptr) remotes_.set_clock(options_.clock);
  if (options_.source_cache != nullptr) {
    remotes_.set_result_cache(options_.source_cache);
  }
  if (options_.trace_sink != nullptr) {
    remotes_.set_trace_sink(options_.trace_sink);
  }
  join_options_.max_partitions = options_.max_partitions_per_call > 0
                                     ? options_.max_partitions_per_call
                                     : pool_.num_threads();
  join_options_.min_partition_size = options_.min_partition_size;
  join_options_.retry = options_.retry;
  join_options_.plan_budget_ms = options_.plan_budget_ms;
}

StatusOr<exec::PlanExecution> SourceRuntime::ExecutePlan(
    const datalog::ConjunctiveQuery& rewriting) {
  // Accounting is collected plan-locally (threaded down through every
  // FetchBatch of this execution), never by diffing the shared registry
  // totals: concurrent plans from other sessions interleave with this one,
  // so registry deltas would attribute their work to us. Call and shipping
  // counts come from the plan's own execution trace for the same reason.
  exec::PlanExecution exec;
  exec::ExecutionTrace trace;
  auto tuples =
      ExecutePlanDependentParallel(rewriting, remotes_, pool_, join_options_,
                                   &trace, /*simulated_ms=*/nullptr,
                                   &exec.runtime);
  exec.source_calls = trace.TotalCalls();
  exec.tuples_shipped = trace.TotalTuplesShipped();
  if (!tuples.ok()) {
    const StatusCode code = tuples.status().code();
    if (code == StatusCode::kUnavailable ||
        code == StatusCode::kDeadlineExceeded) {
      // Graceful degradation: the plan is lost to its sources, the run is
      // not. The mediator discards it like an unsound plan.
      exec.failed = true;
      exec.failure_reason = tuples.status().ToString();
      return exec;
    }
    return tuples.status();
  }
  exec.tuples = std::move(*tuples);
  return exec;
}

}  // namespace planorder::runtime
