#ifndef PLANORDER_RUNTIME_TRACE_SINK_H_
#define PLANORDER_RUNTIME_TRACE_SINK_H_

#include <cstdint>
#include <string>

namespace planorder::runtime {

/// One completed resilient source call, reduced to the integer facts the
/// adaptive statistics layer folds (src/adaptive/observed_stats.h). Every
/// field is integral on purpose: integer addition commutes and associates
/// exactly, so accumulating observations is bit-identical under any thread
/// interleaving — the property the determinism contract (DESIGN.md §9)
/// demands of everything feeding back into plan ordering.
struct SourceObservation {
  /// Result tuples shipped back (0 when the call failed).
  int64_t rows = 0;
  /// Call attempts paid, 1 + retries.
  int64_t attempts = 0;
  /// Failed attempts among them (transient faults + deadline timeouts).
  int64_t failures = 0;
  /// Total simulated latency of the call in microseconds, including failed
  /// attempts and backoff waits (undilated, like RuntimeAccounting).
  int64_t latency_micros = 0;
  /// The whole logical call gave up (permanent outage, retries exhausted).
  bool call_failed = false;
};

/// Receiver of per-call execution traces from the resilient runtime — the
/// observe edge of the observe → re-rank → persist loop. Implementations
/// must be thread-safe: the runtime invokes RecordFetch from pool workers
/// concurrently. Cache hits are NOT reported (a resident operation costs
/// nothing and reveals nothing about the source's current behavior).
class SourceTraceSink {
 public:
  virtual ~SourceTraceSink() = default;

  /// Called once per completed uncached call, success or failure.
  virtual void RecordFetch(const std::string& source_name,
                           const SourceObservation& observation) = 0;
};

}  // namespace planorder::runtime

#endif  // PLANORDER_RUNTIME_TRACE_SINK_H_
