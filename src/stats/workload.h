#ifndef PLANORDER_STATS_WORKLOAD_H_
#define PLANORDER_STATS_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "stats/bitmask_universe.h"
#include "stats/coverage_universe.h"
#include "stats/source_stats.h"

namespace planorder::stats {

/// Parameters of the synthetic integration domains used by the experiments
/// (the paper's synthetic data, Section 6). Each of the m query subgoals gets
/// a bucket of `bucket_size` sources. A source covers a contiguous arc of its
/// bucket's region ring; arc lengths are sized so that a source overlaps an
/// expected `overlap_rate` fraction of the other sources in its bucket, the
/// knob the paper sweeps.
struct WorkloadOptions {
  /// Query length m (number of subgoals / buckets). 1..7 in the paper.
  int query_length = 3;
  /// Number of sources per bucket.
  int bucket_size = 10;
  /// Expected fraction of the other sources in a bucket that a given source
  /// overlaps. 0.3 in Figures 6.a-c.
  double overlap_rate = 0.3;
  /// Regions per bucket domain (<= 64).
  int regions_per_bucket = 16;

  /// Per-access overhead h of cost measures (1) and (2).
  double access_overhead = 5.0;
  /// Transmission cost α range (uniform). Varying α across sources is what
  /// makes cost measure (2) non-monotonic (Section 3).
  double alpha_min = 0.05;
  double alpha_max = 1.0;
  /// Source failure probability range (uniform).
  double failure_min = 0.0;
  double failure_max = 0.5;
  /// Monetary fee per shipped item range (uniform).
  double fee_min = 0.01;
  double fee_max = 2.0;
  /// Domain size N_b per bucket for the bound-join estimate n_j * n_i / N of
  /// cost measure (2), as a multiple of the largest source cardinality.
  double domain_size_factor = 4.0;
  /// Source cardinalities are proportional to covered weight times this many
  /// tuples per bucket domain.
  double tuples_per_domain = 1000.0;

  uint64_t seed = 42;
};

/// A fully instantiated synthetic integration domain: per-bucket region
/// weights and per-source statistics. Immutable after generation; the
/// mutable execution state (covered cells, op cache) lives in
/// utility::ExecutionContext.
class Workload {
 public:
  /// Generates a workload. Fails on out-of-range options.
  static StatusOr<Workload> Generate(const WorkloadOptions& options);

  /// Builds a workload from explicit parts (used by tests and by domains with
  /// hand-written statistics, e.g. the examples). `region_weights[b]` must
  /// have <= 64 entries; every source mask must fit in them.
  static StatusOr<Workload> FromParts(
      std::vector<std::vector<SourceStats>> buckets,
      std::vector<std::vector<double>> region_weights, double access_overhead,
      std::vector<double> domain_sizes);

  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  int bucket_size(int b) const { return static_cast<int>(buckets_[b].size()); }

  const SourceStats& source(int bucket, int index) const {
    return buckets_[bucket][index];
  }
  /// Precomputed concrete summary (point intervals) for a source.
  const StatSummary& summary(int bucket, int index) const {
    return summaries_[bucket][index];
  }

  const std::vector<std::vector<double>>& region_weights() const {
    return region_weights_;
  }
  double access_overhead() const { return access_overhead_; }
  /// Domain size N_b of bucket b (for the bound-join output estimate).
  double domain_size(int bucket) const { return domain_sizes_[bucket]; }

  /// A fresh coverage universe over this workload's region weights.
  CoverageUniverse MakeUniverse() const {
    return CoverageUniverse(region_weights_);
  }

  /// The compiled (trie + popcount-table) form of the same universe — what
  /// the ordering core evaluates against (DESIGN.md §11).
  BitmaskUniverse MakeBitmaskUniverse() const {
    return BitmaskUniverse(region_weights_);
  }

 private:
  std::vector<std::vector<SourceStats>> buckets_;
  std::vector<std::vector<StatSummary>> summaries_;
  std::vector<std::vector<double>> region_weights_;
  std::vector<double> domain_sizes_;
  double access_overhead_ = 0.0;
};

}  // namespace planorder::stats

#endif  // PLANORDER_STATS_WORKLOAD_H_
