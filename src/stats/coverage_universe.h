#ifndef PLANORDER_STATS_COVERAGE_UNIVERSE_H_
#define PLANORDER_STATS_COVERAGE_UNIVERSE_H_

#include <vector>

#include "stats/source_stats.h"

namespace planorder::stats {

/// The probabilistic coverage universe of a query with m subgoals.
///
/// Each subgoal's domain is partitioned into weighted regions (weights sum to
/// one per dimension). The answers a plan can return form the *box* that is
/// the product of its sources' region sets; the weight of a cell is the
/// product of its per-dimension region weights, i.e. the probability that a
/// random query answer falls in that cell. Plan coverage conditioned on the
/// executed plans (Section 2, Example 2.1) is then the weight of the plan's
/// box minus the cells already covered — which this class maintains
/// incrementally as plans execute.
///
/// Layout: covered cells are stored as a flat array over the first m-1
/// dimensions whose entries are 64-bit masks over the last dimension, so the
/// inner loop of both queries is a handful of bitwise ops.
class CoverageUniverse {
 public:
  /// `region_weights[b]` holds bucket b's region weights (size <= 64, must
  /// sum to ~1; not enforced so tests can use unnormalized weights).
  explicit CoverageUniverse(std::vector<std::vector<double>> region_weights);

  int num_dimensions() const { return static_cast<int>(weights_.size()); }
  int regions_in(int dimension) const {
    return static_cast<int>(weights_[dimension].size());
  }

  /// Total weight of the box (ignoring covered state).
  double BoxVolume(const std::vector<RegionMask>& box) const;

  /// Weight of the box cells not yet covered by any executed box: the
  /// conditional coverage of a plan whose per-bucket region sets are `box`.
  ///
  /// Fast paths (DESIGN.md §6) avoid the cell enumeration entirely when
  ///  - nothing has executed yet (the common first-emission case),
  ///  - the box is disjoint from every executed box in some dimension, or
  ///  - the box lies inside every executed box in all dimensions (-> 0);
  /// and the enumeration itself skips zero-weight prefix subtrees, whose
  /// cells contribute exactly nothing.
  double UncoveredBoxVolume(const std::vector<RegionMask>& box) const;

  /// Marks every cell of `box` covered (an executed plan).
  void AddBox(const std::vector<RegionMask>& box);

  /// Forgets all executed boxes.
  void Clear();

  /// Number of boxes marked covered since construction / Clear().
  int64_t num_covered_boxes() const { return num_boxes_; }

  /// Sum of weights of the regions in `mask` along `dimension`.
  double MaskWeight(int dimension, RegionMask mask) const;

 private:
  size_t FlatSize() const;

  std::vector<std::vector<double>> weights_;
  /// covered_[flat index over dims 0..m-2] = mask over dim m-1.
  std::vector<uint64_t> covered_;
  /// Per-dimension union / intersection of the executed boxes' masks, the
  /// keys to the disjointness and containment fast paths. intersection is
  /// meaningful only when num_boxes_ > 0.
  std::vector<uint64_t> covered_union_;
  std::vector<uint64_t> covered_intersection_;
  int64_t num_boxes_ = 0;
};

}  // namespace planorder::stats

#endif  // PLANORDER_STATS_COVERAGE_UNIVERSE_H_
