#ifndef PLANORDER_STATS_BITMASK_UNIVERSE_H_
#define PLANORDER_STATS_BITMASK_UNIVERSE_H_

#include <cstdint>
#include <vector>

#include "stats/source_stats.h"

namespace planorder::stats {

/// The compiled, query-optimized form of the coverage universe (DESIGN.md
/// §11): same semantics as the cell-set CoverageUniverse — weight of a box's
/// cells not yet covered by any executed box — but organized so the residual
/// query costs O(covered/uncovered boundary) instead of O(cells in the box).
///
/// The ordering core is residual-query bound: the persistent iDrips frontier
/// performs ~160 evaluations per emission and each evaluation is one or two
/// residual queries, while boxes are *added* only once per emission. Measured
/// on bench_core_parallel, the flat cell walk visits ~313 cells per
/// evaluation yet finds on average 0.07 uncovered regions per visited cell:
/// almost all of the walk re-proves that already-covered cells are still
/// covered. This class stores what that walk recomputes.
///
/// Layout — a radix trie over the dimensions kept as flat arrays (one
/// uint64_t mask per node, no pointers):
///  - level d holds one node per cell prefix over dimensions 0..d-1, indexed
///    by the flattened prefix (row-major, dimension 0 outermost);
///  - full_[d][prefix] has bit r set iff *every* cell under prefix+r is
///    covered; any_[d][prefix] has bit r set iff *some* cell under it is;
///  - at the deepest level (d = m-1) both collapse to the per-cell covered
///    mask over the last dimension — exactly the cell-set layout.
///
/// The residual query recurses only into subtrees that are partially
/// covered: fully covered subtrees contribute exactly 0.0 and are skipped
/// with one AND; fully uncovered subtrees contribute their box volume in
/// closed form (mask weight times the product of the remaining dimensions'
/// mask weights) without visiting a single cell. Early in an ordering run
/// nothing is covered and a query is O(m); late in a run nearly everything
/// is covered and the walk touches only the shrinking uncovered boundary.
///
/// Mask weights are summed through a per-dimension byte-chunk table
/// (weighted popcount: 8 table lookups instead of up to 64 count-trailing-
/// zeros iterations). Summation and recursion orders are fixed by the data
/// (ascending regions, ascending prefixes), never by thread count or
/// allocation order, so results are byte-identical across serial and
/// parallel runs — the determinism contract of DESIGN.md §6. Floating-point
/// grouping differs from CoverageUniverse's flat walk (closed forms multiply
/// where the walk adds per cell), so the two implementations agree to
/// rounding, not bit-for-bit; tests/coverage_bitmask_test.cc pins the
/// equivalence differentially.
class BitmaskUniverse {
 public:
  /// Upper bound on dimensions (matches the plan-width bound of
  /// utility::UtilityModel::EvaluateConcrete's stack buffers).
  static constexpr int kMaxDims = 16;

  /// `region_weights[b]` holds bucket b's region weights (1..64 per bucket,
  /// must sum to ~1; not enforced so tests can use unnormalized weights).
  explicit BitmaskUniverse(std::vector<std::vector<double>> region_weights);

  int num_dimensions() const { return static_cast<int>(weights_.size()); }
  int regions_in(int dimension) const {
    return static_cast<int>(weights_[dimension].size());
  }

  /// Total weight of the box (ignoring covered state).
  double BoxVolume(const RegionMask* box) const;
  double BoxVolume(const std::vector<RegionMask>& box) const;

  /// Weight of the box cells not yet covered by any executed box: the
  /// conditional coverage of a plan whose per-bucket region sets are `box`.
  /// `box` must hold num_dimensions() masks.
  double UncoveredBoxVolume(const RegionMask* box) const;
  double UncoveredBoxVolume(const std::vector<RegionMask>& box) const;

  /// Marks every cell of `box` covered (an executed plan).
  void AddBox(const RegionMask* box);
  void AddBox(const std::vector<RegionMask>& box);

  /// Forgets all executed boxes.
  void Clear();

  /// Number of boxes marked covered since construction / Clear().
  int64_t num_covered_boxes() const { return num_boxes_; }

  /// Sum of weights of the regions in `mask` along `dimension`.
  double MaskWeight(int dimension, RegionMask mask) const;

 private:
  double Residual(int d, size_t prefix, double prefix_weight,
                  const RegionMask* box, const double* suffix_volume) const;
  void Cover(int d, size_t prefix, const RegionMask* box);

  std::vector<std::vector<double>> weights_;
  /// weight_lut_[d][c * 256 + byte]: summed weight of `byte`'s set bits
  /// within dimension d's byte chunk c (the weighted-popcount table).
  std::vector<std::vector<double>> weight_lut_;
  /// All declared regions of dimension d (the low regions_in(d) bits).
  uint64_t valid_[kMaxDims] = {};
  /// Trie levels; full_[d]/any_[d] are indexed by the flattened cell prefix
  /// over dimensions 0..d-1 and hold masks over dimension d's regions. At
  /// d = m-1 only full_ is kept (any_ would be identical: one cell each).
  std::vector<std::vector<uint64_t>> full_;
  std::vector<std::vector<uint64_t>> any_;
  /// Per-dimension union / intersection of the executed boxes' masks — the
  /// disjointness / containment fast paths shared with CoverageUniverse.
  /// intersection is meaningful only when num_boxes_ > 0.
  uint64_t covered_union_[kMaxDims] = {};
  uint64_t covered_intersection_[kMaxDims] = {};
  int64_t num_boxes_ = 0;
};

}  // namespace planorder::stats

#endif  // PLANORDER_STATS_BITMASK_UNIVERSE_H_
