#include "stats/coverage_universe.h"

#include "base/logging.h"

namespace planorder::stats {

CoverageUniverse::CoverageUniverse(
    std::vector<std::vector<double>> region_weights)
    : weights_(std::move(region_weights)) {
  PLANORDER_CHECK(!weights_.empty());
  for (const auto& w : weights_) {
    PLANORDER_CHECK(!w.empty() && w.size() <= 64)
        << "between 1 and 64 regions per bucket";
  }
  covered_.assign(FlatSize(), 0);
}

size_t CoverageUniverse::FlatSize() const {
  size_t size = 1;
  for (size_t d = 0; d + 1 < weights_.size(); ++d) size *= weights_[d].size();
  return size;
}

double CoverageUniverse::MaskWeight(int dimension, RegionMask mask) const {
  double total = 0.0;
  uint64_t bits = mask.bits;
  while (bits != 0) {
    int r = __builtin_ctzll(bits);
    bits &= bits - 1;
    PLANORDER_DCHECK(r < static_cast<int>(weights_[dimension].size()));
    total += weights_[dimension][r];
  }
  return total;
}

double CoverageUniverse::BoxVolume(const std::vector<RegionMask>& box) const {
  PLANORDER_CHECK_EQ(box.size(), weights_.size());
  double volume = 1.0;
  for (size_t d = 0; d < box.size(); ++d) {
    volume *= MaskWeight(static_cast<int>(d), box[d]);
  }
  return volume;
}

double CoverageUniverse::UncoveredBoxVolume(
    const std::vector<RegionMask>& box) const {
  PLANORDER_CHECK_EQ(box.size(), weights_.size());
  const int m = num_dimensions();
  const int last = m - 1;
  // Iterate the cells of the box over dims 0..m-2; for each, subtract the
  // covered regions from the last dimension's mask and sum the survivors.
  double total = 0.0;
  std::vector<uint64_t> remaining(last); // bits of box[d] not yet visited
  std::vector<double> prefix(last + 1);  // product of weights of chosen regions
  prefix[0] = 1.0;

  int d = 0;
  if (last == 0) {
    // Single-subgoal query: one flat entry.
    uint64_t bits = box[0].bits & ~covered_[0];
    return MaskWeight(0, RegionMask{bits});
  }
  remaining[0] = box[0].bits;
  size_t flat = 0;
  std::vector<size_t> stride(last);
  stride[last - 1] = 1;
  for (int i = last - 2; i >= 0; --i) {
    stride[i] = stride[i + 1] * weights_[i + 1].size();
  }
  std::vector<size_t> flat_prefix(last + 1, 0);
  while (true) {
    if (remaining[d] == 0) {
      if (d == 0) break;
      --d;
      continue;
    }
    int r = __builtin_ctzll(remaining[d]);
    remaining[d] &= remaining[d] - 1;
    prefix[d + 1] = prefix[d] * weights_[d][r];
    flat_prefix[d + 1] = flat_prefix[d] + static_cast<size_t>(r) * stride[d];
    if (d == last - 1) {
      flat = flat_prefix[d + 1];
      uint64_t bits = box[last].bits & ~covered_[flat];
      if (bits != 0) {
        total += prefix[d + 1] * MaskWeight(last, RegionMask{bits});
      }
    } else {
      ++d;
      remaining[d] = box[d].bits;
    }
  }
  return total;
}

void CoverageUniverse::AddBox(const std::vector<RegionMask>& box) {
  PLANORDER_CHECK_EQ(box.size(), weights_.size());
  const int m = num_dimensions();
  const int last = m - 1;
  if (last == 0) {
    covered_[0] |= box[0].bits;
    return;
  }
  std::vector<uint64_t> remaining(last);
  std::vector<size_t> stride(last);
  stride[last - 1] = 1;
  for (int i = last - 2; i >= 0; --i) {
    stride[i] = stride[i + 1] * weights_[i + 1].size();
  }
  std::vector<size_t> flat_prefix(last + 1, 0);
  int d = 0;
  remaining[0] = box[0].bits;
  while (true) {
    if (remaining[d] == 0) {
      if (d == 0) break;
      --d;
      continue;
    }
    int r = __builtin_ctzll(remaining[d]);
    remaining[d] &= remaining[d] - 1;
    flat_prefix[d + 1] = flat_prefix[d] + static_cast<size_t>(r) * stride[d];
    if (d == last - 1) {
      covered_[flat_prefix[d + 1]] |= box[last].bits;
    } else {
      ++d;
      remaining[d] = box[d].bits;
    }
  }
}

void CoverageUniverse::Clear() { covered_.assign(covered_.size(), 0); }

}  // namespace planorder::stats
