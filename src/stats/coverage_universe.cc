#include "stats/coverage_universe.h"

#include "base/logging.h"

namespace planorder::stats {

CoverageUniverse::CoverageUniverse(
    std::vector<std::vector<double>> region_weights)
    : weights_(std::move(region_weights)) {
  PLANORDER_CHECK(!weights_.empty());
  for (const auto& w : weights_) {
    PLANORDER_CHECK(!w.empty() && w.size() <= 64)
        << "between 1 and 64 regions per bucket";
  }
  covered_.assign(FlatSize(), 0);
  covered_union_.assign(weights_.size(), 0);
  covered_intersection_.assign(weights_.size(), ~uint64_t{0});
}

size_t CoverageUniverse::FlatSize() const {
  size_t size = 1;
  for (size_t d = 0; d + 1 < weights_.size(); ++d) size *= weights_[d].size();
  return size;
}

double CoverageUniverse::MaskWeight(int dimension, RegionMask mask) const {
  double total = 0.0;
  uint64_t bits = mask.bits;
  while (bits != 0) {
    int r = __builtin_ctzll(bits);
    bits &= bits - 1;
    PLANORDER_DCHECK(r < static_cast<int>(weights_[dimension].size()));
    total += weights_[dimension][r];
  }
  return total;
}

double CoverageUniverse::BoxVolume(const std::vector<RegionMask>& box) const {
  PLANORDER_CHECK_EQ(box.size(), weights_.size());
  double volume = 1.0;
  for (size_t d = 0; d < box.size(); ++d) {
    volume *= MaskWeight(static_cast<int>(d), box[d]);
  }
  return volume;
}

double CoverageUniverse::UncoveredBoxVolume(
    const std::vector<RegionMask>& box) const {
  PLANORDER_CHECK_EQ(box.size(), weights_.size());
  const int m = num_dimensions();
  const int last = m - 1;
  if (num_boxes_ == 0) return BoxVolume(box);
  bool contained_everywhere = true;
  for (int d = 0; d < m; ++d) {
    // Disjoint from the union of executed masks in any one dimension means
    // no cell of the box can be covered.
    if ((box[d].bits & covered_union_[static_cast<size_t>(d)]) == 0) {
      return BoxVolume(box);
    }
    if ((box[d].bits & ~covered_intersection_[static_cast<size_t>(d)]) != 0) {
      contained_everywhere = false;
    }
  }
  // Inside every executed box's mask in every dimension: already any single
  // executed box covers all of this box's cells.
  if (contained_everywhere) return 0.0;
  // Iterate the cells of the box over dims 0..m-2; for each, subtract the
  // covered regions from the last dimension's mask and sum the survivors.
  double total = 0.0;
  std::vector<uint64_t> remaining(last); // bits of box[d] not yet visited
  std::vector<double> prefix(last + 1);  // product of weights of chosen regions
  prefix[0] = 1.0;

  int d = 0;
  if (last == 0) {
    // Single-subgoal query: one flat entry.
    uint64_t bits = box[0].bits & ~covered_[0];
    return MaskWeight(0, RegionMask{bits});
  }
  remaining[0] = box[0].bits;
  size_t flat = 0;
  std::vector<size_t> stride(last);
  stride[last - 1] = 1;
  for (int i = last - 2; i >= 0; --i) {
    stride[i] = stride[i + 1] * weights_[i + 1].size();
  }
  std::vector<size_t> flat_prefix(last + 1, 0);
  while (true) {
    if (remaining[d] == 0) {
      if (d == 0) break;
      --d;
      continue;
    }
    int r = __builtin_ctzll(remaining[d]);
    remaining[d] &= remaining[d] - 1;
    prefix[d + 1] = prefix[d] * weights_[d][r];
    // Every cell under a zero-weight prefix contributes exactly 0; skip the
    // whole subtree (or, at the innermost level, the covered-mask lookup).
    if (prefix[d + 1] == 0.0) continue;
    flat_prefix[d + 1] = flat_prefix[d] + static_cast<size_t>(r) * stride[d];
    if (d == last - 1) {
      flat = flat_prefix[d + 1];
      uint64_t bits = box[last].bits & ~covered_[flat];
      if (bits != 0) {
        total += prefix[d + 1] * MaskWeight(last, RegionMask{bits});
      }
    } else {
      ++d;
      remaining[d] = box[d].bits;
    }
  }
  return total;
}

void CoverageUniverse::AddBox(const std::vector<RegionMask>& box) {
  PLANORDER_CHECK_EQ(box.size(), weights_.size());
  const int m = num_dimensions();
  const int last = m - 1;
  ++num_boxes_;
  for (int d = 0; d < m; ++d) {
    covered_union_[static_cast<size_t>(d)] |= box[d].bits;
    covered_intersection_[static_cast<size_t>(d)] &= box[d].bits;
  }
  if (last == 0) {
    covered_[0] |= box[0].bits;
    return;
  }
  std::vector<uint64_t> remaining(last);
  std::vector<size_t> stride(last);
  stride[last - 1] = 1;
  for (int i = last - 2; i >= 0; --i) {
    stride[i] = stride[i + 1] * weights_[i + 1].size();
  }
  std::vector<size_t> flat_prefix(last + 1, 0);
  int d = 0;
  remaining[0] = box[0].bits;
  while (true) {
    if (remaining[d] == 0) {
      if (d == 0) break;
      --d;
      continue;
    }
    int r = __builtin_ctzll(remaining[d]);
    remaining[d] &= remaining[d] - 1;
    flat_prefix[d + 1] = flat_prefix[d] + static_cast<size_t>(r) * stride[d];
    if (d == last - 1) {
      covered_[flat_prefix[d + 1]] |= box[last].bits;
    } else {
      ++d;
      remaining[d] = box[d].bits;
    }
  }
}

void CoverageUniverse::Clear() {
  covered_.assign(covered_.size(), 0);
  covered_union_.assign(weights_.size(), 0);
  covered_intersection_.assign(weights_.size(), ~uint64_t{0});
  num_boxes_ = 0;
}

}  // namespace planorder::stats
