#include "stats/bitmask_universe.h"

#include "base/logging.h"

namespace planorder::stats {

BitmaskUniverse::BitmaskUniverse(
    std::vector<std::vector<double>> region_weights)
    : weights_(std::move(region_weights)) {
  PLANORDER_CHECK(!weights_.empty());
  PLANORDER_CHECK_LE(weights_.size(), static_cast<size_t>(kMaxDims))
      << "BitmaskUniverse supports at most " << kMaxDims << " dimensions";
  const size_t m = weights_.size();
  full_.resize(m);
  if (m > 1) any_.resize(m - 1);
  weight_lut_.resize(m);
  size_t level_size = 1;
  for (size_t d = 0; d < m; ++d) {
    const auto& w = weights_[d];
    PLANORDER_CHECK(!w.empty() && w.size() <= 64)
        << "between 1 and 64 regions per bucket";
    valid_[d] = w.size() == 64 ? ~uint64_t{0} : (uint64_t{1} << w.size()) - 1;
    full_[d].assign(level_size, 0);
    if (d + 1 < m) any_[d].assign(level_size, 0);
    level_size *= w.size();
    // Weighted-popcount table: chunk c, byte value v -> summed weight of v's
    // set bits (region c*8+i), added in ascending bit order so a table-based
    // sum groups like a per-bit one.
    const size_t chunks = (w.size() + 7) / 8;
    auto& lut = weight_lut_[d];
    lut.assign(chunks * 256, 0.0);
    for (size_t c = 0; c < chunks; ++c) {
      for (size_t v = 0; v < 256; ++v) {
        double total = 0.0;
        for (size_t i = 0; i < 8; ++i) {
          if ((v >> i) & 1 && c * 8 + i < w.size()) total += w[c * 8 + i];
        }
        lut[c * 256 + v] = total;
      }
    }
  }
  for (size_t d = 0; d < m; ++d) covered_intersection_[d] = ~uint64_t{0};
}

double BitmaskUniverse::MaskWeight(int dimension, RegionMask mask) const {
  const double* lut = weight_lut_[static_cast<size_t>(dimension)].data();
  uint64_t bits = mask.bits & valid_[static_cast<size_t>(dimension)];
  double total = 0.0;
  size_t base = 0;
  while (bits != 0) {
    const uint64_t byte = bits & 0xff;
    if (byte != 0) total += lut[base + byte];
    bits >>= 8;
    base += 256;
  }
  return total;
}

double BitmaskUniverse::BoxVolume(const RegionMask* box) const {
  const int m = num_dimensions();
  double volume = 1.0;
  for (int d = 0; d < m; ++d) volume *= MaskWeight(d, box[d]);
  return volume;
}

double BitmaskUniverse::BoxVolume(const std::vector<RegionMask>& box) const {
  PLANORDER_CHECK_EQ(box.size(), weights_.size());
  return BoxVolume(box.data());
}

double BitmaskUniverse::Residual(int d, size_t prefix, double prefix_weight,
                                 const RegionMask* box,
                                 const double* suffix_volume) const {
  const int last = num_dimensions() - 1;
  const uint64_t bits = box[d].bits & valid_[static_cast<size_t>(d)];
  if (d == last) {
    const uint64_t open = bits & ~full_[static_cast<size_t>(d)][prefix];
    return open == 0 ? 0.0 : prefix_weight * MaskWeight(d, RegionMask{open});
  }
  // Fully covered subtrees contribute exactly 0.0; drop them with one AND.
  const uint64_t open = bits & ~full_[static_cast<size_t>(d)][prefix];
  const uint64_t some = any_[static_cast<size_t>(d)][prefix];
  double total = 0.0;
  // Untouched subtrees in closed form: weight of the free regions times the
  // volume of the remaining dimensions' box — no cell visits.
  const uint64_t free = open & ~some;
  if (free != 0) {
    total = prefix_weight * MaskWeight(d, RegionMask{free}) *
            suffix_volume[d + 1];
  }
  // Recurse only into the partially covered boundary, ascending regions.
  uint64_t partial = open & some;
  const size_t regions = weights_[static_cast<size_t>(d)].size();
  while (partial != 0) {
    const int r = __builtin_ctzll(partial);
    partial &= partial - 1;
    const double w =
        prefix_weight * weights_[static_cast<size_t>(d)][static_cast<size_t>(r)];
    // A zero-weight prefix's whole subtree contributes exactly 0; skip it.
    if (w == 0.0) continue;
    total +=
        Residual(d + 1, prefix * regions + static_cast<size_t>(r), w, box,
                 suffix_volume);
  }
  return total;
}

double BitmaskUniverse::UncoveredBoxVolume(const RegionMask* box) const {
  const int m = num_dimensions();
  double suffix[kMaxDims + 1];
  suffix[m] = 1.0;
  for (int d = m - 1; d >= 0; --d) {
    suffix[d] = MaskWeight(d, box[d]) * suffix[d + 1];
  }
  if (num_boxes_ == 0) return suffix[0];
  bool contained_everywhere = true;
  for (int d = 0; d < m; ++d) {
    // Disjoint from the union of executed masks in any one dimension means
    // no cell of the box can be covered.
    if ((box[d].bits & covered_union_[static_cast<size_t>(d)]) == 0) {
      return suffix[0];
    }
    if ((box[d].bits & ~covered_intersection_[static_cast<size_t>(d)]) != 0) {
      contained_everywhere = false;
    }
  }
  // Inside every executed box's mask in every dimension: already any single
  // executed box covers all of this box's cells.
  if (contained_everywhere) return 0.0;
  return Residual(0, 0, 1.0, box, suffix);
}

double BitmaskUniverse::UncoveredBoxVolume(
    const std::vector<RegionMask>& box) const {
  PLANORDER_CHECK_EQ(box.size(), weights_.size());
  return UncoveredBoxVolume(box.data());
}

void BitmaskUniverse::Cover(int d, size_t prefix, const RegionMask* box) {
  const int last = num_dimensions() - 1;
  const uint64_t bits = box[d].bits & valid_[static_cast<size_t>(d)];
  if (d == last) {
    full_[static_cast<size_t>(d)][prefix] |= bits;
    return;
  }
  any_[static_cast<size_t>(d)][prefix] |= bits;
  // Already-full subtrees stay full; only descend into the rest.
  uint64_t todo = bits & ~full_[static_cast<size_t>(d)][prefix];
  const size_t regions = weights_[static_cast<size_t>(d)].size();
  uint64_t newly_full = 0;
  while (todo != 0) {
    const int r = __builtin_ctzll(todo);
    todo &= todo - 1;
    const size_t child = prefix * regions + static_cast<size_t>(r);
    Cover(d + 1, child, box);
    // Post-order fullness propagation: the child subtree is full once its
    // own mask holds every valid region of the next dimension.
    if (full_[static_cast<size_t>(d) + 1][child] == valid_[d + 1]) {
      newly_full |= uint64_t{1} << r;
    }
  }
  full_[static_cast<size_t>(d)][prefix] |= newly_full;
}

void BitmaskUniverse::AddBox(const RegionMask* box) {
  const int m = num_dimensions();
  ++num_boxes_;
  bool empty = false;
  for (int d = 0; d < m; ++d) {
    covered_union_[static_cast<size_t>(d)] |= box[d].bits;
    covered_intersection_[static_cast<size_t>(d)] &= box[d].bits;
    if ((box[d].bits & valid_[static_cast<size_t>(d)]) == 0) empty = true;
  }
  // A box empty in any dimension has no cells; union/intersection above
  // still see it (matching CoverageUniverse), the trie does not.
  if (empty) return;
  Cover(0, 0, box);
}

void BitmaskUniverse::AddBox(const std::vector<RegionMask>& box) {
  PLANORDER_CHECK_EQ(box.size(), weights_.size());
  AddBox(box.data());
}

void BitmaskUniverse::Clear() {
  for (auto& level : full_) level.assign(level.size(), 0);
  for (auto& level : any_) level.assign(level.size(), 0);
  for (size_t d = 0; d < weights_.size(); ++d) {
    covered_union_[d] = 0;
    covered_intersection_[d] = ~uint64_t{0};
  }
  num_boxes_ = 0;
}

}  // namespace planorder::stats
