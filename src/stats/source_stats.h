#ifndef PLANORDER_STATS_SOURCE_STATS_H_
#define PLANORDER_STATS_SOURCE_STATS_H_

#include <cstdint>
#include <vector>

#include "base/interval.h"

namespace planorder::stats {

/// A set of coverage regions within one bucket's subgoal domain, as a 64-bit
/// mask. The subgoal domain of every bucket is partitioned into at most 64
/// weighted regions; a source covers a subset of them. Overlap of two sources
/// is overlap of their region sets, exactly as in the paper's Figure 3 circle
/// diagrams.
struct RegionMask {
  uint64_t bits = 0;

  int count() const { return __builtin_popcountll(bits); }
  bool empty() const { return bits == 0; }
  bool Intersects(RegionMask other) const { return (bits & other.bits) != 0; }
  bool Contains(RegionMask other) const {
    return (bits & other.bits) == other.bits;
  }
  RegionMask Union(RegionMask other) const { return {bits | other.bits}; }
  RegionMask Intersection(RegionMask other) const {
    return {bits & other.bits};
  }

  friend bool operator==(RegionMask a, RegionMask b) { return a.bits == b.bits; }
};

/// Statistics the mediator keeps about one concrete source, for one query
/// subgoal (bucket). These drive every utility measure in Section 6:
///  - cardinality           n_i : expected number of tuples the source returns
///  - transmission_cost     α_i : time cost of shipping one item
///  - failure_prob          f_i : probability an access fails (retried)
///  - fee                       : monetary charge for shipping one item
///  - regions                   : coverage region set (plan-coverage measure)
struct SourceStats {
  double cardinality = 1.0;
  double transmission_cost = 1.0;
  double failure_prob = 0.0;
  double fee = 1.0;
  RegionMask regions;
};

/// Aggregated statistics of a group of sources within one bucket: each scalar
/// statistic becomes an interval spanning the group's members, and the region
/// set becomes a (union, intersection) pair. Evaluating an abstract plan runs
/// the concrete utility formula over these (Section 5.1: interval instead of
/// point arithmetic). A concrete source is the degenerate case: point
/// intervals, union == intersection, a single member.
struct StatSummary {
  int bucket = 0;
  Interval cardinality = Interval::Point(1.0);
  Interval transmission_cost = Interval::Point(1.0);
  Interval failure_prob = Interval::Point(0.0);
  Interval fee = Interval::Point(1.0);
  RegionMask mask_union;
  RegionMask mask_intersection;
  /// Max over members of the weighted size of the member's own region set.
  /// Bounds every member's (unconditioned) per-bucket coverage, which gives
  /// the coverage model an upper bound far tighter than the union mask for
  /// large groups.
  double mask_weight_max = 0.0;
  /// Concrete member indices within the bucket, sorted ascending.
  std::vector<int> members;

  bool is_concrete() const { return members.size() == 1; }

  /// The summary of a single concrete source. `mask_weight` is the weighted
  /// size of the source's region set under its bucket's region weights.
  static StatSummary ForConcrete(int bucket, int member,
                                 const SourceStats& stats,
                                 double mask_weight);

  /// The summary of the union of two groups (same bucket).
  static StatSummary Merge(const StatSummary& a, const StatSummary& b);
};

}  // namespace planorder::stats

#endif  // PLANORDER_STATS_SOURCE_STATS_H_
