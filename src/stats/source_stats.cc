#include "stats/source_stats.h"

#include <algorithm>

#include "base/logging.h"

namespace planorder::stats {

StatSummary StatSummary::ForConcrete(int bucket, int member,
                                     const SourceStats& stats,
                                     double mask_weight) {
  StatSummary summary;
  summary.bucket = bucket;
  summary.cardinality = Interval::Point(stats.cardinality);
  summary.transmission_cost = Interval::Point(stats.transmission_cost);
  summary.failure_prob = Interval::Point(stats.failure_prob);
  summary.fee = Interval::Point(stats.fee);
  summary.mask_union = stats.regions;
  summary.mask_intersection = stats.regions;
  summary.mask_weight_max = mask_weight;
  summary.members = {member};
  return summary;
}

StatSummary StatSummary::Merge(const StatSummary& a, const StatSummary& b) {
  PLANORDER_CHECK_EQ(a.bucket, b.bucket);
  StatSummary summary;
  summary.bucket = a.bucket;
  summary.cardinality = Interval::Hull(a.cardinality, b.cardinality);
  summary.transmission_cost =
      Interval::Hull(a.transmission_cost, b.transmission_cost);
  summary.failure_prob = Interval::Hull(a.failure_prob, b.failure_prob);
  summary.fee = Interval::Hull(a.fee, b.fee);
  summary.mask_union = a.mask_union.Union(b.mask_union);
  summary.mask_intersection = a.mask_intersection.Intersection(b.mask_intersection);
  summary.mask_weight_max = std::max(a.mask_weight_max, b.mask_weight_max);
  summary.members.reserve(a.members.size() + b.members.size());
  std::merge(a.members.begin(), a.members.end(), b.members.begin(),
             b.members.end(), std::back_inserter(summary.members));
  return summary;
}

}  // namespace planorder::stats
