#include "stats/workload.h"

#include <algorithm>
#include <cmath>

#include "base/rng.h"

namespace planorder::stats {
namespace {

/// A contiguous arc of `length` regions starting at `start` on a ring of
/// `ring` regions.
RegionMask Arc(int start, int length, int ring) {
  RegionMask mask;
  for (int i = 0; i < length; ++i) {
    mask.bits |= uint64_t{1} << ((start + i) % ring);
  }
  return mask;
}

}  // namespace

StatusOr<Workload> Workload::Generate(const WorkloadOptions& options) {
  if (options.query_length < 1) {
    return InvalidArgumentError("query_length must be >= 1");
  }
  if (options.bucket_size < 1) {
    return InvalidArgumentError("bucket_size must be >= 1");
  }
  if (options.regions_per_bucket < 1 || options.regions_per_bucket > 64) {
    return InvalidArgumentError("regions_per_bucket must be in [1, 64]");
  }
  if (options.overlap_rate < 0.0 || options.overlap_rate > 1.0) {
    return InvalidArgumentError("overlap_rate must be in [0, 1]");
  }
  if (options.failure_min < 0.0 || options.failure_max >= 1.0 ||
      options.failure_min > options.failure_max) {
    return InvalidArgumentError("failure range must satisfy 0 <= min <= max < 1");
  }

  Rng rng(options.seed);
  const int ring = options.regions_per_bucket;
  // Two random arcs of lengths L1, L2 on a ring of R regions intersect with
  // probability ~ min(1, (L1 + L2 - 1) / R); with a common mean length L the
  // expected pairwise overlap rate is (2L - 1) / R. Solve for L and jitter
  // individual lengths around it so cardinalities spread.
  const double mean_length =
      std::clamp((options.overlap_rate * ring + 1.0) / 2.0, 1.0, double(ring));

  std::vector<std::vector<SourceStats>> buckets(options.query_length);
  std::vector<std::vector<double>> region_weights(options.query_length);
  std::vector<double> domain_sizes(options.query_length);

  for (int b = 0; b < options.query_length; ++b) {
    // Slightly uneven region weights, normalized to 1.
    std::vector<double>& weights = region_weights[b];
    weights.resize(ring);
    double total = 0.0;
    for (double& w : weights) {
      w = rng.UniformReal(0.5, 1.5);
      total += w;
    }
    for (double& w : weights) w /= total;

    buckets[b].resize(options.bucket_size);
    double max_cardinality = 1.0;
    for (int i = 0; i < options.bucket_size; ++i) {
      SourceStats& s = buckets[b][i];
      const int length = std::clamp(
          static_cast<int>(std::lround(
              mean_length * rng.UniformReal(0.6, 1.4))),
          1, ring);
      const int start = static_cast<int>(rng.UniformInt(0, ring - 1));
      s.regions = Arc(start, length, ring);
      // Cardinality proportional to covered weight, with noise: sources that
      // cover more of the domain return more tuples.
      double covered = 0.0;
      for (int r = 0; r < ring; ++r) {
        if (s.regions.bits & (uint64_t{1} << r)) covered += weights[r];
      }
      s.cardinality = std::max(
          1.0, covered * options.tuples_per_domain * rng.UniformReal(0.7, 1.3));
      max_cardinality = std::max(max_cardinality, s.cardinality);
      s.transmission_cost = rng.UniformReal(options.alpha_min, options.alpha_max);
      s.failure_prob = rng.UniformReal(options.failure_min, options.failure_max);
      s.fee = rng.UniformReal(options.fee_min, options.fee_max);
    }
    domain_sizes[b] = max_cardinality * options.domain_size_factor;
  }

  return FromParts(std::move(buckets), std::move(region_weights),
                   options.access_overhead, std::move(domain_sizes));
}

StatusOr<Workload> Workload::FromParts(
    std::vector<std::vector<SourceStats>> buckets,
    std::vector<std::vector<double>> region_weights, double access_overhead,
    std::vector<double> domain_sizes) {
  if (buckets.empty()) return InvalidArgumentError("no buckets");
  if (buckets.size() != region_weights.size() ||
      buckets.size() != domain_sizes.size()) {
    return InvalidArgumentError(
        "buckets, region_weights and domain_sizes must align");
  }
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b].empty()) {
      return InvalidArgumentError("bucket " + std::to_string(b) + " is empty");
    }
    if (region_weights[b].empty() || region_weights[b].size() > 64) {
      return InvalidArgumentError("region_weights must have 1..64 entries");
    }
    const uint64_t valid =
        region_weights[b].size() == 64
            ? ~uint64_t{0}
            : ((uint64_t{1} << region_weights[b].size()) - 1);
    for (const SourceStats& s : buckets[b]) {
      if ((s.regions.bits & ~valid) != 0) {
        return InvalidArgumentError("source mask uses undeclared regions");
      }
      if (s.cardinality <= 0.0) {
        return InvalidArgumentError("cardinality must be positive");
      }
      if (s.failure_prob < 0.0 || s.failure_prob >= 1.0) {
        return InvalidArgumentError("failure_prob must be in [0, 1)");
      }
    }
    if (domain_sizes[b] <= 0.0) {
      return InvalidArgumentError("domain sizes must be positive");
    }
  }

  Workload w;
  w.buckets_ = std::move(buckets);
  w.region_weights_ = std::move(region_weights);
  w.domain_sizes_ = std::move(domain_sizes);
  w.access_overhead_ = access_overhead;
  w.summaries_.resize(w.buckets_.size());
  for (size_t b = 0; b < w.buckets_.size(); ++b) {
    w.summaries_[b].reserve(w.buckets_[b].size());
    for (size_t i = 0; i < w.buckets_[b].size(); ++i) {
      double mask_weight = 0.0;
      uint64_t bits = w.buckets_[b][i].regions.bits;
      while (bits != 0) {
        mask_weight += w.region_weights_[b][__builtin_ctzll(bits)];
        bits &= bits - 1;
      }
      w.summaries_[b].push_back(
          StatSummary::ForConcrete(static_cast<int>(b), static_cast<int>(i),
                                   w.buckets_[b][i], mask_weight));
    }
  }
  return w;
}

}  // namespace planorder::stats
