#ifndef PLANORDER_BASE_MUTEX_H_
#define PLANORDER_BASE_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "base/thread_annotations.h"

namespace planorder {

/// Capability-annotated wrapper over std::mutex — the lockable type the
/// thread-safety analysis (base/thread_annotations.h) can see. Every
/// mutex-holding class in the project uses this instead of a bare std::mutex
/// so its `GUARDED_BY(mu_)` members are compiler-checked under
/// `-Wthread-safety`.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped lock over a Mutex (the std::lock_guard / std::unique_lock of
/// the annotated world). Holds the capability for its lifetime; CondVar
/// waits take it by reference and re-hold it on return.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with Mutex/MutexLock. Wait atomically releases
/// the lock while blocked and re-acquires it before returning, so from the
/// analysis's point of view the caller's MutexLock scope simply stays held
/// across the call (the same convention absl::CondVar uses).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until `pred()` holds. `lock` must lock the mutex guarding the
  /// state `pred` reads.
  template <typename Pred>
  void Wait(MutexLock& lock, Pred pred) {
    cv_.wait(lock.lock_, std::move(pred));
  }

  /// As Wait, but gives up after `timeout_ms`. Returns pred() as of
  /// re-acquisition (true = condition met, false = timed out).
  template <typename Pred>
  bool WaitForMs(MutexLock& lock, double timeout_ms, Pred pred) {
    return cv_.wait_for(lock.lock_,
                        std::chrono::duration<double, std::milli>(timeout_ms),
                        std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace planorder

#endif  // PLANORDER_BASE_MUTEX_H_
