#ifndef PLANORDER_BASE_LOGGING_H_
#define PLANORDER_BASE_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace planorder {
namespace internal_logging {

/// Accumulates a fatal-check message and aborts the process when destroyed.
/// Used only via the PLANORDER_CHECK* macros below.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "CHECK failed: " << condition << " at " << file << ":" << line
            << " ";
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace planorder

/// Aborts with a diagnostic when `condition` is false. Used for internal
/// invariants that indicate a programming error, never for user input
/// (user-facing failures return Status).
#define PLANORDER_CHECK(condition)                                         \
  if (!(condition))                                                        \
  ::planorder::internal_logging::CheckFailureStream(#condition, __FILE__, \
                                                    __LINE__)

#define PLANORDER_CHECK_EQ(a, b) PLANORDER_CHECK((a) == (b))
#define PLANORDER_CHECK_NE(a, b) PLANORDER_CHECK((a) != (b))
#define PLANORDER_CHECK_LT(a, b) PLANORDER_CHECK((a) < (b))
#define PLANORDER_CHECK_LE(a, b) PLANORDER_CHECK((a) <= (b))
#define PLANORDER_CHECK_GT(a, b) PLANORDER_CHECK((a) > (b))
#define PLANORDER_CHECK_GE(a, b) PLANORDER_CHECK((a) >= (b))

/// Debug-only variant; compiles to nothing in NDEBUG builds.
#ifdef NDEBUG
#define PLANORDER_DCHECK(condition) \
  if (false) PLANORDER_CHECK(condition)
#else
#define PLANORDER_DCHECK(condition) PLANORDER_CHECK(condition)
#endif

#endif  // PLANORDER_BASE_LOGGING_H_
