#ifndef PLANORDER_BASE_INTERVAL_H_
#define PLANORDER_BASE_INTERVAL_H_

#include <ostream>
#include <string>

namespace planorder {

/// A closed real interval [lo, hi].
///
/// Abstract query plans carry their utility as an interval guaranteed to
/// contain the utility of every concrete plan they represent (Section 5.1 of
/// the paper); evaluating an abstract plan therefore runs the same formulas
/// as a concrete plan but in interval arithmetic. All operations here return
/// enclosures: the result contains f(x, y) for every x, y in the operands.
class Interval {
 public:
  /// The degenerate interval [0, 0].
  Interval() : lo_(0.0), hi_(0.0) {}

  /// The interval [lo, hi]. Requires lo <= hi (checked).
  Interval(double lo, double hi);

  /// The degenerate (point) interval [x, x].
  static Interval Point(double x) { return Interval(x, x); }

  /// The smallest interval containing both operands (interval hull).
  static Interval Hull(const Interval& a, const Interval& b);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double width() const { return hi_ - lo_; }
  double midpoint() const { return 0.5 * (lo_ + hi_); }

  /// True when the interval is a single point.
  bool is_point() const { return lo_ == hi_; }

  bool Contains(double x) const { return lo_ <= x && x <= hi_; }
  bool Contains(const Interval& other) const {
    return lo_ <= other.lo_ && other.hi_ <= hi_;
  }
  bool Intersects(const Interval& other) const {
    return lo_ <= other.hi_ && other.lo_ <= hi_;
  }

  /// True when every value of this interval is >= every value of `other`,
  /// i.e. lo() >= other.hi(). This is the plan-domination test of Drips: a
  /// plan with utility interval `a` dominates one with interval `b` when
  /// a.DominatesOrEquals(b).
  bool DominatesOrEquals(const Interval& other) const {
    return lo_ >= other.hi_;
  }

  /// Strict variant: lo() > other.hi().
  bool StrictlyDominates(const Interval& other) const {
    return lo_ > other.hi_;
  }

  Interval operator-() const { return Interval(-hi_, -lo_); }

  Interval& operator+=(const Interval& other);
  Interval& operator-=(const Interval& other);
  Interval& operator*=(const Interval& other);

  /// Enclosure of {x / y : x in this, y in other}. Requires `other` to not
  /// contain zero (checked); utility formulas in this library only divide by
  /// strictly positive tuple counts.
  Interval& operator/=(const Interval& other);

  std::string ToString() const;

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

 private:
  double lo_;
  double hi_;
};

Interval operator+(Interval a, const Interval& b);
Interval operator-(Interval a, const Interval& b);
Interval operator*(Interval a, const Interval& b);
Interval operator/(Interval a, const Interval& b);

/// Elementwise max/min enclosures: {max(x,y)} and {min(x,y)}.
Interval Max(const Interval& a, const Interval& b);
Interval Min(const Interval& a, const Interval& b);

std::ostream& operator<<(std::ostream& os, const Interval& interval);

}  // namespace planorder

#endif  // PLANORDER_BASE_INTERVAL_H_
