#ifndef PLANORDER_BASE_THREAD_ANNOTATIONS_H_
#define PLANORDER_BASE_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis capability annotations (abseil-style shim).
///
/// The annotations turn the locking discipline that DESIGN.md states in
/// comments ("guarded by mu_") into compiler-checked invariants: under
/// `clang++ -Wthread-safety` every access to a GUARDED_BY member outside its
/// mutex, every function called without a REQUIRES capability, and every
/// unbalanced ACQUIRE/RELEASE is a warning (an error in the CI lint job,
/// which builds with -Wthread-safety -Werror). Under GCC — which has no
/// thread-safety analysis — every macro expands to nothing, so the
/// annotations are free for the tier-1 build.
///
/// Use them through base/mutex.h (`Mutex`, `MutexLock`, `CondVar`), which
/// wraps the std primitives in capability-annotated types; a bare std::mutex
/// is invisible to the analysis.

#if defined(__clang__) && (!defined(SWIG))
#define PLANORDER_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PLANORDER_THREAD_ANNOTATION_(x)  // no-op
#endif

/// Declares a type to be a capability (e.g. a mutex) the analysis tracks.
#define CAPABILITY(x) PLANORDER_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose lifetime holds a capability.
#define SCOPED_CAPABILITY PLANORDER_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define GUARDED_BY(x) PLANORDER_THREAD_ANNOTATION_(guarded_by(x))

/// Declares that the data pointed to by this pointer member is protected.
#define PT_GUARDED_BY(x) PLANORDER_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares that a function may only be called while holding the capability.
#define REQUIRES(...) \
  PLANORDER_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// As REQUIRES, but for capabilities held shared (reader side).
#define REQUIRES_SHARED(...) \
  PLANORDER_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Declares that a function acquires the capability and holds it on return.
#define ACQUIRE(...) \
  PLANORDER_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Declares that a function releases the capability.
#define RELEASE(...) \
  PLANORDER_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Declares that a function acquires the capability when it returns `ret`.
#define TRY_ACQUIRE(ret, ...) \
  PLANORDER_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

/// Declares that a function must be called *without* the capability held
/// (the function acquires it itself; calling with it held would deadlock).
#define EXCLUDES(...) PLANORDER_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares that a function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) PLANORDER_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables analysis inside one function. Every use must carry
/// a comment saying why the discipline cannot be expressed.
#define NO_THREAD_SAFETY_ANALYSIS \
  PLANORDER_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // PLANORDER_BASE_THREAD_ANNOTATIONS_H_
