#include "base/interval.h"

#include <algorithm>
#include <sstream>

#include "base/logging.h"

namespace planorder {

Interval::Interval(double lo, double hi) : lo_(lo), hi_(hi) {
  PLANORDER_CHECK_LE(lo, hi) << "invalid interval [" << lo << ", " << hi << "]";
}

Interval Interval::Hull(const Interval& a, const Interval& b) {
  return Interval(std::min(a.lo_, b.lo_), std::max(a.hi_, b.hi_));
}

Interval& Interval::operator+=(const Interval& other) {
  lo_ += other.lo_;
  hi_ += other.hi_;
  return *this;
}

Interval& Interval::operator-=(const Interval& other) {
  lo_ -= other.hi_;
  hi_ -= other.lo_;
  return *this;
}

Interval& Interval::operator*=(const Interval& other) {
  const double products[4] = {lo_ * other.lo_, lo_ * other.hi_,
                              hi_ * other.lo_, hi_ * other.hi_};
  lo_ = *std::min_element(products, products + 4);
  hi_ = *std::max_element(products, products + 4);
  return *this;
}

Interval& Interval::operator/=(const Interval& other) {
  PLANORDER_CHECK(!other.Contains(0.0))
      << "interval division by " << other.ToString() << " containing zero";
  return *this *= Interval(1.0 / other.hi_, 1.0 / other.lo_);
}

std::string Interval::ToString() const {
  std::ostringstream os;
  os << "[" << lo_ << ", " << hi_ << "]";
  return os.str();
}

Interval operator+(Interval a, const Interval& b) { return a += b; }
Interval operator-(Interval a, const Interval& b) { return a -= b; }
Interval operator*(Interval a, const Interval& b) { return a *= b; }
Interval operator/(Interval a, const Interval& b) { return a /= b; }

Interval Max(const Interval& a, const Interval& b) {
  return Interval(std::max(a.lo(), b.lo()), std::max(a.hi(), b.hi()));
}

Interval Min(const Interval& a, const Interval& b) {
  return Interval(std::min(a.lo(), b.lo()), std::min(a.hi(), b.hi()));
}

std::ostream& operator<<(std::ostream& os, const Interval& interval) {
  return os << interval.ToString();
}

}  // namespace planorder
