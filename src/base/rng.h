#ifndef PLANORDER_BASE_RNG_H_
#define PLANORDER_BASE_RNG_H_

#include <cmath>
#include <cstdint>
#include <random>

namespace planorder {

/// Deterministic pseudo-random number generator used by the synthetic
/// workload and data generators. A thin wrapper over std::mt19937_64 so that
/// every experiment is reproducible from a single seed recorded in its
/// output.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Zipf-like skewed integer in [1, n]: rank r has weight r^-theta. Used to
  /// give source cardinalities the heavy-tailed spread large integration
  /// domains exhibit (a few huge national sources, many small ones).
  int64_t Zipf(int64_t n, double theta);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

inline int64_t Rng::Zipf(int64_t n, double theta) {
  // Inverse-CDF by linear scan; n is small (bucket sizes) in this library.
  double total = 0.0;
  for (int64_t r = 1; r <= n; ++r) total += 1.0 / std::pow(double(r), theta);
  double target = UniformReal(0.0, total);
  double acc = 0.0;
  for (int64_t r = 1; r <= n; ++r) {
    acc += 1.0 / std::pow(double(r), theta);
    if (acc >= target) return r;
  }
  return n;
}

}  // namespace planorder

#endif  // PLANORDER_BASE_RNG_H_
