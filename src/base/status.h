#ifndef PLANORDER_BASE_STATUS_H_
#define PLANORDER_BASE_STATUS_H_

#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace planorder {

/// Canonical error space for the library. The project does not use C++
/// exceptions; fallible operations return Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  /// A dependency (e.g. a remote source) is transiently or permanently down;
  /// the operation may be retried or the plan degraded, but did not complete.
  kUnavailable,
  /// The operation exceeded its deadline or budget before completing.
  kDeadlineExceeded,
  /// A capacity limit (admission queue, concurrent-session cap) rejected the
  /// operation; the caller may retry later. Used for load shedding by the
  /// service layer.
  kResourceExhausted,
};

/// Returns a stable human-readable name ("OK", "INVALID_ARGUMENT", ...).
std::string_view StatusCodeName(StatusCode code);

/// Value type describing the outcome of an operation: either OK, or an error
/// code with a message. Modeled after absl::Status but self-contained.
///
/// [[nodiscard]]: silently dropping a Status hides failures (a discarded
/// kUnavailable is a swallowed outage); callers that genuinely do not care
/// must say so with an explicit `(void)` cast.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A kOk code with a
  /// non-empty message is normalized to a plain OK status.
  Status(StatusCode code, std::string message)
      : code_(code),
        message_(code == StatusCode::kOk ? std::string() : std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Convenience factories mirroring the canonical error space.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status UnavailableError(std::string message);
Status DeadlineExceededError(std::string message);
Status ResourceExhaustedError(std::string message);

/// Union of a Status and a value: holds T when ok, an error Status otherwise.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// An error StatusOr. Passing an OK status is an API misuse and is
  /// converted to an internal error.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status(StatusCode::kInternal,
                       "StatusOr constructed from OK status without a value");
    }
  }

  /// A StatusOr holding a value.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accessors require ok(); violated preconditions abort (see CHECK in
  /// logging.h for rationale).
  const T& value() const& {
    AbortIfNotOk();
    return *value_;
  }
  T& value() & {
    AbortIfNotOk();
    return *value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfNotOk() const {
    if (!status_.ok()) {
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace planorder

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define PLANORDER_RETURN_IF_ERROR(expr)            \
  do {                                             \
    ::planorder::Status _status = (expr);          \
    if (!_status.ok()) return _status;             \
  } while (false)

/// Evaluates `expr` (a StatusOr expression); on error returns the status,
/// otherwise moves the value into `lhs`.
#define PLANORDER_ASSIGN_OR_RETURN(lhs, expr)                 \
  PLANORDER_ASSIGN_OR_RETURN_IMPL_(                           \
      PLANORDER_STATUS_CONCAT_(_status_or, __LINE__), lhs, expr)

#define PLANORDER_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                     \
  if (!var.ok()) return var.status();                    \
  lhs = std::move(var).value()

#define PLANORDER_STATUS_CONCAT_(a, b) PLANORDER_STATUS_CONCAT_IMPL_(a, b)
#define PLANORDER_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // PLANORDER_BASE_STATUS_H_
