#ifndef PLANORDER_DATALOG_CONJUNCTIVE_QUERY_H_
#define PLANORDER_DATALOG_CONJUNCTIVE_QUERY_H_

#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "datalog/atom.h"

namespace planorder::datalog {

/// A conjunctive query / datalog rule: head(Y) :- body_1(Y_1), ..., body_m(Y_m).
/// User queries, LAV source descriptions, query plans, and inverse rules all
/// share this shape.
struct ConjunctiveQuery {
  Atom head;
  std::vector<Atom> body;

  ConjunctiveQuery() = default;
  ConjunctiveQuery(Atom head_in, std::vector<Atom> body_in)
      : head(std::move(head_in)), body(std::move(body_in)) {}

  /// All variables occurring in head or body.
  std::set<std::string> Variables() const;

  /// Variables of the head (the distinguished variables).
  std::set<std::string> HeadVariables() const;

  /// Variables occurring in the body but not in the head (the existential
  /// variables).
  std::set<std::string> ExistentialVariables() const;

  /// OK iff the query is safe: every head variable occurs in the body.
  Status ValidateSafety() const;

  /// A copy with every variable renamed by appending `suffix`; used to give
  /// view expansions and rule instances fresh variable names.
  ConjunctiveQuery RenameVariables(const std::string& suffix) const;

  /// "q(X,Y) :- r(X,Z), s(Z,Y)".
  std::string ToString() const;

  friend bool operator==(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
    return a.head == b.head && a.body == b.body;
  }
};

/// A datalog rule is structurally a conjunctive query.
using Rule = ConjunctiveQuery;

}  // namespace planorder::datalog

#endif  // PLANORDER_DATALOG_CONJUNCTIVE_QUERY_H_
