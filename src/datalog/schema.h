#ifndef PLANORDER_DATALOG_SCHEMA_H_
#define PLANORDER_DATALOG_SCHEMA_H_

#include <map>
#include <string>

#include "base/status.h"

namespace planorder::datalog {

/// The mediated (virtual) schema of the integration domain: a set of relation
/// names with arities. User queries and source descriptions are formulated
/// over these relations.
class MediatedSchema {
 public:
  /// Registers a relation. Re-adding with the same arity is a no-op;
  /// conflicting arity is an error.
  Status AddRelation(const std::string& name, size_t arity);

  bool HasRelation(const std::string& name) const {
    return arities_.contains(name);
  }

  /// Arity of `name`, or NotFound.
  StatusOr<size_t> ArityOf(const std::string& name) const;

  const std::map<std::string, size_t>& relations() const { return arities_; }

 private:
  std::map<std::string, size_t> arities_;
};

inline Status MediatedSchema::AddRelation(const std::string& name,
                                          size_t arity) {
  auto [it, inserted] = arities_.emplace(name, arity);
  if (!inserted && it->second != arity) {
    return InvalidArgumentError("relation '" + name +
                                "' re-declared with different arity");
  }
  return OkStatus();
}

inline StatusOr<size_t> MediatedSchema::ArityOf(const std::string& name) const {
  auto it = arities_.find(name);
  if (it == arities_.end()) {
    return Status(StatusCode::kNotFound, "unknown relation '" + name + "'");
  }
  return it->second;
}

}  // namespace planorder::datalog

#endif  // PLANORDER_DATALOG_SCHEMA_H_
