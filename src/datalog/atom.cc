#include "datalog/atom.h"

namespace planorder::datalog {
namespace {

void CollectTermVariables(const Term& term, std::set<std::string>& out) {
  if (term.is_variable()) {
    out.insert(term.name());
    return;
  }
  for (const Term& arg : term.args()) CollectTermVariables(arg, out);
}

}  // namespace

bool Atom::IsGround() const {
  for (const Term& t : args) {
    if (!t.IsGround()) return false;
  }
  return true;
}

void Atom::CollectVariables(std::set<std::string>& out) const {
  for (const Term& t : args) CollectTermVariables(t, out);
}

std::string Atom::ToString() const {
  std::string out = predicate + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ",";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace planorder::datalog
