#ifndef PLANORDER_DATALOG_BUILTINS_H_
#define PLANORDER_DATALOG_BUILTINS_H_

#include <optional>
#include <string>

#include "base/status.h"
#include "datalog/atom.h"

namespace planorder::datalog {

/// Interpreted comparison predicates over numeric constants:
///   lt(X, Y)  X <  Y        gt(X, Y)  X >  Y
///   le(X, Y)  X <= Y        ge(X, Y)  X >= Y
///   neq(X, Y) X != Y
/// They may appear in query and view bodies (never as subgoals served by
/// sources). Safety requires every variable of a comparison to also occur
/// in a relational atom. Comparisons evaluate over constants that parse as
/// decimal numbers; comparing a non-numeric constant is an evaluation error.
///
/// Scope note: the plan-ordering paper works with pure conjunctive queries;
/// comparisons are the classic extension of its plan-generation substrate
/// (the bucket algorithm of Levy-Rajaraman-Ordille handles them). Supported
/// here in the evaluator, the dependent-join executor, the bucket algorithm
/// and inverse rules; the MiniCon module remains pure-conjunctive and
/// rejects them.

/// True for lt/le/gt/ge/neq with exactly two arguments.
bool IsComparisonAtom(const Atom& atom);

/// True when `name` is one of the comparison predicate names (any arity).
bool IsComparisonPredicate(const std::string& name);

/// Numeric value of a constant term, or nullopt when it is not a ground
/// numeric constant.
std::optional<double> NumericValue(const Term& term);

/// Evaluates a GROUND comparison atom. Errors when an argument is not a
/// numeric constant.
StatusOr<bool> EvaluateComparison(const Atom& atom);

}  // namespace planorder::datalog

#endif  // PLANORDER_DATALOG_BUILTINS_H_
