#include "datalog/term.h"

#include <cctype>
#include <utility>

namespace planorder::datalog {
namespace {

bool NeedsQuoting(const std::string& name) {
  if (name.empty()) return true;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '-') {
      return true;
    }
  }
  return false;
}

}  // namespace

Term Term::Variable(std::string name) {
  Term t;
  t.kind_ = Kind::kVariable;
  t.name_ = std::move(name);
  return t;
}

Term Term::Constant(std::string name) {
  Term t;
  t.kind_ = Kind::kConstant;
  t.name_ = std::move(name);
  return t;
}

Term Term::Function(std::string name, std::vector<Term> args) {
  Term t;
  t.kind_ = Kind::kFunction;
  t.name_ = std::move(name);
  t.args_ = std::move(args);
  return t;
}

bool Term::IsGround() const {
  if (is_variable()) return false;
  for (const Term& arg : args_) {
    if (!arg.IsGround()) return false;
  }
  return true;
}

std::string Term::ToString() const {
  switch (kind_) {
    case Kind::kVariable:
      return name_;
    case Kind::kConstant:
      if (NeedsQuoting(name_)) return "'" + name_ + "'";
      return name_;
    case Kind::kFunction: {
      std::string out = name_ + "(";
      for (size_t i = 0; i < args_.size(); ++i) {
        if (i > 0) out += ",";
        out += args_[i].ToString();
      }
      out += ")";
      return out;
    }
  }
  return "";
}

void Term::HashInto(size_t& seed) const {
  auto mix = [&seed](size_t v) {
    seed ^= v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
  };
  mix(static_cast<size_t>(kind_));
  mix(std::hash<std::string>()(name_));
  for (const Term& arg : args_) arg.HashInto(seed);
}

}  // namespace planorder::datalog
