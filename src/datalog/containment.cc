#include "datalog/containment.h"

#include <cmath>
#include <functional>
#include <limits>
#include <optional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "datalog/builtins.h"
#include "datalog/unify.h"

namespace planorder::datalog {
namespace {

/// Value bounds a conjunction of var-constant comparisons places on one
/// term: an interval with strictness flags plus excluded points.
struct Bounds {
  double lo = -std::numeric_limits<double>::infinity();
  bool lo_strict = false;
  double hi = std::numeric_limits<double>::infinity();
  bool hi_strict = false;
  std::set<double> excluded;

  bool Empty() const {
    if (lo > hi) return true;
    if (lo == hi && (lo_strict || hi_strict)) return true;
    if (lo == hi && excluded.contains(lo)) return true;
    return false;
  }
};

/// A comparison normalized to "term OP constant" (or detected as
/// var-var/unsupported).
struct NormalizedComparison {
  bool var_on_left = false;  // true when normalization succeeded
  std::string var;
  std::string op;  // lt | le | gt | ge | neq, applied as var OP value
  double value = 0.0;
};

const char* FlipOp(const std::string& op) {
  if (op == "lt") return "gt";
  if (op == "le") return "ge";
  if (op == "gt") return "lt";
  if (op == "ge") return "le";
  return "neq";
}

/// Tries to normalize cmp(a, b) into "var OP numeric constant".
std::optional<NormalizedComparison> Normalize(const Atom& atom) {
  const Term& a = atom.args[0];
  const Term& b = atom.args[1];
  NormalizedComparison out;
  if (a.is_variable()) {
    const std::optional<double> value = NumericValue(b);
    if (!value.has_value()) return std::nullopt;
    out.var_on_left = true;
    out.var = a.name();
    out.op = atom.predicate;
    out.value = *value;
    return out;
  }
  if (b.is_variable()) {
    const std::optional<double> value = NumericValue(a);
    if (!value.has_value()) return std::nullopt;
    out.var_on_left = true;
    out.var = b.name();
    out.op = FlipOp(atom.predicate);
    out.value = *value;
    return out;
  }
  return std::nullopt;
}

/// Accumulates `nc` into the bounds table.
void Accumulate(const NormalizedComparison& nc,
                std::map<std::string, Bounds>& bounds) {
  Bounds& b = bounds[nc.var];
  if (nc.op == "lt") {
    if (nc.value < b.hi || (nc.value == b.hi && !b.hi_strict)) {
      b.hi = nc.value;
      b.hi_strict = true;
    }
  } else if (nc.op == "le") {
    if (nc.value < b.hi) {
      b.hi = nc.value;
      b.hi_strict = false;
    }
  } else if (nc.op == "gt") {
    if (nc.value > b.lo || (nc.value == b.lo && !b.lo_strict)) {
      b.lo = nc.value;
      b.lo_strict = true;
    }
  } else if (nc.op == "ge") {
    if (nc.value > b.lo) {
      b.lo = nc.value;
      b.lo_strict = false;
    }
  } else {  // neq
    b.excluded.insert(nc.value);
  }
}

/// True when `bounds` for nc.var imply "var OP value".
bool Implies(const std::map<std::string, Bounds>& bounds,
             const NormalizedComparison& nc) {
  Bounds b;  // unconstrained default
  auto it = bounds.find(nc.var);
  if (it != bounds.end()) b = it->second;
  if (b.Empty()) return true;  // no satisfying value at all
  if (nc.op == "lt") {
    return b.hi < nc.value || (b.hi == nc.value && b.hi_strict);
  }
  if (nc.op == "le") return b.hi <= nc.value;
  if (nc.op == "gt") {
    return b.lo > nc.value || (b.lo == nc.value && b.lo_strict);
  }
  if (nc.op == "ge") return b.lo >= nc.value;
  // neq: the value must be outside the feasible region or excluded.
  if (nc.value < b.lo || nc.value > b.hi) return true;
  if (nc.value == b.lo && b.lo_strict) return true;
  if (nc.value == b.hi && b.hi_strict) return true;
  return b.excluded.contains(nc.value);
}

/// Collects the constraint state of `sub`'s comparisons. Returns false when
/// `sub` is unsatisfiable (then it is contained in everything).
bool CollectSubConstraints(const std::vector<Atom>& comparisons,
                           std::map<std::string, Bounds>& bounds,
                           std::set<std::string>& exact) {
  for (const Atom& atom : comparisons) {
    exact.insert(atom.ToString());
    if (atom.args[0].is_constant() && atom.args[1].is_constant()) {
      auto holds = EvaluateComparison(atom);
      // Non-numeric constant comparisons: treat as opaque (keep exact form).
      if (holds.ok() && !*holds) return false;  // unsatisfiable
      continue;
    }
    const std::optional<NormalizedComparison> nc = Normalize(atom);
    if (nc.has_value()) Accumulate(*nc, bounds);
    // var-var comparisons stay opaque: usable only via exact-form matching.
  }
  for (const auto& [unused, b] : bounds) {
    if (b.Empty()) return false;
  }
  return true;
}

/// True when the (resolved) comparison of `super` is implied by sub's
/// constraints.
bool ComparisonImplied(const Atom& resolved,
                       const std::map<std::string, Bounds>& bounds,
                       const std::set<std::string>& exact) {
  if (resolved.args[0].is_constant() && resolved.args[1].is_constant()) {
    auto holds = EvaluateComparison(resolved);
    return holds.ok() && *holds;
  }
  if (exact.contains(resolved.ToString())) return true;
  // Symmetric / flipped exact forms: cmp(a,b) == Flip(cmp)(b,a).
  Atom flipped;
  flipped.predicate = FlipOp(resolved.predicate);
  flipped.args = {resolved.args[1], resolved.args[0]};
  if (exact.contains(flipped.ToString())) return true;
  const std::optional<NormalizedComparison> nc = Normalize(resolved);
  if (!nc.has_value()) return false;  // var-var without exact match: unknown
  return Implies(bounds, *nc);
}

/// Backtracking search mapping each atom of `pattern_body` (relational atoms
/// of `super`, containing mappable variables) to some atom of `target_body`
/// (frozen relational atoms of `sub`); on every complete mapping, `accept`
/// gets the final substitution and may reject it (comparison implication),
/// in which case the search continues.
bool MapBody(const std::vector<Atom>& pattern_body,
             const std::vector<Atom>& target_body, size_t index,
             Substitution& subst,
             const std::function<bool(const Substitution&)>& accept) {
  if (index == pattern_body.size()) return accept(subst);
  for (const Atom& candidate : target_body) {
    Substitution attempt = subst;
    if (MatchAtom(pattern_body[index], candidate, attempt) &&
        MapBody(pattern_body, target_body, index + 1, attempt, accept)) {
      subst = std::move(attempt);
      return true;
    }
  }
  return false;
}

void Partition(const std::vector<Atom>& body, std::vector<Atom>& relational,
               std::vector<Atom>& comparisons) {
  for (const Atom& atom : body) {
    if (IsComparisonAtom(atom)) {
      comparisons.push_back(atom);
    } else {
      relational.push_back(atom);
    }
  }
}

}  // namespace

bool IsContainedIn(const ConjunctiveQuery& sub, const ConjunctiveQuery& super) {
  if (sub.head.predicate != super.head.predicate ||
      sub.head.arity() != super.head.arity()) {
    return false;
  }
  std::vector<Atom> sub_relational, sub_comparisons;
  Partition(sub.body, sub_relational, sub_comparisons);

  // Sub's constraint state; an unsatisfiable sub is contained in anything.
  std::map<std::string, Bounds> bounds;
  std::set<std::string> exact;
  if (!CollectSubConstraints(sub_comparisons, bounds, exact)) return true;

  // Rename super apart so shared variable names don't accidentally constrain
  // the mapping; sub stays as-is and is treated as frozen.
  const ConjunctiveQuery pattern = super.RenameVariables("$c");
  std::vector<Atom> super_relational, super_comparisons;
  Partition(pattern.body, super_relational, super_comparisons);

  Substitution subst;
  // The head must map exactly: pattern head args match sub head args.
  for (size_t i = 0; i < pattern.head.args.size(); ++i) {
    if (!MatchTerm(pattern.head.args[i], sub.head.args[i], subst)) {
      return false;
    }
  }
  // A homomorphism is acceptable when every super comparison, resolved
  // through it, is implied by sub's constraints. This check is sound; for
  // comparisons between two variables it may miss containments (documented
  // restriction of the classic homomorphism + implication test).
  return MapBody(super_relational, sub_relational, 0, subst,
                 [&](const Substitution& complete) {
                   for (const Atom& comparison : super_comparisons) {
                     const Atom resolved =
                         ApplySubstitution(comparison, complete);
                     if (!ComparisonImplied(resolved, bounds, exact)) {
                       return false;
                     }
                   }
                   return true;
                 });
}

bool AreEquivalent(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
  return IsContainedIn(a, b) && IsContainedIn(b, a);
}

bool IsSatisfiable(const ConjunctiveQuery& query) {
  std::vector<Atom> relational, comparisons;
  Partition(query.body, relational, comparisons);
  std::map<std::string, Bounds> bounds;
  std::set<std::string> exact;
  return CollectSubConstraints(comparisons, bounds, exact);
}

}  // namespace planorder::datalog
