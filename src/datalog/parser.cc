#include "datalog/parser.h"

#include <cctype>
#include <string>

namespace planorder::datalog {
namespace {

/// Hand-rolled recursive-descent parser over a flat character buffer.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Atom> ParseAtomOnly() {
    PLANORDER_ASSIGN_OR_RETURN(Atom atom, ParseAtomInternal());
    SkipWhitespace();
    if (!AtEnd()) {
      return InvalidArgumentError(Error("trailing characters after atom"));
    }
    return atom;
  }

  StatusOr<ConjunctiveQuery> ParseRuleOnly() {
    PLANORDER_ASSIGN_OR_RETURN(ConjunctiveQuery rule, ParseRuleInternal());
    SkipWhitespace();
    if (Peek() == '.') Advance();
    SkipWhitespace();
    if (!AtEnd()) {
      return InvalidArgumentError(Error("trailing characters after rule"));
    }
    return rule;
  }

  StatusOr<std::vector<ConjunctiveQuery>> ParseProgramOnly() {
    std::vector<ConjunctiveQuery> rules;
    SkipWhitespace();
    while (!AtEnd()) {
      PLANORDER_ASSIGN_OR_RETURN(ConjunctiveQuery rule, ParseRuleInternal());
      rules.push_back(std::move(rule));
      SkipWhitespace();
      if (Peek() == '.') {
        Advance();
      } else if (!AtEnd()) {
        return InvalidArgumentError(Error("expected '.' between statements"));
      }
      SkipWhitespace();
    }
    return rules;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset >= text_.size() ? '\0' : text_[pos_ + offset];
  }
  void Advance() { ++pos_; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '%') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        break;
      }
    }
  }

  static bool IsIdentifierChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
  }

  std::string Error(const std::string& message) const {
    return message + " at offset " + std::to_string(pos_) + " in \"" +
           std::string(text_) + "\"";
  }

  StatusOr<std::string> ParseIdentifier() {
    SkipWhitespace();
    if (!IsIdentifierChar(Peek())) {
      return InvalidArgumentError(Error("expected identifier"));
    }
    size_t start = pos_;
    while (!AtEnd() && IsIdentifierChar(Peek())) Advance();
    return std::string(text_.substr(start, pos_ - start));
  }

  StatusOr<Term> ParseTerm() {
    SkipWhitespace();
    if (Peek() == '\'') {
      Advance();
      size_t start = pos_;
      while (!AtEnd() && Peek() != '\'') Advance();
      if (AtEnd()) return InvalidArgumentError(Error("unterminated quote"));
      std::string name(text_.substr(start, pos_ - start));
      Advance();
      return Term::Constant(std::move(name));
    }
    PLANORDER_ASSIGN_OR_RETURN(std::string name, ParseIdentifier());
    // A '(' after the identifier makes this a function term (Skolem).
    SkipWhitespace();
    if (Peek() == '(') {
      Advance();
      std::vector<Term> args;
      PLANORDER_RETURN_IF_ERROR(ParseTermList(args));
      if (Peek() != ')') return InvalidArgumentError(Error("expected ')'"));
      Advance();
      return Term::Function(std::move(name), std::move(args));
    }
    if (std::isupper(static_cast<unsigned char>(name[0]))) {
      return Term::Variable(std::move(name));
    }
    return Term::Constant(std::move(name));
  }

  Status ParseTermList(std::vector<Term>& out) {
    while (true) {
      PLANORDER_ASSIGN_OR_RETURN(Term term, ParseTerm());
      out.push_back(std::move(term));
      SkipWhitespace();
      if (Peek() == ',') {
        Advance();
        continue;
      }
      return OkStatus();
    }
  }

  StatusOr<Atom> ParseAtomInternal() {
    PLANORDER_ASSIGN_OR_RETURN(std::string predicate, ParseIdentifier());
    SkipWhitespace();
    if (Peek() != '(') {
      return InvalidArgumentError(Error("expected '(' after predicate"));
    }
    Advance();
    Atom atom;
    atom.predicate = std::move(predicate);
    SkipWhitespace();
    if (Peek() != ')') {
      PLANORDER_RETURN_IF_ERROR(ParseTermList(atom.args));
      SkipWhitespace();
    }
    if (Peek() != ')') return InvalidArgumentError(Error("expected ')'"));
    Advance();
    return atom;
  }

  StatusOr<ConjunctiveQuery> ParseRuleInternal() {
    PLANORDER_ASSIGN_OR_RETURN(Atom head, ParseAtomInternal());
    ConjunctiveQuery rule;
    rule.head = std::move(head);
    SkipWhitespace();
    if (Peek() == ':' && PeekAt(1) == '-') {
      Advance();
      Advance();
      while (true) {
        PLANORDER_ASSIGN_OR_RETURN(Atom atom, ParseAtomInternal());
        rule.body.push_back(std::move(atom));
        SkipWhitespace();
        if (Peek() == ',') {
          Advance();
          continue;
        }
        break;
      }
    }
    return rule;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Atom> ParseAtom(std::string_view text) {
  return Parser(text).ParseAtomOnly();
}

StatusOr<ConjunctiveQuery> ParseRule(std::string_view text) {
  return Parser(text).ParseRuleOnly();
}

StatusOr<std::vector<ConjunctiveQuery>> ParseProgram(std::string_view text) {
  return Parser(text).ParseProgramOnly();
}

}  // namespace planorder::datalog
