#include "datalog/builtins.h"

#include <cstdlib>

namespace planorder::datalog {

bool IsComparisonPredicate(const std::string& name) {
  return name == "lt" || name == "le" || name == "gt" || name == "ge" ||
         name == "neq";
}

bool IsComparisonAtom(const Atom& atom) {
  return atom.arity() == 2 && IsComparisonPredicate(atom.predicate);
}

std::optional<double> NumericValue(const Term& term) {
  if (!term.is_constant()) return std::nullopt;
  const std::string& text = term.name();
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return std::nullopt;
  return value;
}

StatusOr<bool> EvaluateComparison(const Atom& atom) {
  if (!IsComparisonAtom(atom)) {
    return InvalidArgumentError(atom.ToString() + " is not a comparison");
  }
  const std::optional<double> lhs = NumericValue(atom.args[0]);
  const std::optional<double> rhs = NumericValue(atom.args[1]);
  if (!lhs.has_value() || !rhs.has_value()) {
    return InvalidArgumentError("comparison over non-numeric term in " +
                                atom.ToString());
  }
  if (atom.predicate == "lt") return *lhs < *rhs;
  if (atom.predicate == "le") return *lhs <= *rhs;
  if (atom.predicate == "gt") return *lhs > *rhs;
  if (atom.predicate == "ge") return *lhs >= *rhs;
  return *lhs != *rhs;  // neq
}

}  // namespace planorder::datalog
