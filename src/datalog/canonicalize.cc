#include "datalog/canonicalize.h"

#include <algorithm>
#include <utility>

namespace planorder::datalog {

namespace {

/// Upper bound on backtracking nodes. Tie exploration is factorial only for
/// pathologically self-similar bodies; past the budget the search continues
/// greedily (still deterministic — DFS order is fixed — just possibly not
/// the class-wide minimum, which a cache experiences as a miss).
constexpr int kMaxSearchNodes = 20000;

/// Appends an unambiguous rendering of `term` under the variable assignment:
/// mapped variables render as their canonical id, unmapped ones are assigned
/// the next tentative id in `local` (layered over `assigned`).
void TermSignature(const Term& term, const std::map<std::string, int>& assigned,
                   std::map<std::string, int>& local, int& next_id,
                   std::string& out) {
  switch (term.kind()) {
    case Term::Kind::kConstant:
      out += 'c';
      out += term.name();
      out += '\x1f';
      return;
    case Term::Kind::kVariable: {
      auto it = assigned.find(term.name());
      int id;
      if (it != assigned.end()) {
        id = it->second;
      } else {
        auto [lit, inserted] = local.try_emplace(term.name(), next_id);
        if (inserted) ++next_id;
        id = lit->second;
      }
      out += 'v';
      out += std::to_string(id);
      out += '\x1f';
      return;
    }
    case Term::Kind::kFunction: {
      out += 'f';
      out += term.name();
      out += '(';
      for (const Term& arg : term.args()) {
        TermSignature(arg, assigned, local, next_id, out);
      }
      out += ')';
      return;
    }
  }
}

/// Signature of one atom under the current assignment; `*local` receives the
/// tentative ids handed to the atom's fresh variables.
std::string AtomSignature(const Atom& atom,
                          const std::map<std::string, int>& assigned,
                          int next_id, std::map<std::string, int>* local) {
  std::string sig = atom.predicate;
  sig += '(';
  for (const Term& arg : atom.args) {
    TermSignature(arg, assigned, *local, next_id, sig);
  }
  sig += ')';
  return sig;
}

struct Search {
  const std::vector<Atom>* body = nullptr;
  bool exact = true;
  int nodes = 0;

  std::vector<bool> used;
  std::vector<size_t> order;
  std::map<std::string, int> assigned;
  int next_id = 0;

  bool have_best = false;
  std::string best_key;
  std::vector<size_t> best_order;
  std::map<std::string, int> best_assigned;

  void Run(const std::string& prefix) { Step(prefix); }

  void Step(const std::string& prefix) {
    ++nodes;
    if (order.size() == body->size()) {
      if (!have_best || prefix < best_key) {
        have_best = true;
        best_key = prefix;
        best_order = order;
        best_assigned = assigned;
      }
      return;
    }
    // Minimal next-atom signature under the current assignment.
    std::string min_sig;
    std::vector<size_t> ties;
    for (size_t i = 0; i < body->size(); ++i) {
      if (used[i]) continue;
      std::map<std::string, int> local;
      std::string sig =
          AtomSignature((*body)[i], assigned, next_id, &local);
      if (ties.empty() || sig < min_sig) {
        min_sig = std::move(sig);
        ties.assign(1, i);
      } else if (sig == min_sig) {
        ties.push_back(i);
      }
    }
    // Branch over ties (a minimal completion must start with a minimal
    // signature); outside exact mode or past the budget, take the first.
    const size_t branches =
        (exact && nodes < kMaxSearchNodes) ? ties.size() : 1;
    for (size_t t = 0; t < branches; ++t) {
      const size_t i = ties[t];
      // Commit the atom: assign its fresh variables for real.
      std::map<std::string, int> local;
      int committed_next = next_id;
      {
        std::string discard = (*body)[i].predicate;
        for (const Term& arg : (*body)[i].args) {
          TermSignature(arg, assigned, local, committed_next, discard);
        }
      }
      for (const auto& [name, id] : local) assigned.emplace(name, id);
      std::swap(next_id, committed_next);
      used[i] = true;
      order.push_back(i);

      Step(prefix + min_sig + '|');

      order.pop_back();
      used[i] = false;
      std::swap(next_id, committed_next);
      for (const auto& [name, unused] : local) assigned.erase(name);
    }
  }
};

Term RenameTerm(const Term& term, const std::map<std::string, int>& assigned) {
  switch (term.kind()) {
    case Term::Kind::kConstant:
      return term;
    case Term::Kind::kVariable: {
      auto it = assigned.find(term.name());
      // Every variable of a canonicalized query is assigned (head vars up
      // front, body vars during the search); an unmapped variable can only
      // come from a caller mutating the query concurrently.
      return Term::Variable(it == assigned.end()
                                ? term.name()
                                : "V" + std::to_string(it->second));
    }
    case Term::Kind::kFunction: {
      std::vector<Term> args;
      args.reserve(term.args().size());
      for (const Term& arg : term.args()) {
        args.push_back(RenameTerm(arg, assigned));
      }
      return Term::Function(term.name(), std::move(args));
    }
  }
  return term;
}

}  // namespace

CanonicalQuery CanonicalizeQuery(const ConjunctiveQuery& query) {
  Search search;
  search.body = &query.body;
  search.exact = query.body.size() <= kExactCanonicalizationLimit;
  search.used.assign(query.body.size(), false);

  // Head variables seed the assignment in argument order: head positions are
  // fixed (they define the answer-tuple layout), so this start is shared by
  // every member of the isomorphism class.
  std::string head_sig = "q(";
  for (const Term& arg : query.head.args) {
    TermSignature(arg, {}, search.assigned, search.next_id, head_sig);
  }
  head_sig += "):-";

  search.Run(head_sig);

  CanonicalQuery result;
  result.body_order = std::move(search.best_order);
  // Rebuild the canonical query from the winning order + assignment.
  std::vector<Term> head_args;
  head_args.reserve(query.head.args.size());
  for (const Term& arg : query.head.args) {
    head_args.push_back(RenameTerm(arg, search.best_assigned));
  }
  result.query.head = Atom("q", std::move(head_args));
  result.query.body.reserve(query.body.size());
  for (size_t original : result.body_order) {
    const Atom& atom = query.body[original];
    std::vector<Term> args;
    args.reserve(atom.args.size());
    for (const Term& arg : atom.args) {
      args.push_back(RenameTerm(arg, search.best_assigned));
    }
    result.query.body.emplace_back(atom.predicate, std::move(args));
  }
  for (const auto& [name, id] : search.best_assigned) {
    result.renaming.emplace(name, "V" + std::to_string(id));
  }
  result.key = result.query.ToString();
  // FNV-1a over the exact canonical text.
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : result.key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  result.hash = h;
  return result;
}

}  // namespace planorder::datalog
