#ifndef PLANORDER_DATALOG_CANONICALIZE_H_
#define PLANORDER_DATALOG_CANONICALIZE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "datalog/conjunctive_query.h"

namespace planorder::datalog {

/// The canonical form of a conjunctive query: a deterministic representative
/// of the query's isomorphism class under variable renaming and body
/// reordering. Two queries that differ only in variable names and/or the
/// order of their body subgoals canonicalize to structurally identical
/// queries (same `key`, same `hash`), which is what makes the form usable as
/// a reformulation-cache key — repeated and isomorphic queries map to one
/// entry.
///
/// The head predicate is normalized to "q": it names the answer relation but
/// does not affect the answer tuples, so queries differing only in the head
/// name share a canonical form. Head argument *positions* are preserved —
/// they define the answer-tuple layout.
struct CanonicalQuery {
  /// The canonical representative: body sorted into the canonical order,
  /// every variable renamed to V0, V1, ... (head-first, then in order of
  /// first occurrence across the canonical body), head predicate "q".
  ConjunctiveQuery query;
  /// FNV-1a hash of `key` — the structural hash used to index caches.
  uint64_t hash = 0;
  /// `query.ToString()`: the exact textual canonical form. Equal keys mean
  /// isomorphic inputs (up to the completeness caveat below); unequal keys
  /// with equal `hash` are genuine hash collisions a cache must reject.
  std::string key;
  /// body_order[i] = index in the *original* body of the atom that became
  /// canonical body position i.
  std::vector<size_t> body_order;
  /// Original variable name -> canonical name.
  std::map<std::string, std::string> renaming;
};

/// Canonicalizes `query`. Deterministic: the same input (and any
/// body-permuted, variable-renamed variant of it) always yields the same
/// canonical form.
///
/// Exactness: for bodies of up to `kExactCanonicalizationLimit` atoms the
/// canonical order is found by backtracking over signature ties, so *every*
/// pair of isomorphic queries canonicalizes identically. Longer bodies fall
/// back to a greedy tie-break (deterministic, but two isomorphic inputs may
/// then land on different representatives — a cache treats that as a miss,
/// never as a false hit). Callers that need certainty against hash or
/// canonicalization accidents verify candidate matches with the containment
/// test (datalog::AreEquivalent), which is exact.
CanonicalQuery CanonicalizeQuery(const ConjunctiveQuery& query);

/// Bodies up to this size are canonicalized exactly (see above). Mediator
/// queries are a handful of subgoals, far below this.
inline constexpr size_t kExactCanonicalizationLimit = 10;

}  // namespace planorder::datalog

#endif  // PLANORDER_DATALOG_CANONICALIZE_H_
