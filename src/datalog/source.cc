#include "datalog/source.h"

#include "datalog/builtins.h"
#include "datalog/parser.h"

namespace planorder::datalog {

StatusOr<SourceId> Catalog::AddSource(SourceDescription description) {
  if (description.view.head.predicate != description.name) {
    return InvalidArgumentError("source '" + description.name +
                                "' view head predicate is '" +
                                description.view.head.predicate + "'");
  }
  PLANORDER_RETURN_IF_ERROR(description.view.ValidateSafety());
  size_t relational_atoms = 0;
  for (const Atom& atom : description.view.body) {
    if (!IsComparisonAtom(atom)) ++relational_atoms;
  }
  if (relational_atoms == 0) {
    return InvalidArgumentError("source '" + description.name +
                                "' has no relational atoms in its view");
  }
  for (const Atom& atom : description.view.body) {
    if (IsComparisonAtom(atom)) continue;  // interpreted, not in the schema
    PLANORDER_ASSIGN_OR_RETURN(size_t arity, schema_.ArityOf(atom.predicate));
    if (arity != atom.arity()) {
      return InvalidArgumentError(
          "source '" + description.name + "' uses relation '" +
          atom.predicate + "' with arity " + std::to_string(atom.arity()) +
          " but the schema declares arity " + std::to_string(arity));
    }
  }
  for (const SourceDescription& existing : sources_) {
    if (existing.name == description.name) {
      return InvalidArgumentError("source '" + description.name +
                                  "' registered twice");
    }
  }
  sources_.push_back(std::move(description));
  return static_cast<SourceId>(sources_.size() - 1);
}

Status Catalog::SetBindingPattern(SourceId id, std::string pattern) {
  if (id < 0 || id >= num_sources()) {
    return InvalidArgumentError("unknown source id");
  }
  SourceDescription& source = sources_[static_cast<size_t>(id)];
  if (pattern.size() != source.view.head.arity()) {
    return InvalidArgumentError("binding pattern '" + pattern +
                                "' does not match the arity of '" +
                                source.name + "'");
  }
  for (char c : pattern) {
    if (c != 'b' && c != 'f') {
      return InvalidArgumentError("binding patterns use only 'b' and 'f'");
    }
  }
  source.binding_pattern = std::move(pattern);
  return OkStatus();
}

StatusOr<SourceId> Catalog::AddSourceFromText(std::string_view text) {
  PLANORDER_ASSIGN_OR_RETURN(ConjunctiveQuery view, ParseRule(text));
  SourceDescription description;
  description.name = view.head.predicate;
  description.view = std::move(view);
  return AddSource(std::move(description));
}

}  // namespace planorder::datalog
