#include "datalog/unify.h"

namespace planorder::datalog {
namespace {

/// Follows variable bindings until reaching a non-variable term or an
/// unbound variable.
const Term& Walk(const Term& term, const Substitution& subst) {
  const Term* current = &term;
  while (current->is_variable()) {
    auto it = subst.find(current->name());
    if (it == subst.end()) break;
    current = &it->second;
  }
  return *current;
}

bool OccursIn(const std::string& var, const Term& term,
              const Substitution& subst) {
  const Term& walked = Walk(term, subst);
  if (walked.is_variable()) return walked.name() == var;
  for (const Term& arg : walked.args()) {
    if (OccursIn(var, arg, subst)) return true;
  }
  return false;
}

}  // namespace

Term ApplySubstitution(const Term& term, const Substitution& subst) {
  const Term& walked = Walk(term, subst);
  if (walked.is_function()) {
    std::vector<Term> args;
    args.reserve(walked.args().size());
    for (const Term& arg : walked.args()) {
      args.push_back(ApplySubstitution(arg, subst));
    }
    return Term::Function(walked.name(), std::move(args));
  }
  return walked;
}

Atom ApplySubstitution(const Atom& atom, const Substitution& subst) {
  Atom out;
  out.predicate = atom.predicate;
  out.args.reserve(atom.args.size());
  for (const Term& t : atom.args) out.args.push_back(ApplySubstitution(t, subst));
  return out;
}

bool UnifyTerms(const Term& a, const Term& b, Substitution& subst) {
  const Term wa = Walk(a, subst);
  const Term wb = Walk(b, subst);
  if (wa.is_variable() && wb.is_variable() && wa.name() == wb.name()) {
    return true;
  }
  if (wa.is_variable()) {
    if (OccursIn(wa.name(), wb, subst)) return false;
    subst[wa.name()] = wb;
    return true;
  }
  if (wb.is_variable()) {
    if (OccursIn(wb.name(), wa, subst)) return false;
    subst[wb.name()] = wa;
    return true;
  }
  if (wa.kind() != wb.kind() || wa.name() != wb.name() ||
      wa.args().size() != wb.args().size()) {
    return false;
  }
  for (size_t i = 0; i < wa.args().size(); ++i) {
    if (!UnifyTerms(wa.args()[i], wb.args()[i], subst)) return false;
  }
  return true;
}

bool UnifyAtoms(const Atom& a, const Atom& b, Substitution& subst) {
  if (a.predicate != b.predicate || a.args.size() != b.args.size()) {
    return false;
  }
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (!UnifyTerms(a.args[i], b.args[i], subst)) return false;
  }
  return true;
}

bool MatchTerm(const Term& pattern, const Term& target, Substitution& subst) {
  // The target side is frozen: its variables are opaque symbols, never bound.
  // A pattern variable already bound must therefore be *equal* to the target,
  // not unified with it.
  if (pattern.is_variable()) {
    auto it = subst.find(pattern.name());
    if (it != subst.end()) return it->second == target;
    subst[pattern.name()] = target;
    return true;
  }
  if (pattern.kind() != target.kind() || pattern.name() != target.name() ||
      pattern.args().size() != target.args().size()) {
    return false;
  }
  for (size_t i = 0; i < pattern.args().size(); ++i) {
    if (!MatchTerm(pattern.args()[i], target.args()[i], subst)) return false;
  }
  return true;
}

bool MatchAtom(const Atom& pattern, const Atom& target, Substitution& subst) {
  if (pattern.predicate != target.predicate ||
      pattern.args.size() != target.args.size()) {
    return false;
  }
  for (size_t i = 0; i < pattern.args.size(); ++i) {
    if (!MatchTerm(pattern.args[i], target.args[i], subst)) return false;
  }
  return true;
}

}  // namespace planorder::datalog
