#ifndef PLANORDER_DATALOG_EVALUATOR_H_
#define PLANORDER_DATALOG_EVALUATOR_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/status.h"
#include "datalog/conjunctive_query.h"

namespace planorder::datalog {

/// A set of ground facts, grouped by predicate. Used both as the extensional
/// database (source instances) and as the output of program evaluation.
class Database {
 public:
  /// Adds a ground fact; duplicate insertions are ignored. Returns true if
  /// the fact was new. Non-ground atoms are a programming error (checked).
  bool AddFact(const Atom& fact);

  bool Contains(const Atom& fact) const;

  /// All tuples of `predicate` (empty when unknown).
  const std::vector<std::vector<Term>>& TuplesFor(
      const std::string& predicate) const;

  /// Total number of facts across all predicates.
  size_t size() const { return size_; }

  std::vector<std::string> Predicates() const;

 private:
  struct PredicateData {
    std::vector<std::vector<Term>> tuples;
    std::unordered_set<std::vector<Term>, TermVectorHash> index;
  };

  std::unordered_map<std::string, PredicateData> data_;
  size_t size_ = 0;
};

/// Evaluates a single conjunctive query against `db` by backtracking joins
/// over its body, returning the distinct head instantiations. Fails when the
/// query is unsafe (a head variable never bound).
StatusOr<std::vector<std::vector<Term>>> EvaluateQuery(
    const ConjunctiveQuery& query, const Database& db);

/// Options for bottom-up datalog evaluation.
struct EvaluateOptions {
  /// Iteration cap: Skolem function terms (from inverse rules) can make a
  /// genuinely recursive program diverge; evaluation errors out beyond this
  /// many semi-naive rounds.
  int max_iterations = 10'000;
  /// Fact cap, as a second safety net against term-depth blowup.
  size_t max_facts = 10'000'000;
};

/// Bottom-up semi-naive evaluation of `rules` over the extensional database
/// `edb`. Returns a database containing the EDB facts plus everything
/// derived. Rules may produce facts with Skolem function terms; the paper's
/// framework (and ours) does not handle recursive plans, so divergent
/// recursion hits the caps and errors.
StatusOr<Database> EvaluateProgram(const std::vector<Rule>& rules,
                                   const Database& edb,
                                   const EvaluateOptions& options = {});

}  // namespace planorder::datalog

#endif  // PLANORDER_DATALOG_EVALUATOR_H_
