#ifndef PLANORDER_DATALOG_TERM_H_
#define PLANORDER_DATALOG_TERM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace planorder::datalog {

/// A datalog term: a variable, a constant, or a function term. Function
/// terms only arise as the Skolem functions the inverse-rule reformulation
/// algorithm introduces (Section 7 of the paper); parsed user queries and
/// source descriptions contain only variables and constants.
class Term {
 public:
  enum class Kind { kVariable, kConstant, kFunction };

  /// Default-constructed terms are the constant "" (useful for containers).
  Term() : kind_(Kind::kConstant) {}

  static Term Variable(std::string name);
  static Term Constant(std::string name);
  static Term Function(std::string name, std::vector<Term> args);

  Kind kind() const { return kind_; }
  bool is_variable() const { return kind_ == Kind::kVariable; }
  bool is_constant() const { return kind_ == Kind::kConstant; }
  bool is_function() const { return kind_ == Kind::kFunction; }

  /// True when the term contains no variables.
  bool IsGround() const;

  const std::string& name() const { return name_; }
  const std::vector<Term>& args() const { return args_; }

  /// Prolog-ish rendering: variables as-is, constants as-is (quoted when they
  /// contain non-identifier characters), functions as f(a,b).
  std::string ToString() const;

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind_ == b.kind_ && a.name_ == b.name_ && a.args_ == b.args_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }

  /// Total order (kind, name, args) so terms can key ordered containers.
  friend bool operator<(const Term& a, const Term& b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    if (a.name_ != b.name_) return a.name_ < b.name_;
    return a.args_ < b.args_;
  }

  /// Combines into `seed` a hash of this term (FNV-style mixing).
  void HashInto(size_t& seed) const;

 private:
  Kind kind_;
  std::string name_;
  std::vector<Term> args_;
};

/// Hash functor usable with unordered containers of terms or tuples of terms.
struct TermHash {
  size_t operator()(const Term& term) const {
    size_t seed = 0x9e3779b97f4a7c15ull;
    term.HashInto(seed);
    return seed;
  }
};

struct TermVectorHash {
  size_t operator()(const std::vector<Term>& terms) const {
    size_t seed = 0x9e3779b97f4a7c15ull;
    for (const Term& t : terms) t.HashInto(seed);
    return seed;
  }
};

}  // namespace planorder::datalog

#endif  // PLANORDER_DATALOG_TERM_H_
