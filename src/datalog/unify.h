#ifndef PLANORDER_DATALOG_UNIFY_H_
#define PLANORDER_DATALOG_UNIFY_H_

#include <map>
#include <optional>
#include <string>

#include "datalog/atom.h"
#include "datalog/term.h"

namespace planorder::datalog {

/// A substitution: variable name -> term. Bindings may map to terms that
/// themselves contain variables; Apply* resolve bindings transitively.
using Substitution = std::map<std::string, Term>;

/// Applies `subst` to `term`, replacing bound variables (transitively).
Term ApplySubstitution(const Term& term, const Substitution& subst);

/// Applies `subst` to every argument of `atom`.
Atom ApplySubstitution(const Atom& atom, const Substitution& subst);

/// Extends `subst` so that ApplySubstitution(a) == ApplySubstitution(b), or
/// returns false leaving `subst` in an unspecified (possibly extended) state.
/// Callers that need rollback should copy the substitution first. Performs
/// the occurs check, so unification of cyclic bindings fails rather than
/// looping.
bool UnifyTerms(const Term& a, const Term& b, Substitution& subst);

/// Unifies two atoms (same predicate and arity, then argumentwise).
bool UnifyAtoms(const Atom& a, const Atom& b, Substitution& subst);

/// One-directional unification: extends `subst` binding only variables of
/// `pattern` so that the instantiated pattern equals `target`. Variables in
/// `target` are treated as constants ("frozen"). Used for containment
/// mappings and for matching rules against (possibly non-ground) atoms.
bool MatchTerm(const Term& pattern, const Term& target, Substitution& subst);
bool MatchAtom(const Atom& pattern, const Atom& target, Substitution& subst);

}  // namespace planorder::datalog

#endif  // PLANORDER_DATALOG_UNIFY_H_
