#ifndef PLANORDER_DATALOG_CONTAINMENT_H_
#define PLANORDER_DATALOG_CONTAINMENT_H_

#include "datalog/conjunctive_query.h"

namespace planorder::datalog {

/// True iff `sub` is contained in `super`: every answer of `sub` over every
/// database is an answer of `super`. Decided by searching for a containment
/// mapping (Chandra–Merlin): a homomorphism from the variables of `super`
/// onto terms of `sub` mapping super's head to sub's head and every body atom
/// of `super` to a body atom of `sub`. Exponential in the worst case but the
/// queries of a mediator (a handful of subgoals) are tiny.
///
/// The two queries need not use distinct variable names; `super` is renamed
/// apart internally.
bool IsContainedIn(const ConjunctiveQuery& sub, const ConjunctiveQuery& super);

/// True iff the two queries are equivalent (mutual containment).
bool AreEquivalent(const ConjunctiveQuery& a, const ConjunctiveQuery& b);

/// True iff the query can return answers on some database: its interpreted
/// comparison constraints are jointly satisfiable (the relational part
/// always is, by the canonical database). A plan whose expansion is
/// unsatisfiable is vacuously sound but provably empty; the reformulation
/// layer prunes it.
bool IsSatisfiable(const ConjunctiveQuery& query);

}  // namespace planorder::datalog

#endif  // PLANORDER_DATALOG_CONTAINMENT_H_
