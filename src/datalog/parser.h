#ifndef PLANORDER_DATALOG_PARSER_H_
#define PLANORDER_DATALOG_PARSER_H_

#include <string_view>
#include <vector>

#include "base/status.h"
#include "datalog/conjunctive_query.h"

namespace planorder::datalog {

/// Parses textual datalog in Prolog-ish syntax:
///
///   Q(M,R) :- play-in(ford,M), review-of(R,M).
///
/// Tokens starting with an uppercase letter are variables; tokens starting
/// with a lowercase letter or digit are constants; single-quoted strings are
/// constants ('Harrison Ford'). Predicate and constant names may contain
/// letters, digits, '_' and '-'. '%' starts a comment running to end of line.

/// Parses a single atom, e.g. "play-in(ford, M)".
StatusOr<Atom> ParseAtom(std::string_view text);

/// Parses a single rule "head :- a1, ..., am" (trailing '.' optional). A bare
/// atom parses as a fact: a rule with empty body.
StatusOr<ConjunctiveQuery> ParseRule(std::string_view text);

/// Parses a whole program: rules/facts separated by '.'.
StatusOr<std::vector<ConjunctiveQuery>> ParseProgram(std::string_view text);

}  // namespace planorder::datalog

#endif  // PLANORDER_DATALOG_PARSER_H_
