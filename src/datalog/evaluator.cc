#include "datalog/evaluator.h"

#include <functional>
#include <set>

#include "base/logging.h"
#include "datalog/builtins.h"
#include "datalog/unify.h"

namespace planorder::datalog {
namespace {

const std::vector<std::vector<Term>> kNoTuples;

/// Enumerates all substitutions that map `body` into facts, calling `emit`
/// for each complete match. Interpreted comparison atoms evaluate as filters
/// (their variables must be bound by the time they are reached; the callers
/// order bodies to guarantee it). When `delta_position >= 0`, the atom at
/// that position is matched against `delta` instead of `db` (the semi-naive
/// restriction); other atoms match `db`.
Status JoinBody(const std::vector<Atom>& body, const Database& db,
                const Database* delta, int delta_position, size_t index,
                Substitution& subst,
                const std::function<void(const Substitution&)>& emit) {
  if (index == body.size()) {
    emit(subst);
    return OkStatus();
  }
  const Atom& atom = body[index];
  if (IsComparisonAtom(atom)) {
    const Atom resolved = ApplySubstitution(atom, subst);
    if (!resolved.IsGround()) {
      return InternalError("comparison reached before its variables bound: " +
                           atom.ToString());
    }
    PLANORDER_ASSIGN_OR_RETURN(bool holds, EvaluateComparison(resolved));
    if (!holds) return OkStatus();
    return JoinBody(body, db, delta, delta_position, index + 1, subst, emit);
  }
  const Database& from =
      (delta != nullptr && static_cast<int>(index) == delta_position) ? *delta
                                                                      : db;
  for (const std::vector<Term>& tuple : from.TuplesFor(atom.predicate)) {
    Substitution attempt = subst;
    bool matched = true;
    if (tuple.size() != atom.args.size()) continue;
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (!MatchTerm(atom.args[i], tuple[i], attempt)) {
        matched = false;
        break;
      }
    }
    if (matched) {
      PLANORDER_RETURN_IF_ERROR(
          JoinBody(body, db, delta, delta_position, index + 1, attempt, emit));
    }
  }
  return OkStatus();
}

/// Greedy join ordering: repeatedly pick the atom with the most arguments
/// already bound (constants or variables bound by earlier atoms), breaking
/// ties toward fewer free variables and then original position. Pure
/// reordering — conjunction is commutative — but turns cross products into
/// index-friendly nested joins.
std::vector<Atom> OrderBodyForJoin(const std::vector<Atom>& body) {
  std::vector<Atom> ordered;
  ordered.reserve(body.size());
  std::set<std::string> bound;
  std::vector<bool> used(body.size(), false);
  for (size_t step = 0; step < body.size(); ++step) {
    int best = -1;
    int best_bound = -1;
    int best_free = 0;
    for (size_t i = 0; i < body.size(); ++i) {
      if (used[i]) continue;
      std::set<std::string> vars;
      body[i].CollectVariables(vars);
      int bound_count = static_cast<int>(body[i].args.size() - vars.size());
      int free_count = 0;
      for (const std::string& v : vars) {
        if (bound.contains(v)) {
          ++bound_count;
        } else {
          ++free_count;
        }
      }
      // Comparisons are filters: only eligible once fully bound (safety
      // guarantees a relational atom is always available otherwise), and
      // then they run first.
      if (IsComparisonAtom(body[i])) {
        if (free_count > 0) continue;
        best = static_cast<int>(i);
        break;
      }
      if (best < 0 || bound_count > best_bound ||
          (bound_count == best_bound && free_count < best_free)) {
        best = static_cast<int>(i);
        best_bound = bound_count;
        best_free = free_count;
      }
    }
    used[static_cast<size_t>(best)] = true;
    body[static_cast<size_t>(best)].CollectVariables(bound);
    ordered.push_back(body[static_cast<size_t>(best)]);
  }
  return ordered;
}

}  // namespace

bool Database::AddFact(const Atom& fact) {
  PLANORDER_CHECK(fact.IsGround()) << "non-ground fact " << fact.ToString();
  PredicateData& pd = data_[fact.predicate];
  auto [it, inserted] = pd.index.insert(fact.args);
  if (inserted) {
    pd.tuples.push_back(fact.args);
    ++size_;
  }
  return inserted;
}

bool Database::Contains(const Atom& fact) const {
  auto it = data_.find(fact.predicate);
  if (it == data_.end()) return false;
  return it->second.index.contains(fact.args);
}

const std::vector<std::vector<Term>>& Database::TuplesFor(
    const std::string& predicate) const {
  auto it = data_.find(predicate);
  if (it == data_.end()) return kNoTuples;
  return it->second.tuples;
}

std::vector<std::string> Database::Predicates() const {
  std::vector<std::string> out;
  out.reserve(data_.size());
  for (const auto& [pred, unused] : data_) out.push_back(pred);
  return out;
}

StatusOr<std::vector<std::vector<Term>>> EvaluateQuery(
    const ConjunctiveQuery& query, const Database& db) {
  PLANORDER_RETURN_IF_ERROR(query.ValidateSafety());
  std::unordered_set<std::vector<Term>, TermVectorHash> seen;
  std::vector<std::vector<Term>> results;
  Substitution subst;
  Status status = OkStatus();
  const std::vector<Atom> body = OrderBodyForJoin(query.body);
  PLANORDER_RETURN_IF_ERROR(
      JoinBody(body, db, /*delta=*/nullptr, /*delta_position=*/-1, 0, subst,
           [&](const Substitution& complete) {
             Atom head = ApplySubstitution(query.head, complete);
             if (!head.IsGround()) {
               status = InternalError("head not ground after safe-rule join: " +
                                      head.ToString());
               return;
             }
             if (seen.insert(head.args).second) {
               results.push_back(std::move(head.args));
             }
           }));
  PLANORDER_RETURN_IF_ERROR(status);
  return results;
}

StatusOr<Database> EvaluateProgram(const std::vector<Rule>& rules,
                                   const Database& edb,
                                   const EvaluateOptions& options) {
  for (const Rule& rule : rules) {
    PLANORDER_RETURN_IF_ERROR(rule.ValidateSafety());
  }
  // Normalize rule bodies: relational atoms first (original order), then
  // comparison filters — so filters are bound when reached and the
  // semi-naive delta sweep ranges over relational positions only.
  std::vector<Rule> normalized = rules;
  std::vector<int> relational_count(normalized.size(), 0);
  for (size_t r = 0; r < normalized.size(); ++r) {
    std::vector<Atom> relational, comparisons;
    for (Atom& atom : normalized[r].body) {
      if (IsComparisonAtom(atom)) {
        comparisons.push_back(std::move(atom));
      } else {
        relational.push_back(std::move(atom));
      }
    }
    relational_count[r] = static_cast<int>(relational.size());
    normalized[r].body = std::move(relational);
    for (Atom& atom : comparisons) normalized[r].body.push_back(std::move(atom));
  }

  Database db = edb;
  Database delta = edb;
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    Database next_delta;
    for (size_t r = 0; r < normalized.size(); ++r) {
      const Rule& rule = normalized[r];
      // Semi-naive: require at least one body atom to come from the last
      // round's delta; sweep the delta position over the relational atoms.
      for (int delta_position = 0; delta_position < relational_count[r];
           ++delta_position) {
        Substitution subst;
        Status status = OkStatus();
        PLANORDER_RETURN_IF_ERROR(JoinBody(
            rule.body, db, &delta, delta_position, 0, subst,
            [&](const Substitution& complete) {
              Atom head = ApplySubstitution(rule.head, complete);
              if (!head.IsGround()) {
                status = InternalError("derived non-ground fact " +
                                       head.ToString());
                return;
              }
              if (!db.Contains(head)) next_delta.AddFact(head);
            }));
        PLANORDER_RETURN_IF_ERROR(status);
      }
    }
    if (next_delta.size() == 0) return db;
    for (const std::string& pred : next_delta.Predicates()) {
      for (const std::vector<Term>& tuple : next_delta.TuplesFor(pred)) {
        db.AddFact(Atom(pred, tuple));
      }
    }
    if (db.size() > options.max_facts) {
      return Status(StatusCode::kOutOfRange,
                    "datalog evaluation exceeded max_facts; the program is "
                    "likely recursive through Skolem terms");
    }
    delta = std::move(next_delta);
  }
  return Status(StatusCode::kOutOfRange,
                "datalog evaluation did not reach a fixpoint within "
                "max_iterations; the program is likely recursive through "
                "Skolem terms");
}

}  // namespace planorder::datalog
