#ifndef PLANORDER_DATALOG_SOURCE_H_
#define PLANORDER_DATALOG_SOURCE_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "datalog/conjunctive_query.h"
#include "datalog/schema.h"

namespace planorder::datalog {

/// Index of a source in a Catalog.
using SourceId = int;

/// A data source described local-as-view: the source relation's contents are
/// (a subset of) the tuples satisfying a conjunction of mediated-schema
/// relations, e.g.  V1(A,M) :- play-in(A,M), american(M).
struct SourceDescription {
  /// The source relation name (the view's head predicate).
  std::string name;
  /// The view definition; head predicate must equal `name`.
  ConjunctiveQuery view;
  /// Access-pattern adornment, one character per head argument: 'b' marks a
  /// position the caller MUST bind when accessing the source (a web form
  /// that needs the actor name before returning movies), 'f' a free output
  /// position. Empty means all-free. Execution must order a plan's atoms so
  /// every 'b' position is bound by constants or earlier atoms — see
  /// reformulation::FindExecutableOrder.
  std::string binding_pattern;

  /// True when head position `i` requires a binding.
  bool RequiresBound(size_t i) const {
    return i < binding_pattern.size() && binding_pattern[i] == 'b';
  }
};

/// The mediator's catalog: the mediated schema plus all registered sources.
class Catalog {
 public:
  Catalog() = default;

  MediatedSchema& schema() { return schema_; }
  const MediatedSchema& schema() const { return schema_; }

  /// Registers a source; validates that the view is safe, its head predicate
  /// matches `description.name`, and its body only uses schema relations.
  /// Returns the new source's id.
  StatusOr<SourceId> AddSource(SourceDescription description);

  /// Parses "V1(A,M) :- play-in(A,M), american(M)" and registers it.
  StatusOr<SourceId> AddSourceFromText(std::string_view text);

  /// Sets the access-pattern adornment of an existing source ('b'/'f' per
  /// head argument).
  Status SetBindingPattern(SourceId id, std::string pattern);

  const SourceDescription& source(SourceId id) const { return sources_[id]; }
  int num_sources() const { return static_cast<int>(sources_.size()); }
  const std::vector<SourceDescription>& sources() const { return sources_; }

 private:
  MediatedSchema schema_;
  std::vector<SourceDescription> sources_;
};

}  // namespace planorder::datalog

#endif  // PLANORDER_DATALOG_SOURCE_H_
