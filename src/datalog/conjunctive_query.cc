#include "datalog/conjunctive_query.h"

#include "datalog/builtins.h"
#include "datalog/unify.h"

namespace planorder::datalog {
namespace {

Term RenameTerm(const Term& term, const std::string& suffix) {
  switch (term.kind()) {
    case Term::Kind::kVariable:
      return Term::Variable(term.name() + suffix);
    case Term::Kind::kConstant:
      return term;
    case Term::Kind::kFunction: {
      std::vector<Term> args;
      args.reserve(term.args().size());
      for (const Term& arg : term.args()) args.push_back(RenameTerm(arg, suffix));
      return Term::Function(term.name(), std::move(args));
    }
  }
  return term;
}

Atom RenameAtom(const Atom& atom, const std::string& suffix) {
  Atom out;
  out.predicate = atom.predicate;
  out.args.reserve(atom.args.size());
  for (const Term& t : atom.args) out.args.push_back(RenameTerm(t, suffix));
  return out;
}

}  // namespace

std::set<std::string> ConjunctiveQuery::Variables() const {
  std::set<std::string> vars;
  head.CollectVariables(vars);
  for (const Atom& atom : body) atom.CollectVariables(vars);
  return vars;
}

std::set<std::string> ConjunctiveQuery::HeadVariables() const {
  std::set<std::string> vars;
  head.CollectVariables(vars);
  return vars;
}

std::set<std::string> ConjunctiveQuery::ExistentialVariables() const {
  std::set<std::string> body_vars;
  for (const Atom& atom : body) atom.CollectVariables(body_vars);
  for (const std::string& v : HeadVariables()) body_vars.erase(v);
  return body_vars;
}

Status ConjunctiveQuery::ValidateSafety() const {
  // Safety is judged against the relational atoms: interpreted comparison
  // atoms filter, they never bind.
  std::set<std::string> relational_vars;
  for (const Atom& atom : body) {
    if (!IsComparisonAtom(atom)) atom.CollectVariables(relational_vars);
  }
  for (const std::string& v : HeadVariables()) {
    if (!relational_vars.contains(v)) {
      return InvalidArgumentError("unsafe rule: head variable '" + v +
                                  "' does not occur in the body of " +
                                  ToString());
    }
  }
  for (const Atom& atom : body) {
    if (!IsComparisonAtom(atom)) continue;
    std::set<std::string> vars;
    atom.CollectVariables(vars);
    for (const std::string& v : vars) {
      if (!relational_vars.contains(v)) {
        return InvalidArgumentError("unsafe rule: comparison variable '" + v +
                                    "' is not bound by a relational atom in " +
                                    ToString());
      }
    }
  }
  return OkStatus();
}

ConjunctiveQuery ConjunctiveQuery::RenameVariables(
    const std::string& suffix) const {
  ConjunctiveQuery out;
  out.head = RenameAtom(head, suffix);
  out.body.reserve(body.size());
  for (const Atom& atom : body) out.body.push_back(RenameAtom(atom, suffix));
  return out;
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = head.ToString() + " :- ";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) out += ", ";
    out += body[i].ToString();
  }
  if (body.empty()) out += "true";
  return out;
}

}  // namespace planorder::datalog
