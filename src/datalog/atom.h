#ifndef PLANORDER_DATALOG_ATOM_H_
#define PLANORDER_DATALOG_ATOM_H_

#include <set>
#include <string>
#include <vector>

#include "datalog/term.h"

namespace planorder::datalog {

/// A predicate applied to terms: play-in(A, M), V1(ford, M), ...
struct Atom {
  std::string predicate;
  std::vector<Term> args;

  Atom() = default;
  Atom(std::string predicate_in, std::vector<Term> args_in)
      : predicate(std::move(predicate_in)), args(std::move(args_in)) {}

  size_t arity() const { return args.size(); }
  bool IsGround() const;

  /// Inserts every variable occurring in the atom into `out`.
  void CollectVariables(std::set<std::string>& out) const;

  std::string ToString() const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.predicate == b.predicate && a.args == b.args;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }
  friend bool operator<(const Atom& a, const Atom& b) {
    if (a.predicate != b.predicate) return a.predicate < b.predicate;
    return a.args < b.args;
  }
};

struct AtomHash {
  size_t operator()(const Atom& atom) const {
    size_t seed = std::hash<std::string>()(atom.predicate);
    for (const Term& t : atom.args) t.HashInto(seed);
    return seed;
  }
};

}  // namespace planorder::datalog

#endif  // PLANORDER_DATALOG_ATOM_H_
