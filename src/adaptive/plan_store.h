#ifndef PLANORDER_ADAPTIVE_PLAN_STORE_H_
#define PLANORDER_ADAPTIVE_PLAN_STORE_H_

#include <string>
#include <utility>
#include <vector>

#include "adaptive/observed_stats.h"
#include "base/status.h"
#include "stats/source_stats.h"

namespace planorder::adaptive {

/// One persisted reformulation: everything a QueryService needs to serve the
/// query again without re-running bucket construction or the full-instance
/// statistics scan. The canonical text round-trips through
/// datalog::ParseRule + CanonicalizeQuery; bucket entries are SourceIds into
/// the catalog the store was written against (StoreContents::num_sources
/// guards against replaying ids into a different catalog).
struct StoredReformulation {
  std::string canonical_text;
  std::vector<std::vector<int>> buckets;
  /// stats::Workload::FromParts inputs, verbatim.
  std::vector<std::vector<stats::SourceStats>> stat_buckets;
  std::vector<std::vector<double>> region_weights;
  std::vector<double> domain_sizes;
  double access_overhead = 0.0;
};

/// Everything one store file holds: the catalog fingerprint, the persisted
/// reformulations (most-recently-used first) and the learned per-source
/// statistics.
struct StoreContents {
  int num_sources = 0;
  std::vector<StoredReformulation> entries;
  std::vector<std::pair<std::string, SourceEstimate>> observed;
};

/// Versioned on-disk persistence of reformulations and learned statistics —
/// the plan memory that survives QueryService / ShardedService restarts
/// (ROADMAP "persistent plan memory"; the offline plan-store exemplar of
/// "Precomputing Datalog evaluation plans in large-scale scenarios").
///
/// Format: a line-oriented text file opening with `planorder-planstore v1`
/// and closing with a checksum line (FNV-1a over every preceding byte).
/// Doubles are written as C hexadecimal floating-point literals (`%a`), so
/// every statistic round-trips bit-exactly — a warm-started service ranks
/// plans byte-identically to the service that wrote the store. Load verifies
/// version, structure and checksum and returns a non-OK status on any
/// mismatch (truncation, corruption, format drift); callers treat that as a
/// cold start, never a crash. Save writes a temp file and renames it into
/// place, so readers never observe a half-written store.
class PlanStore {
 public:
  static constexpr int kFormatVersion = 1;

  explicit PlanStore(std::string path) : path_(std::move(path)) {}

  const std::string& path() const { return path_; }

  /// Parses and verifies the store file. kNotFound when the file does not
  /// exist (a fresh deployment), kInvalidArgument on any damage.
  StatusOr<StoreContents> Load() const;

  /// Atomically replaces the store file with `contents`.
  Status Save(const StoreContents& contents) const;

 private:
  std::string path_;
};

}  // namespace planorder::adaptive

#endif  // PLANORDER_ADAPTIVE_PLAN_STORE_H_
