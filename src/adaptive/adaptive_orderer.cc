#include "adaptive/adaptive_orderer.h"

#include <utility>

#include "core/idrips.h"
#include "core/streamer.h"

namespace planorder::adaptive {

StatusOr<std::unique_ptr<AdaptiveOrderer>> AdaptiveOrderer::Create(
    const stats::Workload* estimates,
    std::vector<std::vector<std::string>> source_names,
    const ObservedStats* observed, const AdaptiveOptions& options) {
  if (estimates == nullptr) return InvalidArgumentError("null estimates");
  if (int(source_names.size()) != estimates->num_buckets()) {
    return InvalidArgumentError("source_names bucket count mismatch");
  }
  for (int b = 0; b < estimates->num_buckets(); ++b) {
    if (int(source_names[b].size()) != estimates->bucket_size(b)) {
      return InvalidArgumentError("source_names bucket " + std::to_string(b) +
                                  " size mismatch");
    }
  }
  // Validates measure applicability up front (MakeMeasure may reject the
  // pair) and gives the base class a model that outlives every rebuild.
  PLANORDER_ASSIGN_OR_RETURN(
      std::unique_ptr<utility::UtilityModel> estimate_model,
      utility::MakeMeasure(options.measure, estimates));
  std::unique_ptr<AdaptiveOrderer> orderer(
      new AdaptiveOrderer(estimates, std::move(source_names), observed,
                          options, std::move(estimate_model)));
  // Build the first generation eagerly so Create reports inner-orderer
  // applicability failures instead of the first Next().
  PLANORDER_RETURN_IF_ERROR(orderer->Rebuild());
  return orderer;
}

AdaptiveOrderer::AdaptiveOrderer(
    const stats::Workload* estimates,
    std::vector<std::vector<std::string>> source_names,
    const ObservedStats* observed, const AdaptiveOptions& options,
    std::unique_ptr<utility::UtilityModel> estimate_model)
    : core::Orderer(estimates, estimate_model.get()),
      options_(options),
      estimates_(estimates),
      names_(std::move(source_names)),
      observed_(observed),
      estimate_model_(std::move(estimate_model)) {}

void AdaptiveOrderer::ReportDiscarded() {
  core::Orderer::ReportDiscarded();
  if (inner_ != nullptr) inner_->ReportDiscarded();
}

void AdaptiveOrderer::SetExternallyCached(int bucket, int source, bool cached) {
  core::Orderer::SetExternallyCached(bucket, source, cached);
  if (inner_ != nullptr) inner_->SetExternallyCached(bucket, source, cached);
}

void AdaptiveOrderer::set_eval_pool(runtime::ThreadPool* pool) {
  core::Orderer::set_eval_pool(pool);
  pool_ = pool;
  if (inner_ != nullptr) inner_->set_eval_pool(pool);
}

bool AdaptiveOrderer::NeedsRebuild() const {
  if (observed_ == nullptr || !options_.drift.react_to_observations) {
    return false;
  }
  if (observed_->generation() == built_at_generation_) return false;
  return StatsDiverged(*workload_, names_, *observed_, options_.drift);
}

Status AdaptiveOrderer::Rebuild() {
  std::unique_ptr<stats::Workload> blended;
  if (observed_ != nullptr) {
    PLANORDER_ASSIGN_OR_RETURN(stats::Workload w,
                               BlendWorkload(*estimates_, names_, *observed_));
    blended = std::make_unique<stats::Workload>(std::move(w));
  } else {
    blended = std::make_unique<stats::Workload>(*estimates_);
  }
  PLANORDER_ASSIGN_OR_RETURN(std::unique_ptr<utility::UtilityModel> model,
                             utility::MakeMeasure(options_.measure,
                                                  blended.get()));
  std::vector<core::PlanSpace> spaces;
  spaces.push_back(core::PlanSpace::FullSpace(*blended));
  std::unique_ptr<core::Orderer> inner;
  switch (options_.inner) {
    case InnerOrderer::kIDrips: {
      PLANORDER_ASSIGN_OR_RETURN(
          std::unique_ptr<core::IDripsOrderer> built,
          core::IDripsOrderer::Create(blended.get(), model.get(),
                                      std::move(spaces),
                                      core::IDripsOptions{}));
      inner = std::move(built);
      break;
    }
    case InnerOrderer::kStreamer: {
      PLANORDER_ASSIGN_OR_RETURN(
          std::unique_ptr<core::StreamerOrderer> built,
          core::StreamerOrderer::Create(blended.get(), model.get(),
                                        std::move(spaces)));
      inner = std::move(built);
      break;
    }
  }
  inner->set_eval_pool(pool_);
  // Replay the conditioning state: the executed prefix first, then the
  // cross-session residency bits, so the fresh inner orderer prices every
  // remaining plan exactly as if it had emitted the prefix itself.
  for (const core::ConcretePlan& plan : context().executed()) {
    PLANORDER_RETURN_IF_ERROR(inner->PreloadExecuted(plan));
  }
  const std::vector<std::vector<char>>& residency =
      context().external_residency();
  for (size_t b = 0; b < residency.size(); ++b) {
    for (size_t i = 0; i < residency[b].size(); ++i) {
      if (residency[b][i]) {
        inner->SetExternallyCached(int(b), int(i), true);
      }
    }
  }
  workload_ = std::move(blended);
  model_ = std::move(model);
  inner_ = std::move(inner);
  inner_evals_counted_ = 0;
  built_at_generation_ = observed_ != nullptr ? observed_->generation() : 0;
  ++builds_;
  return OkStatus();
}

StatusOr<core::OrderedPlan> AdaptiveOrderer::ComputeNext() {
  if (inner_ == nullptr || NeedsRebuild()) {
    PLANORDER_RETURN_IF_ERROR(Rebuild());
  }
  while (true) {
    StatusOr<core::OrderedPlan> next = inner_->Next();
    evaluations_ += inner_->plan_evaluations() - inner_evals_counted_;
    inner_evals_counted_ = inner_->plan_evaluations();
    if (!next.ok()) return next;  // NotFound: spaces exhausted
    if (emitted_.insert(next->plan).second) return *next;
    // A pre-rebuild emission replayed by the fresh inner stream: it must
    // neither re-emit nor condition (executed ones were preloaded already,
    // discarded ones never condition) — exactly ReportDiscarded semantics.
    inner_->ReportDiscarded();
  }
}

}  // namespace planorder::adaptive
