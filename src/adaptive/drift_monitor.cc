#include "adaptive/drift_monitor.h"

namespace planorder::adaptive {

bool StatsDiverged(const stats::Workload& baseline,
                   const std::vector<std::vector<std::string>>& source_names,
                   const ObservedStats& observed, const DriftOptions& options) {
  const double band = options.band < 1.0 ? 1.0 : options.band;
  const int buckets = baseline.num_buckets();
  if (int(source_names.size()) != buckets) return false;
  for (int b = 0; b < buckets; ++b) {
    if (int(source_names[b].size()) != baseline.bucket_size(b)) return false;
    for (int i = 0; i < baseline.bucket_size(b); ++i) {
      const SourceEstimate e = observed.EstimateFor(source_names[b][i]);
      if (e.card_windows == 0 || e.calls < options.min_calls) continue;
      const double base = baseline.source(b, i).cardinality;
      if (base <= 0.0) continue;  // FromParts forbids this; belt and braces
      const double ratio = e.cardinality / base;
      if (ratio > band || ratio * band < 1.0) return true;
    }
  }
  return false;
}

}  // namespace planorder::adaptive
