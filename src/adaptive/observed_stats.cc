#include "adaptive/observed_stats.h"

#include <utility>

namespace planorder::adaptive {

namespace {

/// Workload::FromParts requires strictly positive cardinalities; a source
/// observed shipping zero rows still exists, it is just very selective.
constexpr double kMinCardinality = 1e-3;
/// Failure probabilities must stay in [0, 1) for the failure measures'
/// success-product math; 0.95 caps an always-failing source short of "never
/// succeeds" (which would zero its utility outright and divide elsewhere).
constexpr double kMaxFailureProb = 0.95;

double Ewma(bool first, double decay, double window_mean, double previous) {
  return first ? window_mean : decay * window_mean + (1.0 - decay) * previous;
}

}  // namespace

void ObservedStats::RecordFetch(const std::string& source_name,
                                const runtime::SourceObservation& observation) {
  MutexLock lock(mu_);
  Window& w = window_[source_name];
  w.calls += 1;
  if (!observation.call_failed) w.ok_calls += 1;
  w.attempts += observation.attempts;
  w.failures += observation.failures;
  w.rows += observation.rows;
  w.latency_micros += observation.latency_micros;
}

int ObservedStats::FoldWindow() {
  MutexLock lock(mu_);
  int folded = 0;
  for (const auto& [name, w] : window_) {
    if (w.calls == 0) continue;
    SourceEstimate& e = folded_[name];
    const double decay = options_.decay;
    const double calls = double(w.calls);
    e.latency_ms = Ewma(e.windows == 0, decay,
                        double(w.latency_micros) / 1000.0 / calls,
                        e.latency_ms);
    const double failure_mean =
        w.attempts > 0 ? double(w.failures) / double(w.attempts) : 0.0;
    e.failure_prob = Ewma(e.windows == 0, decay, failure_mean, e.failure_prob);
    if (w.ok_calls > 0) {
      e.cardinality = Ewma(e.card_windows == 0, decay,
                           double(w.rows) / double(w.ok_calls), e.cardinality);
      e.card_windows += 1;
    }
    e.windows += 1;
    e.calls += w.calls;
    ++folded;
  }
  window_.clear();
  if (folded > 0) ++generation_;
  return folded;
}

int64_t ObservedStats::generation() const {
  MutexLock lock(mu_);
  return generation_;
}

SourceEstimate ObservedStats::EstimateFor(const std::string& source_name) const {
  MutexLock lock(mu_);
  auto it = folded_.find(source_name);
  return it == folded_.end() ? SourceEstimate{} : it->second;
}

std::vector<std::pair<std::string, SourceEstimate>> ObservedStats::Snapshot()
    const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, SourceEstimate>> snapshot;
  snapshot.reserve(folded_.size());
  for (const auto& [name, estimate] : folded_) {
    snapshot.emplace_back(name, estimate);
  }
  return snapshot;
}

void ObservedStats::Restore(const std::string& source_name,
                            const SourceEstimate& estimate) {
  MutexLock lock(mu_);
  folded_[source_name] = estimate;
  ++generation_;
}

StatusOr<stats::Workload> BlendWorkload(
    const stats::Workload& estimates,
    const std::vector<std::vector<std::string>>& source_names,
    const ObservedStats& observed) {
  if (int(source_names.size()) != estimates.num_buckets()) {
    return InvalidArgumentError("source_names bucket count mismatch");
  }
  std::vector<std::vector<stats::SourceStats>> buckets;
  buckets.resize(estimates.num_buckets());
  for (int b = 0; b < estimates.num_buckets(); ++b) {
    if (int(source_names[b].size()) != estimates.bucket_size(b)) {
      return InvalidArgumentError("source_names bucket " + std::to_string(b) +
                                  " size mismatch");
    }
    buckets[b].reserve(estimates.bucket_size(b));
    for (int i = 0; i < estimates.bucket_size(b); ++i) {
      stats::SourceStats s = estimates.source(b, i);
      const SourceEstimate e = observed.EstimateFor(source_names[b][i]);
      if (e.windows > 0) {
        double failure = e.failure_prob;
        if (failure < 0.0) failure = 0.0;
        if (failure > kMaxFailureProb) failure = kMaxFailureProb;
        s.failure_prob = failure;
        if (e.card_windows > 0) {
          s.cardinality =
              e.cardinality > kMinCardinality ? e.cardinality : kMinCardinality;
          // Observed latency is per call; spreading it over the observed
          // rows gives the per-tuple transmission cost α of cost measure
          // (2), with the per-call overhead conservatively folded in.
          s.transmission_cost = e.latency_ms / s.cardinality;
        }
      }
      buckets[b].push_back(s);
    }
  }
  std::vector<std::vector<double>> region_weights = estimates.region_weights();
  std::vector<double> domain_sizes;
  domain_sizes.reserve(estimates.num_buckets());
  for (int b = 0; b < estimates.num_buckets(); ++b) {
    domain_sizes.push_back(estimates.domain_size(b));
  }
  return stats::Workload::FromParts(std::move(buckets),
                                    std::move(region_weights),
                                    estimates.access_overhead(), domain_sizes);
}

}  // namespace planorder::adaptive
