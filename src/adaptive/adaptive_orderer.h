#ifndef PLANORDER_ADAPTIVE_ADAPTIVE_ORDERER_H_
#define PLANORDER_ADAPTIVE_ADAPTIVE_ORDERER_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "adaptive/drift_monitor.h"
#include "adaptive/observed_stats.h"
#include "base/status.h"
#include "core/orderer.h"
#include "stats/workload.h"
#include "utility/measures.h"

namespace planorder::adaptive {

/// Which ordering algorithm ranks plans under the current statistics.
enum class InnerOrderer { kIDrips, kStreamer };

struct AdaptiveOptions {
  InnerOrderer inner = InnerOrderer::kIDrips;
  utility::MeasureKind measure = utility::MeasureKind::kAdditive;
  DriftOptions drift;
};

/// The re-rank edge of the adaptive loop: a core::Orderer that serves
/// emissions from an inner orderer built over *blended* statistics
/// (BlendWorkload of the estimates and the folded observations) and, when
/// the divergence monitor fires between emissions, discards the inner
/// orderer and reorders everything not yet emitted — the mid-stream
/// discard-and-reorder the orderer interface already supports:
///
///   - the executed history (base context) is replayed into the fresh inner
///     orderer via Orderer::PreloadExecuted, so post-rebuild utilities are
///     conditioned on exactly the executed prefix;
///   - plans already emitted (executed or discarded) still live in the plan
///     spaces and will surface again in the fresh inner stream; they are
///     skipped via ReportDiscarded so they neither re-emit nor condition;
///   - external residency bits are forwarded to the inner context, so the
///     §6 caching measures keep charging resident operations zero residual
///     cost across rebuilds.
///
/// Determinism: rebuild decisions depend only on (estimates, observation
/// folds, options) through the pure StatsDiverged predicate, and the inner
/// orderers honor the byte-identical contract — so the whole adaptive
/// emission sequence is a deterministic function of the observation
/// schedule, verified byte-for-byte against an independent
/// rebuild-from-observed-stats oracle by the sim's check_drift property.
class AdaptiveOrderer : public core::Orderer {
 public:
  /// `estimates` and `observed` are borrowed and must outlive the orderer;
  /// `observed` may be null, in which case the orderer never re-ranks and
  /// emits exactly like its inner algorithm over the estimates.
  /// `source_names[b][i]` names the source behind (bucket b, index i) —
  /// the join key between workload coordinates and trace observations.
  static StatusOr<std::unique_ptr<AdaptiveOrderer>> Create(
      const stats::Workload* estimates,
      std::vector<std::vector<std::string>> source_names,
      const ObservedStats* observed, const AdaptiveOptions& options);

  std::string name() const override { return "adaptive"; }

  void ReportDiscarded() override;
  void SetExternallyCached(int bucket, int source, bool cached) override;
  void set_eval_pool(runtime::ThreadPool* pool) override;

  /// Mid-stream reorders performed (initial build not counted).
  int64_t rebuilds() const { return builds_ > 0 ? builds_ - 1 : 0; }

  /// The blended statistics the current inner orderer ranks by.
  const stats::Workload& current_workload() const { return *workload_; }

 protected:
  StatusOr<core::OrderedPlan> ComputeNext() override;

 private:
  AdaptiveOrderer(const stats::Workload* estimates,
                  std::vector<std::vector<std::string>> source_names,
                  const ObservedStats* observed, const AdaptiveOptions& options,
                  std::unique_ptr<utility::UtilityModel> estimate_model);

  bool NeedsRebuild() const;
  /// Builds a fresh inner orderer over the current blend and replays the
  /// executed history and residency bits into it.
  Status Rebuild();

  AdaptiveOptions options_;
  const stats::Workload* estimates_;
  std::vector<std::vector<std::string>> names_;
  const ObservedStats* observed_;
  /// Backs the base-class context/model slots for the orderer's whole
  /// lifetime (per-generation models come and go with each rebuild).
  std::unique_ptr<utility::UtilityModel> estimate_model_;

  // Current generation, replaced wholesale by Rebuild().
  std::unique_ptr<stats::Workload> workload_;
  std::unique_ptr<utility::UtilityModel> model_;
  std::unique_ptr<core::Orderer> inner_;
  int64_t built_at_generation_ = -1;
  int64_t builds_ = 0;
  int64_t inner_evals_counted_ = 0;
  runtime::ThreadPool* pool_ = nullptr;
  /// Every plan this orderer has emitted (later executed or discarded) —
  /// the filter that keeps replayed plans out of the post-rebuild stream.
  std::set<core::ConcretePlan> emitted_;
};

}  // namespace planorder::adaptive

#endif  // PLANORDER_ADAPTIVE_ADAPTIVE_ORDERER_H_
