#ifndef PLANORDER_ADAPTIVE_OBSERVED_STATS_H_
#define PLANORDER_ADAPTIVE_OBSERVED_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "runtime/trace_sink.h"
#include "stats/workload.h"

namespace planorder::adaptive {

struct ObservedStatsOptions {
  /// EWMA weight of the newest closed window:
  ///   stat' = decay * window_mean + (1 - decay) * stat.
  /// 1.0 forgets history entirely (each window replaces the estimate), small
  /// values smooth over many windows. The first window is taken verbatim.
  double decay = 0.5;
};

/// Folded per-source statistics learned from execution traces. `windows` /
/// `card_windows` double as presence markers: a source with zero folded
/// windows has never been observed and must fall back to its estimate.
struct SourceEstimate {
  /// Windows folded with at least one completed call.
  int64_t windows = 0;
  /// Windows folded with at least one *successful* call — only those update
  /// the cardinality (a failed call ships zero rows and says nothing about
  /// the source's true cardinality).
  int64_t card_windows = 0;
  /// Total completed calls folded so far (divergence-band qualifier).
  int64_t calls = 0;
  /// EWMA result tuples per successful call.
  double cardinality = 0.0;
  /// EWMA total simulated latency per call, milliseconds.
  double latency_ms = 0.0;
  /// EWMA failed-attempt fraction.
  double failure_prob = 0.0;
};

/// The observe edge of the adaptive loop (ROADMAP "Adaptive statistics and
/// persistent plan memory"): accumulates per-call execution traces into
/// windows of pure integer counters and folds closed windows into per-source
/// EWMA estimates.
///
/// Determinism contract: RecordFetch only performs integer additions under a
/// mutex, and integer addition commutes and associates exactly — so after
/// ingesting the same multiset of observations the window state is
/// bit-identical whether it was fed by one thread or eight, in any
/// interleaving. FoldWindow walks sources in std::map (name) order and is
/// the only place floating point enters, serially — making the folded
/// estimates bit-exact functions of (fold schedule, observation multiset),
/// never of thread scheduling.
class ObservedStats : public runtime::SourceTraceSink {
 public:
  explicit ObservedStats(const ObservedStatsOptions& options = {})
      : options_(options) {}

  const ObservedStatsOptions& options() const { return options_; }

  /// Adds one completed call to the open window. Thread-safe; integer-only.
  void RecordFetch(const std::string& source_name,
                   const runtime::SourceObservation& observation) override
      EXCLUDES(mu_);

  /// Closes the open window: folds every source with at least one recorded
  /// call into its EWMA estimate and clears the window. Returns the number
  /// of sources folded; the generation counter advances only when that is
  /// nonzero. Callers decide the window schedule (per emission step in the
  /// sim, per session step in benchmarks).
  int FoldWindow() EXCLUDES(mu_);

  /// Number of folds (plus restores) that changed the folded state. A
  /// divergence monitor that saw generation g need not re-test until the
  /// generation moves.
  int64_t generation() const EXCLUDES(mu_);

  /// Folded estimate for one source; `windows == 0` means never observed.
  SourceEstimate EstimateFor(const std::string& source_name) const
      EXCLUDES(mu_);

  /// All folded estimates in source-name order (persistence snapshot).
  std::vector<std::pair<std::string, SourceEstimate>> Snapshot() const
      EXCLUDES(mu_);

  /// Reinstates a persisted estimate (warm restart); bumps the generation.
  void Restore(const std::string& source_name, const SourceEstimate& estimate)
      EXCLUDES(mu_);

 private:
  /// Open-window accumulators. Integral on purpose — see class comment.
  struct Window {
    int64_t calls = 0;     // completed logical calls
    int64_t ok_calls = 0;  // ... that returned rows
    int64_t attempts = 0;
    int64_t failures = 0;
    int64_t rows = 0;
    int64_t latency_micros = 0;
  };

  ObservedStatsOptions options_;
  mutable Mutex mu_;
  std::map<std::string, Window> window_ GUARDED_BY(mu_);
  std::map<std::string, SourceEstimate> folded_ GUARDED_BY(mu_);
  int64_t generation_ GUARDED_BY(mu_) = 0;
};

/// Overlays folded observations onto an estimated workload: a source with at
/// least one folded window gets its failure probability (and, once a
/// successful call was seen, its cardinality and per-tuple transmission
/// cost) replaced by the observed EWMA values; a zero-observation source
/// keeps its estimates untouched — the fallback the adaptive loop relies on
/// before any traffic has flowed. Region masks, region weights, access
/// overhead and domain sizes always come from `estimates` (coverage is not
/// observable from traces). `source_names[b][i]` names the source at bucket
/// b, index i and must match the workload's shape.
///
/// With no folded observations at all the result is a bit-identical copy of
/// `estimates` — the blend is exact, not approximate, so a fresh adaptive
/// orderer ranks exactly like a non-adaptive one.
StatusOr<stats::Workload> BlendWorkload(
    const stats::Workload& estimates,
    const std::vector<std::vector<std::string>>& source_names,
    const ObservedStats& observed);

}  // namespace planorder::adaptive

#endif  // PLANORDER_ADAPTIVE_OBSERVED_STATS_H_
