#include "adaptive/plan_store.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "runtime/retry_policy.h"

namespace planorder::adaptive {

namespace {

/// Sanity cap on parsed counts: a store is a few queries and a few hundred
/// sources, so any count beyond this is corruption, not data.
constexpr int64_t kMaxCount = 1 << 20;

Status Malformed(const std::string& what) {
  return InvalidArgumentError("plan store: " + what);
}

/// C hexadecimal floating-point literal — exact binary round-trip.
std::string HexDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

Status ParseHexDouble(const std::string& token, double* out) {
  if (token.empty()) return Malformed("empty numeric field");
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return Malformed("bad numeric field '" + token + "'");
  }
  return OkStatus();
}

Status ParseCount(const std::string& token, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || *out < 0 || *out > kMaxCount) {
    return Malformed("bad count '" + token + "'");
  }
  return OkStatus();
}

/// Pulls whitespace-separated tokens off one line, tracking exhaustion.
class TokenReader {
 public:
  explicit TokenReader(const std::string& line) : stream_(line) {}

  StatusOr<std::string> Token() {
    std::string token;
    if (!(stream_ >> token)) return Malformed("truncated line");
    return token;
  }

  StatusOr<int64_t> Count() {
    PLANORDER_ASSIGN_OR_RETURN(std::string token, Token());
    int64_t value = 0;
    PLANORDER_RETURN_IF_ERROR(ParseCount(token, &value));
    return value;
  }

  StatusOr<double> Double() {
    PLANORDER_ASSIGN_OR_RETURN(std::string token, Token());
    double value = 0.0;
    PLANORDER_RETURN_IF_ERROR(ParseHexDouble(token, &value));
    return value;
  }

 private:
  std::istringstream stream_;
};

/// Expects `line` to open with `keyword` and returns a reader over the rest.
StatusOr<TokenReader> Expect(const std::string& line,
                             const std::string& keyword) {
  TokenReader reader(line);
  PLANORDER_ASSIGN_OR_RETURN(std::string head, reader.Token());
  if (head != keyword) {
    return Malformed("expected '" + keyword + "', got '" + head + "'");
  }
  return reader;
}

class LineReader {
 public:
  explicit LineReader(const std::string& payload) : stream_(payload) {}

  StatusOr<std::string> Line() {
    std::string line;
    if (!std::getline(stream_, line)) return Malformed("truncated store");
    return line;
  }

 private:
  std::istringstream stream_;
};

}  // namespace

StatusOr<StoreContents> PlanStore::Load() const {
  std::ifstream in(path_, std::ios::binary);
  if (!in.is_open()) {
    return NotFoundError("no plan store at '" + path_ + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string data = buffer.str();

  // The last line authenticates everything before it; verify first so a
  // truncated or bit-flipped store is rejected before any parsing.
  const size_t mark = data.rfind("\nchecksum ");
  if (mark == std::string::npos) return Malformed("missing checksum");
  const std::string payload = data.substr(0, mark + 1);
  PLANORDER_ASSIGN_OR_RETURN(TokenReader sum_line,
                             Expect(data.substr(mark + 1), "checksum"));
  PLANORDER_ASSIGN_OR_RETURN(std::string sum_token, sum_line.Token());
  char* end = nullptr;
  const uint64_t declared = std::strtoull(sum_token.c_str(), &end, 16);
  if (end == nullptr || *end != '\0') return Malformed("bad checksum");
  if (declared != runtime::HashString(payload)) {
    return Malformed("checksum mismatch (corrupted store)");
  }

  LineReader lines(payload);
  PLANORDER_ASSIGN_OR_RETURN(std::string header, lines.Line());
  if (header != "planorder-planstore v" + std::to_string(kFormatVersion)) {
    return Malformed("unsupported version '" + header + "'");
  }

  StoreContents contents;
  {
    PLANORDER_ASSIGN_OR_RETURN(std::string line, lines.Line());
    PLANORDER_ASSIGN_OR_RETURN(TokenReader reader, Expect(line, "sources"));
    PLANORDER_ASSIGN_OR_RETURN(int64_t n, reader.Count());
    contents.num_sources = int(n);
  }
  {
    PLANORDER_ASSIGN_OR_RETURN(std::string line, lines.Line());
    PLANORDER_ASSIGN_OR_RETURN(TokenReader reader, Expect(line, "observed"));
    PLANORDER_ASSIGN_OR_RETURN(int64_t count, reader.Count());
    contents.observed.reserve(size_t(count));
    for (int64_t k = 0; k < count; ++k) {
      PLANORDER_ASSIGN_OR_RETURN(std::string entry_line, lines.Line());
      PLANORDER_ASSIGN_OR_RETURN(TokenReader r, Expect(entry_line, "o"));
      PLANORDER_ASSIGN_OR_RETURN(std::string name, r.Token());
      SourceEstimate e;
      PLANORDER_ASSIGN_OR_RETURN(e.windows, r.Count());
      PLANORDER_ASSIGN_OR_RETURN(e.card_windows, r.Count());
      PLANORDER_ASSIGN_OR_RETURN(e.calls, r.Count());
      PLANORDER_ASSIGN_OR_RETURN(e.cardinality, r.Double());
      PLANORDER_ASSIGN_OR_RETURN(e.latency_ms, r.Double());
      PLANORDER_ASSIGN_OR_RETURN(e.failure_prob, r.Double());
      contents.observed.emplace_back(name, e);
    }
  }
  int64_t num_entries = 0;
  {
    PLANORDER_ASSIGN_OR_RETURN(std::string line, lines.Line());
    PLANORDER_ASSIGN_OR_RETURN(TokenReader reader, Expect(line, "entries"));
    PLANORDER_ASSIGN_OR_RETURN(num_entries, reader.Count());
  }
  contents.entries.reserve(size_t(num_entries));
  for (int64_t k = 0; k < num_entries; ++k) {
    StoredReformulation entry;
    {
      PLANORDER_ASSIGN_OR_RETURN(std::string line, lines.Line());
      if (line.rfind("entry ", 0) != 0) return Malformed("expected 'entry'");
      entry.canonical_text = line.substr(6);
    }
    int64_t num_buckets = 0;
    {
      PLANORDER_ASSIGN_OR_RETURN(std::string line, lines.Line());
      PLANORDER_ASSIGN_OR_RETURN(TokenReader reader, Expect(line, "buckets"));
      PLANORDER_ASSIGN_OR_RETURN(num_buckets, reader.Count());
    }
    entry.buckets.resize(size_t(num_buckets));
    entry.stat_buckets.resize(size_t(num_buckets));
    entry.region_weights.resize(size_t(num_buckets));
    entry.domain_sizes.resize(size_t(num_buckets));
    for (int64_t b = 0; b < num_buckets; ++b) {
      PLANORDER_ASSIGN_OR_RETURN(std::string line, lines.Line());
      PLANORDER_ASSIGN_OR_RETURN(TokenReader reader, Expect(line, "b"));
      PLANORDER_ASSIGN_OR_RETURN(int64_t count, reader.Count());
      entry.buckets[b].reserve(size_t(count));
      for (int64_t i = 0; i < count; ++i) {
        PLANORDER_ASSIGN_OR_RETURN(int64_t id, reader.Count());
        entry.buckets[b].push_back(int(id));
      }
    }
    for (int64_t b = 0; b < num_buckets; ++b) {
      PLANORDER_ASSIGN_OR_RETURN(std::string line, lines.Line());
      PLANORDER_ASSIGN_OR_RETURN(TokenReader reader, Expect(line, "s"));
      PLANORDER_ASSIGN_OR_RETURN(int64_t count, reader.Count());
      entry.stat_buckets[b].reserve(size_t(count));
      for (int64_t i = 0; i < count; ++i) {
        stats::SourceStats s;
        PLANORDER_ASSIGN_OR_RETURN(s.cardinality, reader.Double());
        PLANORDER_ASSIGN_OR_RETURN(s.transmission_cost, reader.Double());
        PLANORDER_ASSIGN_OR_RETURN(s.failure_prob, reader.Double());
        PLANORDER_ASSIGN_OR_RETURN(s.fee, reader.Double());
        PLANORDER_ASSIGN_OR_RETURN(std::string mask, reader.Token());
        char* mask_end = nullptr;
        s.regions.bits = std::strtoull(mask.c_str(), &mask_end, 16);
        if (mask_end == nullptr || *mask_end != '\0') {
          return Malformed("bad region mask");
        }
        entry.stat_buckets[b].push_back(s);
      }
    }
    for (int64_t b = 0; b < num_buckets; ++b) {
      PLANORDER_ASSIGN_OR_RETURN(std::string line, lines.Line());
      PLANORDER_ASSIGN_OR_RETURN(TokenReader reader, Expect(line, "w"));
      PLANORDER_ASSIGN_OR_RETURN(int64_t count, reader.Count());
      entry.region_weights[b].reserve(size_t(count));
      for (int64_t i = 0; i < count; ++i) {
        PLANORDER_ASSIGN_OR_RETURN(double w, reader.Double());
        entry.region_weights[b].push_back(w);
      }
    }
    {
      PLANORDER_ASSIGN_OR_RETURN(std::string line, lines.Line());
      PLANORDER_ASSIGN_OR_RETURN(TokenReader reader, Expect(line, "domain"));
      for (int64_t b = 0; b < num_buckets; ++b) {
        PLANORDER_ASSIGN_OR_RETURN(entry.domain_sizes[b], reader.Double());
      }
    }
    {
      PLANORDER_ASSIGN_OR_RETURN(std::string line, lines.Line());
      PLANORDER_ASSIGN_OR_RETURN(TokenReader reader, Expect(line, "overhead"));
      PLANORDER_ASSIGN_OR_RETURN(entry.access_overhead, reader.Double());
    }
    {
      PLANORDER_ASSIGN_OR_RETURN(std::string line, lines.Line());
      if (line != "end") return Malformed("expected 'end'");
    }
    contents.entries.push_back(std::move(entry));
  }
  return contents;
}

Status PlanStore::Save(const StoreContents& contents) const {
  std::ostringstream out;
  out << "planorder-planstore v" << kFormatVersion << "\n";
  out << "sources " << contents.num_sources << "\n";
  out << "observed " << contents.observed.size() << "\n";
  for (const auto& [name, e] : contents.observed) {
    if (name.find_first_of(" \t\n") != std::string::npos) {
      return InvalidArgumentError("plan store: source name with whitespace '" +
                                  name + "'");
    }
    out << "o " << name << " " << e.windows << " " << e.card_windows << " "
        << e.calls << " " << HexDouble(e.cardinality) << " "
        << HexDouble(e.latency_ms) << " " << HexDouble(e.failure_prob) << "\n";
  }
  out << "entries " << contents.entries.size() << "\n";
  for (const StoredReformulation& entry : contents.entries) {
    if (entry.canonical_text.find('\n') != std::string::npos) {
      return InvalidArgumentError("plan store: multi-line canonical text");
    }
    out << "entry " << entry.canonical_text << "\n";
    out << "buckets " << entry.buckets.size() << "\n";
    for (const std::vector<int>& bucket : entry.buckets) {
      out << "b " << bucket.size();
      for (int id : bucket) out << " " << id;
      out << "\n";
    }
    for (const std::vector<stats::SourceStats>& bucket : entry.stat_buckets) {
      out << "s " << bucket.size();
      for (const stats::SourceStats& s : bucket) {
        char mask[32];
        std::snprintf(mask, sizeof(mask), "%llx",
                      static_cast<unsigned long long>(s.regions.bits));
        out << " " << HexDouble(s.cardinality) << " "
            << HexDouble(s.transmission_cost) << " "
            << HexDouble(s.failure_prob) << " " << HexDouble(s.fee) << " "
            << mask;
      }
      out << "\n";
    }
    for (const std::vector<double>& weights : entry.region_weights) {
      out << "w " << weights.size();
      for (double w : weights) out << " " << HexDouble(w);
      out << "\n";
    }
    out << "domain";
    for (double d : entry.domain_sizes) out << " " << HexDouble(d);
    out << "\n";
    out << "overhead " << HexDouble(entry.access_overhead) << "\n";
    out << "end\n";
  }
  const std::string payload = out.str();
  char sum[32];
  std::snprintf(sum, sizeof(sum), "%016llx",
                static_cast<unsigned long long>(runtime::HashString(payload)));
  const std::string tmp_path = path_ + ".tmp";
  {
    std::ofstream file(tmp_path, std::ios::binary | std::ios::trunc);
    if (!file.is_open()) {
      return InternalError("plan store: cannot write '" + tmp_path + "'");
    }
    file << payload << "checksum " << sum << "\n";
    file.flush();
    if (!file.good()) {
      return InternalError("plan store: write failed for '" + tmp_path + "'");
    }
  }
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    return InternalError("plan store: rename to '" + path_ + "' failed");
  }
  return OkStatus();
}

}  // namespace planorder::adaptive
