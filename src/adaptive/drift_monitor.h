#ifndef PLANORDER_ADAPTIVE_DRIFT_MONITOR_H_
#define PLANORDER_ADAPTIVE_DRIFT_MONITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "adaptive/observed_stats.h"
#include "stats/workload.h"

namespace planorder::adaptive {

/// Policy of the divergence monitor: when do observations have left the
/// configurable band around the estimates the current plan order was built
/// from, making a mid-stream discard-and-reorder worthwhile?
struct DriftOptions {
  /// Multiplicative tolerance band on per-source cardinality: diverged when
  /// observed/baseline leaves [1/band, band] for any qualifying source.
  /// Must be >= 1; larger bands re-rank less eagerly.
  double band = 2.0;
  /// A source qualifies only after this many folded calls — one aberrant
  /// call should not throw away a whole plan order.
  int64_t min_calls = 1;
  /// Test hook for the sim's injected stale-stats bug (DESIGN.md §12): when
  /// false the adaptive orderer keeps serving its initial ranking no matter
  /// what the observations say — exactly the bug the check_drift property
  /// must catch. Production code never clears this.
  bool react_to_observations = true;
};

/// The divergence predicate, pure and deterministic: true when any source
/// with `min_calls` folded calls and an observed cardinality has drifted out
/// of the band relative to `baseline`. `source_names[b][i]` names the source
/// at bucket b, index i (same grid BlendWorkload uses). Both the adaptive
/// orderer and the sim's rebuild-from-observed-stats oracle call exactly
/// this function, so their re-rank decisions agree byte-for-byte.
bool StatsDiverged(const stats::Workload& baseline,
                   const std::vector<std::vector<std::string>>& source_names,
                   const ObservedStats& observed, const DriftOptions& options);

}  // namespace planorder::adaptive

#endif  // PLANORDER_ADAPTIVE_DRIFT_MONITOR_H_
