#ifndef PLANORDER_EXEC_MEDIATOR_H_
#define PLANORDER_EXEC_MEDIATOR_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "base/status.h"
#include "core/orderer.h"
#include "datalog/evaluator.h"
#include "datalog/source.h"
#include "exec/source_access.h"

namespace planorder::exec {

/// One pipeline step of the mediator: a plan emitted by the orderer.
struct MediatorStep {
  utility::ConcretePlan plan;   // bucket-index form
  double estimated_utility = 0.0;
  bool sound = false;
  /// False when the plan is sound but admits no executable atom order under
  /// the sources' access patterns (it is then discarded like an unsound
  /// plan).
  bool executable = true;
  /// True when the executor reported the plan lost to source failure
  /// (permanent outage, retries exhausted, plan budget exceeded). The plan is
  /// discarded like an unsound one — graceful degradation, not an error.
  bool failed = false;
  std::string failure_reason;
  size_t answers_from_plan = 0;  // answers the plan returned (sound plans)
  size_t new_answers = 0;        // of which previously unseen
  size_t total_answers = 0;      // cumulative distinct answers so far
};

/// Aggregate accounting of the resilient runtime: simulated network latency,
/// retries, injected faults and hedges across all source calls of a run.
/// Zero on the serial execution paths.
struct RuntimeAccounting {
  int64_t retries = 0;             // re-attempts after transient failures
  int64_t transient_failures = 0;  // injected per-attempt failures
  int64_t deadline_timeouts = 0;   // attempts cut off by the call deadline
  int64_t permanent_failures = 0;  // calls against a permanently dead source
  int64_t hedged_calls = 0;        // backup calls issued past the hedge delay
  double latency_ms_total = 0.0;   // summed simulated latency across calls
  double latency_ms_max = 0.0;     // slowest single call

  void Merge(const RuntimeAccounting& other) {
    retries += other.retries;
    transient_failures += other.transient_failures;
    deadline_timeouts += other.deadline_timeouts;
    permanent_failures += other.permanent_failures;
    hedged_calls += other.hedged_calls;
    latency_ms_total += other.latency_ms_total;
    if (other.latency_ms_max > latency_ms_max) {
      latency_ms_max = other.latency_ms_max;
    }
  }
};

struct MediatorResult {
  std::vector<MediatorStep> steps;
  size_t total_answers = 0;
  size_t sound_plans = 0;
  /// Plans that were sound and executable but lost to source failure.
  size_t failed_plans = 0;
  /// Populated by the access-pattern execution paths: total source calls and
  /// shipped tuples across all executed plans.
  int64_t source_calls = 0;
  int64_t tuples_shipped = 0;
  /// Populated by the resilient runtime path (see src/runtime/).
  RuntimeAccounting runtime;
};

/// The outcome of executing one sound, executable plan.
struct PlanExecution {
  std::vector<std::vector<datalog::Term>> tuples;
  int64_t source_calls = 0;
  int64_t tuples_shipped = 0;
  RuntimeAccounting runtime;
  /// The plan did not complete because its sources failed (after retries) or
  /// its budget ran out. The mediator discards it like an unsound plan so the
  /// run keeps going — the Figure 6 failure-model behavior.
  bool failed = false;
  std::string failure_reason;
};

/// Strategy interface for running one rewriting against the sources. The
/// mediator stays agnostic of *how* plans execute: set-oriented evaluation,
/// serial dependent joins, or the concurrent resilient runtime
/// (runtime::SourceRuntime) all plug in here. Execution failures that should
/// degrade gracefully are reported via PlanExecution::failed; a non-OK status
/// aborts the whole run.
class PlanExecutor {
 public:
  virtual ~PlanExecutor() = default;
  virtual StatusOr<PlanExecution> ExecutePlan(
      const datalog::ConjunctiveQuery& rewriting) = 0;
};

/// The full pipeline of Section 2: pull plans from an ordering algorithm in
/// decreasing-utility order, build the rewriting and test soundness, discard
/// unsound plans (reporting the discard to the orderer so they do not
/// condition later utilities), execute sound plans against the source facts,
/// and accumulate the union of their answers.
class Mediator {
 public:
  /// `source_ids[b][i]` is the catalog SourceId behind workload bucket b,
  /// index i (the orderer speaks bucket-index; the catalog speaks SourceId).
  /// All referenced objects must outlive the mediator.
  Mediator(const datalog::Catalog* catalog, datalog::ConjunctiveQuery query,
           const datalog::Database* source_facts,
           std::vector<std::vector<datalog::SourceId>> source_ids)
      : catalog_(catalog),
        query_(std::move(query)),
        source_facts_(source_facts),
        source_ids_(std::move(source_ids)) {}

  /// Stopping criteria for a mediation run (Section 1: "query execution can
  /// be aborted as soon as the user has found a satisfactory answer, or when
  /// allotted resource limits have been reached"). Whichever limit trips
  /// first ends the run; zero/negative values mean "no limit" except
  /// max_plans, which must be positive.
  struct RunLimits {
    int max_plans = 0;
    /// Stop once this many distinct answers have been collected.
    size_t answer_target = 0;
    /// Stop once the accumulated *estimated* plan cost (the negated utility
    /// of the executed plans, meaningful for cost measures) exceeds this.
    double cost_budget = 0.0;
  };

  /// Pulls up to `max_plans` plans from `orderer` and runs the pipeline.
  /// Stops early when the orderer is exhausted. With a non-null `registry`
  /// plans execute by dependent joins against the binding-pattern sources
  /// (every body predicate must be registered) and the result carries the
  /// access accounting; otherwise they evaluate set-oriented against the
  /// source-facts database.
  StatusOr<MediatorResult> Run(core::Orderer& orderer, int max_plans,
                               SourceRegistry* registry = nullptr);

  /// As above with full stopping criteria.
  StatusOr<MediatorResult> Run(core::Orderer& orderer, const RunLimits& limits,
                               SourceRegistry* registry = nullptr);

  /// Runs the pipeline with a caller-supplied execution strategy — the
  /// entry point of the resilient concurrent runtime (build a
  /// runtime::SourceRuntime from RuntimeOptions and pass it here). Plans the
  /// executor reports as failed are discarded gracefully, exactly like
  /// unsound plans.
  StatusOr<MediatorResult> Run(core::Orderer& orderer, const RunLimits& limits,
                               PlanExecutor& executor);

 private:
  const datalog::Catalog* catalog_;
  datalog::ConjunctiveQuery query_;
  const datalog::Database* source_facts_;
  std::vector<std::vector<datalog::SourceId>> source_ids_;
};

}  // namespace planorder::exec

#endif  // PLANORDER_EXEC_MEDIATOR_H_
