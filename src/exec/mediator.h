#ifndef PLANORDER_EXEC_MEDIATOR_H_
#define PLANORDER_EXEC_MEDIATOR_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/status.h"
#include "core/orderer.h"
#include "datalog/evaluator.h"
#include "datalog/source.h"
#include "exec/source_access.h"

namespace planorder::exec {

/// One pipeline step of the mediator: a plan emitted by the orderer.
struct MediatorStep {
  utility::ConcretePlan plan;   // bucket-index form
  double estimated_utility = 0.0;
  bool sound = false;
  /// False when the plan is sound but admits no executable atom order under
  /// the sources' access patterns (it is then discarded like an unsound
  /// plan).
  bool executable = true;
  /// True when the executor reported the plan lost to source failure
  /// (permanent outage, retries exhausted, plan budget exceeded). The plan is
  /// discarded like an unsound one — graceful degradation, not an error.
  bool failed = false;
  std::string failure_reason;
  size_t answers_from_plan = 0;  // answers the plan returned (sound plans)
  size_t new_answers = 0;        // of which previously unseen
  size_t total_answers = 0;      // cumulative distinct answers so far
};

/// Aggregate accounting of the resilient runtime: simulated network latency,
/// retries, injected faults and hedges across all source calls of a run.
/// Zero on the serial execution paths.
struct RuntimeAccounting {
  int64_t retries = 0;             // re-attempts after transient failures
  int64_t transient_failures = 0;  // injected per-attempt failures
  int64_t deadline_timeouts = 0;   // attempts cut off by the call deadline
  int64_t permanent_failures = 0;  // calls against a permanently dead source
  int64_t hedged_calls = 0;        // backup calls issued past the hedge delay
  int64_t source_cache_hits = 0;   // fetches served by a shared result cache
  double latency_ms_total = 0.0;   // summed simulated latency across calls
  double latency_ms_max = 0.0;     // slowest single call

  void Merge(const RuntimeAccounting& other) {
    retries += other.retries;
    transient_failures += other.transient_failures;
    deadline_timeouts += other.deadline_timeouts;
    permanent_failures += other.permanent_failures;
    hedged_calls += other.hedged_calls;
    source_cache_hits += other.source_cache_hits;
    latency_ms_total += other.latency_ms_total;
    if (other.latency_ms_max > latency_ms_max) {
      latency_ms_max = other.latency_ms_max;
    }
  }

  /// Zeroes every counter.
  void Reset() { *this = RuntimeAccounting{}; }

  /// Counter-wise `*this - baseline`: the accounting accrued since the
  /// `baseline` snapshot was taken (both from the same monotone accumulator).
  /// The per-query metric helper of the service layer — snapshot before a
  /// session, diff after, no double counting across sessions.
  ///
  /// `latency_ms_max` is not invertible (a maximum, not a sum); the diff
  /// keeps this snapshot's peak, which upper-bounds the window's true peak.
  RuntimeAccounting Since(const RuntimeAccounting& baseline) const {
    RuntimeAccounting delta;
    delta.retries = retries - baseline.retries;
    delta.transient_failures =
        transient_failures - baseline.transient_failures;
    delta.deadline_timeouts = deadline_timeouts - baseline.deadline_timeouts;
    delta.permanent_failures =
        permanent_failures - baseline.permanent_failures;
    delta.hedged_calls = hedged_calls - baseline.hedged_calls;
    delta.source_cache_hits = source_cache_hits - baseline.source_cache_hits;
    delta.latency_ms_total = latency_ms_total - baseline.latency_ms_total;
    delta.latency_ms_max = latency_ms_max;
    return delta;
  }
};

struct MediatorResult {
  std::vector<MediatorStep> steps;
  size_t total_answers = 0;
  size_t sound_plans = 0;
  /// Plans that were sound and executable but lost to source failure.
  size_t failed_plans = 0;
  /// Populated by the access-pattern execution paths: total source calls and
  /// shipped tuples across all executed plans.
  int64_t source_calls = 0;
  int64_t tuples_shipped = 0;
  /// Populated by the resilient runtime path (see src/runtime/).
  RuntimeAccounting runtime;
};

/// The outcome of executing one sound, executable plan.
struct PlanExecution {
  std::vector<std::vector<datalog::Term>> tuples;
  int64_t source_calls = 0;
  int64_t tuples_shipped = 0;
  RuntimeAccounting runtime;
  /// The plan did not complete because its sources failed (after retries) or
  /// its budget ran out. The mediator discards it like an unsound plan so the
  /// run keeps going — the Figure 6 failure-model behavior.
  bool failed = false;
  std::string failure_reason;
};

/// Strategy interface for running one rewriting against the sources. The
/// mediator stays agnostic of *how* plans execute: set-oriented evaluation,
/// serial dependent joins, or the concurrent resilient runtime
/// (runtime::SourceRuntime) all plug in here. Execution failures that should
/// degrade gracefully are reported via PlanExecution::failed; a non-OK status
/// aborts the whole run.
class PlanExecutor {
 public:
  virtual ~PlanExecutor() = default;
  virtual StatusOr<PlanExecution> ExecutePlan(
      const datalog::ConjunctiveQuery& rewriting) = 0;
};

/// Set-oriented evaluation of each rewriting against a source-facts database
/// (the original execution path, no per-source accounting). `facts` must
/// outlive the executor. Stateless, hence safe to share across concurrent
/// mediation runs.
std::unique_ptr<PlanExecutor> MakeSetOrientedExecutor(
    const datalog::Database* facts);

/// Serial dependent joins against the binding-pattern sources with access
/// accounting. `registry` must outlive the executor. NOT safe for concurrent
/// runs (the underlying sources build indexes and count accesses without
/// locking); concurrent sessions go through runtime::SourceRuntime instead.
std::unique_ptr<PlanExecutor> MakeDependentJoinExecutor(
    SourceRegistry* registry);

class MediatorStream;

/// The full pipeline of Section 2: pull plans from an ordering algorithm in
/// decreasing-utility order, build the rewriting and test soundness, discard
/// unsound plans (reporting the discard to the orderer so they do not
/// condition later utilities), execute sound plans against the source facts,
/// and accumulate the union of their answers.
class Mediator {
 public:
  /// `source_ids[b][i]` is the catalog SourceId behind workload bucket b,
  /// index i (the orderer speaks bucket-index; the catalog speaks SourceId).
  /// All referenced objects must outlive the mediator.
  Mediator(const datalog::Catalog* catalog, datalog::ConjunctiveQuery query,
           const datalog::Database* source_facts,
           std::vector<std::vector<datalog::SourceId>> source_ids)
      : catalog_(catalog),
        query_(std::move(query)),
        source_facts_(source_facts),
        source_ids_(std::move(source_ids)) {}

  /// Stopping criteria for a mediation run (Section 1: "query execution can
  /// be aborted as soon as the user has found a satisfactory answer, or when
  /// allotted resource limits have been reached"). Whichever limit trips
  /// first ends the run; zero/negative values mean "no limit" except
  /// max_plans, which must be positive.
  struct RunLimits {
    int max_plans = 0;
    /// Stop once this many distinct answers have been collected.
    size_t answer_target = 0;
    /// Stop once the accumulated *estimated* plan cost (the negated utility
    /// of the executed plans, meaningful for cost measures) exceeds this.
    double cost_budget = 0.0;
  };

  /// Pulls up to `max_plans` plans from `orderer` and runs the pipeline.
  /// Stops early when the orderer is exhausted. With a non-null `registry`
  /// plans execute by dependent joins against the binding-pattern sources
  /// (every body predicate must be registered) and the result carries the
  /// access accounting; otherwise they evaluate set-oriented against the
  /// source-facts database.
  StatusOr<MediatorResult> Run(core::Orderer& orderer, int max_plans,
                               SourceRegistry* registry = nullptr);

  /// As above with full stopping criteria.
  StatusOr<MediatorResult> Run(core::Orderer& orderer, const RunLimits& limits,
                               SourceRegistry* registry = nullptr);

  /// Runs the pipeline with a caller-supplied execution strategy — the
  /// entry point of the resilient concurrent runtime (build a
  /// runtime::SourceRuntime from RuntimeOptions and pass it here). Plans the
  /// executor reports as failed are discarded gracefully, exactly like
  /// unsound plans.
  StatusOr<MediatorResult> Run(core::Orderer& orderer, const RunLimits& limits,
                               PlanExecutor& executor);

  /// Opens an incremental run: the same pipeline as Run, but the caller pulls
  /// one MediatorStep at a time (the service layer streams these to clients
  /// and can stop between any two steps at zero cost). `orderer` and
  /// `executor` must outlive the stream; the mediator itself must too. Fails
  /// with kInvalidArgument unless `limits.max_plans` is positive.
  StatusOr<MediatorStream> OpenStream(core::Orderer& orderer,
                                      const RunLimits& limits,
                                      PlanExecutor& executor) const;

 private:
  friend class MediatorStream;

  const datalog::Catalog* catalog_;
  datalog::ConjunctiveQuery query_;
  const datalog::Database* source_facts_;
  std::vector<std::vector<datalog::SourceId>> source_ids_;
};

/// An in-flight mediation run exposed as a pull stream. Each NextStep() call
/// advances the pipeline by exactly one orderer plan — translate, soundness
/// test, executable-order search, execution, answer dedup — and returns that
/// step. The stream ends (kNotFound) when the orderer is exhausted or a
/// RunLimits stopping criterion trips; any other error status aborts the
/// stream permanently. Movable, not copyable; Mediator::Run is now a thin
/// loop over this class, so both paths are behavior-identical by
/// construction.
class MediatorStream {
 public:
  MediatorStream(MediatorStream&&) = default;
  MediatorStream& operator=(MediatorStream&&) = default;

  /// Advances the run by one plan. kNotFound = stream over (not an error).
  StatusOr<MediatorStep> NextStep();

  /// True once NextStep has returned kNotFound or an error.
  bool done() const { return done_; }

  /// The accumulated result over all steps returned so far. `TakeResult`
  /// finalizes and moves it out; the stream is done afterwards.
  const MediatorResult& result() const { return result_; }
  MediatorResult TakeResult();

  /// Distinct-answer dedup set. Iteration order is explicitly outside the
  /// stream contract (Session::Answers documents "unspecified order"), and
  /// the insertion sequence is the deterministic plan emission order, so any
  /// consumer iterating it still sees a reproducible sequence for a fixed
  /// standard library.
  // detlint: order-insensitive(membership dedup; order outside the contract)
  using AnswerSet = std::unordered_set<std::vector<datalog::Term>,
                                       datalog::TermVectorHash>;

  /// The distinct answer tuples accumulated so far.
  const AnswerSet& answers() const { return answers_; }

 private:
  friend class Mediator;

  MediatorStream(const Mediator* mediator, core::Orderer* orderer,
                 Mediator::RunLimits limits, PlanExecutor* executor)
      : mediator_(mediator),
        orderer_(orderer),
        limits_(limits),
        executor_(executor) {}

  const Mediator* mediator_;
  core::Orderer* orderer_;
  Mediator::RunLimits limits_;
  PlanExecutor* executor_;
  int plans_emitted_ = 0;
  double estimated_cost_spent_ = 0.0;
  AnswerSet answers_;
  MediatorResult result_;
  bool done_ = false;
};

}  // namespace planorder::exec

#endif  // PLANORDER_EXEC_MEDIATOR_H_
