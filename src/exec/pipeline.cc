#include "exec/pipeline.h"

#include "core/greedy.h"
#include "core/idrips.h"
#include "core/pi.h"
#include "core/streamer.h"
#include "reformulation/executable_order.h"

namespace planorder::exec {

StatusOr<std::unique_ptr<OrderingPipeline>> OrderingPipeline::Create(
    const datalog::Catalog* catalog, datalog::ConjunctiveQuery query,
    const stats::Workload* workload, const Options& options) {
  auto pipeline = std::unique_ptr<OrderingPipeline>(new OrderingPipeline());
  pipeline->catalog_ = catalog;
  pipeline->query_ = std::move(query);
  PLANORDER_ASSIGN_OR_RETURN(
      pipeline->buckets_,
      reformulation::BuildBuckets(pipeline->query_, *catalog));
  if (static_cast<int>(pipeline->buckets_.buckets.size()) !=
      workload->num_buckets()) {
    return InvalidArgumentError(
        "workload buckets do not align with the query's relational subgoals");
  }
  for (size_t b = 0; b < pipeline->buckets_.buckets.size(); ++b) {
    if (static_cast<int>(pipeline->buckets_.buckets[b].size()) !=
        workload->bucket_size(static_cast<int>(b))) {
      return InvalidArgumentError("workload bucket " + std::to_string(b) +
                                  " does not match the source bucket");
    }
  }
  PLANORDER_ASSIGN_OR_RETURN(
      pipeline->model_, utility::MakeMeasure(options.measure, workload));

  Algorithm algorithm = options.algorithm;
  if (algorithm == Algorithm::kAuto) {
    // Section 6's guidance, encoded: Greedy clearly wins when applicable;
    // Streamer when it can recycle dominance relations (diminishing
    // returns); iDrips otherwise (e.g. operation caching).
    if (pipeline->model_->fully_monotonic()) {
      algorithm = Algorithm::kGreedy;
    } else if (pipeline->model_->diminishing_returns()) {
      algorithm = Algorithm::kStreamer;
    } else {
      algorithm = Algorithm::kIDrips;
    }
  }
  std::vector<core::PlanSpace> spaces = {core::PlanSpace::FullSpace(*workload)};
  switch (algorithm) {
    case Algorithm::kGreedy: {
      PLANORDER_ASSIGN_OR_RETURN(
          std::unique_ptr<core::GreedyOrderer> orderer,
          core::GreedyOrderer::Create(workload, pipeline->model_.get(),
                                      std::move(spaces)));
      pipeline->orderer_ = std::move(orderer);
      pipeline->algorithm_name_ = "greedy";
      break;
    }
    case Algorithm::kStreamer: {
      PLANORDER_ASSIGN_OR_RETURN(
          std::unique_ptr<core::StreamerOrderer> orderer,
          core::StreamerOrderer::Create(workload, pipeline->model_.get(),
                                        std::move(spaces), options.heuristic));
      pipeline->orderer_ = std::move(orderer);
      pipeline->algorithm_name_ = "streamer";
      break;
    }
    case Algorithm::kIDrips: {
      PLANORDER_ASSIGN_OR_RETURN(
          std::unique_ptr<core::IDripsOrderer> orderer,
          core::IDripsOrderer::Create(workload, pipeline->model_.get(),
                                      std::move(spaces), options.heuristic));
      pipeline->orderer_ = std::move(orderer);
      pipeline->algorithm_name_ = "idrips";
      break;
    }
    case Algorithm::kPi: {
      PLANORDER_ASSIGN_OR_RETURN(
          std::unique_ptr<core::PiOrderer> orderer,
          core::PiOrderer::Create(workload, pipeline->model_.get(),
                                  std::move(spaces)));
      pipeline->orderer_ = std::move(orderer);
      pipeline->algorithm_name_ = "pi";
      break;
    }
    case Algorithm::kAuto:
      return InternalError("kAuto must have been resolved");
  }
  return pipeline;
}

StatusOr<OrderingPipeline::Emission> OrderingPipeline::Next() {
  while (true) {
    PLANORDER_ASSIGN_OR_RETURN(core::OrderedPlan next, orderer_->Next());
    std::vector<datalog::SourceId> choice(next.plan.size());
    for (size_t b = 0; b < next.plan.size(); ++b) {
      choice[b] = buckets_.buckets[b][next.plan[b]];
    }
    PLANORDER_ASSIGN_OR_RETURN(
        std::optional<reformulation::QueryPlan> plan,
        reformulation::BuildSoundPlan(query_, *catalog_, choice));
    if (!plan.has_value()) {
      orderer_->ReportDiscarded();
      continue;
    }
    auto ordered = reformulation::FindExecutableOrder(*plan, *catalog_);
    if (!ordered.ok()) {
      if (ordered.status().code() != StatusCode::kFailedPrecondition) {
        return ordered.status();
      }
      orderer_->ReportDiscarded();
      continue;
    }
    return Emission{std::move(*ordered), next.utility};
  }
}

}  // namespace planorder::exec
