#ifndef PLANORDER_EXEC_PIPELINE_H_
#define PLANORDER_EXEC_PIPELINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/abstraction.h"
#include "core/orderer.h"
#include "reformulation/bucket.h"
#include "reformulation/rewriting.h"
#include "utility/measures.h"

namespace planorder::exec {

/// The one-stop facade over the whole reformulation + ordering stack: give
/// it a catalog, a query and statistics, and pull executable rewritings in
/// exact decreasing utility order. Internally it builds the buckets, picks
/// an ordering algorithm, soundness-filters the stream (reporting discards
/// back so they do not condition later utilities), and orders each plan's
/// atoms executably under the sources' access patterns.
class OrderingPipeline {
 public:
  enum class Algorithm {
    /// The paper's Section 6 guidance: Greedy when the measure is fully
    /// monotonic; otherwise Streamer when diminishing returns holds;
    /// otherwise iDrips.
    kAuto,
    kGreedy,
    kStreamer,
    kIDrips,
    kPi,
  };

  struct Options {
    utility::MeasureKind measure = utility::MeasureKind::kCost2;
    Algorithm algorithm = Algorithm::kAuto;
    core::AbstractionHeuristic heuristic =
        core::AbstractionHeuristic::kByCardinality;
  };

  /// One emitted plan: the executable rewriting plus its conditional
  /// utility.
  struct Emission {
    reformulation::QueryPlan plan;
    double utility = 0.0;
  };

  /// Builds the pipeline over an explicit workload whose buckets must align
  /// with the query's relational subgoals (e.g. from
  /// reformulation::EstimateWorkloadFromInstances). All pointers must
  /// outlive the pipeline.
  static StatusOr<std::unique_ptr<OrderingPipeline>> Create(
      const datalog::Catalog* catalog, datalog::ConjunctiveQuery query,
      const stats::Workload* workload, const Options& options);

  /// The next best sound, executable plan; NotFound when exhausted.
  StatusOr<Emission> Next();

  /// Which algorithm kAuto resolved to ("greedy", "streamer", ...).
  const std::string& algorithm_name() const { return algorithm_name_; }

  const reformulation::BucketResult& buckets() const { return buckets_; }
  int64_t plan_evaluations() const { return orderer_->plan_evaluations(); }

 private:
  OrderingPipeline() = default;

  const datalog::Catalog* catalog_ = nullptr;
  datalog::ConjunctiveQuery query_;
  reformulation::BucketResult buckets_;
  std::unique_ptr<utility::UtilityModel> model_;
  std::unique_ptr<core::Orderer> orderer_;
  std::string algorithm_name_;
};

}  // namespace planorder::exec

#endif  // PLANORDER_EXEC_PIPELINE_H_
