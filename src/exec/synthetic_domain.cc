#include "exec/synthetic_domain.h"

#include <algorithm>
#include <string>

#include "base/rng.h"

namespace planorder::exec {

using datalog::Atom;
using datalog::ConjunctiveQuery;
using datalog::Term;

StatusOr<std::unique_ptr<SyntheticDomain>> BuildSyntheticDomain(
    const stats::WorkloadOptions& workload_options, int num_answers) {
  if (num_answers < 1) return InvalidArgumentError("num_answers must be >= 1");
  PLANORDER_ASSIGN_OR_RETURN(stats::Workload generated,
                             stats::Workload::Generate(workload_options));
  auto domain = std::make_unique<SyntheticDomain>();
  const int m = generated.num_buckets();

  // Schema: chain relations p0(X0,X1), ..., p{m-1}(X{m-1},Xm); query joins
  // them and returns the endpoints.
  for (int b = 0; b < m; ++b) {
    PLANORDER_RETURN_IF_ERROR(
        domain->catalog.schema().AddRelation("p" + std::to_string(b), 2));
  }
  domain->query.head.predicate = "q";
  domain->query.head.args = {Term::Variable("X0"),
                             Term::Variable("X" + std::to_string(m))};
  for (int b = 0; b < m; ++b) {
    domain->query.body.push_back(
        Atom("p" + std::to_string(b),
             {Term::Variable("X" + std::to_string(b)),
              Term::Variable("X" + std::to_string(b + 1))}));
  }

  // Sources: identity views, one per (bucket, index).
  domain->source_ids.resize(m);
  for (int b = 0; b < m; ++b) {
    for (int i = 0; i < generated.bucket_size(b); ++i) {
      datalog::SourceDescription description;
      description.name = "v" + std::to_string(b) + "_" + std::to_string(i);
      description.view.head =
          Atom(description.name, {Term::Variable("A"), Term::Variable("B")});
      description.view.body = {Atom("p" + std::to_string(b),
                                    {Term::Variable("A"), Term::Variable("B")})};
      PLANORDER_ASSIGN_OR_RETURN(
          datalog::SourceId id,
          domain->catalog.AddSource(std::move(description)));
      domain->source_ids[b].push_back(id);
    }
  }

  // Answers: constants c{a}_{0..m}; each answer draws a region per bucket.
  Rng rng(workload_options.seed ^ 0x5eed5eedull);
  std::vector<std::vector<int>> answer_regions(
      num_answers, std::vector<int>(m, 0));
  const std::vector<std::vector<double>>& weights = generated.region_weights();
  for (int a = 0; a < num_answers; ++a) {
    for (int b = 0; b < m; ++b) {
      double target = rng.UniformReal(0.0, 1.0);
      double acc = 0.0;
      int region = static_cast<int>(weights[b].size()) - 1;
      for (size_t r = 0; r < weights[b].size(); ++r) {
        acc += weights[b][r];
        if (acc >= target) {
          region = static_cast<int>(r);
          break;
        }
      }
      answer_regions[a][b] = region;
    }
  }

  auto constant = [](int answer, int position) {
    return Term::Constant("c" + std::to_string(answer) + "_" +
                          std::to_string(position));
  };

  for (int b = 0; b < m; ++b) {
    for (int a = 0; a < num_answers; ++a) {
      domain->schema_facts.AddFact(
          Atom("p" + std::to_string(b), {constant(a, b), constant(a, b + 1)}));
    }
  }

  std::vector<std::vector<stats::SourceStats>> buckets(m);
  for (int b = 0; b < m; ++b) {
    buckets[b].resize(generated.bucket_size(b));
    for (int i = 0; i < generated.bucket_size(b); ++i) {
      stats::SourceStats s = generated.source(b, i);
      int count = 0;
      for (int a = 0; a < num_answers; ++a) {
        if (s.regions.bits & (uint64_t{1} << answer_regions[a][b])) {
          domain->source_facts.AddFact(
              Atom(domain->catalog.source(domain->source_ids[b][i]).name,
                   {constant(a, b), constant(a, b + 1)}));
          ++count;
        }
      }
      // Honest statistics: the cardinality the mediator believes is the
      // actual materialized count (at least 1 to keep cost formulas sane).
      s.cardinality = std::max(1, count);
      buckets[b][i] = s;
    }
  }

  std::vector<double> domain_sizes(m);
  for (int b = 0; b < m; ++b) {
    domain_sizes[b] = std::max(1.0, double(num_answers)) *
                      workload_options.domain_size_factor;
  }
  PLANORDER_ASSIGN_OR_RETURN(
      domain->workload,
      stats::Workload::FromParts(std::move(buckets), generated.region_weights(),
                                 generated.access_overhead(),
                                 std::move(domain_sizes)));
  domain->num_answers = static_cast<size_t>(num_answers);
  return domain;
}

}  // namespace planorder::exec
