#include "exec/source_access.h"

namespace planorder::exec {

Status AccessibleSource::Add(std::vector<datalog::Term> tuple) {
  if (tuple.size() != arity_) {
    return InvalidArgumentError("source '" + name_ + "' expects arity " +
                                std::to_string(arity_));
  }
  for (const datalog::Term& t : tuple) {
    if (!t.IsGround()) {
      return InvalidArgumentError("source tuples must be ground");
    }
  }
  for (const auto& existing : tuples_) {
    if (existing == tuple) return OkStatus();
  }
  tuples_.push_back(std::move(tuple));
  indexes_.clear();  // rebuilt lazily
  return OkStatus();
}

Status AccessibleSource::set_binding_pattern(std::string pattern) {
  if (pattern.size() != arity_) {
    return InvalidArgumentError("binding pattern '" + pattern +
                                "' does not match arity of '" + name_ + "'");
  }
  for (char c : pattern) {
    if (c != 'b' && c != 'f') {
      return InvalidArgumentError("binding patterns use only 'b' and 'f'");
    }
  }
  binding_pattern_ = std::move(pattern);
  return OkStatus();
}

Status AccessibleSource::ValidateBindings(
    const std::map<int, datalog::Term>& bindings) const {
  for (size_t pos = 0; pos < binding_pattern_.size(); ++pos) {
    if (binding_pattern_[pos] == 'b' &&
        !bindings.contains(static_cast<int>(pos))) {
      return FailedPreconditionError(
          "source '" + name_ + "' requires position " + std::to_string(pos) +
          " bound; order the plan with FindExecutableOrder");
    }
  }
  return OkStatus();
}

std::string AccessibleSource::KeyFor(const std::vector<int>& positions,
                                     const std::vector<datalog::Term>& tuple) {
  std::string key;
  for (int p : positions) {
    key += tuple[static_cast<size_t>(p)].ToString();
    key += '\x1f';
  }
  return key;
}

std::string AccessibleSource::KeyFor(
    const std::map<int, datalog::Term>& bindings) {
  std::string key;
  for (const auto& [unused, value] : bindings) {
    key += value.ToString();
    key += '\x1f';
  }
  return key;
}

const std::vector<std::vector<datalog::Term>>& AccessibleSource::Fetch(
    const std::map<int, datalog::Term>& bindings) {
  ++stats_.calls;
  if (bindings.empty()) {
    stats_.tuples_shipped += static_cast<int64_t>(tuples_.size());
    return tuples_;
  }
  // Index key over the bound position set (e.g. "0" or "0,2").
  std::string position_key;
  std::vector<int> positions;
  for (const auto& [position, unused] : bindings) {
    positions.push_back(position);
    position_key += std::to_string(position);
    position_key += ',';
  }
  auto [it, inserted] = indexes_.try_emplace(position_key);
  if (inserted) {
    for (const auto& tuple : tuples_) {
      it->second.rows[KeyFor(positions, tuple)].push_back(tuple);
    }
  }
  auto rows = it->second.rows.find(KeyFor(bindings));
  if (rows == it->second.rows.end()) return empty_;
  stats_.tuples_shipped += static_cast<int64_t>(rows->second.size());
  return rows->second;
}

StatusOr<std::vector<std::vector<datalog::Term>>> AccessibleSource::FetchBatch(
    const std::vector<std::map<int, datalog::Term>>& batch) {
  std::vector<std::vector<datalog::Term>> result;
  if (batch.empty()) return result;
  // Enforce the documented precondition: one batched semi-join ships one
  // bound-position set. A mixed batch would silently consult different
  // indexes per combination, so reject it outright.
  for (size_t i = 1; i < batch.size(); ++i) {
    const auto& expect = batch.front();
    const auto& got = batch[i];
    bool same = expect.size() == got.size();
    if (same) {
      auto e = expect.begin();
      for (auto g = got.begin(); g != got.end(); ++g, ++e) {
        if (e->first != g->first) {
          same = false;
          break;
        }
      }
    }
    if (!same) {
      return InvalidArgumentError(
          "FetchBatch against '" + name_ +
          "': combination " + std::to_string(i) +
          " binds a different position set than combination 0");
    }
  }
  ++stats_.calls;
  // Temporarily neutralize per-combination accounting: the batch is one
  // call and ships the deduplicated union.
  const AccessStats before = stats_;
  // detlint: order-insensitive(membership-only dedup; result keeps row order)
  std::unordered_map<std::string, bool> seen;
  for (const auto& bindings : batch) {
    for (const auto& row : Fetch(bindings)) {
      std::string key;
      for (const datalog::Term& t : row) {
        key += t.ToString();
        key += '\x1f';
      }
      if (seen.emplace(std::move(key), true).second) result.push_back(row);
    }
  }
  stats_ = before;
  stats_.tuples_shipped += static_cast<int64_t>(result.size());
  return result;
}

StatusOr<AccessibleSource*> SourceRegistry::Register(std::string name,
                                                     size_t arity) {
  auto [it, inserted] =
      sources_.try_emplace(name, AccessibleSource(name, arity));
  if (!inserted) {
    return InvalidArgumentError("source '" + name + "' registered twice");
  }
  return &it->second;
}

AccessibleSource* SourceRegistry::Find(const std::string& name) {
  auto it = sources_.find(name);
  return it == sources_.end() ? nullptr : &it->second;
}

const AccessibleSource* SourceRegistry::Find(const std::string& name) const {
  auto it = sources_.find(name);
  return it == sources_.end() ? nullptr : &it->second;
}

std::vector<std::string> SourceRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(sources_.size());
  for (const auto& [name, unused] : sources_) names.push_back(name);
  return names;
}

void SourceRegistry::ResetStats() {
  for (auto& [unused, source] : sources_) source.ResetStats();
}

AccessStats SourceRegistry::TotalStats() const {
  AccessStats total;
  for (const auto& [unused, source] : sources_) {
    total.calls += source.stats().calls;
    total.tuples_shipped += source.stats().tuples_shipped;
  }
  return total;
}

}  // namespace planorder::exec
