#ifndef PLANORDER_EXEC_SYNTHETIC_DOMAIN_H_
#define PLANORDER_EXEC_SYNTHETIC_DOMAIN_H_

#include <memory>
#include <vector>

#include "base/status.h"
#include "datalog/evaluator.h"
#include "datalog/source.h"
#include "stats/workload.h"

namespace planorder::exec {

/// A fully materialized synthetic integration domain: a chain query
/// Q(X0,Xm) :- p0(X0,X1), ..., p{m-1}(X{m-1},Xm), one source per
/// (bucket, index) of the workload with the identity view over its subgoal's
/// relation, and source instances generated answer-first so that the
/// workload's coverage model is exact:
///
/// each of `num_answers` ground query answers draws one region per bucket
/// (by the bucket's region weights); source (b, i) materializes the subgoal-b
/// atom of exactly the answers whose region at b falls in its mask. A plan's
/// real result set is then precisely the answers inside its coverage box, so
/// estimated coverage equals expected actual coverage — the property the
/// integration tests and the mediator demo verify.
struct SyntheticDomain {
  datalog::Catalog catalog;
  datalog::ConjunctiveQuery query;
  /// Statistics aligned with `catalog`: workload bucket b, index i describes
  /// the source with id source_ids[b][i]. Cardinalities are the actual
  /// materialized tuple counts.
  stats::Workload workload;
  std::vector<std::vector<datalog::SourceId>> source_ids;
  /// Facts over the source relations (what the mediator can access).
  datalog::Database source_facts;
  /// Ground truth over the schema relations (for cross-checks only).
  datalog::Database schema_facts;
  /// All query answers in the ground truth.
  size_t num_answers = 0;
};

/// Builds a synthetic domain. `workload_options` controls buckets, regions,
/// overlap and statistics; `num_answers` the size of the materialized ground
/// truth.
StatusOr<std::unique_ptr<SyntheticDomain>> BuildSyntheticDomain(
    const stats::WorkloadOptions& workload_options, int num_answers);

}  // namespace planorder::exec

#endif  // PLANORDER_EXEC_SYNTHETIC_DOMAIN_H_
