#include "exec/mediator.h"

#include "exec/dependent_join.h"

#include "reformulation/executable_order.h"
#include "reformulation/rewriting.h"

namespace planorder::exec {

namespace {

/// Set-oriented evaluation against the source-facts database — the original
/// execution path, with no per-source accounting.
class SetOrientedExecutor : public PlanExecutor {
 public:
  explicit SetOrientedExecutor(const datalog::Database* facts)
      : facts_(facts) {}

  StatusOr<PlanExecution> ExecutePlan(
      const datalog::ConjunctiveQuery& rewriting) override {
    PlanExecution exec;
    PLANORDER_ASSIGN_OR_RETURN(exec.tuples,
                               datalog::EvaluateQuery(rewriting, *facts_));
    return exec;
  }

 private:
  const datalog::Database* facts_;
};

/// Serial dependent joins against the binding-pattern sources, with access
/// accounting.
class DependentJoinExecutor : public PlanExecutor {
 public:
  explicit DependentJoinExecutor(SourceRegistry* registry)
      : registry_(registry) {}

  StatusOr<PlanExecution> ExecutePlan(
      const datalog::ConjunctiveQuery& rewriting) override {
    PlanExecution exec;
    ExecutionTrace trace;
    PLANORDER_ASSIGN_OR_RETURN(
        exec.tuples, ExecutePlanDependent(rewriting, *registry_, &trace));
    exec.source_calls = trace.TotalCalls();
    exec.tuples_shipped = trace.TotalTuplesShipped();
    return exec;
  }

 private:
  SourceRegistry* registry_;
};

}  // namespace

StatusOr<MediatorResult> Mediator::Run(core::Orderer& orderer, int max_plans,
                                       SourceRegistry* registry) {
  RunLimits limits;
  limits.max_plans = max_plans;
  return Run(orderer, limits, registry);
}

StatusOr<MediatorResult> Mediator::Run(core::Orderer& orderer,
                                       const RunLimits& limits,
                                       SourceRegistry* registry) {
  if (registry != nullptr) {
    DependentJoinExecutor executor(registry);
    return Run(orderer, limits, executor);
  }
  SetOrientedExecutor executor(source_facts_);
  return Run(orderer, limits, executor);
}

StatusOr<MediatorResult> Mediator::Run(core::Orderer& orderer,
                                       const RunLimits& limits,
                                       PlanExecutor& executor) {
  if (limits.max_plans <= 0) {
    return InvalidArgumentError("max_plans must be positive");
  }
  MediatorResult result;
  double estimated_cost_spent = 0.0;
  std::unordered_set<std::vector<datalog::Term>, datalog::TermVectorHash>
      answers;
  for (int i = 0; i < limits.max_plans; ++i) {
    auto next = orderer.Next();
    if (!next.ok()) {
      if (next.status().code() == StatusCode::kNotFound) break;
      return next.status();
    }
    MediatorStep step;
    step.plan = next->plan;
    step.estimated_utility = next->utility;

    // Translate bucket indices to catalog source ids and build the sound
    // rewriting, if any.
    std::vector<datalog::SourceId> choice(step.plan.size());
    for (size_t b = 0; b < step.plan.size(); ++b) {
      choice[b] = source_ids_[b][step.plan[b]];
    }
    PLANORDER_ASSIGN_OR_RETURN(
        std::optional<reformulation::QueryPlan> plan,
        reformulation::BuildSoundPlan(query_, *catalog_, choice));
    if (!plan.has_value()) {
      step.sound = false;
      orderer.ReportDiscarded();
    } else {
      step.sound = true;
      ++result.sound_plans;
      // Respect source access patterns: reorder atoms into an executable
      // order; a sound plan with none is discarded like an unsound one.
      auto ordered = reformulation::FindExecutableOrder(*plan, *catalog_);
      if (!ordered.ok()) {
        if (ordered.status().code() != StatusCode::kFailedPrecondition) {
          return ordered.status();
        }
        step.executable = false;
        orderer.ReportDiscarded();
      } else {
        PLANORDER_ASSIGN_OR_RETURN(PlanExecution exec,
                                   executor.ExecutePlan(ordered->rewriting));
        result.source_calls += exec.source_calls;
        result.tuples_shipped += exec.tuples_shipped;
        result.runtime.Merge(exec.runtime);
        if (exec.failed) {
          // A dead source takes this plan out, not the run: report it to the
          // orderer as a discard so it stops conditioning later utilities.
          step.failed = true;
          step.failure_reason = std::move(exec.failure_reason);
          ++result.failed_plans;
          orderer.ReportDiscarded();
        } else {
          step.answers_from_plan = exec.tuples.size();
          for (std::vector<datalog::Term>& tuple : exec.tuples) {
            if (answers.insert(std::move(tuple)).second) ++step.new_answers;
          }
        }
      }
    }
    step.total_answers = answers.size();
    if (step.sound && step.executable && !step.failed) {
      estimated_cost_spent -= step.estimated_utility;
    }
    result.steps.push_back(std::move(step));
    if (limits.answer_target > 0 && answers.size() >= limits.answer_target) {
      break;
    }
    if (limits.cost_budget > 0.0 &&
        estimated_cost_spent >= limits.cost_budget) {
      break;
    }
  }
  result.total_answers = answers.size();
  return result;
}

}  // namespace planorder::exec
