#include "exec/mediator.h"

#include <utility>

#include "exec/dependent_join.h"

#include "reformulation/executable_order.h"
#include "reformulation/rewriting.h"

namespace planorder::exec {

namespace {

/// Set-oriented evaluation against the source-facts database — the original
/// execution path, with no per-source accounting.
class SetOrientedExecutor : public PlanExecutor {
 public:
  explicit SetOrientedExecutor(const datalog::Database* facts)
      : facts_(facts) {}

  StatusOr<PlanExecution> ExecutePlan(
      const datalog::ConjunctiveQuery& rewriting) override {
    PlanExecution exec;
    PLANORDER_ASSIGN_OR_RETURN(exec.tuples,
                               datalog::EvaluateQuery(rewriting, *facts_));
    return exec;
  }

 private:
  const datalog::Database* facts_;
};

/// Serial dependent joins against the binding-pattern sources, with access
/// accounting.
class DependentJoinExecutor : public PlanExecutor {
 public:
  explicit DependentJoinExecutor(SourceRegistry* registry)
      : registry_(registry) {}

  StatusOr<PlanExecution> ExecutePlan(
      const datalog::ConjunctiveQuery& rewriting) override {
    PlanExecution exec;
    ExecutionTrace trace;
    PLANORDER_ASSIGN_OR_RETURN(
        exec.tuples, ExecutePlanDependent(rewriting, *registry_, &trace));
    exec.source_calls = trace.TotalCalls();
    exec.tuples_shipped = trace.TotalTuplesShipped();
    return exec;
  }

 private:
  SourceRegistry* registry_;
};

}  // namespace

std::unique_ptr<PlanExecutor> MakeSetOrientedExecutor(
    const datalog::Database* facts) {
  return std::make_unique<SetOrientedExecutor>(facts);
}

std::unique_ptr<PlanExecutor> MakeDependentJoinExecutor(
    SourceRegistry* registry) {
  return std::make_unique<DependentJoinExecutor>(registry);
}

StatusOr<MediatorResult> Mediator::Run(core::Orderer& orderer, int max_plans,
                                       SourceRegistry* registry) {
  RunLimits limits;
  limits.max_plans = max_plans;
  return Run(orderer, limits, registry);
}

StatusOr<MediatorResult> Mediator::Run(core::Orderer& orderer,
                                       const RunLimits& limits,
                                       SourceRegistry* registry) {
  std::unique_ptr<PlanExecutor> executor =
      registry != nullptr ? MakeDependentJoinExecutor(registry)
                          : MakeSetOrientedExecutor(source_facts_);
  return Run(orderer, limits, *executor);
}

StatusOr<MediatorResult> Mediator::Run(core::Orderer& orderer,
                                       const RunLimits& limits,
                                       PlanExecutor& executor) {
  PLANORDER_ASSIGN_OR_RETURN(MediatorStream stream,
                             OpenStream(orderer, limits, executor));
  while (true) {
    auto step = stream.NextStep();
    if (!step.ok()) {
      if (step.status().code() == StatusCode::kNotFound) break;
      return step.status();
    }
  }
  return stream.TakeResult();
}

StatusOr<MediatorStream> Mediator::OpenStream(core::Orderer& orderer,
                                              const RunLimits& limits,
                                              PlanExecutor& executor) const {
  if (limits.max_plans <= 0) {
    return InvalidArgumentError("max_plans must be positive");
  }
  return MediatorStream(this, &orderer, limits, &executor);
}

StatusOr<MediatorStep> MediatorStream::NextStep() {
  if (done_) {
    return NotFoundError("mediation stream is over");
  }
  if (plans_emitted_ >= limits_.max_plans) {
    done_ = true;
    return NotFoundError("plan limit reached");
  }
  auto next = orderer_->Next();
  if (!next.ok()) {
    done_ = true;
    if (next.status().code() == StatusCode::kNotFound) {
      return NotFoundError("orderer exhausted");
    }
    return next.status();
  }
  MediatorStep step;
  step.plan = next->plan;
  step.estimated_utility = next->utility;

  // Translate bucket indices to catalog source ids and build the sound
  // rewriting, if any.
  std::vector<datalog::SourceId> choice(step.plan.size());
  for (size_t b = 0; b < step.plan.size(); ++b) {
    choice[b] = mediator_->source_ids_[b][step.plan[b]];
  }
  auto plan = reformulation::BuildSoundPlan(mediator_->query_,
                                            *mediator_->catalog_, choice);
  if (!plan.ok()) {
    done_ = true;
    return plan.status();
  }
  if (!plan->has_value()) {
    step.sound = false;
    orderer_->ReportDiscarded();
  } else {
    step.sound = true;
    ++result_.sound_plans;
    // Respect source access patterns: reorder atoms into an executable
    // order; a sound plan with none is discarded like an unsound one.
    auto ordered = reformulation::FindExecutableOrder(**plan,
                                                      *mediator_->catalog_);
    if (!ordered.ok()) {
      if (ordered.status().code() != StatusCode::kFailedPrecondition) {
        done_ = true;
        return ordered.status();
      }
      step.executable = false;
      orderer_->ReportDiscarded();
    } else {
      auto exec = executor_->ExecutePlan(ordered->rewriting);
      if (!exec.ok()) {
        done_ = true;
        return exec.status();
      }
      result_.source_calls += exec->source_calls;
      result_.tuples_shipped += exec->tuples_shipped;
      result_.runtime.Merge(exec->runtime);
      if (exec->failed) {
        // A dead source takes this plan out, not the run: report it to the
        // orderer as a discard so it stops conditioning later utilities.
        step.failed = true;
        step.failure_reason = std::move(exec->failure_reason);
        ++result_.failed_plans;
        orderer_->ReportDiscarded();
      } else {
        step.answers_from_plan = exec->tuples.size();
        for (std::vector<datalog::Term>& tuple : exec->tuples) {
          if (answers_.insert(std::move(tuple)).second) ++step.new_answers;
        }
      }
    }
  }
  step.total_answers = answers_.size();
  if (step.sound && step.executable && !step.failed) {
    estimated_cost_spent_ -= step.estimated_utility;
  }
  ++plans_emitted_;
  result_.steps.push_back(step);
  result_.total_answers = answers_.size();
  if (limits_.answer_target > 0 && answers_.size() >= limits_.answer_target) {
    done_ = true;
  }
  if (limits_.cost_budget > 0.0 &&
      estimated_cost_spent_ >= limits_.cost_budget) {
    done_ = true;
  }
  return step;
}

MediatorResult MediatorStream::TakeResult() {
  done_ = true;
  result_.total_answers = answers_.size();
  return std::move(result_);
}

}  // namespace planorder::exec
