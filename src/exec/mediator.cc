#include "exec/mediator.h"

#include "exec/dependent_join.h"

#include "reformulation/executable_order.h"
#include "reformulation/rewriting.h"

namespace planorder::exec {

StatusOr<MediatorResult> Mediator::Run(core::Orderer& orderer, int max_plans,
                                       SourceRegistry* registry) {
  RunLimits limits;
  limits.max_plans = max_plans;
  return Run(orderer, limits, registry);
}

StatusOr<MediatorResult> Mediator::Run(core::Orderer& orderer,
                                       const RunLimits& limits,
                                       SourceRegistry* registry) {
  if (limits.max_plans <= 0) {
    return InvalidArgumentError("max_plans must be positive");
  }
  MediatorResult result;
  double estimated_cost_spent = 0.0;
  std::unordered_set<std::vector<datalog::Term>, datalog::TermVectorHash>
      answers;
  for (int i = 0; i < limits.max_plans; ++i) {
    auto next = orderer.Next();
    if (!next.ok()) {
      if (next.status().code() == StatusCode::kNotFound) break;
      return next.status();
    }
    MediatorStep step;
    step.plan = next->plan;
    step.estimated_utility = next->utility;

    // Translate bucket indices to catalog source ids and build the sound
    // rewriting, if any.
    std::vector<datalog::SourceId> choice(step.plan.size());
    for (size_t b = 0; b < step.plan.size(); ++b) {
      choice[b] = source_ids_[b][step.plan[b]];
    }
    PLANORDER_ASSIGN_OR_RETURN(
        std::optional<reformulation::QueryPlan> plan,
        reformulation::BuildSoundPlan(query_, *catalog_, choice));
    if (!plan.has_value()) {
      step.sound = false;
      orderer.ReportDiscarded();
    } else {
      step.sound = true;
      ++result.sound_plans;
      // Respect source access patterns: reorder atoms into an executable
      // order; a sound plan with none is discarded like an unsound one.
      auto ordered = reformulation::FindExecutableOrder(*plan, *catalog_);
      if (!ordered.ok()) {
        if (ordered.status().code() != StatusCode::kFailedPrecondition) {
          return ordered.status();
        }
        step.executable = false;
        orderer.ReportDiscarded();
      } else {
        std::vector<std::vector<datalog::Term>> tuples;
        if (registry != nullptr) {
          ExecutionTrace trace;
          PLANORDER_ASSIGN_OR_RETURN(
              tuples,
              ExecutePlanDependent(ordered->rewriting, *registry, &trace));
          result.source_calls += trace.TotalCalls();
          result.tuples_shipped += trace.TotalTuplesShipped();
        } else {
          PLANORDER_ASSIGN_OR_RETURN(
              tuples,
              datalog::EvaluateQuery(ordered->rewriting, *source_facts_));
        }
        step.answers_from_plan = tuples.size();
        for (std::vector<datalog::Term>& tuple : tuples) {
          if (answers.insert(std::move(tuple)).second) ++step.new_answers;
        }
      }
    }
    step.total_answers = answers.size();
    if (step.sound && step.executable) {
      estimated_cost_spent -= step.estimated_utility;
    }
    result.steps.push_back(std::move(step));
    if (limits.answer_target > 0 && answers.size() >= limits.answer_target) {
      break;
    }
    if (limits.cost_budget > 0.0 &&
        estimated_cost_spent >= limits.cost_budget) {
      break;
    }
  }
  result.total_answers = answers.size();
  return result;
}

}  // namespace planorder::exec
