#ifndef PLANORDER_EXEC_SOURCE_ACCESS_H_
#define PLANORDER_EXEC_SOURCE_ACCESS_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "datalog/term.h"

namespace planorder::exec {

/// Accounting for calls against one source: how often it was contacted and
/// how many tuples it shipped back. These are exactly the quantities cost
/// measure (2) estimates — h per call, alpha per shipped item — so a plan's
/// trace can be compared against its modeled cost (see dependent_join.h).
struct AccessStats {
  int64_t calls = 0;
  int64_t tuples_shipped = 0;
};

/// A queryable data source holding ground tuples, accessed by *binding
/// pattern*: the caller fixes values for some argument positions and the
/// source returns the matching tuples. Mirrors how a mediator actually
/// talks to autonomous sources ("give me the movies starring Ford") rather
/// than bulk-copying relations. Point lookups are served from hash indexes
/// built lazily per bound-position set.
class AccessibleSource {
 public:
  AccessibleSource(std::string name, size_t arity)
      : name_(std::move(name)), arity_(arity) {}

  const std::string& name() const { return name_; }
  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }

  /// Access-pattern adornment ('b'/'f' per position; empty = all free).
  /// Mirrors datalog::SourceDescription::binding_pattern for enforcement at
  /// the access layer.
  Status set_binding_pattern(std::string pattern);
  const std::string& binding_pattern() const { return binding_pattern_; }

  /// OK when `bindings` covers every position the adornment requires.
  Status ValidateBindings(const std::map<int, datalog::Term>& bindings) const;

  /// Adds a ground tuple (checked). Duplicates are kept out.
  Status Add(std::vector<datalog::Term> tuple);

  /// One access: returns the tuples matching `bindings` (position -> value;
  /// empty means a full scan) and records the call in `stats_`.
  const std::vector<std::vector<datalog::Term>>& Fetch(
      const std::map<int, datalog::Term>& bindings);

  /// One *batched* access: ships all binding combinations at once (the
  /// semi-join of cost measure (2): "feed the titles into V_j") and returns
  /// the union of the matches, deduplicated. Counts as a single call; the
  /// shipped count is the union's size. An empty batch is a no-op returning
  /// nothing.
  ///
  /// Every combination must bind the same position set (one semi-join ships
  /// one column set); a mixed batch is rejected with kInvalidArgument before
  /// any tuple is fetched or any accounting is recorded.
  StatusOr<std::vector<std::vector<datalog::Term>>> FetchBatch(
      const std::vector<std::map<int, datalog::Term>>& batch);

  const AccessStats& stats() const { return stats_; }
  void ResetStats() { stats_ = AccessStats{}; }

 private:
  struct Index {
    // Key: concatenated ToString of the bound values; value: matching rows.
    // Probed by key only; the rows vectors keep insertion (load) order.
    // detlint: order-insensitive(keyed probe only; never iterated)
    std::unordered_map<std::string, std::vector<std::vector<datalog::Term>>>
        rows;
  };

  static std::string KeyFor(const std::vector<int>& positions,
                            const std::vector<datalog::Term>& tuple);
  static std::string KeyFor(const std::map<int, datalog::Term>& bindings);

  std::string name_;
  size_t arity_;
  std::string binding_pattern_;
  std::vector<std::vector<datalog::Term>> tuples_;
  // detlint: order-insensitive(keyed probe by position-set key only)
  std::unordered_map<std::string, Index> indexes_;
  AccessStats stats_;
  std::vector<std::vector<datalog::Term>> empty_;
};

/// The mediator's view of the world: one AccessibleSource per source
/// relation name.
class SourceRegistry {
 public:
  /// Registers a new source; fails on duplicates.
  StatusOr<AccessibleSource*> Register(std::string name, size_t arity);

  /// Looks a source up, or nullptr.
  AccessibleSource* Find(const std::string& name);
  const AccessibleSource* Find(const std::string& name) const;

  /// Names of all registered sources, in registration-independent sorted
  /// order (used by wrappers that shadow every source, e.g. the runtime's
  /// RemoteRegistry).
  std::vector<std::string> Names() const;

  void ResetStats();

  /// Total across sources.
  AccessStats TotalStats() const;

 private:
  std::map<std::string, AccessibleSource> sources_;
};

}  // namespace planorder::exec

#endif  // PLANORDER_EXEC_SOURCE_ACCESS_H_
