#include "exec/dependent_join.h"

#include <set>
#include <unordered_set>

#include "datalog/builtins.h"
#include "datalog/unify.h"

namespace planorder::exec {

using datalog::Atom;
using datalog::Substitution;
using datalog::Term;

int64_t ExecutionTrace::TotalCalls() const {
  int64_t total = 0;
  for (const AtomAccess& a : atoms) total += a.calls;
  return total;
}

int64_t ExecutionTrace::TotalTuplesShipped() const {
  int64_t total = 0;
  for (const AtomAccess& a : atoms) total += a.tuples_shipped;
  return total;
}

double ExecutionTrace::ModeledCost(
    double access_overhead, const std::vector<double>& alpha_per_atom) const {
  double cost = 0.0;
  for (size_t i = 0; i < atoms.size(); ++i) {
    const double alpha = i < alpha_per_atom.size() ? alpha_per_atom[i] : 0.0;
    cost += double(atoms[i].calls) * access_overhead +
            double(atoms[i].tuples_shipped) * alpha;
  }
  return cost;
}

StatusOr<std::vector<std::vector<Term>>> ExecutePlanDependent(
    const datalog::ConjunctiveQuery& rewriting, SourceRegistry& sources,
    ExecutionTrace* trace) {
  PLANORDER_RETURN_IF_ERROR(rewriting.ValidateSafety());
  for (const Atom& atom : rewriting.body) {
    if (datalog::IsComparisonAtom(atom)) continue;
    const AccessibleSource* source = sources.Find(atom.predicate);
    if (source == nullptr) {
      return NotFoundError("no source registered for '" + atom.predicate +
                           "'");
    }
    if (source->arity() != atom.arity()) {
      return InvalidArgumentError("arity mismatch for '" + atom.predicate +
                                  "'");
    }
    for (const Term& arg : atom.args) {
      if (arg.is_function()) {
        return InvalidArgumentError(
            "function terms cannot be executed against sources");
      }
    }
  }
  if (trace != nullptr) trace->atoms.clear();

  // Partial bindings flowing left to right.
  std::vector<Substitution> frontier = {Substitution{}};
  for (const Atom& atom : rewriting.body) {
    if (datalog::IsComparisonAtom(atom)) {
      // Filter the frontier locally; no source contact.
      std::vector<Substitution> kept;
      for (const Substitution& partial : frontier) {
        const Atom resolved = datalog::ApplySubstitution(atom, partial);
        if (!resolved.IsGround()) {
          return InvalidArgumentError(
              "comparison over unbound variables in execution order: " +
              atom.ToString());
        }
        PLANORDER_ASSIGN_OR_RETURN(bool holds,
                                   datalog::EvaluateComparison(resolved));
        if (holds) kept.push_back(partial);
      }
      frontier = std::move(kept);
      if (trace != nullptr) {
        AtomAccess filter;
        filter.source = atom.predicate;
        trace->atoms.push_back(std::move(filter));
      }
      if (frontier.empty()) break;
      continue;
    }
    AccessibleSource& source = *sources.Find(atom.predicate);
    AtomAccess access;
    access.source = atom.predicate;
    const int64_t calls_before = source.stats().calls;
    const int64_t shipped_before = source.stats().tuples_shipped;

    // Collect the distinct binding combinations the frontier sends to the
    // source and ship them as ONE batched call — the semi-join of measure
    // (2): h is paid once per source, alpha per tuple of the joined result.
    std::vector<Substitution> next;
    std::vector<std::map<int, Term>> batch;
    std::map<std::string, size_t> combination_index;
    for (const Substitution& partial : frontier) {
      std::map<int, Term> bindings;
      std::string key;
      for (size_t pos = 0; pos < atom.args.size(); ++pos) {
        const Term resolved =
            datalog::ApplySubstitution(atom.args[pos], partial);
        if (resolved.IsGround()) {
          bindings[static_cast<int>(pos)] = resolved;
          key += resolved.ToString();
        }
        key += '\x1f';
      }
      auto [it, inserted] =
          combination_index.try_emplace(std::move(key), batch.size());
      if (inserted) batch.push_back(std::move(bindings));
    }

    if (!batch.empty()) {
      PLANORDER_RETURN_IF_ERROR(source.ValidateBindings(batch.front()));
    }
    PLANORDER_ASSIGN_OR_RETURN(const std::vector<std::vector<Term>> rows,
                               source.FetchBatch(batch));
    for (const Substitution& partial : frontier) {
      for (const auto& row : rows) {
        Substitution extended = partial;
        bool ok = true;
        for (size_t pos = 0; pos < atom.args.size() && ok; ++pos) {
          ok = datalog::MatchTerm(atom.args[pos], row[pos], extended);
        }
        if (ok) next.push_back(std::move(extended));
      }
    }
    access.calls = source.stats().calls - calls_before;
    access.tuples_shipped = source.stats().tuples_shipped - shipped_before;
    if (trace != nullptr) trace->atoms.push_back(std::move(access));
    frontier = std::move(next);
    if (frontier.empty()) break;
  }

  // Dedup guard only: answers keep the deterministic frontier order.
  // detlint: order-insensitive(membership-only dedup; never iterated)
  std::unordered_set<std::vector<Term>, datalog::TermVectorHash> seen;
  std::vector<std::vector<Term>> answers;
  for (const Substitution& subst : frontier) {
    Atom head = datalog::ApplySubstitution(rewriting.head, subst);
    if (!head.IsGround()) {
      return InternalError("unbound head after safe execution");
    }
    if (seen.insert(head.args).second) answers.push_back(std::move(head.args));
  }
  // Keep trace length equal to the body even when the frontier drained.
  if (trace != nullptr) {
    while (trace->atoms.size() < rewriting.body.size()) {
      AtomAccess empty;
      empty.source = rewriting.body[trace->atoms.size()].predicate;
      trace->atoms.push_back(std::move(empty));
    }
  }
  return answers;
}

}  // namespace planorder::exec
