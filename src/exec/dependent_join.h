#ifndef PLANORDER_EXEC_DEPENDENT_JOIN_H_
#define PLANORDER_EXEC_DEPENDENT_JOIN_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "datalog/conjunctive_query.h"
#include "exec/source_access.h"

namespace planorder::exec {

/// Per-atom record of a dependent-join execution.
struct AtomAccess {
  std::string source;
  /// Number of source calls (distinct binding combinations fed in).
  int64_t calls = 0;
  /// Tuples the source shipped back across those calls.
  int64_t tuples_shipped = 0;
};

/// The execution trace of one plan: one entry per body atom, in execution
/// order. `ModeledCost` prices it exactly the way cost measure (2) prices a
/// plan — h per call plus alpha per shipped tuple — so traces are directly
/// comparable against the utility model's estimate.
struct ExecutionTrace {
  std::vector<AtomAccess> atoms;

  int64_t TotalCalls() const;
  int64_t TotalTuplesShipped() const;
  /// sum over atoms of (calls * access_overhead + tuples * alpha(atom)).
  double ModeledCost(double access_overhead,
                     const std::vector<double>& alpha_per_atom) const;
};

/// Executes a rewriting p(Y) :- V1(U1), ..., Vn(Un) against the registry by
/// left-to-right *dependent joins*, the strategy cost measure (2) models:
/// atom 1 is fetched with its constant bindings, every later atom is called
/// once per distinct combination of values flowing in from the prefix (the
/// semi-join "feed the titles into V_j"). Returns the distinct head tuples
/// and, optionally, the access trace.
///
/// The rewriting must be safe and every body predicate registered.
StatusOr<std::vector<std::vector<datalog::Term>>> ExecutePlanDependent(
    const datalog::ConjunctiveQuery& rewriting, SourceRegistry& sources,
    ExecutionTrace* trace = nullptr);

}  // namespace planorder::exec

#endif  // PLANORDER_EXEC_DEPENDENT_JOIN_H_
