#ifndef PLANORDER_REFORMULATION_INVERSE_RULES_H_
#define PLANORDER_REFORMULATION_INVERSE_RULES_H_

#include <vector>

#include "base/status.h"
#include "datalog/conjunctive_query.h"
#include "datalog/evaluator.h"
#include "datalog/source.h"
#include "reformulation/bucket.h"

namespace planorder::reformulation {

/// The inverse-rule reformulation algorithm (Duschka & Genesereth; Section 7
/// of the paper). For a source V(X) :- p1(Y1), ..., pk(Yk), each body atom
/// yields the rule  pi(Yi θ) :- V(X)  where θ replaces every existential view
/// variable Z by the Skolem term f_<V>_<Z>(X): the rules specify for each
/// schema relation all ways to obtain (possibly partially unknown) tuples
/// from the sources.
std::vector<datalog::Rule> MakeInverseRules(const datalog::Catalog& catalog);

/// The buckets induced by the inverse rules: a source belongs to subgoal g's
/// bucket iff one of its inverse rules derives g's predicate and its head
/// unifies with g. As Section 7 notes, for conjunctive queries these buckets
/// slot directly into the plan-ordering algorithms.
StatusOr<BucketResult> BucketsFromInverseRules(
    const datalog::ConjunctiveQuery& query, const datalog::Catalog& catalog);

/// Answers `query` bottom-up: evaluates the inverse rules plus the query rule
/// over the source facts in `source_facts` (facts over source relation
/// names), then drops answers containing Skolem terms. Equals the union of
/// the answers of all sound plans — the cross-check used by the tests.
StatusOr<std::vector<std::vector<datalog::Term>>> AnswerWithInverseRules(
    const datalog::ConjunctiveQuery& query, const datalog::Catalog& catalog,
    const datalog::Database& source_facts);

}  // namespace planorder::reformulation

#endif  // PLANORDER_REFORMULATION_INVERSE_RULES_H_
