#include "reformulation/executable_order.h"

#include <set>
#include <string>

#include "datalog/builtins.h"

namespace planorder::reformulation {

using datalog::Atom;
using datalog::Term;

StatusOr<QueryPlan> FindExecutableOrder(const QueryPlan& plan,
                                        const datalog::Catalog& catalog) {
  // Pair every relational atom with its source id; comparisons carry -1.
  struct Entry {
    const Atom* atom;
    datalog::SourceId source;  // -1 for comparisons
  };
  std::vector<Entry> entries;
  size_t next_source = 0;
  for (const Atom& atom : plan.rewriting.body) {
    if (datalog::IsComparisonAtom(atom)) {
      entries.push_back({&atom, -1});
      continue;
    }
    if (next_source >= plan.sources.size()) {
      return InvalidArgumentError("plan body and source list must align");
    }
    entries.push_back({&atom, plan.sources[next_source++]});
  }
  if (next_source != plan.sources.size()) {
    return InvalidArgumentError("plan body and source list must align");
  }

  std::set<std::string> bound;
  std::vector<bool> placed(entries.size(), false);
  QueryPlan ordered;
  ordered.rewriting.head = plan.rewriting.head;

  auto is_bound = [&](const Term& term) {
    if (term.is_constant()) return true;
    return term.is_variable() && bound.contains(term.name());
  };

  for (size_t step = 0; step < entries.size(); ++step) {
    // Bound comparisons run first (free filtering), then the first
    // executable source atom.
    int pick = -1;
    for (size_t i = 0; i < entries.size() && pick < 0; ++i) {
      if (placed[i] || entries[i].source >= 0) continue;
      bool ready = true;
      for (const Term& arg : entries[i].atom->args) {
        if (!is_bound(arg)) ready = false;
      }
      if (ready) pick = static_cast<int>(i);
    }
    for (size_t i = 0; i < entries.size() && pick < 0; ++i) {
      if (placed[i] || entries[i].source < 0) continue;
      const datalog::SourceDescription& source =
          catalog.source(entries[i].source);
      bool ready = true;
      for (size_t pos = 0; pos < entries[i].atom->args.size(); ++pos) {
        if (source.RequiresBound(pos) &&
            !is_bound(entries[i].atom->args[pos])) {
          ready = false;
          break;
        }
      }
      if (ready) pick = static_cast<int>(i);
    }
    if (pick < 0) {
      return FailedPreconditionError(
          "no executable order: every remaining source requires a binding "
          "no placed atom produces (plan " +
          plan.rewriting.ToString() + ")");
    }
    placed[static_cast<size_t>(pick)] = true;
    const Entry& chosen = entries[static_cast<size_t>(pick)];
    ordered.rewriting.body.push_back(*chosen.atom);
    if (chosen.source >= 0) ordered.sources.push_back(chosen.source);
    std::set<std::string> vars;
    chosen.atom->CollectVariables(vars);
    bound.insert(vars.begin(), vars.end());
  }
  return ordered;
}

}  // namespace planorder::reformulation
