#include "reformulation/statistics.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "datalog/builtins.h"
#include "datalog/unify.h"

namespace planorder::reformulation {

using datalog::Atom;
using datalog::ConjunctiveQuery;
using datalog::Substitution;
using datalog::Term;

namespace {

/// The distinct bindings source `id` can contribute to `goal`: unify the
/// subgoal with a view atom, project the subgoal's variables through the
/// source head, and evaluate against the instances. Variables the source
/// cannot retrieve (mapped to view existentials) are dropped from the
/// projection — overlap over the retrievable attributes is the conservative
/// choice.
StatusOr<std::vector<std::vector<Term>>> SubgoalBindings(
    const ConjunctiveQuery& query, const datalog::Catalog& catalog,
    datalog::SourceId id, const Atom& goal,
    const datalog::Database& source_facts) {
  (void)query;
  const ConjunctiveQuery view = catalog.source(id).view.RenameVariables("_s");
  for (const Atom& atom : view.body) {
    if (datalog::IsComparisonAtom(atom)) continue;
    if (atom.predicate != goal.predicate ||
        atom.args.size() != goal.args.size()) {
      continue;
    }
    Substitution subst;
    if (!datalog::UnifyAtoms(goal, atom, subst)) continue;
    const Atom plan_atom = datalog::ApplySubstitution(view.head, subst);
    // Projection over the subgoal variables the plan atom retrieves.
    std::set<std::string> plan_vars;
    plan_atom.CollectVariables(plan_vars);
    ConjunctiveQuery projection;
    projection.head.predicate = "proj";
    std::set<std::string> goal_vars;
    goal.CollectVariables(goal_vars);
    for (const std::string& v : goal_vars) {
      const Term resolved =
          datalog::ApplySubstitution(Term::Variable(v), subst);
      if (resolved.is_variable() && plan_vars.contains(resolved.name())) {
        projection.head.args.push_back(resolved);
      }
    }
    projection.body.push_back(plan_atom);
    if (projection.head.args.empty()) {
      // Fully ground subgoal (all constants): count matching tuples as 0/1.
      return datalog::EvaluateQuery(
          ConjunctiveQuery(Atom("proj", {}), {plan_atom}), source_facts);
    }
    return datalog::EvaluateQuery(projection, source_facts);
  }
  return std::vector<std::vector<Term>>{};
}

}  // namespace

StatusOr<stats::Workload> EstimateWorkloadFromInstances(
    const ConjunctiveQuery& query, const datalog::Catalog& catalog,
    const BucketResult& buckets, const datalog::Database& source_facts,
    const EstimateOptions& options) {
  if (options.regions_per_bucket < 1 || options.regions_per_bucket > 64) {
    return InvalidArgumentError("regions_per_bucket must be in [1, 64]");
  }
  // Relational subgoals, aligned with the buckets.
  std::vector<const Atom*> goals;
  for (const Atom& atom : query.body) {
    if (!datalog::IsComparisonAtom(atom)) goals.push_back(&atom);
  }
  if (goals.size() != buckets.buckets.size()) {
    return InvalidArgumentError("buckets do not match the query's subgoals");
  }

  const datalog::TermVectorHash hasher;
  const int regions = options.regions_per_bucket;
  std::vector<std::vector<stats::SourceStats>> bucket_stats(goals.size());
  std::vector<std::vector<double>> region_weights(goals.size());
  std::vector<double> domain_sizes(goals.size());

  for (size_t b = 0; b < goals.size(); ++b) {
    const size_t members = buckets.buckets[b].size();
    if (members > 64) {
      return InvalidArgumentError("at most 64 sources per bucket supported");
    }
    // Pass 1: bindings per source; co-occurrence signature per binding.
    // Two sources overlap exactly when some binding appears in both, so the
    // binding's *containment signature* (the set of bucket sources holding
    // it) is the natural coverage cluster: bindings with the same signature
    // are indistinguishable to the coverage model.
    std::unordered_map<size_t, uint64_t> signature_of;  // binding hash -> mask
    std::vector<size_t> cardinalities(members, 0);
    for (size_t i = 0; i < members; ++i) {
      PLANORDER_ASSIGN_OR_RETURN(
          std::vector<std::vector<Term>> bindings,
          SubgoalBindings(query, catalog, buckets.buckets[b][i], *goals[b],
                          source_facts));
      cardinalities[i] = bindings.size();
      for (const std::vector<Term>& binding : bindings) {
        signature_of[hasher(binding)] |= uint64_t{1} << i;
      }
    }
    // Pass 2: one region per distinct signature, most-populated first; the
    // tail shares the last region (conservative: it can only merge clusters,
    // never split them, so overlap stays sound).
    std::map<uint64_t, int> population;
    for (const auto& [unused, signature] : signature_of) {
      ++population[signature];
    }
    std::vector<std::pair<int, uint64_t>> by_population;
    for (const auto& [signature, count] : population) {
      by_population.push_back({count, signature});
    }
    std::sort(by_population.rbegin(), by_population.rend());
    std::map<uint64_t, int> region_of_signature;
    std::vector<double> weights(regions, 0.0);
    for (size_t s = 0; s < by_population.size(); ++s) {
      const int region = std::min<int>(static_cast<int>(s), regions - 1);
      region_of_signature[by_population[s].second] = region;
      weights[region] += double(by_population[s].first);
    }
    // Pass 3: masks — a source covers every region holding a signature it
    // belongs to.
    bucket_stats[b].resize(members);
    double max_cardinality = 1.0;
    for (size_t i = 0; i < members; ++i) {
      stats::SourceStats& s = bucket_stats[b][i];
      auto it = options.overrides.find(
          catalog.source(buckets.buckets[b][i]).name);
      if (it != options.overrides.end()) {
        s = it->second;
      } else {
        s.transmission_cost = options.default_transmission_cost;
        s.failure_prob = options.default_failure_prob;
        s.fee = options.default_fee;
      }
      s.cardinality = std::max<double>(1.0, double(cardinalities[i]));
      s.regions.bits = 0;
      for (const auto& [signature, region] : region_of_signature) {
        if (signature & (uint64_t{1} << i)) {
          s.regions.bits |= uint64_t{1} << region;
        }
      }
      if (s.regions.empty()) s.regions.bits = 1;  // empty source: floor
      max_cardinality = std::max(max_cardinality, s.cardinality);
    }
    // Normalize weights (epsilon keeps every region weight positive).
    double total = 0.0;
    for (double w : weights) total += w;
    region_weights[b].resize(regions);
    for (int r = 0; r < regions; ++r) {
      region_weights[b][r] =
          total > 0.0 ? (weights[r] + 1e-9) / (total + 1e-9 * regions)
                      : 1.0 / regions;
    }
    domain_sizes[b] = max_cardinality * options.domain_size_factor;
  }
  return stats::Workload::FromParts(std::move(bucket_stats),
                                    std::move(region_weights),
                                    options.access_overhead,
                                    std::move(domain_sizes));
}

}  // namespace planorder::reformulation
