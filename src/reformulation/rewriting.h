#ifndef PLANORDER_REFORMULATION_REWRITING_H_
#define PLANORDER_REFORMULATION_REWRITING_H_

#include <optional>
#include <vector>

#include "base/status.h"
#include "datalog/conjunctive_query.h"
#include "datalog/source.h"
#include "reformulation/bucket.h"

namespace planorder::reformulation {

/// A conjunctive query plan (Section 2): a rewriting of the user query over
/// source relations, p(Y) :- V1(U1), ..., Vn(Un), together with the source
/// chosen for each subgoal.
struct QueryPlan {
  datalog::ConjunctiveQuery rewriting;
  std::vector<datalog::SourceId> sources;
};

/// Attempts to build a *sound* plan from `choice` (one source per subgoal,
/// e.g. a tuple from the buckets' Cartesian product): unifies each subgoal
/// with an atom of its source's view (backtracking over atom choices when a
/// view mentions the predicate more than once), assembles the rewriting, and
/// keeps the first assembly whose expansion is contained in the query.
/// Returns nullopt when the combination admits no sound plan — the "test
/// each plan and output only the sound ones" step of the bucket algorithm.
StatusOr<std::optional<QueryPlan>> BuildSoundPlan(
    const datalog::ConjunctiveQuery& query, const datalog::Catalog& catalog,
    const std::vector<datalog::SourceId>& choice);

/// The expansion of a plan: every source atom replaced by its (renamed-apart)
/// view definition, unified with the atom's arguments. The expansion is a
/// conjunctive query over schema relations describing everything the plan
/// could possibly return.
StatusOr<datalog::ConjunctiveQuery> ExpandPlan(
    const QueryPlan& plan, const datalog::Catalog& catalog);

/// True iff the plan is sound for `query`: its expansion is contained in the
/// query, so every tuple it produces is an answer.
StatusOr<bool> IsSound(const QueryPlan& plan,
                       const datalog::ConjunctiveQuery& query,
                       const datalog::Catalog& catalog);

/// Brute-force reference: all sound plans of the buckets' Cartesian product,
/// in enumeration order. For tests, examples, and small queries.
StatusOr<std::vector<QueryPlan>> EnumerateSoundPlans(
    const datalog::ConjunctiveQuery& query, const datalog::Catalog& catalog);

}  // namespace planorder::reformulation

#endif  // PLANORDER_REFORMULATION_REWRITING_H_
