#ifndef PLANORDER_REFORMULATION_MINICON_ORDERING_H_
#define PLANORDER_REFORMULATION_MINICON_ORDERING_H_

#include <vector>

#include "base/status.h"
#include "reformulation/minicon.h"
#include "stats/workload.h"

namespace planorder::reformulation {

/// One MiniCon plan space prepared for the ordering algorithms (Section 7):
/// a Workload whose bucket b holds the MCDs of the space's b-th generalized
/// bucket, plus the mapping from bucket positions back to MCD indices. A
/// concrete plan emitted by an orderer over `workload` picks positions
/// (i_0, ..., i_{m-1}); the corresponding rewriting is
/// CombineMcds(query, catalog, {mcds[mcd_by_bucket[b][i_b]]...}).
struct MiniConPlanStream {
  stats::Workload workload;
  std::vector<std::vector<int>> mcd_by_bucket;
};

/// Statistics attached to MCDs when deriving workloads: MCD stats are taken
/// from its source (per_source_stats[mcd.source]). Coverage-style region
/// masks are not meaningful across structurally different plan spaces, so
/// the derived workloads carry a single trivial region; use the fully
/// independent cost measures for ordering (which is also what makes merging
/// the per-space streams exact — see core/merged.h).
StatusOr<std::vector<MiniConPlanStream>> BuildMiniConStreams(
    const std::vector<Mcd>& mcds,
    const std::vector<GeneralizedBucket>& buckets,
    const std::vector<McdPlanSpace>& spaces,
    const std::vector<stats::SourceStats>& per_source_stats,
    double access_overhead, double domain_size);

}  // namespace planorder::reformulation

#endif  // PLANORDER_REFORMULATION_MINICON_ORDERING_H_
