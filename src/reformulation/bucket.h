#ifndef PLANORDER_REFORMULATION_BUCKET_H_
#define PLANORDER_REFORMULATION_BUCKET_H_

#include <vector>

#include "base/status.h"
#include "datalog/conjunctive_query.h"
#include "datalog/source.h"

namespace planorder::reformulation {

/// Buckets for a query: buckets[i] lists the sources relevant to the i-th
/// subgoal. The Cartesian product of the buckets is the plan space handed to
/// the ordering algorithms; plans coming out of the ordering are then tested
/// for soundness (Section 2).
struct BucketResult {
  std::vector<std::vector<datalog::SourceId>> buckets;
};

/// The bucket algorithm's relevance test (Levy-Rajaraman-Ordille): source V
/// belongs in subgoal g's bucket iff some atom of V's view definition
/// unifies with g such that
///  - constants of g are matched consistently, and
///  - every distinguished variable of the *query* occurring in g maps to a
///    distinguished variable of the view (otherwise its value cannot be
///    retrieved from the source).
/// Returns NotFound-free result; empty buckets mean the query has no plans.
StatusOr<BucketResult> BuildBuckets(const datalog::ConjunctiveQuery& query,
                                    const datalog::Catalog& catalog);

}  // namespace planorder::reformulation

#endif  // PLANORDER_REFORMULATION_BUCKET_H_
