#include "reformulation/bucket.h"

#include "datalog/builtins.h"
#include "datalog/unify.h"

namespace planorder::reformulation {

using datalog::Atom;
using datalog::ConjunctiveQuery;
using datalog::Substitution;
using datalog::Term;

namespace {

/// True when `source_view` (renamed apart) can serve subgoal `goal` of
/// `query` through one of its body atoms.
bool IsRelevant(const ConjunctiveQuery& query, const Atom& goal,
                const ConjunctiveQuery& source_view) {
  const std::set<std::string> query_distinguished = query.HeadVariables();
  const std::set<std::string> view_distinguished =
      source_view.HeadVariables();
  for (const Atom& atom : source_view.body) {
    if (atom.predicate != goal.predicate ||
        atom.args.size() != goal.args.size()) {
      continue;
    }
    Substitution subst;
    if (!UnifyAtoms(goal, atom, subst)) continue;
    // Check retrievability: a distinguished query variable (or a constant)
    // in the subgoal must not land on an existential view variable.
    bool ok = true;
    for (size_t i = 0; i < goal.args.size() && ok; ++i) {
      const Term& query_arg = goal.args[i];
      const Term resolved = datalog::ApplySubstitution(query_arg, subst);
      const bool needs_distinguished =
          query_arg.is_constant() ||
          (query_arg.is_variable() &&
           query_distinguished.contains(query_arg.name()));
      if (!needs_distinguished) continue;
      if (resolved.is_variable() &&
          !view_distinguished.contains(resolved.name())) {
        ok = false;
      }
    }
    if (ok) return true;
  }
  return false;
}

}  // namespace

StatusOr<BucketResult> BuildBuckets(const ConjunctiveQuery& query,
                                    const datalog::Catalog& catalog) {
  PLANORDER_RETURN_IF_ERROR(query.ValidateSafety());
  for (const Atom& goal : query.body) {
    if (datalog::IsComparisonAtom(goal)) continue;
    PLANORDER_ASSIGN_OR_RETURN(size_t arity,
                               catalog.schema().ArityOf(goal.predicate));
    if (arity != goal.arity()) {
      return InvalidArgumentError("subgoal " + goal.ToString() +
                                  " arity mismatch with schema");
    }
  }
  BucketResult result;
  // Buckets exist for the RELATIONAL subgoals only; interpreted comparisons
  // are constraints carried into the rewritings, not subgoals served by
  // sources.
  for (const Atom& goal : query.body) {
    if (datalog::IsComparisonAtom(goal)) continue;
    std::vector<datalog::SourceId> bucket;
    for (datalog::SourceId id = 0; id < catalog.num_sources(); ++id) {
      // Rename the view apart from the query before unification.
      const ConjunctiveQuery view =
          catalog.source(id).view.RenameVariables("_v");
      if (IsRelevant(query, goal, view)) {
        bucket.push_back(id);
      }
    }
    result.buckets.push_back(std::move(bucket));
  }
  return result;
}

}  // namespace planorder::reformulation
