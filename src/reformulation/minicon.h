#ifndef PLANORDER_REFORMULATION_MINICON_H_
#define PLANORDER_REFORMULATION_MINICON_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "datalog/conjunctive_query.h"
#include "datalog/source.h"
#include "datalog/unify.h"
#include "reformulation/rewriting.h"

namespace planorder::reformulation {

/// A MiniCon description (Pottinger & Levy; Section 7 of the paper): source
/// `source` covers the set of query subgoals in `subgoals` (bitmask over body
/// positions) under the variable mapping `mapping` (bindings between query
/// variables and the variables of `renamed_view`). Minimal: the subgoal set
/// is exactly the closure forced by existential-variable coverage.
struct Mcd {
  datalog::SourceId source = -1;
  uint64_t subgoals = 0;
  datalog::Substitution mapping;
  datalog::ConjunctiveQuery renamed_view;

  int num_subgoals() const { return __builtin_popcountll(subgoals); }
};

/// Forms all MCDs for `query` (up to 64 subgoals). Deduplicates MCDs that
/// cover the same subgoals with the same source and equivalent mappings.
StatusOr<std::vector<Mcd>> FormMcds(const datalog::ConjunctiveQuery& query,
                                    const datalog::Catalog& catalog);

/// A generalized bucket (Section 7): the MCDs covering one particular subgoal
/// set. Combining one MCD from each bucket of a partition of the query's
/// subgoals yields a sound plan with no containment check needed.
struct GeneralizedBucket {
  uint64_t subgoals = 0;
  std::vector<int> mcd_indices;  // indices into the FormMcds result
};

/// Groups MCDs by covered subgoal set.
std::vector<GeneralizedBucket> GroupMcds(const std::vector<Mcd>& mcds);

/// A MiniCon plan space: generalized buckets whose subgoal sets partition all
/// query subgoals. Every combination (one MCD per bucket) is a sound plan.
struct McdPlanSpace {
  std::vector<int> bucket_indices;  // indices into the GroupMcds result
};

/// All plan spaces: partitions of the query's subgoals into available
/// generalized-bucket subgoal sets.
std::vector<McdPlanSpace> BuildMcdPlanSpaces(
    const datalog::ConjunctiveQuery& query,
    const std::vector<GeneralizedBucket>& buckets);

/// Builds the rewriting for one MCD combination (pairwise disjoint subgoal
/// sets covering the whole query).
StatusOr<QueryPlan> CombineMcds(const datalog::ConjunctiveQuery& query,
                                const datalog::Catalog& catalog,
                                const std::vector<const Mcd*>& combination);

/// All MiniCon rewritings of `query` — the reference the tests compare
/// against the bucket algorithm's sound plans.
StatusOr<std::vector<QueryPlan>> EnumerateMiniConPlans(
    const datalog::ConjunctiveQuery& query, const datalog::Catalog& catalog);

}  // namespace planorder::reformulation

#endif  // PLANORDER_REFORMULATION_MINICON_H_
