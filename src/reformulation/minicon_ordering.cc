#include "reformulation/minicon_ordering.h"

namespace planorder::reformulation {

StatusOr<std::vector<MiniConPlanStream>> BuildMiniConStreams(
    const std::vector<Mcd>& mcds,
    const std::vector<GeneralizedBucket>& buckets,
    const std::vector<McdPlanSpace>& spaces,
    const std::vector<stats::SourceStats>& per_source_stats,
    double access_overhead, double domain_size) {
  for (const Mcd& mcd : mcds) {
    if (mcd.source < 0 ||
        static_cast<size_t>(mcd.source) >= per_source_stats.size()) {
      return InvalidArgumentError("missing statistics for an MCD's source");
    }
  }
  std::vector<MiniConPlanStream> streams;
  streams.reserve(spaces.size());
  for (const McdPlanSpace& space : spaces) {
    MiniConPlanStream stream;
    std::vector<std::vector<stats::SourceStats>> bucket_stats;
    std::vector<std::vector<double>> weights;
    std::vector<double> domain_sizes;
    for (int bucket_index : space.bucket_indices) {
      const GeneralizedBucket& bucket = buckets[bucket_index];
      std::vector<stats::SourceStats> members;
      std::vector<int> mapping;
      for (int mcd_index : bucket.mcd_indices) {
        stats::SourceStats s = per_source_stats[mcds[mcd_index].source];
        s.regions.bits = 1;  // coverage not meaningful across spaces
        members.push_back(s);
        mapping.push_back(mcd_index);
      }
      bucket_stats.push_back(std::move(members));
      stream.mcd_by_bucket.push_back(std::move(mapping));
      weights.push_back({1.0});
      domain_sizes.push_back(domain_size);
    }
    PLANORDER_ASSIGN_OR_RETURN(
        stream.workload,
        stats::Workload::FromParts(std::move(bucket_stats), std::move(weights),
                                   access_overhead, std::move(domain_sizes)));
    streams.push_back(std::move(stream));
  }
  return streams;
}

}  // namespace planorder::reformulation
