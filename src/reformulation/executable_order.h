#ifndef PLANORDER_REFORMULATION_EXECUTABLE_ORDER_H_
#define PLANORDER_REFORMULATION_EXECUTABLE_ORDER_H_

#include "base/status.h"
#include "reformulation/rewriting.h"

namespace planorder::reformulation {

/// Orders the atoms of a rewriting so that it is *executable* against
/// sources with limited access patterns: every source atom is placed only
/// once the positions its adornment marks 'b' are bound — by constants or by
/// variables produced by earlier atoms. Interpreted comparisons are placed
/// as soon as their variables bind.
///
/// Greedy placement is complete here: placing any executable atom only grows
/// the set of bound variables, so it can never block another placement.
///
/// Returns the plan with its body (and the aligned source list) reordered,
/// or FailedPrecondition when no executable order exists (e.g. two sources
/// that each require the other's output).
StatusOr<QueryPlan> FindExecutableOrder(const QueryPlan& plan,
                                        const datalog::Catalog& catalog);

}  // namespace planorder::reformulation

#endif  // PLANORDER_REFORMULATION_EXECUTABLE_ORDER_H_
