#ifndef PLANORDER_REFORMULATION_STATISTICS_H_
#define PLANORDER_REFORMULATION_STATISTICS_H_

#include <map>
#include <string>

#include "base/status.h"
#include "datalog/evaluator.h"
#include "datalog/source.h"
#include "reformulation/bucket.h"
#include "stats/workload.h"

namespace planorder::reformulation {

/// Options for instance-driven statistics estimation.
struct EstimateOptions {
  /// Regions per bucket domain (hash buckets for coverage estimation).
  int regions_per_bucket = 16;
  /// Cost-model parameters that cannot be derived from data; either the
  /// defaults below or per-source overrides.
  double access_overhead = 5.0;
  double default_transmission_cost = 0.25;
  double default_failure_prob = 0.0;
  double default_fee = 1.0;
  /// Per-source-name overrides for the non-derivable statistics
  /// (transmission_cost, failure_prob, fee; cardinality and regions are
  /// always estimated from the data).
  std::map<std::string, stats::SourceStats> overrides;
  /// Domain size N_b as a multiple of the largest estimated cardinality.
  double domain_size_factor = 4.0;
};

/// Estimates a Workload for `buckets` directly from materialized source
/// instances: for every source in a bucket,
///  - cardinality = the number of distinct bindings the source can
///    contribute to the bucket's subgoal (query constants applied), and
///  - the coverage region set = the hash buckets those bindings fall into,
/// with region weights proportional to the number of distinct bindings seen
/// across the bucket. Two sources then share coverage regions exactly when
/// they share subgoal bindings (up to hash collisions, which only ever make
/// the model *more* conservative about independence — never less).
///
/// This is what makes the ordering algorithms usable on real data without
/// hand-written statistics; the synthetic-domain tests validate that the
/// estimates reconstruct the generator's designed statistics.
StatusOr<stats::Workload> EstimateWorkloadFromInstances(
    const datalog::ConjunctiveQuery& query, const datalog::Catalog& catalog,
    const BucketResult& buckets, const datalog::Database& source_facts,
    const EstimateOptions& options = {});

}  // namespace planorder::reformulation

#endif  // PLANORDER_REFORMULATION_STATISTICS_H_
