#include "reformulation/minicon.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "base/logging.h"
#include "datalog/builtins.h"

namespace planorder::reformulation {

using datalog::Atom;
using datalog::ConjunctiveQuery;
using datalog::Substitution;
using datalog::Term;

namespace {

/// True when variables `a` and `b` denote the same thing under `subst`.
bool Identified(const std::string& a, const std::string& b,
                const Substitution& subst) {
  return datalog::ApplySubstitution(Term::Variable(a), subst) ==
         datalog::ApplySubstitution(Term::Variable(b), subst);
}

/// The set of query variables occurring in the covered subgoals.
std::set<std::string> CoveredVariables(const ConjunctiveQuery& query,
                                       uint64_t covered) {
  std::set<std::string> vars;
  for (size_t g = 0; g < query.body.size(); ++g) {
    if (covered & (uint64_t{1} << g)) query.body[g].CollectVariables(vars);
  }
  return vars;
}

/// Builds MCDs for one source by closing the C2 property with backtracking
/// over view-atom choices.
class McdBuilder {
 public:
  McdBuilder(const ConjunctiveQuery& query, datalog::SourceId source,
             ConjunctiveQuery renamed_view, std::vector<Mcd>* out,
             std::set<std::string>* dedupe)
      : query_(query),
        source_(source),
        view_(std::move(renamed_view)),
        query_distinguished_(query.HeadVariables()),
        view_existential_(view_.ExistentialVariables()),
        out_(out),
        dedupe_(dedupe) {}

  void Run() {
    for (size_t g = 0; g < query_.body.size(); ++g) {
      for (const Atom& atom : view_.body) {
        Substitution subst;
        if (atom.predicate != query_.body[g].predicate ||
            atom.args.size() != query_.body[g].args.size()) {
          continue;
        }
        if (!datalog::UnifyAtoms(query_.body[g], atom, subst)) continue;
        Close(uint64_t{1} << g, subst);
      }
    }
  }

 private:
  /// True when query variable `x` is identified with an existential view
  /// variable.
  bool MapsToViewExistential(const std::string& x,
                             const Substitution& subst) const {
    for (const std::string& e : view_existential_) {
      if (Identified(x, e, subst)) return true;
    }
    return false;
  }

  void Close(uint64_t covered, const Substitution& subst) {
    // Find a C2 violation: a query variable identified with an existential
    // view variable but occurring in an uncovered subgoal.
    for (const std::string& x : CoveredVariables(query_, covered)) {
      if (!MapsToViewExistential(x, subst)) continue;
      for (size_t g = 0; g < query_.body.size(); ++g) {
        if (covered & (uint64_t{1} << g)) continue;
        std::set<std::string> goal_vars;
        query_.body[g].CollectVariables(goal_vars);
        if (!goal_vars.contains(x)) continue;
        // Subgoal g must join the MCD; try every compatible view atom.
        for (const Atom& atom : view_.body) {
          if (atom.predicate != query_.body[g].predicate ||
              atom.args.size() != query_.body[g].args.size()) {
            continue;
          }
          Substitution attempt = subst;
          if (!datalog::UnifyAtoms(query_.body[g], atom, attempt)) continue;
          Close(covered | (uint64_t{1} << g), attempt);
        }
        return;  // all completions of this violation explored
      }
    }
    // No violation: check C1 (distinguished query variables must be
    // retrievable, i.e. not identified with existential view variables).
    for (const std::string& x : CoveredVariables(query_, covered)) {
      if (query_distinguished_.contains(x) &&
          MapsToViewExistential(x, subst)) {
        return;
      }
    }
    Emit(covered, subst);
  }

  void Emit(uint64_t covered, const Substitution& subst) {
    std::string key = std::to_string(source_) + "#" + std::to_string(covered);
    for (const std::string& x : CoveredVariables(query_, covered)) {
      key += "|" + x + "=" +
             datalog::ApplySubstitution(Term::Variable(x), subst).ToString();
    }
    if (!dedupe_->insert(key).second) return;
    Mcd mcd;
    mcd.source = source_;
    mcd.subgoals = covered;
    mcd.mapping = subst;
    mcd.renamed_view = view_;
    out_->push_back(std::move(mcd));
  }

  const ConjunctiveQuery& query_;
  datalog::SourceId source_;
  ConjunctiveQuery view_;
  std::set<std::string> query_distinguished_;
  std::set<std::string> view_existential_;
  std::vector<Mcd>* out_;
  std::set<std::string>* dedupe_;
};

/// Union-find over query variable names used when merging MCD mappings.
class VarUnion {
 public:
  std::string Find(const std::string& x) {
    auto it = parent_.find(x);
    if (it == parent_.end() || it->second == x) return x;
    const std::string root = Find(it->second);
    parent_[x] = root;
    return root;
  }
  void Unite(const std::string& a, const std::string& b) {
    const std::string ra = Find(a);
    const std::string rb = Find(b);
    if (ra != rb) parent_[ra] = rb;
  }

 private:
  std::map<std::string, std::string> parent_;
};

}  // namespace

StatusOr<std::vector<Mcd>> FormMcds(const ConjunctiveQuery& query,
                                    const datalog::Catalog& catalog) {
  PLANORDER_RETURN_IF_ERROR(query.ValidateSafety());
  if (query.body.size() > 64) {
    return InvalidArgumentError("queries of more than 64 subgoals unsupported");
  }
  for (const Atom& atom : query.body) {
    if (datalog::IsComparisonAtom(atom)) {
      return UnimplementedError(
          "the MiniCon module handles pure conjunctive queries; interpreted "
          "comparisons are supported by the bucket algorithm path");
    }
  }
  for (datalog::SourceId id = 0; id < catalog.num_sources(); ++id) {
    for (const Atom& atom : catalog.source(id).view.body) {
      if (datalog::IsComparisonAtom(atom)) {
        return UnimplementedError(
            "the MiniCon module handles pure conjunctive views; interpreted "
            "comparisons are supported by the bucket algorithm path");
      }
    }
  }
  std::vector<Mcd> mcds;
  std::set<std::string> dedupe;
  for (datalog::SourceId id = 0; id < catalog.num_sources(); ++id) {
    McdBuilder builder(query, id,
                       catalog.source(id).view.RenameVariables(
                           "_m" + std::to_string(id)),
                       &mcds, &dedupe);
    builder.Run();
  }
  return mcds;
}

std::vector<GeneralizedBucket> GroupMcds(const std::vector<Mcd>& mcds) {
  std::map<uint64_t, GeneralizedBucket> by_subgoals;
  for (size_t i = 0; i < mcds.size(); ++i) {
    GeneralizedBucket& bucket = by_subgoals[mcds[i].subgoals];
    bucket.subgoals = mcds[i].subgoals;
    bucket.mcd_indices.push_back(static_cast<int>(i));
  }
  std::vector<GeneralizedBucket> out;
  out.reserve(by_subgoals.size());
  for (auto& [unused, bucket] : by_subgoals) out.push_back(std::move(bucket));
  return out;
}

std::vector<McdPlanSpace> BuildMcdPlanSpaces(
    const ConjunctiveQuery& query,
    const std::vector<GeneralizedBucket>& buckets) {
  const uint64_t all = query.body.empty()
                           ? 0
                           : (query.body.size() == 64
                                  ? ~uint64_t{0}
                                  : (uint64_t{1} << query.body.size()) - 1);
  std::vector<McdPlanSpace> spaces;
  std::vector<int> current;
  // Partition the subgoals: always extend with a bucket covering the lowest
  // uncovered subgoal, so each partition is enumerated exactly once.
  std::function<void(uint64_t)> dfs = [&](uint64_t covered) {
    if (covered == all) {
      spaces.push_back(McdPlanSpace{current});
      return;
    }
    const int lowest = __builtin_ctzll(~covered);
    for (size_t i = 0; i < buckets.size(); ++i) {
      const uint64_t s = buckets[i].subgoals;
      if ((s & (uint64_t{1} << lowest)) == 0) continue;
      if ((s & covered) != 0) continue;
      current.push_back(static_cast<int>(i));
      dfs(covered | s);
      current.pop_back();
    }
  };
  dfs(0);
  return spaces;
}

StatusOr<QueryPlan> CombineMcds(const ConjunctiveQuery& query,
                                const datalog::Catalog& catalog,
                                const std::vector<const Mcd*>& combination) {
  uint64_t covered = 0;
  for (const Mcd* mcd : combination) {
    if ((covered & mcd->subgoals) != 0) {
      return InvalidArgumentError("MCD subgoal sets must be disjoint");
    }
    covered |= mcd->subgoals;
  }
  const uint64_t all = query.body.size() == 64
                           ? ~uint64_t{0}
                           : (uint64_t{1} << query.body.size()) - 1;
  if (covered != all) {
    return InvalidArgumentError("MCDs must cover every subgoal");
  }

  // Per MCD: map each view-variable equivalence class back to a query
  // variable (or constant); query variables sharing a class are equated.
  VarUnion unite;
  struct PendingAtom {
    Atom atom;
    datalog::SourceId source;
  };
  std::vector<PendingAtom> atoms;
  std::map<std::string, Term> pinned;  // query var root -> constant

  for (size_t mi = 0; mi < combination.size(); ++mi) {
    const Mcd& mcd = *combination[mi];
    // Representative query variable (or constant) per resolved view term.
    std::map<std::string, std::string> rep_to_var;
    for (const std::string& x : CoveredVariables(query, mcd.subgoals)) {
      const Term resolved =
          datalog::ApplySubstitution(Term::Variable(x), mcd.mapping);
      if (resolved.is_constant()) {
        pinned[unite.Find(x)] = resolved;
        continue;
      }
      const std::string key = resolved.ToString();
      auto [it, inserted] = rep_to_var.emplace(key, x);
      if (!inserted) unite.Unite(x, it->second);
    }
    Atom plan_atom;
    plan_atom.predicate = catalog.source(mcd.source).name;
    for (size_t pos = 0; pos < mcd.renamed_view.head.args.size(); ++pos) {
      const Term resolved = datalog::ApplySubstitution(
          mcd.renamed_view.head.args[pos], mcd.mapping);
      if (resolved.is_constant()) {
        plan_atom.args.push_back(resolved);
        continue;
      }
      auto it = rep_to_var.find(resolved.ToString());
      if (it != rep_to_var.end()) {
        plan_atom.args.push_back(Term::Variable(it->second));
      } else {
        // A head position no query variable cares about: fresh variable.
        plan_atom.args.push_back(Term::Variable(
            "FV_" + std::to_string(mi) + "_" + std::to_string(pos)));
      }
    }
    atoms.push_back(PendingAtom{std::move(plan_atom), mcd.source});
  }

  // Apply the accumulated equalities and constant pins.
  auto canonical = [&](const Term& t) -> Term {
    if (!t.is_variable()) return t;
    const std::string root = unite.Find(t.name());
    auto it = pinned.find(root);
    if (it != pinned.end()) return it->second;
    return Term::Variable(root);
  };

  QueryPlan plan;
  plan.rewriting.head.predicate = query.head.predicate;
  for (const Term& t : query.head.args) {
    plan.rewriting.head.args.push_back(canonical(t));
  }
  for (PendingAtom& pending : atoms) {
    Atom atom;
    atom.predicate = pending.atom.predicate;
    for (const Term& t : pending.atom.args) atom.args.push_back(canonical(t));
    plan.rewriting.body.push_back(std::move(atom));
    plan.sources.push_back(pending.source);
  }
  PLANORDER_RETURN_IF_ERROR(plan.rewriting.ValidateSafety());
  PLANORDER_ASSIGN_OR_RETURN(bool sound, IsSound(plan, query, catalog));
  if (!sound) {
    return InternalError("MiniCon produced an unsound rewriting: " +
                         plan.rewriting.ToString());
  }
  return plan;
}

StatusOr<std::vector<QueryPlan>> EnumerateMiniConPlans(
    const ConjunctiveQuery& query, const datalog::Catalog& catalog) {
  PLANORDER_ASSIGN_OR_RETURN(std::vector<Mcd> mcds, FormMcds(query, catalog));
  const std::vector<GeneralizedBucket> buckets = GroupMcds(mcds);
  const std::vector<McdPlanSpace> spaces = BuildMcdPlanSpaces(query, buckets);
  std::vector<QueryPlan> plans;
  for (const McdPlanSpace& space : spaces) {
    std::vector<size_t> cursor(space.bucket_indices.size(), 0);
    if (space.bucket_indices.empty()) continue;
    while (true) {
      std::vector<const Mcd*> combo;
      combo.reserve(space.bucket_indices.size());
      for (size_t b = 0; b < space.bucket_indices.size(); ++b) {
        const GeneralizedBucket& bucket = buckets[space.bucket_indices[b]];
        combo.push_back(&mcds[bucket.mcd_indices[cursor[b]]]);
      }
      PLANORDER_ASSIGN_OR_RETURN(QueryPlan plan,
                                 CombineMcds(query, catalog, combo));
      plans.push_back(std::move(plan));
      size_t b = 0;
      for (; b < space.bucket_indices.size(); ++b) {
        if (++cursor[b] <
            buckets[space.bucket_indices[b]].mcd_indices.size()) {
          break;
        }
        cursor[b] = 0;
      }
      if (b == space.bucket_indices.size()) break;
    }
  }
  return plans;
}

}  // namespace planorder::reformulation
