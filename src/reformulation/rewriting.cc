#include "reformulation/rewriting.h"

#include <string>

#include "datalog/builtins.h"
#include "datalog/containment.h"
#include "datalog/unify.h"

namespace planorder::reformulation {

using datalog::Atom;
using datalog::ConjunctiveQuery;
using datalog::Substitution;

namespace {

/// Backtracks over, for each subgoal, the view atoms it can unify with,
/// testing each complete assembly for soundness.
struct PlanAssembler {
  const ConjunctiveQuery& query;
  const datalog::Catalog& catalog;
  const std::vector<datalog::SourceId>& choice;
  /// The query's relational subgoals (buckets exist only for these).
  std::vector<const Atom*> goals;
  std::vector<ConjunctiveQuery> renamed_views;  // per subgoal, renamed apart

  std::optional<QueryPlan> result;

  bool Assemble(size_t index, const Substitution& subst,
                std::vector<Atom>& heads) {
    if (index == goals.size()) {
      QueryPlan plan;
      plan.rewriting.head = datalog::ApplySubstitution(query.head, subst);
      for (const Atom& head : heads) {
        plan.rewriting.body.push_back(datalog::ApplySubstitution(head, subst));
      }
      // Interpreted comparisons of the query ride along as filters.
      for (const Atom& atom : query.body) {
        if (datalog::IsComparisonAtom(atom)) {
          plan.rewriting.body.push_back(
              datalog::ApplySubstitution(atom, subst));
        }
      }
      plan.sources = choice;
      if (!plan.rewriting.ValidateSafety().ok()) return false;
      auto expansion = ExpandPlan(plan, catalog);
      if (!expansion.ok()) return false;
      // A plan whose expansion is unsatisfiable (view constraints contradict
      // the query's) is vacuously sound but returns nothing: prune it.
      if (!datalog::IsSatisfiable(*expansion)) return false;
      if (!datalog::IsContainedIn(*expansion, query)) return false;
      result = std::move(plan);
      return true;
    }
    const Atom& goal = *goals[index];
    const ConjunctiveQuery& view = renamed_views[index];
    for (const Atom& atom : view.body) {
      if (atom.predicate != goal.predicate ||
          atom.args.size() != goal.args.size()) {
        continue;
      }
      Substitution attempt = subst;
      if (!datalog::UnifyAtoms(goal, atom, attempt)) continue;
      heads.push_back(view.head);
      if (Assemble(index + 1, attempt, heads)) return true;
      heads.pop_back();
    }
    return false;
  }
};

}  // namespace

StatusOr<std::optional<QueryPlan>> BuildSoundPlan(
    const ConjunctiveQuery& query, const datalog::Catalog& catalog,
    const std::vector<datalog::SourceId>& choice) {
  PlanAssembler assembler{query, catalog, choice, {}, {}, std::nullopt};
  for (const Atom& atom : query.body) {
    if (!datalog::IsComparisonAtom(atom)) assembler.goals.push_back(&atom);
  }
  if (choice.size() != assembler.goals.size()) {
    return InvalidArgumentError("one source per relational subgoal required");
  }
  assembler.renamed_views.reserve(choice.size());
  for (size_t i = 0; i < choice.size(); ++i) {
    if (choice[i] < 0 || choice[i] >= catalog.num_sources()) {
      return InvalidArgumentError("unknown source id");
    }
    assembler.renamed_views.push_back(
        catalog.source(choice[i]).view.RenameVariables("_p" +
                                                       std::to_string(i)));
  }
  std::vector<Atom> heads;
  Substitution subst;
  assembler.Assemble(0, subst, heads);
  return assembler.result;
}

StatusOr<ConjunctiveQuery> ExpandPlan(const QueryPlan& plan,
                                      const datalog::Catalog& catalog) {
  // Source atoms align with plan.sources; comparison atoms are filters and
  // copy into the expansion verbatim.
  size_t source_atoms = 0;
  for (const Atom& atom : plan.rewriting.body) {
    if (!datalog::IsComparisonAtom(atom)) ++source_atoms;
  }
  if (source_atoms != plan.sources.size()) {
    return InvalidArgumentError("plan body and source list must align");
  }
  ConjunctiveQuery expansion;
  Substitution subst;
  size_t i = 0;
  for (const Atom& plan_atom : plan.rewriting.body) {
    if (datalog::IsComparisonAtom(plan_atom)) {
      expansion.body.push_back(plan_atom);
      continue;
    }
    const ConjunctiveQuery view =
        catalog.source(plan.sources[i])
            .view.RenameVariables("_e" + std::to_string(i));
    ++i;
    if (!datalog::UnifyAtoms(view.head, plan_atom, subst)) {
      return InternalError("plan atom does not unify with its view head: " +
                           plan_atom.ToString());
    }
    for (const Atom& atom : view.body) expansion.body.push_back(atom);
  }
  expansion.head = plan.rewriting.head;
  // Resolve all accumulated bindings.
  expansion.head = datalog::ApplySubstitution(expansion.head, subst);
  for (Atom& atom : expansion.body) {
    atom = datalog::ApplySubstitution(atom, subst);
  }
  return expansion;
}

StatusOr<bool> IsSound(const QueryPlan& plan, const ConjunctiveQuery& query,
                       const datalog::Catalog& catalog) {
  PLANORDER_ASSIGN_OR_RETURN(ConjunctiveQuery expansion,
                             ExpandPlan(plan, catalog));
  return datalog::IsContainedIn(expansion, query);
}

StatusOr<std::vector<QueryPlan>> EnumerateSoundPlans(
    const ConjunctiveQuery& query, const datalog::Catalog& catalog) {
  PLANORDER_ASSIGN_OR_RETURN(BucketResult buckets, BuildBuckets(query, catalog));
  std::vector<QueryPlan> plans;
  for (const auto& bucket : buckets.buckets) {
    if (bucket.empty()) return plans;  // some subgoal unservable: no plans
  }
  std::vector<size_t> cursor(buckets.buckets.size(), 0);
  std::vector<datalog::SourceId> choice(buckets.buckets.size());
  while (true) {
    for (size_t b = 0; b < buckets.buckets.size(); ++b) {
      choice[b] = buckets.buckets[b][cursor[b]];
    }
    PLANORDER_ASSIGN_OR_RETURN(std::optional<QueryPlan> plan,
                               BuildSoundPlan(query, catalog, choice));
    if (plan.has_value()) plans.push_back(std::move(*plan));
    size_t b = 0;
    for (; b < buckets.buckets.size(); ++b) {
      if (++cursor[b] < buckets.buckets[b].size()) break;
      cursor[b] = 0;
    }
    if (b == buckets.buckets.size()) break;
  }
  return plans;
}

}  // namespace planorder::reformulation
