#include "reformulation/inverse_rules.h"

#include <set>
#include <string>

#include "datalog/builtins.h"
#include "datalog/unify.h"

namespace planorder::reformulation {

using datalog::Atom;
using datalog::ConjunctiveQuery;
using datalog::Rule;
using datalog::Substitution;
using datalog::Term;

std::vector<Rule> MakeInverseRules(const datalog::Catalog& catalog) {
  std::vector<Rule> rules;
  for (datalog::SourceId id = 0; id < catalog.num_sources(); ++id) {
    const datalog::SourceDescription& source = catalog.source(id);
    const ConjunctiveQuery& view = source.view;
    // Skolemize the existential variables over the head arguments.
    Substitution skolemize;
    for (const std::string& var : view.ExistentialVariables()) {
      skolemize[var] =
          Term::Function("f_" + source.name + "_" + var, view.head.args);
    }
    for (const Atom& atom : view.body) {
      // Comparison constraints of a view are not invertible: the source's
      // tuples already satisfy them, and they derive no schema facts.
      if (datalog::IsComparisonAtom(atom)) continue;
      Rule rule;
      rule.head = datalog::ApplySubstitution(atom, skolemize);
      rule.body.push_back(view.head);
      rules.push_back(std::move(rule));
    }
  }
  return rules;
}

StatusOr<BucketResult> BucketsFromInverseRules(
    const ConjunctiveQuery& query, const datalog::Catalog& catalog) {
  PLANORDER_RETURN_IF_ERROR(query.ValidateSafety());
  BucketResult result;
  size_t relational_goals = 0;
  for (const Atom& goal : query.body) {
    if (!datalog::IsComparisonAtom(goal)) ++relational_goals;
  }
  result.buckets.resize(relational_goals);
  const std::set<std::string> distinguished = query.HeadVariables();
  for (datalog::SourceId id = 0; id < catalog.num_sources(); ++id) {
    const datalog::SourceDescription& source = catalog.source(id);
    const ConjunctiveQuery view = source.view.RenameVariables("_ir");
    Substitution skolemize;
    for (const std::string& var : view.ExistentialVariables()) {
      skolemize[var] =
          Term::Function("f_" + source.name + "_" + var, view.head.args);
    }
    size_t g = 0;
    for (const Atom& goal : query.body) {
      if (datalog::IsComparisonAtom(goal)) continue;
      const size_t bucket_index = g++;
      bool relevant = false;
      for (const Atom& atom : view.body) {
        if (datalog::IsComparisonAtom(atom)) continue;
        if (atom.predicate != goal.predicate ||
            atom.args.size() != goal.args.size()) {
          continue;
        }
        const Atom rule_head = datalog::ApplySubstitution(atom, skolemize);
        Substitution subst;
        if (!datalog::UnifyAtoms(goal, rule_head, subst)) continue;
        // Distinguished query variables must not be answered by a Skolem
        // term (the value would be fictional, not retrievable).
        bool ok = true;
        for (const Term& arg : goal.args) {
          if (!arg.is_variable() || !distinguished.contains(arg.name())) {
            continue;
          }
          if (datalog::ApplySubstitution(arg, subst).is_function()) {
            ok = false;
            break;
          }
        }
        if (ok) {
          relevant = true;
          break;
        }
      }
      if (relevant) result.buckets[bucket_index].push_back(id);
    }
  }
  return result;
}

StatusOr<std::vector<std::vector<Term>>> AnswerWithInverseRules(
    const ConjunctiveQuery& query, const datalog::Catalog& catalog,
    const datalog::Database& source_facts) {
  std::vector<Rule> program = MakeInverseRules(catalog);
  PLANORDER_ASSIGN_OR_RETURN(
      datalog::Database all,
      datalog::EvaluateProgram(program, source_facts));
  PLANORDER_ASSIGN_OR_RETURN(std::vector<std::vector<Term>> raw,
                             datalog::EvaluateQuery(query, all));
  std::vector<std::vector<Term>> answers;
  for (std::vector<Term>& tuple : raw) {
    bool has_skolem = false;
    for (const Term& t : tuple) {
      if (t.is_function()) {
        has_skolem = true;
        break;
      }
    }
    if (!has_skolem) answers.push_back(std::move(tuple));
  }
  return answers;
}

}  // namespace planorder::reformulation
