#include "utility/measures.h"

#include "utility/cost_models.h"
#include "utility/coverage_model.h"

namespace planorder::utility {

std::string MeasureKindName(MeasureKind kind) {
  switch (kind) {
    case MeasureKind::kAdditive:
      return "additive";
    case MeasureKind::kCost2UniformAlpha:
      return "cost2-uniform-alpha";
    case MeasureKind::kCost2:
      return "cost2";
    case MeasureKind::kFailureNoCache:
      return "failure-nocache";
    case MeasureKind::kFailureCache:
      return "failure-cache";
    case MeasureKind::kMonetary:
      return "monetary";
    case MeasureKind::kMonetaryCache:
      return "monetary-cache";
    case MeasureKind::kCoverage:
      return "coverage";
  }
  return "?";
}

StatusOr<std::unique_ptr<UtilityModel>> MakeMeasure(
    MeasureKind kind, const stats::Workload* workload) {
  BoundJoinOptions options;
  switch (kind) {
    case MeasureKind::kAdditive:
      return std::unique_ptr<UtilityModel>(
          std::make_unique<AdditiveCostModel>(workload));
    case MeasureKind::kCoverage:
      return std::unique_ptr<UtilityModel>(
          std::make_unique<CoverageModel>(workload));
    case MeasureKind::kCost2UniformAlpha:
      options.assume_uniform_alpha = true;
      break;
    case MeasureKind::kCost2:
      break;
    case MeasureKind::kFailureNoCache:
      options.include_failure = true;
      break;
    case MeasureKind::kFailureCache:
      options.include_failure = true;
      options.use_cache = true;
      break;
    case MeasureKind::kMonetary:
      options.per_tuple_monetary = true;
      break;
    case MeasureKind::kMonetaryCache:
      options.per_tuple_monetary = true;
      options.use_cache = true;
      break;
  }
  PLANORDER_ASSIGN_OR_RETURN(std::unique_ptr<BoundJoinCostModel> model,
                             BoundJoinCostModel::Create(workload, options));
  return std::unique_ptr<UtilityModel>(std::move(model));
}

}  // namespace planorder::utility
