#include "utility/coverage_model.h"

#include <algorithm>
#include <functional>

#include "base/logging.h"

namespace planorder::utility {

Interval CoverageModel::Evaluate(NodeSpan nodes,
                                 const ExecutionContext& ctx) const {
  // Stack boxes — this is the innermost evaluation path of every orderer and
  // must not allocate (DESIGN.md §11).
  constexpr size_t kMaxDims =
      static_cast<size_t>(stats::BitmaskUniverse::kMaxDims);
  PLANORDER_CHECK_LE(nodes.size(), kMaxDims);
  stats::RegionMask upper_box[kMaxDims];
  stats::RegionMask lower_box[kMaxDims];
  bool concrete = true;
  double member_bound = 1.0;  // every member's box volume is at most this
  for (size_t b = 0; b < nodes.size(); ++b) {
    upper_box[b] = nodes[b]->mask_union;
    lower_box[b] = nodes[b]->mask_intersection;
    member_bound *= nodes[b]->mask_weight_max;
    concrete = concrete && nodes[b]->is_concrete();
  }
  if (concrete) {
    return Interval::Point(ctx.universe().UncoveredBoxVolume(upper_box));
  }
  // Upper bound: the unconditioned member bound, tightened by the residual
  // of the union box when that box is small enough to enumerate cheaply
  // (near the root the union covers most of the universe and the residual
  // adds nothing over member_bound anyway; both are sound enclosures).
  double hi = member_bound;
  uint64_t union_cells = 1;
  for (size_t b = 0; b < nodes.size(); ++b) {
    union_cells *= static_cast<uint64_t>(upper_box[b].count());
  }
  if (union_cells <= 2048) {
    hi = std::min(hi, ctx.universe().UncoveredBoxVolume(upper_box));
  }
  const double lo = ctx.universe().UncoveredBoxVolume(lower_box);
  // lo <= hi mathematically; guard against floating-point jitter.
  return Interval(std::min(lo, hi), hi);
}

bool CoverageModel::Independent(const ConcretePlan& a,
                                const ConcretePlan& b) const {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    const stats::RegionMask ma =
        workload().source(static_cast<int>(i), a[i]).regions;
    const stats::RegionMask mb =
        workload().source(static_cast<int>(i), b[i]).regions;
    if (!ma.Intersects(mb)) return true;
  }
  return false;
}

bool CoverageModel::GroupIndependentOf(NodeSpan nodes,
                                       const ConcretePlan& plan) const {
  for (size_t b = 0; b < nodes.size(); ++b) {
    const stats::RegionMask mp =
        workload().source(static_cast<int>(b), plan[b]).regions;
    if (!nodes[b]->mask_union.Intersects(mp)) return true;
  }
  return false;
}

bool CoverageModel::IndependenceKeys(NodeSpan nodes, uint64_t* keys) const {
  for (size_t b = 0; b < nodes.size(); ++b) {
    keys[b] = nodes[b]->mask_union.bits;
  }
  return true;
}

bool CoverageModel::PlanIndependenceKeys(const ConcretePlan& plan,
                                         uint64_t* keys) const {
  for (size_t b = 0; b < plan.size(); ++b) {
    keys[b] = workload().source(static_cast<int>(b), plan[b]).regions.bits;
  }
  return true;
}

int CoverageModel::ProbeMember(const stats::StatSummary& summary) const {
  const std::vector<double>& weights =
      workload().region_weights()[summary.bucket];
  int best = summary.members.front();
  double best_weight = -1.0;
  for (int member : summary.members) {
    uint64_t bits = workload().source(summary.bucket, member).regions.bits;
    double weight = 0.0;
    while (bits != 0) {
      weight += weights[__builtin_ctzll(bits)];
      bits &= bits - 1;
    }
    if (weight > best_weight) {
      best_weight = weight;
      best = member;
    }
  }
  return best;
}

std::optional<ConcretePlan> CoverageModel::FindIndependentGroupPlan(
    NodeSpan nodes, const std::vector<const ConcretePlan*>& others) const {
  const size_t n = others.size();
  const size_t m = nodes.size();
  ConcretePlan witness(m);
  for (size_t b = 0; b < m; ++b) witness[b] = nodes[b]->members[0];
  if (n == 0) return witness;
  const size_t words = (n + 63) / 64;

  // kill set of a member source s at bucket b: the plans in `others` whose
  // source at b is region-disjoint from s (those plans cannot affect — nor be
  // affected by — any plan using s at b).
  using Bits = std::vector<uint64_t>;
  auto all_killed = [&](const Bits& bits) {
    for (size_t w = 0; w + 1 < words; ++w) {
      if (~bits[w] != 0) return false;
    }
    const uint64_t last_mask =
        (n % 64 == 0) ? ~uint64_t{0} : ((uint64_t{1} << (n % 64)) - 1);
    return (bits[words - 1] & last_mask) == last_mask;
  };

  struct Kill {
    Bits bits;
    int member;
  };
  std::vector<std::vector<Kill>> bucket_kills(m);
  std::vector<Bits> suffix_union(m + 1, Bits(words, 0));
  for (size_t b = 0; b < m; ++b) {
    std::vector<Kill>& kills = bucket_kills[b];
    for (int member : nodes[b]->members) {
      const stats::RegionMask ms =
          workload().source(static_cast<int>(b), member).regions;
      Bits bits(words, 0);
      for (size_t e = 0; e < n; ++e) {
        const stats::RegionMask me = workload()
                                         .source(static_cast<int>(b),
                                                 (*others[e])[b])
                                         .regions;
        if (!ms.Intersects(me)) bits[e / 64] |= uint64_t{1} << (e % 64);
      }
      // Keep only maximal kill sets: a subset of an existing set is useless.
      bool dominated = false;
      for (size_t i = 0; i < kills.size();) {
        bool bits_subset = true, kills_subset = true;
        for (size_t w = 0; w < words; ++w) {
          if ((bits[w] & ~kills[i].bits[w]) != 0) bits_subset = false;
          if ((kills[i].bits[w] & ~bits[w]) != 0) kills_subset = false;
        }
        if (bits_subset) {
          dominated = true;
          break;
        }
        if (kills_subset) {
          kills[i] = std::move(kills.back());
          kills.pop_back();
        } else {
          ++i;
        }
      }
      if (!dominated) kills.push_back(Kill{std::move(bits), member});
    }
  }
  for (size_t b = m; b-- > 0;) {
    suffix_union[b] = suffix_union[b + 1];
    for (const Kill& kill : bucket_kills[b]) {
      for (size_t w = 0; w < words; ++w) suffix_union[b][w] |= kill.bits[w];
    }
  }

  // DFS over buckets with a node budget; giving up is sound (link dropped,
  // extra recomputation, never a wrong ordering). Buckets beyond the point
  // where everything is killed keep the default member.
  int budget = 20'000;
  std::function<bool(size_t, const Bits&)> dfs = [&](size_t b,
                                                     const Bits& covered) {
    if (all_killed(covered)) return true;
    if (b == m || --budget <= 0) return false;
    // Prune: even killing with every remaining option cannot finish.
    Bits best = covered;
    for (size_t w = 0; w < words; ++w) best[w] |= suffix_union[b][w];
    if (!all_killed(best)) return false;
    for (const Kill& kill : bucket_kills[b]) {
      Bits next = covered;
      for (size_t w = 0; w < words; ++w) next[w] |= kill.bits[w];
      witness[b] = kill.member;
      if (dfs(b + 1, next)) return true;
    }
    witness[b] = nodes[b]->members[0];
    return false;
  };
  if (dfs(0, Bits(words, 0))) return witness;
  return std::nullopt;
}

}  // namespace planorder::utility
