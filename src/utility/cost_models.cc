#include "utility/cost_models.h"

#include <algorithm>
#include <cmath>

namespace planorder::utility {
namespace {

/// Caching adjustment for one cost term: an operation cached for every
/// member costs exactly zero; cached for some members makes zero reachable,
/// widening the interval down to it.
Interval ApplyCache(const Interval& term, const stats::StatSummary& node,
                    const ExecutionContext& ctx) {
  bool all_cached = true;
  bool any_cached = false;
  for (int member : node.members) {
    if (ctx.IsCached(node.bucket, member)) {
      any_cached = true;
    } else {
      all_cached = false;
    }
  }
  if (all_cached) return Interval::Point(0.0);
  if (any_cached) return Interval(0.0, term.hi());
  return term;
}

}  // namespace

Interval AdditiveCostModel::Evaluate(NodeSpan nodes,
                                     const ExecutionContext& ctx) const {
  (void)ctx;
  const double h = workload().access_overhead();
  Interval cost = Interval::Point(0.0);
  for (const stats::StatSummary* node : nodes) {
    cost += Interval::Point(h) + node->transmission_cost * node->cardinality;
  }
  return -cost;
}

double AdditiveCostModel::MonotoneScore(int bucket, int source) const {
  const stats::SourceStats& s = workload().source(bucket, source);
  return -(s.transmission_cost * s.cardinality);
}

StatusOr<std::unique_ptr<BoundJoinCostModel>> BoundJoinCostModel::Create(
    const stats::Workload* workload, const BoundJoinOptions& options) {
  if (options.assume_uniform_alpha) {
    if (options.include_failure || options.use_cache ||
        options.per_tuple_monetary) {
      return InvalidArgumentError(
          "assume_uniform_alpha is only meaningful for the plain measure (2)");
    }
    for (int b = 0; b < workload->num_buckets(); ++b) {
      const double alpha0 = workload->source(b, 0).transmission_cost;
      for (int i = 1; i < workload->bucket_size(b); ++i) {
        if (std::abs(workload->source(b, i).transmission_cost - alpha0) >
            1e-12) {
          return FailedPreconditionError(
              "assume_uniform_alpha set but transmission costs vary");
        }
      }
    }
  }
  return std::make_unique<BoundJoinCostModel>(workload, options);
}

std::string BoundJoinCostModel::name() const {
  std::string n = options_.per_tuple_monetary ? "monetary-per-tuple"
                                              : "bound-join-cost";
  if (options_.include_failure) n += "+failure";
  if (options_.use_cache) n += "+cache";
  return n;
}

Interval BoundJoinCostModel::Evaluate(NodeSpan nodes,
                                      const ExecutionContext& ctx) const {
  const double h = workload().access_overhead();
  Interval cost = Interval::Point(0.0);
  Interval flowing = Interval::Point(1.0);  // bindings entering bucket b
  for (size_t b = 0; b < nodes.size(); ++b) {
    const stats::StatSummary& node = *nodes[b];
    // Items shipped from source b: all of its answers for the first subgoal,
    // the estimated bound-join result n_b * t_{b-1} / N_b afterwards.
    Interval transfer =
        b == 0 ? node.cardinality
               : node.cardinality * flowing /
                     Interval::Point(workload().domain_size(static_cast<int>(b)));
    const Interval& price =
        options_.per_tuple_monetary ? node.fee : node.transmission_cost;
    Interval term = Interval::Point(h) + price * transfer;
    if (options_.include_failure) {
      term = term / (Interval::Point(1.0) - node.failure_prob);
    }
    if (options_.use_cache) {
      term = ApplyCache(term, node, ctx);
    }
    cost += term;
    flowing = transfer;
  }
  if (options_.per_tuple_monetary) {
    // `flowing` is the estimated number of output tuples; positive because
    // cardinalities and domain sizes are positive.
    cost = cost / flowing;
  }
  return -cost;
}

double BoundJoinCostModel::MonotoneScore(int bucket, int source) const {
  PLANORDER_CHECK(options_.assume_uniform_alpha);
  (void)bucket;
  // With uniform transmission costs every term of measure (2) decreases when
  // any source's cardinality decreases, so fewer expected tuples is better.
  return -workload().source(bucket, source).cardinality;
}

bool BoundJoinCostModel::Independent(const ConcretePlan& a,
                                     const ConcretePlan& b) const {
  if (!options_.use_cache) return true;
  // With caching, executing one plan can zero a term of the other exactly
  // when they share a source operation (same source at the same subgoal).
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i] == b[i]) return false;
  }
  return true;
}

int BoundJoinCostModel::ProbeMember(const stats::StatSummary& summary) const {
  int best = summary.members.front();
  double best_score = 1e300;
  for (int member : summary.members) {
    const stats::SourceStats& s = workload().source(summary.bucket, member);
    const double price =
        options_.per_tuple_monetary ? s.fee : s.transmission_cost;
    double score = price * s.cardinality;
    if (options_.include_failure) score /= (1.0 - s.failure_prob);
    if (score < best_score) {
      best_score = score;
      best = member;
    }
  }
  return best;
}

bool BoundJoinCostModel::GroupIndependentOf(NodeSpan nodes,
                                            const ConcretePlan& plan) const {
  if (!options_.use_cache) return true;
  // Some concrete group plan shares an operation with `plan` iff `plan`'s
  // source at some bucket is among the group's members there.
  for (size_t b = 0; b < nodes.size(); ++b) {
    const std::vector<int>& members = nodes[b]->members;
    if (std::find(members.begin(), members.end(), plan[b]) != members.end()) {
      return false;
    }
  }
  return true;
}

std::optional<ConcretePlan> BoundJoinCostModel::FindIndependentGroupPlan(
    NodeSpan nodes, const std::vector<const ConcretePlan*>& others) const {
  ConcretePlan witness(nodes.size());
  if (!options_.use_cache) {
    for (size_t b = 0; b < nodes.size(); ++b) {
      witness[b] = nodes[b]->members[0];
    }
    return witness;
  }
  // Independence from every other plan decomposes per bucket: pick any member
  // not used at that bucket by any of `others`. Exact.
  for (size_t b = 0; b < nodes.size(); ++b) {
    bool found = false;
    for (int member : nodes[b]->members) {
      bool clashes = false;
      for (const ConcretePlan* other : others) {
        if ((*other)[b] == member) {
          clashes = true;
          break;
        }
      }
      if (!clashes) {
        witness[b] = member;
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
  }
  return witness;
}

}  // namespace planorder::utility
