#include "utility/combined_model.h"

namespace planorder::utility {

StatusOr<std::unique_ptr<CombinedModel>> CombinedModel::Create(
    const stats::Workload* workload, std::vector<Component> components) {
  if (components.empty()) {
    return InvalidArgumentError("a combined measure needs components");
  }
  for (const Component& c : components) {
    if (c.model == nullptr) {
      return InvalidArgumentError("null component model");
    }
    if (!(c.weight > 0.0)) {
      return InvalidArgumentError("component weights must be positive");
    }
  }
  return std::make_unique<CombinedModel>(workload, std::move(components));
}

std::string CombinedModel::name() const {
  std::string out = "combined(";
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += " + ";
    out += std::to_string(components_[i].weight) + "*" +
           components_[i].model->name();
  }
  out += ")";
  return out;
}

Interval CombinedModel::Evaluate(NodeSpan nodes,
                                 const ExecutionContext& ctx) const {
  Interval total = Interval::Point(0.0);
  for (const Component& c : components_) {
    total += Interval::Point(c.weight) * c.model->Evaluate(nodes, ctx);
  }
  return total;
}

bool CombinedModel::diminishing_returns() const {
  for (const Component& c : components_) {
    if (!c.model->diminishing_returns()) return false;
  }
  return true;
}

bool CombinedModel::fully_independent() const {
  for (const Component& c : components_) {
    if (!c.model->fully_independent()) return false;
  }
  return true;
}

bool CombinedModel::Independent(const ConcretePlan& a,
                                const ConcretePlan& b) const {
  for (const Component& c : components_) {
    if (!c.model->Independent(a, b)) return false;
  }
  return true;
}

bool CombinedModel::GroupIndependentOf(NodeSpan nodes,
                                       const ConcretePlan& plan) const {
  for (const Component& c : components_) {
    if (!c.model->GroupIndependentOf(nodes, plan)) return false;
  }
  return true;
}

std::optional<ConcretePlan> CombinedModel::FindIndependentGroupPlan(
    NodeSpan nodes, const std::vector<const ConcretePlan*>& others) const {
  // A witness must be independent under EVERY component; candidates from one
  // component are verified against the rest (sound, possibly incomplete).
  for (const Component& c : components_) {
    std::optional<ConcretePlan> candidate =
        c.model->FindIndependentGroupPlan(nodes, others);
    if (!candidate.has_value()) continue;
    bool verified = true;
    for (const ConcretePlan* other : others) {
      if (!Independent(*candidate, *other)) {
        verified = false;
        break;
      }
    }
    if (verified) return candidate;
  }
  return std::nullopt;
}

int CombinedModel::ProbeMember(const stats::StatSummary& summary) const {
  // Defer to the heaviest-weighted component's notion of "promising".
  const Component* heaviest = &components_.front();
  for (const Component& c : components_) {
    if (c.weight > heaviest->weight) heaviest = &c;
  }
  return heaviest->model->ProbeMember(summary);
}

}  // namespace planorder::utility
