#ifndef PLANORDER_UTILITY_EXECUTION_CONTEXT_H_
#define PLANORDER_UTILITY_EXECUTION_CONTEXT_H_

#include <vector>

#include "base/logging.h"
#include "stats/bitmask_universe.h"
#include "stats/workload.h"

namespace planorder::utility {

/// A concrete query plan over a workload: one source index per bucket,
/// plan[b] being a position within bucket b. (The datalog-level rendering of
/// a plan lives in the reformulation module; the ordering algorithms only
/// need this index form.)
using ConcretePlan = std::vector<int>;

/// Mutable evaluation state shared by a utility model and an ordering
/// algorithm: which plans have been executed so far. The plan-ordering
/// problem (Definition 2.1) conditions the utility of the i-th plan on the
/// i-1 plans before it; orderers record emissions here and models read it.
///
/// Tracks the two pieces of state the Section 6 measures need:
///  - the covered cells of the coverage universe (plan coverage), and
///  - the set of executed source operations (cost with caching), keyed by
///    (bucket, source): the first access caches the source's full answer for
///    that subgoal, later accesses are free.
/// Beyond the session-local state, the context carries *externally* cached
/// operations: (bucket, source) pairs whose results are resident in a
/// cross-session cache (src/cluster/) rather than cached by this session's
/// own executed plans. IsCached is the union of both, so the Section 6
/// caching measures charge zero residual cost either way. External bits are
/// versioned by a generation counter (bumped only on actual change) so
/// incremental orderers can detect that utilities evaluated under an older
/// residency snapshot are stale.
class ExecutionContext {
 public:
  /// `workload` must outlive the context.
  explicit ExecutionContext(const stats::Workload* workload)
      : workload_(workload), universe_(workload->MakeBitmaskUniverse()) {
    cached_.resize(workload->num_buckets());
    external_.resize(workload->num_buckets());
    for (int b = 0; b < workload->num_buckets(); ++b) {
      cached_[b].assign(workload->bucket_size(b), 0);
      external_[b].assign(workload->bucket_size(b), 0);
    }
  }

  const stats::Workload& workload() const { return *workload_; }

  /// Records that `plan` has been executed: covers its coverage box and
  /// caches its source operations.
  void MarkExecuted(const ConcretePlan& plan) {
    PLANORDER_CHECK_EQ(plan.size(),
                       static_cast<size_t>(universe_.num_dimensions()));
    stats::RegionMask box[stats::BitmaskUniverse::kMaxDims];
    for (size_t b = 0; b < plan.size(); ++b) {
      box[b] = workload_->source(static_cast<int>(b), plan[b]).regions;
      cached_[b][plan[b]] = 1;
    }
    universe_.AddBox(box);
    executed_.push_back(plan);
  }

  /// Forgets all executions and external residency.
  void Reset() {
    universe_.Clear();
    executed_.clear();
    for (auto& bucket : cached_) bucket.assign(bucket.size(), 0);
    for (size_t b = 0; b < external_.size(); ++b) {
      for (size_t s = 0; s < external_[b].size(); ++s) {
        SetExternallyCached(static_cast<int>(b), static_cast<int>(s), false);
      }
    }
  }

  const std::vector<ConcretePlan>& executed() const { return executed_; }
  int64_t epoch() const { return static_cast<int64_t>(executed_.size()); }

  const stats::BitmaskUniverse& universe() const { return universe_; }

  /// True when the (bucket, source) operation result is cached — by one of
  /// this context's executed plans or externally (cross-session).
  bool IsCached(int bucket, int source) const {
    return cached_[bucket][source] != 0 || external_[bucket][source] != 0;
  }

  /// Declares the (bucket, source) operation resident (or evicted) in a
  /// cross-session cache. Bumps the generation only on an actual transition,
  /// so refreshing an unchanged residency snapshot costs nothing downstream.
  void SetExternallyCached(int bucket, int source, bool cached) {
    const char bit = cached ? 1 : 0;
    if (external_[bucket][source] == bit) return;
    external_[bucket][source] = bit;
    ++external_generation_;
  }

  /// Version counter of the external residency bits; increments exactly when
  /// some bit flips. Orderers compare it against the generation recorded at
  /// evaluation time to decide whether a cached utility is stale.
  int64_t external_generation() const { return external_generation_; }

  /// The current external-residency snapshot, bucket-major (1 = resident).
  const std::vector<std::vector<char>>& external_residency() const {
    return external_;
  }

 private:
  const stats::Workload* workload_;
  stats::BitmaskUniverse universe_;
  std::vector<ConcretePlan> executed_;
  std::vector<std::vector<char>> cached_;
  std::vector<std::vector<char>> external_;
  int64_t external_generation_ = 0;
};

}  // namespace planorder::utility

#endif  // PLANORDER_UTILITY_EXECUTION_CONTEXT_H_
