#ifndef PLANORDER_UTILITY_MEASURES_H_
#define PLANORDER_UTILITY_MEASURES_H_

#include <memory>
#include <string>

#include "base/status.h"
#include "utility/model.h"

namespace planorder::utility {

/// The utility measures studied by the paper, by name. kAdditive and
/// kCost2UniformAlpha are the fully monotonic ones (Greedy applies); the
/// rest are the four non-monotonic measures of the Section 6 experiments,
/// the caching variants of which additionally lose diminishing returns.
enum class MeasureKind {
  kAdditive,          // measure (1): sum of per-source costs
  kCost2UniformAlpha, // measure (2) with uniform transmission costs
  kCost2,             // measure (2), transmission costs vary
  kFailureNoCache,    // measure (2) + source failure
  kFailureCache,      // ... with operation caching
  kMonetary,          // average monetary cost per output tuple
  kMonetaryCache,     // ... with operation caching
  kCoverage,          // probabilistic plan coverage
};

/// Stable name ("coverage", "failure-cache", ...).
std::string MeasureKindName(MeasureKind kind);

/// Instantiates the measure over `workload` (validates applicability, e.g.
/// uniform transmission costs for kCost2UniformAlpha).
StatusOr<std::unique_ptr<UtilityModel>> MakeMeasure(
    MeasureKind kind, const stats::Workload* workload);

}  // namespace planorder::utility

#endif  // PLANORDER_UTILITY_MEASURES_H_
