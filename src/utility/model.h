#ifndef PLANORDER_UTILITY_MODEL_H_
#define PLANORDER_UTILITY_MODEL_H_

#include <optional>
#include <span>
#include <string>

#include "base/interval.h"
#include "base/logging.h"
#include "utility/execution_context.h"

namespace planorder::utility {

/// One StatSummary per bucket, in bucket order. Concrete plans pass point
/// summaries; abstract plans pass group summaries.
using NodeSpan = std::span<const stats::StatSummary* const>;

/// A utility measure u(p | p1..pl, Q) in the sense of Section 2: the worth of
/// plan p given that the context's executed plans have run. Higher is always
/// better; cost measures negate.
///
/// Evaluation is interval-valued so one code path serves concrete and
/// abstract plans (Section 5.1): the returned interval must contain the
/// utility of every concrete plan represented by `nodes`, and must be a point
/// when all nodes are concrete.
class UtilityModel {
 public:
  virtual ~UtilityModel() = default;

  virtual std::string name() const = 0;

  /// Utility enclosure of the (possibly abstract) plan `nodes`, conditioned
  /// on ctx.executed().
  virtual Interval Evaluate(NodeSpan nodes,
                            const ExecutionContext& ctx) const = 0;

  /// Point utility of a concrete plan (by-index form).
  double EvaluateConcrete(const ConcretePlan& plan,
                          const ExecutionContext& ctx) const;

  /// True when the measure is fully monotonic wrt the query (Section 3):
  /// every bucket admits a total source order, independent of the executed
  /// set, such that upgrading a source can only improve any plan. Enables
  /// the Greedy algorithm.
  virtual bool fully_monotonic() const { return false; }

  /// For fully monotonic measures: a per-bucket score, higher = better, such
  /// that replacing a source by a higher-scoring one improves any plan.
  /// Models that are not fully monotonic must not be asked.
  virtual double MonotoneScore(int bucket, int source) const {
    (void)bucket;
    (void)source;
    PLANORDER_CHECK(false) << name() << " is not fully monotonic";
    return 0.0;
  }

  /// True when utility-diminishing returns holds (Section 3): pushing a plan
  /// later in the ordering can never increase its utility. Required by
  /// Streamer.
  virtual bool diminishing_returns() const = 0;

  /// True when every pair of plans is independent — utilities never depend
  /// on the executed set at all. Holds for the no-caching cost measures;
  /// required by the batch top-k orderer (which sorts a single snapshot of
  /// utilities) and by stream merging across separately-ordered plan spaces.
  virtual bool fully_independent() const { return false; }

  /// Sound (possibly incomplete) independence test: true only if executing
  /// either plan cannot change the utility of the other. Used by Streamer's
  /// link recycling and by the PI baseline's recomputation filter.
  virtual bool Independent(const ConcretePlan& a,
                           const ConcretePlan& b) const = 0;

  /// Group-level independence: true only if NO concrete plan represented by
  /// `nodes` can have its utility changed by executing `plan`. Streamer uses
  /// this to decide which abstract plans need re-evaluation after an
  /// emission. The default is maximally conservative (always dependent).
  virtual bool GroupIndependentOf(NodeSpan nodes,
                                  const ConcretePlan& plan) const {
    (void)nodes;
    (void)plan;
    return false;
  }

  /// Batched form of GroupIndependentOf (DESIGN.md §11): when both key
  /// methods return true, the group is independent of the plan iff
  /// `keys_g[b] & keys_p[b] == 0` for SOME bucket b — a few word-ANDs
  /// instead of a virtual call per (candidate, emission) pair, which is what
  /// the persistent frontier's staleness scan performs millions of times per
  /// drain. A model that can express its GroupIndependentOf this way fills
  /// `keys[0..nodes.size())` and returns true; the default declines and
  /// callers fall back to the virtual test. Returning keys is a promise of
  /// exact agreement with GroupIndependentOf, not an approximation — the
  /// scan's outcome decides which utilities are re-evaluated, so a mismatch
  /// would change evaluation counts.
  virtual bool IndependenceKeys(NodeSpan nodes, uint64_t* keys) const {
    (void)nodes;
    (void)keys;
    return false;
  }

  /// Key form of an executed plan, matched against IndependenceKeys above.
  virtual bool PlanIndependenceKeys(const ConcretePlan& plan,
                                    uint64_t* keys) const {
    (void)plan;
    (void)keys;
    return false;
  }

  /// Existential group independence, the core of Streamer's link-validity
  /// check (Figure 5, CheckValidity): finds a concrete plan represented by
  /// `nodes` that is independent of every plan in `others`, or nullopt.
  /// Sound; may miss (nullopt despite existence). The default enumerates up
  /// to a small budget of concrete plans.
  virtual std::optional<ConcretePlan> FindIndependentGroupPlan(
      NodeSpan nodes, const std::vector<const ConcretePlan*>& others) const;

  /// Convenience wrapper over FindIndependentGroupPlan.
  bool GroupContainsIndependentPlan(
      NodeSpan nodes, const std::vector<const ConcretePlan*>& others) const {
    return FindIndependentGroupPlan(nodes, others).has_value();
  }

  /// Picks the member of `summary` most likely to maximize utility. The
  /// ordering algorithms evaluate this member exactly (a "probe") to lift an
  /// abstract plan's utility lower bound from min-over-members to a bound on
  /// its *best* member — the paper's dominance notion only needs one concrete
  /// plan of p to beat all of q, and probe bounds are what make interval
  /// pruning effective for coverage-like measures whose group intersections
  /// are often empty. Any member is correct; better guesses prune more.
  virtual int ProbeMember(const stats::StatSummary& summary) const {
    return summary.members.front();
  }

 protected:
  explicit UtilityModel(const stats::Workload* workload)
      : workload_(workload) {}

  const stats::Workload& workload() const { return *workload_; }

 private:
  const stats::Workload* workload_;
};

inline std::optional<ConcretePlan> UtilityModel::FindIndependentGroupPlan(
    NodeSpan nodes, const std::vector<const ConcretePlan*>& others) const {
  // Enumerate concrete plans of the group up to a budget; sound to give up.
  constexpr int kBudget = 512;
  ConcretePlan candidate(nodes.size());
  std::vector<size_t> cursor(nodes.size(), 0);
  int tried = 0;
  while (tried < kBudget) {
    for (size_t b = 0; b < nodes.size(); ++b) {
      candidate[b] = nodes[b]->members[cursor[b]];
    }
    bool independent_of_all = true;
    for (const ConcretePlan* other : others) {
      if (!Independent(candidate, *other)) {
        independent_of_all = false;
        break;
      }
    }
    if (independent_of_all) return candidate;
    ++tried;
    // Odometer increment over member sets.
    size_t b = 0;
    for (; b < nodes.size(); ++b) {
      if (++cursor[b] < nodes[b]->members.size()) break;
      cursor[b] = 0;
    }
    if (b == nodes.size()) return std::nullopt;  // exhausted the group
  }
  return std::nullopt;
}

inline double UtilityModel::EvaluateConcrete(const ConcretePlan& plan,
                                             const ExecutionContext& ctx) const {
  // Assemble the plan's point summaries; a handful of pointers, no copies.
  const stats::StatSummary* nodes[16];
  PLANORDER_CHECK_LE(plan.size(), size_t{16});
  for (size_t b = 0; b < plan.size(); ++b) {
    nodes[b] = &workload_->summary(static_cast<int>(b), plan[b]);
  }
  const Interval u = Evaluate(NodeSpan(nodes, plan.size()), ctx);
  PLANORDER_DCHECK(u.is_point())
      << name() << " returned non-point utility for a concrete plan";
  return u.lo();
}

}  // namespace planorder::utility

#endif  // PLANORDER_UTILITY_MODEL_H_
