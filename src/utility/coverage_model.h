#ifndef PLANORDER_UTILITY_COVERAGE_MODEL_H_
#define PLANORDER_UTILITY_COVERAGE_MODEL_H_

#include "utility/model.h"

namespace planorder::utility {

/// Plan coverage (Section 2, Example 2.1): the probability that a random
/// query answer is returned by plan p and by none of the executed plans.
/// Computed exactly in the workload's region universe: the weight of p's box
/// not yet covered. Not fully monotonic; has diminishing returns (executed
/// coverage only grows), so Streamer applies.
///
/// Abstract plans evaluate to [uncovered(intersection box), uncovered(union
/// box)]: each concrete plan's box contains the groupwise intersection box
/// and is contained in the union box, and uncovered volume is monotone under
/// box inclusion, so the interval is a sound enclosure.
class CoverageModel : public UtilityModel {
 public:
  explicit CoverageModel(const stats::Workload* workload)
      : UtilityModel(workload) {}

  std::string name() const override { return "coverage"; }
  Interval Evaluate(NodeSpan nodes, const ExecutionContext& ctx) const override;
  bool diminishing_returns() const override { return true; }

  /// Complete in this model: plans are independent exactly when their boxes
  /// are disjoint, i.e. some pair of corresponding sources does not overlap
  /// (the paper's Section 3 inference procedure).
  bool Independent(const ConcretePlan& a,
                   const ConcretePlan& b) const override;

  /// True when some bucket's group union mask misses `plan`'s source there:
  /// then every concrete plan of the group is box-disjoint from `plan`.
  bool GroupIndependentOf(NodeSpan nodes,
                          const ConcretePlan& plan) const override;

  /// Keyed form of the same test: group keys are the per-bucket union masks,
  /// plan keys the per-bucket source region masks, so the keyed AND-scan is
  /// exactly GroupIndependentOf. Region masks are at most 64 bits by
  /// construction (stats::CoverageUniverse checks), so one word per bucket
  /// always suffices.
  bool IndependenceKeys(NodeSpan nodes, uint64_t* keys) const override;
  bool PlanIndependenceKeys(const ConcretePlan& plan,
                            uint64_t* keys) const override;

  /// Exact backtracking over buckets: per bucket, each candidate source
  /// "kills" (is disjoint from) a subset of `others`; searches for a choice
  /// whose kill sets cover all of them, with a node budget (sound to give
  /// up). Returns the found witness plan.
  std::optional<ConcretePlan> FindIndependentGroupPlan(
      NodeSpan nodes,
      const std::vector<const ConcretePlan*>& others) const override;

  /// Probes the member with the heaviest region set (likeliest best
  /// coverage).
  int ProbeMember(const stats::StatSummary& summary) const override;
};

}  // namespace planorder::utility

#endif  // PLANORDER_UTILITY_COVERAGE_MODEL_H_
