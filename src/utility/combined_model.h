#ifndef PLANORDER_UTILITY_COMBINED_MODEL_H_
#define PLANORDER_UTILITY_COMBINED_MODEL_H_

#include <memory>
#include <vector>

#include "base/status.h"
#include "utility/model.h"

namespace planorder::utility {

/// The weighted-combination utility of Example 1.2:
///   u(p) = alpha * coverage(p) + beta * cost-utility(p)
/// generalized to any weighted sum of component measures (weights must be
/// positive; components are already "higher is better", so cost components
/// contribute their negated cost).
///
/// Property composition is conservative:
///  - interval evaluation: weighted sum of the component intervals (a sound
///    enclosure of the weighted sum);
///  - diminishing returns holds iff it holds for every component;
///  - full independence likewise; two plans are independent only if every
///    component deems them independent;
///  - full monotonicity is NOT claimed even if all components are monotonic
///    (their per-bucket orders may disagree).
class CombinedModel : public UtilityModel {
 public:
  struct Component {
    UtilityModel* model;  // not owned; must outlive the combination
    double weight = 1.0;
  };

  /// Validates weights (> 0) and a non-empty component list over a common
  /// workload.
  static StatusOr<std::unique_ptr<CombinedModel>> Create(
      const stats::Workload* workload, std::vector<Component> components);

  std::string name() const override;
  Interval Evaluate(NodeSpan nodes, const ExecutionContext& ctx) const override;
  bool diminishing_returns() const override;
  bool fully_independent() const override;
  bool Independent(const ConcretePlan& a,
                   const ConcretePlan& b) const override;
  bool GroupIndependentOf(NodeSpan nodes,
                          const ConcretePlan& plan) const override;
  std::optional<ConcretePlan> FindIndependentGroupPlan(
      NodeSpan nodes,
      const std::vector<const ConcretePlan*>& others) const override;
  int ProbeMember(const stats::StatSummary& summary) const override;

  CombinedModel(const stats::Workload* workload,
                std::vector<Component> components)
      : UtilityModel(workload), components_(std::move(components)) {}

 private:
  std::vector<Component> components_;
};

}  // namespace planorder::utility

#endif  // PLANORDER_UTILITY_COMBINED_MODEL_H_
