#ifndef PLANORDER_UTILITY_COST_MODELS_H_
#define PLANORDER_UTILITY_COST_MODELS_H_

#include <memory>

#include "base/status.h"
#include "utility/model.h"

namespace planorder::utility {

/// Cost measure (1) of Section 3: cost(p) = Σ_b (h + α_b · n_b); every term
/// depends only on its own source, so the measure is fully monotonic and
/// Greedy applies. Utility is the negated cost.
class AdditiveCostModel : public UtilityModel {
 public:
  explicit AdditiveCostModel(const stats::Workload* workload)
      : UtilityModel(workload) {}

  std::string name() const override { return "additive-cost"; }
  Interval Evaluate(NodeSpan nodes, const ExecutionContext& ctx) const override;
  bool fully_monotonic() const override { return true; }
  double MonotoneScore(int bucket, int source) const override;
  bool diminishing_returns() const override { return true; }
  bool fully_independent() const override { return true; }
  bool Independent(const ConcretePlan& a,
                   const ConcretePlan& b) const override {
    (void)a;
    (void)b;
    return true;
  }
  bool GroupIndependentOf(NodeSpan nodes,
                          const ConcretePlan& plan) const override {
    (void)nodes;
    (void)plan;
    return true;
  }
  std::optional<ConcretePlan> FindIndependentGroupPlan(
      NodeSpan nodes,
      const std::vector<const ConcretePlan*>& others) const override {
    (void)others;
    ConcretePlan any(nodes.size());
    for (size_t b = 0; b < nodes.size(); ++b) any[b] = nodes[b]->members[0];
    return any;
  }
};

/// Options for the bound-join cost family (measure (2) of Section 3 and its
/// Section 6 variants).
struct BoundJoinOptions {
  /// Divide each term by (1 - f): expected cost when an access fails with
  /// probability f and is retried (the "cost with probability of source
  /// failure" measure).
  bool include_failure = false;
  /// Zero the cost of source operations whose results are cached by an
  /// executed plan. Breaks diminishing returns (a later plan can get
  /// cheaper), so Streamer refuses models with this set.
  bool use_cache = false;
  /// Declare that transmission costs are uniform across sources, which makes
  /// measure (2) fully monotonic (Section 3). Verified against the workload
  /// at construction. Incompatible with include_failure and use_cache.
  bool assume_uniform_alpha = false;
  /// Price items by the monetary fee instead of the transmission cost and
  /// report average monetary cost per output tuple:
  /// u(p) = -Cost(p) / NumOutputTuples(p) (the fourth Section 6 measure).
  bool per_tuple_monetary = false;
};

/// Cost measure (2) of Section 3 generalized to m subgoals, evaluated
/// left-to-right with bound joins: the first source ships its n_1 answers;
/// source b ships the estimated join result n_b · t_{b-1} / N_b of its n_b
/// tuples with the t_{b-1} bindings flowing in. cost(p) = Σ_b (h + α_b · t_b),
/// optionally with failure retries, operation caching, and the
/// monetary-per-tuple transform (see BoundJoinOptions).
class BoundJoinCostModel : public UtilityModel {
 public:
  /// Validates `options` against the workload (e.g. uniform-α claims).
  static StatusOr<std::unique_ptr<BoundJoinCostModel>> Create(
      const stats::Workload* workload, const BoundJoinOptions& options);

  std::string name() const override;
  Interval Evaluate(NodeSpan nodes, const ExecutionContext& ctx) const override;
  bool fully_monotonic() const override {
    return options_.assume_uniform_alpha;
  }
  double MonotoneScore(int bucket, int source) const override;
  bool diminishing_returns() const override { return !options_.use_cache; }
  bool fully_independent() const override { return !options_.use_cache; }
  bool Independent(const ConcretePlan& a,
                   const ConcretePlan& b) const override;
  bool GroupIndependentOf(NodeSpan nodes,
                          const ConcretePlan& plan) const override;
  std::optional<ConcretePlan> FindIndependentGroupPlan(
      NodeSpan nodes,
      const std::vector<const ConcretePlan*>& others) const override;

  /// Probes the cheapest-looking member (smallest alpha * n, or for the
  /// monetary measure smallest fee-to-output ratio proxy).
  int ProbeMember(const stats::StatSummary& summary) const override;

  BoundJoinCostModel(const stats::Workload* workload,
                     const BoundJoinOptions& options)
      : UtilityModel(workload), options_(options) {}

 private:
  BoundJoinOptions options_;
};

}  // namespace planorder::utility

#endif  // PLANORDER_UTILITY_COST_MODELS_H_
