#ifndef PLANORDER_ANYK_RANKED_STREAM_H_
#define PLANORDER_ANYK_RANKED_STREAM_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "anyk/executor.h"
#include "anyk/weights.h"
#include "base/status.h"
#include "core/orderer.h"
#include "datalog/evaluator.h"
#include "datalog/source.h"

namespace planorder::anyk {

/// Ranked mediation: the union of all sound plans' answers, streamed in the
/// canonical ranked order (RankedBefore — weight descending, tuple
/// lexicographically ascending) with duplicates suppressed, without ever
/// materializing any plan's full join.
///
/// The two halves of the paper's pipeline compose:
///
///  - Plan phase (Open): plans are pulled from the ordering algorithm in
///    decreasing-utility order, exactly like exec::Mediator — unsound plans
///    and plans with no executable atom order are discarded with
///    ReportDiscarded so they do not condition later utilities. Each
///    surviving rewriting gets an AnyKEnumerator, i.e. only the cheap
///    bottom-up DP runs here. Under a tight `max_plans` budget the utility
///    order decides which plans are admitted at all.
///  - Answer phase (Next): a global frontier merges the per-plan ranked
///    streams. Answers are drained in equal-weight batches — every enumerator
///    is non-increasing, so once the best frontier weight is w no later
///    answer can exceed w; draining ALL answers of weight w from ALL plans,
///    sorting the batch lexicographically and deduplicating against the
///    global seen-set yields a deterministic sequence that is byte-identical
///    to sorting the full deduplicated union (the brute-force oracle), for
///    any plan arrival order. An answer's first emission carries its best
///    weight: streams are non-increasing, so no later witness of the same
///    tuple can beat an earlier one.
class RankedAnswerStream {
 public:
  struct Options {
    WeightOptions weights;
    /// Plan budget for the plan phase (must be positive).
    int max_plans = 0;
  };

  /// Accounting across both phases.
  struct Stats {
    int plans_considered = 0;    // orderer emissions consumed
    size_t sound_plans = 0;      // of which sound
    size_t open_plans = 0;       // sound, executable, DP built
    size_t witnesses_expanded = 0;  // per-plan witnesses pulled by the merge
    size_t answers_emitted = 0;     // distinct answers streamed out
  };

  /// Runs the plan phase. `source_ids[b][i]` maps workload bucket b, index i
  /// to the catalog SourceId (the orderer speaks bucket-index). All pointer
  /// arguments must outlive the stream; the orderer is only used inside Open.
  static StatusOr<RankedAnswerStream> Open(
      const datalog::Catalog& catalog, const datalog::ConjunctiveQuery& query,
      const datalog::Database& source_facts,
      const std::vector<std::vector<datalog::SourceId>>& source_ids,
      core::Orderer& orderer, const Options& options);

  RankedAnswerStream(RankedAnswerStream&&) = default;
  RankedAnswerStream& operator=(RankedAnswerStream&&) = default;

  /// The best-weighted not-yet-emitted answer (kNotFound when exhausted).
  StatusOr<RankedAnswer> Next();

  /// True once Next has returned kNotFound.
  bool done() const { return done_; }

  const Stats& stats() const { return stats_; }

 private:
  RankedAnswerStream() = default;

  /// Drains the next equal-weight batch from all enumerators into batch_.
  void RefillBatch();

  std::vector<std::unique_ptr<AnyKEnumerator>> enumerators_;
  std::vector<RankedAnswer> batch_;  // current equal-weight batch, in order
  size_t batch_pos_ = 0;
  /// Global dedup across plans: membership tests only, never iterated, so
  /// hash order cannot reach the emission sequence.
  // detlint: order-insensitive(membership-only dedup; never iterated)
  std::unordered_set<std::vector<datalog::Term>, datalog::TermVectorHash>
      seen_;
  Stats stats_;
  bool done_ = false;
};

}  // namespace planorder::anyk

#endif  // PLANORDER_ANYK_RANKED_STREAM_H_
