#ifndef PLANORDER_ANYK_JOIN_TREE_H_
#define PLANORDER_ANYK_JOIN_TREE_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "datalog/conjunctive_query.h"

namespace planorder::anyk {

/// One node of a join tree: a body atom plus its connection to the parent.
struct JoinTreeNode {
  /// Index of this node's atom in the query body (node id == atom index).
  int atom = 0;
  /// Parent node id, or -1 for the root.
  int parent = -1;
  std::vector<int> children;
  /// The variables this node's subtree shares with the rest of the tree, in
  /// sorted order — the join key against the parent (empty = Cartesian
  /// product edge). By the running-intersection property every such variable
  /// also occurs in the parent atom.
  std::vector<std::string> join_vars;
};

/// A join tree over the body of an acyclic conjunctive query, built by GYO
/// ear removal. Node ids equal body-atom indices; `removal_order` lists the
/// nodes children-before-parents (the ear-removal sequence), so a bottom-up
/// DP can process it front to back. Queries whose bodies span several
/// connected components are joined by Cartesian-product edges (empty
/// join_vars) into a single tree, deterministically.
struct JoinTree {
  int root = 0;
  std::vector<JoinTreeNode> nodes;
  std::vector<int> removal_order;
};

/// Builds the join tree of `query`'s body, or kFailedPrecondition when the
/// query is cyclic (no ear removable; the any-k executor then does not
/// apply). Deterministic: atoms are scanned in body order and the first
/// removable ear / first qualifying witness wins. Fails with
/// kInvalidArgument on an empty body and kUnimplemented on interpreted
/// comparison atoms.
StatusOr<JoinTree> BuildJoinTree(const datalog::ConjunctiveQuery& query);

}  // namespace planorder::anyk

#endif  // PLANORDER_ANYK_JOIN_TREE_H_
