#ifndef PLANORDER_ANYK_EXECUTOR_H_
#define PLANORDER_ANYK_EXECUTOR_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "anyk/join_tree.h"
#include "anyk/weights.h"
#include "base/status.h"
#include "datalog/evaluator.h"

namespace planorder::anyk {

/// Ranked (any-k) enumeration of one acyclic conjunctive query's results:
/// witnesses come out in non-increasing aggregate weight without ever
/// materializing the full join.
///
/// Two phases (Tziavelis et al., "Any-k Algorithms for Enumerating Ranked
/// Answers to Conjunctive Queries"):
///
///  1. Bottom-up DP over the join tree. Each node's admissible tuples are
///     grouped by their join key towards the parent; a tuple's DP value is
///     the best aggregate achievable in its subtree (its own weight combined
///     with each child group's best). Tuples whose child group is empty are
///     pruned — the classic semi-join reduction, for free.
///  2. Lazy successor generation. Per (node, join-key) group a ranked stream
///     of subtree solutions is materialized on demand from a priority queue:
///     popping a solution pushes its Lawler-style successors (advance to the
///     next tuple from the all-zeros rank vector; bump one child rank at or
///     after the last bumped position), so producing the k-th solution costs
///     O(log) heap work per step and streams are shared across all parent
///     tuples with the same key.
///
/// Weight determinism: aggregates are folded over dyadic-rational tuple
/// weights (see WeightOptions), so the DP value, the enumerator's emission
/// weight and any independent recomputation agree bit-for-bit.
///
/// Emission order contract: weights are non-increasing; the order among
/// equal-weight witnesses is deterministic but otherwise unspecified —
/// ranked consumers that need a canonical tie order (the global frontier
/// merge, the differential oracle) batch equal-weight answers and sort them.
class AnyKEnumerator {
 public:
  /// Builds the DP (phase 1) for `query` over `facts`. `facts` must outlive
  /// the enumerator; `query` must be safe and acyclic (kFailedPrecondition
  /// otherwise, kUnimplemented on comparison atoms or non-ground function
  /// arguments).
  static StatusOr<std::unique_ptr<AnyKEnumerator>> Create(
      const datalog::ConjunctiveQuery& query, const datalog::Database& facts,
      const WeightOptions& options);

  /// The next witness's head projection, or nullptr when exhausted. The
  /// pointer stays valid until the following Peek()/Next() call.
  const RankedAnswer* Peek();

  /// Emits the next witness's head projection (kNotFound when exhausted).
  /// Distinct witnesses can project to the same answer; deduplication is the
  /// caller's concern (first occurrence carries the answer's best weight).
  StatusOr<RankedAnswer> Next();

  /// Witnesses emitted so far (not deduplicated).
  size_t witnesses_emitted() const { return witnesses_emitted_; }

 private:
  /// One admissible tuple of a node together with its DP value.
  struct Entry {
    int row = 0;        // index into NodeState::rows
    double best = 0.0;  // best subtree aggregate achievable through this row
  };

  /// A fully ranked subtree solution: entry + one rank per child stream.
  struct Solution {
    double agg = 0.0;
    int entry = 0;
    std::vector<int> child_ranks;
  };

  /// A frontier element of a group's lazy stream. `last_inc` is the Lawler
  /// partition pointer: successors may only bump child ranks at or after it.
  struct Candidate {
    double agg = 0.0;
    int entry = 0;
    std::vector<int> child_ranks;
    int last_inc = 0;
  };

  /// All subtree solutions sharing one (node, parent join key): the sorted
  /// DP entries plus the lazily materialized ranked stream over them.
  struct Group {
    std::vector<Entry> entries;
    bool open = false;
    std::vector<Solution> produced;
    std::vector<Candidate> frontier;  // heap (std::push_heap/pop_heap)
  };

  struct NodeState {
    /// Admissible rows (constants and repeated variables already enforced).
    std::vector<const std::vector<datalog::Term>*> rows;
    std::vector<double> row_weights;
    /// Argument positions of each variable's first occurrence in the atom.
    /// BindWitness iterates it, but each variable is assigned into the
    /// bindings map exactly once, so the fold commutes.
    // detlint: order-insensitive(keyed writes commute; one write per var)
    std::unordered_map<std::string, int> var_position;
    /// Key-extraction positions: towards the parent, and per child.
    std::vector<int> parent_key_positions;
    std::vector<std::vector<int>> child_key_positions;
    /// Keyed lookup only (FindGroup); group ids come from insertion order,
    /// which follows the deterministic row scan.
    // detlint: order-insensitive(keyed lookup/insert only; never iterated)
    std::unordered_map<std::vector<datalog::Term>, int,
                       datalog::TermVectorHash>
        group_index;
    std::vector<Group> groups;
  };

  AnyKEnumerator() = default;

  Status Build(const datalog::ConjunctiveQuery& query,
               const datalog::Database& facts, const WeightOptions& options);

  /// Forces production of `rank` in the group's stream; nullptr = exhausted
  /// before `rank`.
  const Solution* GetSolution(int node, int group, int rank);

  /// The group of `node` matching child-or-parent key `key`, or -1.
  int FindGroup(int node, const std::vector<datalog::Term>& key) const;

  /// Aggregate of (entry row weight ⊕ children at `ranks`). All referenced
  /// child solutions must already be produced.
  double CombineAggregate(int node, int group, int entry,
                          const std::vector<int>& ranks);

  void PushCandidate(int node, int group, Candidate candidate);

  /// Collects variable bindings of the witness rooted at (node, group, rank).
  /// The bindings map is read back per head argument by name, never iterated.
  void BindWitness(int node, int group, int rank,
                   // detlint: order-insensitive(keyed reads only; never iterated)
                   std::unordered_map<std::string, datalog::Term>& bindings);

  WeightOptions options_;
  JoinTree tree_;
  std::vector<datalog::Atom> atoms_;  // body, aligned with tree_ node ids
  std::vector<datalog::Term> head_args_;
  std::vector<NodeState> nodes_;
  int root_group_ = -1;  // -1 = empty result
  int next_rank_ = 0;
  RankedAnswer peeked_;
  bool peek_valid_ = false;
  size_t witnesses_emitted_ = 0;
};

}  // namespace planorder::anyk

#endif  // PLANORDER_ANYK_EXECUTOR_H_
