#ifndef PLANORDER_ANYK_BRUTE_FORCE_H_
#define PLANORDER_ANYK_BRUTE_FORCE_H_

#include <vector>

#include "anyk/weights.h"
#include "base/status.h"
#include "datalog/evaluator.h"

namespace planorder::anyk {

/// Reference oracle for ranked enumeration: materializes EVERY witness of
/// `query` over `facts` by naive backtracking join (no join tree, no DP, no
/// pruning — deliberately nothing in common with AnyKEnumerator's machinery),
/// aggregates each witness's tuple weights, keeps the best weight per
/// distinct head instantiation, and returns the answers sorted in the
/// canonical ranked order (RankedBefore). Exponential in the body size; for
/// tests and differential checks only.
///
/// Errors mirror the executor's contract: kInvalidArgument on an empty body,
/// kUnimplemented on comparison atoms or non-ground function arguments, and
/// the query must be safe.
StatusOr<std::vector<RankedAnswer>> BruteForceRankedAnswers(
    const datalog::ConjunctiveQuery& query, const datalog::Database& facts,
    const WeightOptions& options);

/// Union-of-rewritings variant: the ranked answer set of a query whose result
/// is the union of several conjunctive rewritings (the mediator's sound
/// plans). An answer produced by several rewritings keeps its best weight
/// across all of them. Same canonical output order.
StatusOr<std::vector<RankedAnswer>> BruteForceRankedUnion(
    const std::vector<datalog::ConjunctiveQuery>& queries,
    const datalog::Database& facts, const WeightOptions& options);

}  // namespace planorder::anyk

#endif  // PLANORDER_ANYK_BRUTE_FORCE_H_
