#include "anyk/join_tree.h"

#include <algorithm>
#include <set>

#include "datalog/builtins.h"

namespace planorder::anyk {

StatusOr<JoinTree> BuildJoinTree(const datalog::ConjunctiveQuery& query) {
  const int n = static_cast<int>(query.body.size());
  if (n == 0) {
    return InvalidArgumentError("join tree needs a non-empty body");
  }
  std::vector<std::set<std::string>> vars(n);
  for (int i = 0; i < n; ++i) {
    if (datalog::IsComparisonAtom(query.body[i])) {
      return UnimplementedError(
          "any-k does not support interpreted comparison atoms");
    }
    query.body[i].CollectVariables(vars[i]);
  }

  JoinTree tree;
  tree.nodes.resize(n);
  for (int i = 0; i < n; ++i) tree.nodes[i].atom = i;

  std::vector<bool> active(n, true);
  int remaining = n;
  while (remaining > 1) {
    // One GYO step: find the first atom whose variables shared with any
    // other active atom all fit inside a single active witness; remove it as
    // that witness's child. A pass that removes nothing proves cyclicity.
    bool removed = false;
    for (int a = 0; a < n && !removed; ++a) {
      if (!active[a]) continue;
      std::set<std::string> shared;
      for (int b = 0; b < n; ++b) {
        if (b == a || !active[b]) continue;
        std::set_intersection(vars[a].begin(), vars[a].end(), vars[b].begin(),
                              vars[b].end(),
                              std::inserter(shared, shared.end()));
      }
      for (int w = 0; w < n; ++w) {
        if (w == a || !active[w]) continue;
        if (!std::includes(vars[w].begin(), vars[w].end(), shared.begin(),
                           shared.end())) {
          continue;
        }
        tree.nodes[a].parent = w;
        tree.nodes[a].join_vars.assign(shared.begin(), shared.end());
        tree.nodes[w].children.push_back(a);
        tree.removal_order.push_back(a);
        active[a] = false;
        --remaining;
        removed = true;
        break;
      }
    }
    if (!removed) {
      return FailedPreconditionError(
          "query is cyclic: no GYO ear removable from " +
          std::to_string(remaining) + " remaining atoms");
    }
  }
  for (int a = 0; a < n; ++a) {
    if (active[a]) tree.root = a;
  }
  tree.removal_order.push_back(tree.root);
  return tree;
}

}  // namespace planorder::anyk
