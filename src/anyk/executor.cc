#include "anyk/executor.h"

#include <algorithm>
#include <utility>

#include "base/logging.h"

namespace planorder::anyk {

namespace {

/// Heap comparator ("a has lower priority than b" for std::push_heap): the
/// frontier is totally ordered by aggregate descending, then entry index
/// ascending, then rank vector ascending — deterministic pops even at exact
/// weight ties.
constexpr auto kCandidateLess = [](const auto& a, const auto& b) {
  if (a.agg != b.agg) return a.agg < b.agg;
  if (a.entry != b.entry) return a.entry > b.entry;
  return a.child_ranks > b.child_ranks;
};

}  // namespace

StatusOr<std::unique_ptr<AnyKEnumerator>> AnyKEnumerator::Create(
    const datalog::ConjunctiveQuery& query, const datalog::Database& facts,
    const WeightOptions& options) {
  PLANORDER_RETURN_IF_ERROR(query.ValidateSafety());
  std::unique_ptr<AnyKEnumerator> enumerator(new AnyKEnumerator());
  PLANORDER_RETURN_IF_ERROR(enumerator->Build(query, facts, options));
  return enumerator;
}

Status AnyKEnumerator::Build(const datalog::ConjunctiveQuery& query,
                             const datalog::Database& facts,
                             const WeightOptions& options) {
  options_ = options;
  PLANORDER_ASSIGN_OR_RETURN(tree_, BuildJoinTree(query));
  atoms_ = query.body;
  head_args_ = query.head.args;
  for (const datalog::Term& arg : head_args_) {
    if (!arg.is_variable() && !arg.IsGround()) {
      return UnimplementedError(
          "any-k does not support non-ground function terms in the head");
    }
  }

  const int n = static_cast<int>(atoms_.size());
  nodes_.resize(n);
  for (int i = 0; i < n; ++i) {
    NodeState& node = nodes_[i];
    const datalog::Atom& atom = atoms_[i];
    for (size_t pos = 0; pos < atom.args.size(); ++pos) {
      const datalog::Term& arg = atom.args[pos];
      if (arg.is_variable()) {
        node.var_position.emplace(arg.name(), static_cast<int>(pos));
      } else if (!arg.IsGround()) {
        return UnimplementedError(
            "any-k does not support non-ground function terms in the body");
      }
    }
    for (const std::vector<datalog::Term>& row :
         facts.TuplesFor(atom.predicate)) {
      if (row.size() != atom.args.size()) continue;
      bool match = true;
      for (size_t pos = 0; pos < atom.args.size() && match; ++pos) {
        const datalog::Term& arg = atom.args[pos];
        if (arg.is_variable()) {
          // Repeated variables must bind consistently.
          const int first = node.var_position.at(arg.name());
          match = row[first] == row[pos];
        } else {
          match = row[pos] == arg;
        }
      }
      if (!match) continue;
      node.rows.push_back(&row);
      node.row_weights.push_back(TupleWeight(options_, row));
    }
    for (const std::string& var : tree_.nodes[i].join_vars) {
      node.parent_key_positions.push_back(node.var_position.at(var));
    }
    node.child_key_positions.resize(tree_.nodes[i].children.size());
    for (size_t c = 0; c < tree_.nodes[i].children.size(); ++c) {
      const int child = tree_.nodes[i].children[c];
      for (const std::string& var : tree_.nodes[child].join_vars) {
        // Running-intersection property: every child join variable occurs in
        // the parent atom.
        node.child_key_positions[c].push_back(node.var_position.at(var));
      }
    }
  }

  // Bottom-up DP: removal_order lists children before parents.
  auto extract = [](const std::vector<datalog::Term>& row,
                    const std::vector<int>& positions) {
    std::vector<datalog::Term> key;
    key.reserve(positions.size());
    for (int pos : positions) key.push_back(row[pos]);
    return key;
  };
  for (int i : tree_.removal_order) {
    NodeState& node = nodes_[i];
    const std::vector<int>& children = tree_.nodes[i].children;
    for (size_t r = 0; r < node.rows.size(); ++r) {
      const std::vector<datalog::Term>& row = *node.rows[r];
      double agg = node.row_weights[r];
      bool admissible = true;
      for (size_t c = 0; c < children.size(); ++c) {
        const int group =
            FindGroup(children[c], extract(row, node.child_key_positions[c]));
        if (group < 0) {
          // Semi-join reduction: no subtree solution joins this row.
          admissible = false;
          break;
        }
        agg = AggregationCombine(options_.aggregation, agg,
                                 nodes_[children[c]].groups[group].entries[0]
                                     .best);
      }
      if (!admissible) continue;
      std::vector<datalog::Term> key =
          extract(row, node.parent_key_positions);
      auto [it, inserted] = node.group_index.emplace(
          std::move(key), static_cast<int>(node.groups.size()));
      if (inserted) node.groups.emplace_back();
      node.groups[it->second].entries.push_back(
          Entry{static_cast<int>(r), agg});
    }
    for (Group& group : node.groups) {
      std::sort(group.entries.begin(), group.entries.end(),
                [&node](const Entry& a, const Entry& b) {
                  if (a.best != b.best) return a.best > b.best;
                  return *node.rows[a.row] < *node.rows[b.row];
                });
    }
  }
  root_group_ = FindGroup(tree_.root, {});
  return OkStatus();
}

int AnyKEnumerator::FindGroup(int node,
                              const std::vector<datalog::Term>& key) const {
  const auto it = nodes_[node].group_index.find(key);
  return it == nodes_[node].group_index.end() ? -1 : it->second;
}

double AnyKEnumerator::CombineAggregate(int node, int group, int entry,
                                        const std::vector<int>& ranks) {
  const NodeState& state = nodes_[node];
  const int row = state.groups[group].entries[entry].row;
  double agg = state.row_weights[row];
  const std::vector<int>& children = tree_.nodes[node].children;
  for (size_t c = 0; c < children.size(); ++c) {
    std::vector<datalog::Term> key;
    for (int pos : state.child_key_positions[c]) {
      key.push_back((*state.rows[row])[pos]);
    }
    const int child_group = FindGroup(children[c], key);
    PLANORDER_CHECK_GE(child_group, 0);
    const Solution* solution =
        GetSolution(children[c], child_group, ranks[c]);
    PLANORDER_CHECK(solution != nullptr);
    agg = AggregationCombine(options_.aggregation, agg, solution->agg);
  }
  return agg;
}

void AnyKEnumerator::PushCandidate(int node, int group, Candidate candidate) {
  std::vector<Candidate>& frontier = nodes_[node].groups[group].frontier;
  frontier.push_back(std::move(candidate));
  std::push_heap(frontier.begin(), frontier.end(), kCandidateLess);
}

const AnyKEnumerator::Solution* AnyKEnumerator::GetSolution(int node,
                                                            int group,
                                                            int rank) {
  Group& g = nodes_[node].groups[group];
  const std::vector<int>& children = tree_.nodes[node].children;
  if (!g.open) {
    g.open = true;
    if (!g.entries.empty()) {
      PushCandidate(node, group,
                    Candidate{g.entries[0].best, 0,
                              std::vector<int>(children.size(), 0), 0});
    }
  }
  while (static_cast<int>(g.produced.size()) <= rank && !g.frontier.empty()) {
    std::pop_heap(g.frontier.begin(), g.frontier.end(), kCandidateLess);
    Candidate top = std::move(g.frontier.back());
    g.frontier.pop_back();
    g.produced.push_back(Solution{top.agg, top.entry, top.child_ranks});

    // Successor 1 (Lawler partition over the sorted entry list): the next
    // entry enters the frontier only from the all-zeros rank vector, so each
    // (entry, ranks) pair is generated exactly once.
    const bool all_zero =
        std::all_of(top.child_ranks.begin(), top.child_ranks.end(),
                    [](int r) { return r == 0; });
    if (all_zero && top.entry + 1 < static_cast<int>(g.entries.size())) {
      PushCandidate(node, group,
                    Candidate{g.entries[top.entry + 1].best, top.entry + 1,
                              std::vector<int>(children.size(), 0), 0});
    }
    // Successor 2: bump one child rank at or after the last bumped position
    // (the unique non-decreasing increment path to every rank vector).
    const NodeState& state = nodes_[node];
    const int row = g.entries[top.entry].row;
    for (size_t c = top.last_inc; c < children.size(); ++c) {
      std::vector<datalog::Term> key;
      for (int pos : state.child_key_positions[c]) {
        key.push_back((*state.rows[row])[pos]);
      }
      const int child_group = FindGroup(children[c], key);
      PLANORDER_CHECK_GE(child_group, 0);
      if (GetSolution(children[c], child_group, top.child_ranks[c] + 1) ==
          nullptr) {
        continue;  // that child stream is exhausted at this depth
      }
      std::vector<int> ranks = top.child_ranks;
      ++ranks[c];
      const double agg = CombineAggregate(node, group, top.entry, ranks);
      PushCandidate(node, group,
                    Candidate{agg, top.entry, std::move(ranks),
                              static_cast<int>(c)});
    }
  }
  if (static_cast<int>(g.produced.size()) <= rank) return nullptr;
  return &g.produced[rank];
}

void AnyKEnumerator::BindWitness(
    int node, int group, int rank,
    // detlint: order-insensitive(keyed writes commute; one write per var)
    std::unordered_map<std::string, datalog::Term>& bindings) {
  const NodeState& state = nodes_[node];
  const Solution& solution = state.groups[group].produced[rank];
  const int row = state.groups[group].entries[solution.entry].row;
  // Hash-order iteration is safe: each variable lands at its own key in
  // `bindings`, so the write set is identical under any order.
  // detlint: order-insensitive(keyed writes commute; one write per var)
  for (const auto& [var, pos] : state.var_position) {
    bindings[var] = (*state.rows[row])[pos];
  }
  const std::vector<int>& children = tree_.nodes[node].children;
  for (size_t c = 0; c < children.size(); ++c) {
    std::vector<datalog::Term> key;
    for (int pos : state.child_key_positions[c]) {
      key.push_back((*state.rows[row])[pos]);
    }
    const int child_group = FindGroup(children[c], key);
    PLANORDER_CHECK_GE(child_group, 0);
    BindWitness(children[c], child_group, solution.child_ranks[c], bindings);
  }
}

const RankedAnswer* AnyKEnumerator::Peek() {
  if (peek_valid_) return &peeked_;
  if (root_group_ < 0) return nullptr;
  const Solution* solution = GetSolution(tree_.root, root_group_, next_rank_);
  if (solution == nullptr) return nullptr;
  // detlint: order-insensitive(keyed reads by head-arg name only)
  std::unordered_map<std::string, datalog::Term> bindings;
  BindWitness(tree_.root, root_group_, next_rank_, bindings);
  peeked_.tuple.clear();
  peeked_.tuple.reserve(head_args_.size());
  for (const datalog::Term& arg : head_args_) {
    if (arg.is_variable()) {
      const auto it = bindings.find(arg.name());
      PLANORDER_CHECK(it != bindings.end())
          << "unbound head variable " << arg.name();
      peeked_.tuple.push_back(it->second);
    } else {
      peeked_.tuple.push_back(arg);
    }
  }
  peeked_.weight = solution->agg;
  peek_valid_ = true;
  return &peeked_;
}

StatusOr<RankedAnswer> AnyKEnumerator::Next() {
  if (Peek() == nullptr) {
    return NotFoundError("any-k enumeration exhausted");
  }
  peek_valid_ = false;
  ++next_rank_;
  ++witnesses_emitted_;
  return std::move(peeked_);
}

}  // namespace planorder::anyk
