#include "anyk/ranked_stream.h"

#include <algorithm>
#include <utility>

#include "reformulation/executable_order.h"
#include "reformulation/rewriting.h"

namespace planorder::anyk {

StatusOr<RankedAnswerStream> RankedAnswerStream::Open(
    const datalog::Catalog& catalog, const datalog::ConjunctiveQuery& query,
    const datalog::Database& source_facts,
    const std::vector<std::vector<datalog::SourceId>>& source_ids,
    core::Orderer& orderer, const Options& options) {
  if (options.max_plans <= 0) {
    return InvalidArgumentError("max_plans must be positive");
  }
  RankedAnswerStream stream;
  while (stream.stats_.plans_considered < options.max_plans) {
    auto next = orderer.Next();
    if (!next.ok()) {
      if (next.status().code() == StatusCode::kNotFound) break;
      return next.status();
    }
    ++stream.stats_.plans_considered;
    std::vector<datalog::SourceId> choice(next->plan.size());
    for (size_t b = 0; b < next->plan.size(); ++b) {
      choice[b] = source_ids[b][next->plan[b]];
    }
    PLANORDER_ASSIGN_OR_RETURN(
        auto plan, reformulation::BuildSoundPlan(query, catalog, choice));
    if (!plan.has_value()) {
      orderer.ReportDiscarded();
      continue;
    }
    ++stream.stats_.sound_plans;
    auto ordered = reformulation::FindExecutableOrder(*plan, catalog);
    if (!ordered.ok()) {
      if (ordered.status().code() != StatusCode::kFailedPrecondition) {
        return ordered.status();
      }
      orderer.ReportDiscarded();
      continue;
    }
    // Only the bottom-up DP runs here; enumeration stays lazy.
    PLANORDER_ASSIGN_OR_RETURN(
        auto enumerator,
        AnyKEnumerator::Create(ordered->rewriting, source_facts,
                               options.weights));
    stream.enumerators_.push_back(std::move(enumerator));
    ++stream.stats_.open_plans;
  }
  return stream;
}

void RankedAnswerStream::RefillBatch() {
  batch_.clear();
  batch_pos_ = 0;
  while (batch_.empty()) {
    // The next emission weight is the best frontier weight across all plan
    // streams; since every stream is non-increasing nothing later can beat
    // it.
    bool any = false;
    double best = 0.0;
    for (const std::unique_ptr<AnyKEnumerator>& e : enumerators_) {
      const RankedAnswer* head = e->Peek();
      if (head == nullptr) continue;
      if (!any || head->weight > best) best = head->weight;
      any = true;
    }
    if (!any) return;  // all streams exhausted
    // Drain every answer of exactly that weight from every stream, then
    // canonicalize the batch: lexicographic sort + global dedup. Equal
    // weights compare exactly (dyadic rationals), so the batch boundary is
    // well defined.
    std::vector<RankedAnswer> drained;
    for (const std::unique_ptr<AnyKEnumerator>& e : enumerators_) {
      const RankedAnswer* head;
      while ((head = e->Peek()) != nullptr && head->weight == best) {
        drained.push_back(e->Next().value());
        ++stats_.witnesses_expanded;
      }
    }
    std::sort(drained.begin(), drained.end(),
              [](const RankedAnswer& a, const RankedAnswer& b) {
                return a.tuple < b.tuple;
              });
    for (RankedAnswer& answer : drained) {
      if (seen_.insert(answer.tuple).second) {
        batch_.push_back(std::move(answer));
      }
    }
  }
}

StatusOr<RankedAnswer> RankedAnswerStream::Next() {
  if (done_) return NotFoundError("ranked stream is over");
  if (batch_pos_ >= batch_.size()) RefillBatch();
  if (batch_pos_ >= batch_.size()) {
    done_ = true;
    return NotFoundError("ranked enumeration exhausted");
  }
  ++stats_.answers_emitted;
  return std::move(batch_[batch_pos_++]);
}

}  // namespace planorder::anyk
