#include "anyk/brute_force.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "datalog/builtins.h"

namespace planorder::anyk {

namespace {

/// Best-weight-per-answer accumulator of the oracle: keyed emplace/update
/// during the join, then one drain sorted by RankedBefore (a total order),
/// so hash order never reaches the emitted ranking.
// detlint: order-insensitive(drained via std::sort(RankedBefore) total order)
using BestMap = std::unordered_map<std::vector<datalog::Term>, double,
                                   datalog::TermVectorHash>;

/// Naive backtracking join over the body, accumulating per-answer best
/// weights into a shared map (so the union variant merges for free).
class Matcher {
 public:
  Matcher(const datalog::ConjunctiveQuery& query,
          const datalog::Database& facts, const WeightOptions& options,
          BestMap& best)
      : query_(query), facts_(facts), options_(options), best_(best) {}

  void Run() { Recurse(0, AggregationIdentity(options_.aggregation)); }

 private:
  void Recurse(size_t depth, double agg) {
    if (depth == query_.body.size()) {
      std::vector<datalog::Term> answer;
      answer.reserve(query_.head.args.size());
      for (const datalog::Term& arg : query_.head.args) {
        answer.push_back(arg.is_variable() ? bindings_.at(arg.name()) : arg);
      }
      auto [it, inserted] = best_.emplace(std::move(answer), agg);
      if (!inserted && agg > it->second) it->second = agg;
      return;
    }
    const datalog::Atom& atom = query_.body[depth];
    for (const std::vector<datalog::Term>& row :
         facts_.TuplesFor(atom.predicate)) {
      if (row.size() != atom.args.size()) continue;
      std::vector<std::string> bound_here;
      bool match = true;
      for (size_t pos = 0; pos < atom.args.size() && match; ++pos) {
        const datalog::Term& arg = atom.args[pos];
        if (!arg.is_variable()) {
          match = row[pos] == arg;
          continue;
        }
        const auto it = bindings_.find(arg.name());
        if (it != bindings_.end()) {
          match = it->second == row[pos];
        } else {
          bindings_.emplace(arg.name(), row[pos]);
          bound_here.push_back(arg.name());
        }
      }
      if (match) {
        Recurse(depth + 1,
                AggregationCombine(options_.aggregation, agg,
                                   TupleWeight(options_, row)));
      }
      for (const std::string& var : bound_here) bindings_.erase(var);
    }
  }

  const datalog::ConjunctiveQuery& query_;
  const datalog::Database& facts_;
  const WeightOptions& options_;
  // detlint: order-insensitive(keyed lookup/erase during backtracking only)
  std::unordered_map<std::string, datalog::Term> bindings_;
  BestMap& best_;
};

Status ValidateForRanking(const datalog::ConjunctiveQuery& query) {
  PLANORDER_RETURN_IF_ERROR(query.ValidateSafety());
  if (query.body.empty()) {
    return InvalidArgumentError("ranked oracle needs a non-empty body");
  }
  for (const datalog::Term& arg : query.head.args) {
    if (!arg.is_variable() && !arg.IsGround()) {
      return UnimplementedError(
          "ranked oracle does not support non-ground function terms");
    }
  }
  for (const datalog::Atom& atom : query.body) {
    if (datalog::IsComparisonAtom(atom)) {
      return UnimplementedError(
          "ranked oracle does not support interpreted comparison atoms");
    }
    for (const datalog::Term& arg : atom.args) {
      if (!arg.is_variable() && !arg.IsGround()) {
        return UnimplementedError(
            "ranked oracle does not support non-ground function terms");
      }
    }
  }
  return OkStatus();
}

std::vector<RankedAnswer> SortedAnswers(BestMap& best) {
  std::vector<RankedAnswer> answers;
  answers.reserve(best.size());
  for (auto& [tuple, weight] : best) {
    answers.push_back(RankedAnswer{tuple, weight});
  }
  std::sort(answers.begin(), answers.end(), RankedBefore);
  return answers;
}

}  // namespace

StatusOr<std::vector<RankedAnswer>> BruteForceRankedAnswers(
    const datalog::ConjunctiveQuery& query, const datalog::Database& facts,
    const WeightOptions& options) {
  return BruteForceRankedUnion({query}, facts, options);
}

StatusOr<std::vector<RankedAnswer>> BruteForceRankedUnion(
    const std::vector<datalog::ConjunctiveQuery>& queries,
    const datalog::Database& facts, const WeightOptions& options) {
  BestMap best;
  for (const datalog::ConjunctiveQuery& query : queries) {
    PLANORDER_RETURN_IF_ERROR(ValidateForRanking(query));
    Matcher(query, facts, options, best).Run();
  }
  return SortedAnswers(best);
}

}  // namespace planorder::anyk
