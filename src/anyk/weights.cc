#include "anyk/weights.h"

#include <cmath>
#include <limits>

#include "base/logging.h"

namespace planorder::anyk {

std::string AggregationName(Aggregation aggregation) {
  switch (aggregation) {
    case Aggregation::kSum:
      return "sum";
    case Aggregation::kMax:
      return "max";
  }
  return "unknown";
}

StatusOr<Aggregation> AggregationFromName(const std::string& name) {
  if (name == "sum") return Aggregation::kSum;
  if (name == "max") return Aggregation::kMax;
  return InvalidArgumentError("unknown aggregation '" + name + "'");
}

namespace {

/// splitmix64: the standard 64-bit finalizer-style mixer. Local copy so the
/// weight function stays a leaf dependency (base + datalog only).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool IsPowerOfTwo(double value) {
  if (!(value > 0.0) || !std::isfinite(value)) return false;
  int exponent = 0;
  return std::frexp(value, &exponent) == 0.5;
}

}  // namespace

double TupleWeight(const WeightOptions& options,
                   const std::vector<datalog::Term>& tuple) {
  PLANORDER_CHECK(IsPowerOfTwo(options.scale))
      << "WeightOptions::scale must be a positive power of two, got "
      << options.scale;
  size_t content = 0x9e3779b97f4a7c15ull;
  for (const datalog::Term& term : tuple) term.HashInto(content);
  const uint64_t mixed = Mix64(Mix64(options.seed) ^ uint64_t(content));
  // Top 20 bits -> k * 2^-20: a dyadic rational whose sums stay exact in
  // IEEE double up to millions of addends (see WeightOptions).
  const uint64_t quantized = mixed >> 44;
  return double(quantized) * std::ldexp(1.0, -20) * options.scale;
}

double AggregationIdentity(Aggregation aggregation) {
  switch (aggregation) {
    case Aggregation::kSum:
      return 0.0;
    case Aggregation::kMax:
      return -std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

double AggregationCombine(Aggregation aggregation, double a, double b) {
  switch (aggregation) {
    case Aggregation::kSum:
      return a + b;
    case Aggregation::kMax:
      return a > b ? a : b;
  }
  return a;
}

}  // namespace planorder::anyk
