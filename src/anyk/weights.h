#ifndef PLANORDER_ANYK_WEIGHTS_H_
#define PLANORDER_ANYK_WEIGHTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "datalog/term.h"

namespace planorder::anyk {

/// Monotone aggregation of per-tuple weights into a join-result weight. Both
/// are commutative monoids whose combine is monotone in each argument, the
/// property the any-k successor generation relies on (replacing a subtree
/// solution with a lower-weighted one never raises the aggregate).
enum class Aggregation {
  kSum,  // answer weight = sum of its witness tuples' weights
  kMax,  // answer weight = best single witness tuple weight
};

/// Stable name ("sum"/"max") and its inverse.
std::string AggregationName(Aggregation aggregation);
StatusOr<Aggregation> AggregationFromName(const std::string& name);

/// Per-tuple weight assignment for ranked (any-k) enumeration.
///
/// A weight is a pure content hash of (seed, tuple constants): every source
/// shipping the same tuple agrees on its weight, which is what makes the
/// answer weight well-defined across plans (different rewritings joining the
/// same underlying tuples aggregate identical values) and makes relabeling
/// sources a no-op for ranked emission.
///
/// Determinism contract: raw weights are dyadic rationals k * 2^-20 with
/// k < 2^20, so IEEE-double sums of up to ~2^26 tuples are exact and
/// associativity holds bit-for-bit — the DP over the join tree, the lazy
/// enumerator and the brute-force oracle all compute identical weight bits
/// no matter how they parenthesize the aggregation. `scale` must be a power
/// of two (exact multiply) — the metamorphic monotone-transform knob.
struct WeightOptions {
  uint64_t seed = 1;
  Aggregation aggregation = Aggregation::kSum;
  /// Power-of-two multiplier applied to every tuple weight (checked by
  /// TupleWeight; 1.0 = raw weights in [0, 1)).
  double scale = 1.0;
};

/// The weight of one ground tuple: a dyadic rational in [0, scale) derived by
/// content-hashing the tuple under `options.seed`. Pure function of its
/// arguments; independent of source name, predicate name and container
/// order.
double TupleWeight(const WeightOptions& options,
                   const std::vector<datalog::Term>& tuple);

/// The aggregation's identity element (0 for sum, -inf for max).
double AggregationIdentity(Aggregation aggregation);

/// Combines two aggregates (a + b for sum, max(a, b) for max).
double AggregationCombine(Aggregation aggregation, double a, double b);

/// One ranked answer: a head instantiation and its (best-witness) weight.
struct RankedAnswer {
  std::vector<datalog::Term> tuple;
  double weight = 0.0;

  friend bool operator==(const RankedAnswer& a, const RankedAnswer& b) {
    return a.weight == b.weight && a.tuple == b.tuple;
  }
};

/// The canonical ranked emission order: weight descending, ties broken by
/// tuple lexicographically ascending. Shared by the brute-force oracle and
/// the ranked frontier merge so both produce byte-identical sequences.
inline bool RankedBefore(const RankedAnswer& a, const RankedAnswer& b) {
  if (a.weight != b.weight) return a.weight > b.weight;
  return a.tuple < b.tuple;
}

}  // namespace planorder::anyk

#endif  // PLANORDER_ANYK_WEIGHTS_H_
