#include "cluster/source_cache.h"

#include <utility>

#include "base/logging.h"
#include "runtime/retry_policy.h"

namespace planorder::cluster {

namespace {

// Independent digest salts: two 64-bit content hashes of the same call under
// different domains, so a collision requires both to collide at once.
constexpr uint64_t kDigestSaltA = 0x736f757263656331ULL;
constexpr uint64_t kDigestSaltB = 0x736f757263656332ULL;

uint64_t BatchDigest(uint64_t salt,
                     const std::vector<std::map<int, datalog::Term>>& batch) {
  uint64_t h = runtime::MixHash(salt);
  for (const auto& bindings : batch) {
    uint64_t combo = 0x42;
    for (const auto& [position, value] : bindings) {
      combo = runtime::CombineHash(combo, uint64_t(position));
      combo = runtime::CombineHash(combo,
                                   runtime::HashString(value.ToString()));
    }
    h = runtime::CombineHash(h, combo);
  }
  return h;
}

}  // namespace

SourceOperationCache::Key SourceOperationCache::MakeKey(
    const std::string& source_name,
    const std::vector<std::map<int, datalog::Term>>& batch) {
  return Key(source_name, BatchDigest(kDigestSaltA, batch),
             BatchDigest(kDigestSaltB, batch));
}

int64_t SourceOperationCache::ApproxBytes(
    const std::vector<std::vector<datalog::Term>>& rows) {
  // Entry overhead plus per-row and per-term footprints; approximate by
  // rendered term size, which tracks payload growth well enough for a bound.
  int64_t bytes = 64;
  for (const std::vector<datalog::Term>& row : rows) {
    bytes += 24;
    for (const datalog::Term& term : row) {
      bytes += 16 + static_cast<int64_t>(term.ToString().size());
    }
  }
  return bytes;
}

std::optional<std::vector<std::vector<datalog::Term>>>
SourceOperationCache::Acquire(
    const std::string& source_name,
    const std::vector<std::map<int, datalog::Term>>& batch, bool* leader) {
  const Key key = MakeKey(source_name, batch);
  *leader = false;
  MutexLock lock(mu_);
  while (true) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      // Miss: this caller leads the fetch. The placeholder entry makes every
      // concurrent Acquire for the key wait instead of fetching again.
      auto entry = std::make_shared<Entry>();
      entries_.emplace(key, entry);
      ++stats_.misses;
      *leader = true;
      return std::nullopt;
    }
    std::shared_ptr<Entry> entry = it->second;
    if (entry->state == Entry::State::kResident) {
      ++stats_.hits;
      // Refresh recency (the entry may have been evicted between a publish
      // and a waiter waking up; then it is served but no longer listed).
      if (entries_.count(key) != 0) {
        lru_.splice(lru_.begin(), lru_, entry->lru_pos);
      }
      return entry->rows;
    }
    // In flight: wait for the leader to publish or abort. On abort the
    // leader removed the entry, so the loop re-runs find() and one waiter
    // becomes the new leader — a permanently failing source fails each
    // caller's own fetch instead of wedging the key forever.
    ++stats_.single_flight_waits;
    std::shared_ptr<Entry> waited = entry;
    resolved_.Wait(lock,
                   [&] { return waited->state != Entry::State::kFetching; });
    if (waited->state == Entry::State::kResident) {
      ++stats_.hits;
      return waited->rows;
    }
  }
}

void SourceOperationCache::Publish(
    const std::string& source_name,
    const std::vector<std::map<int, datalog::Term>>& batch,
    const std::vector<std::vector<datalog::Term>>& rows) {
  const Key key = MakeKey(source_name, batch);
  {
    MutexLock lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end() || it->second->state != Entry::State::kFetching) {
      return;  // not the leader's placeholder; nothing to publish into
    }
    std::shared_ptr<Entry> entry = it->second;
    entry->rows = rows;
    entry->bytes = ApproxBytes(rows);
    entry->state = Entry::State::kResident;
    lru_.push_front(key);
    entry->lru_pos = lru_.begin();
    ++stats_.insertions;
    stats_.resident_bytes += entry->bytes;
    ++stats_.resident_entries;
    ++resident_by_name_[source_name];
    EvictToFit();
  }
  resolved_.NotifyAll();
}

void SourceOperationCache::Abort(
    const std::string& source_name,
    const std::vector<std::map<int, datalog::Term>>& batch) {
  const Key key = MakeKey(source_name, batch);
  {
    MutexLock lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end() || it->second->state != Entry::State::kFetching) {
      return;
    }
    it->second->state = Entry::State::kAborted;
    entries_.erase(it);
  }
  resolved_.NotifyAll();
}

bool SourceOperationCache::IsResident(const std::string& source_name) const {
  MutexLock lock(mu_);
  auto it = resident_by_name_.find(source_name);
  return it != resident_by_name_.end() && it->second > 0;
}

runtime::SourceResultCacheStats SourceOperationCache::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void SourceOperationCache::RemoveResident(const Key& key,
                                          std::shared_ptr<Entry> entry) {
  lru_.erase(entry->lru_pos);
  stats_.resident_bytes -= entry->bytes;
  --stats_.resident_entries;
  auto by_name = resident_by_name_.find(std::get<0>(key));
  if (by_name != resident_by_name_.end() && --by_name->second <= 0) {
    resident_by_name_.erase(by_name);
  }
  entries_.erase(key);
}

void SourceOperationCache::EvictToFit() {
  if (options_.capacity_bytes <= 0) return;
  while (stats_.resident_bytes > options_.capacity_bytes && !lru_.empty()) {
    const Key victim = lru_.back();
    auto it = entries_.find(victim);
    PLANORDER_CHECK(it != entries_.end());
    std::shared_ptr<Entry> entry = it->second;
    RemoveResident(victim, std::move(entry));
    ++stats_.evictions;
  }
}

}  // namespace planorder::cluster
