#ifndef PLANORDER_CLUSTER_SOURCE_CACHE_H_
#define PLANORDER_CLUSTER_SOURCE_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "runtime/source_result_cache.h"
#include "service/shared_view.h"

namespace planorder::cluster {

/// Configuration of a SourceOperationCache.
struct SourceCacheOptions {
  /// Approximate bound on resident payload bytes; eviction walks the LRU
  /// tail until the cache fits. <= 0 means unbounded.
  int64_t capacity_bytes = 1 << 20;
};

/// The cross-session source-operation result cache of the cluster layer
/// (DESIGN.md §10): one instance shared by every shard's sessions through
/// two narrow interfaces —
///
///  - runtime::SourceResultCache, consulted by RemoteSource on the fetch
///    path: a resident entry is served with zero simulated latency, a miss
///    elects a single-flight leader so concurrent sessions touching the same
///    (source, binding-pattern, inputs) operation coalesce onto one fetch;
///  - service::SharedOperationView, polled by every session's orderer before
///    each plan emission: resident sources are charged zero residual cost by
///    the Section 6 caching measures, so one session's fetch changes the
///    conditional utilities of every other session's remaining plans.
///
/// Keys are the full call content: the source name, the set of bound
/// positions and every binding value, folded into two independently salted
/// 64-bit digests (a 128-bit effective key; collisions are negligible and
/// never fabricated answers anyway, since any two calls with equal content
/// are interchangeable by AccessibleSource determinism). Residency for the
/// view is aggregated per source name — the granularity the utility models
/// resolve (see shared_view.h).
///
/// Bounded by approximate payload bytes with LRU eviction: a hit refreshes
/// recency, Publish inserts at the front and evicts from the tail. All state
/// lives in ordered containers (std::map / std::list), so iteration order
/// can never leak hash-table nondeterminism into any output.
///
/// Thread-safe. Waiting is purely on the single-flight protocol: Acquire
/// blocks only while another caller's fetch for the same key is in flight.
class SourceOperationCache : public runtime::SourceResultCache,
                             public service::SharedOperationView {
 public:
  explicit SourceOperationCache(const SourceCacheOptions& options = {})
      : options_(options) {}

  SourceOperationCache(const SourceOperationCache&) = delete;
  SourceOperationCache& operator=(const SourceOperationCache&) = delete;

  // runtime::SourceResultCache:
  std::optional<std::vector<std::vector<datalog::Term>>> Acquire(
      const std::string& source_name,
      const std::vector<std::map<int, datalog::Term>>& batch,
      bool* leader) override EXCLUDES(mu_);
  void Publish(const std::string& source_name,
               const std::vector<std::map<int, datalog::Term>>& batch,
               const std::vector<std::vector<datalog::Term>>& rows) override
      EXCLUDES(mu_);
  void Abort(const std::string& source_name,
             const std::vector<std::map<int, datalog::Term>>& batch) override
      EXCLUDES(mu_);

  // service::SharedOperationView:
  bool IsResident(const std::string& source_name) const override EXCLUDES(mu_);

  runtime::SourceResultCacheStats stats() const EXCLUDES(mu_);

 private:
  /// (source name, two independent content digests) — the effective key.
  using Key = std::tuple<std::string, uint64_t, uint64_t>;

  struct Entry {
    enum class State { kFetching, kResident, kAborted };
    State state = State::kFetching;
    std::vector<std::vector<datalog::Term>> rows;
    int64_t bytes = 0;
    /// Position in lru_ while resident.
    std::list<Key>::iterator lru_pos;
  };

  static Key MakeKey(const std::string& source_name,
                     const std::vector<std::map<int, datalog::Term>>& batch);
  static int64_t ApproxBytes(
      const std::vector<std::vector<datalog::Term>>& rows);

  /// Removes LRU-tail entries until the byte bound holds.
  void EvictToFit() REQUIRES(mu_);
  void RemoveResident(const Key& key, std::shared_ptr<Entry> entry)
      REQUIRES(mu_);

  const SourceCacheOptions options_;
  mutable Mutex mu_;
  CondVar resolved_;
  /// Resident and in-flight entries. Ordered map: keyed lookup plus
  /// deterministic iteration if anyone ever walks it.
  std::map<Key, std::shared_ptr<Entry>> entries_ GUARDED_BY(mu_);
  /// Resident keys, most recently used first.
  std::list<Key> lru_ GUARDED_BY(mu_);
  /// Resident entry count per source name, backing IsResident.
  std::map<std::string, int> resident_by_name_ GUARDED_BY(mu_);
  runtime::SourceResultCacheStats stats_ GUARDED_BY(mu_);
};

}  // namespace planorder::cluster

#endif  // PLANORDER_CLUSTER_SOURCE_CACHE_H_
