#ifndef PLANORDER_CLUSTER_SHARDED_SERVICE_H_
#define PLANORDER_CLUSTER_SHARDED_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "adaptive/plan_store.h"
#include "base/logging.h"
#include "cluster/source_cache.h"
#include "service/query_service.h"

namespace planorder::cluster {

/// Configuration of a ShardedService.
struct ClusterOptions {
  /// Number of QueryService shards; sessions hash over them by canonical
  /// query form.
  int num_shards = 2;
  /// Per-shard service configuration: every shard gets its own admission
  /// slots, queue, eval pool and reformulation cache built from this
  /// template (so total capacity scales with num_shards).
  service::ServiceOptions shard;
  /// The shared cross-session source-operation cache (borrowed, may be
  /// null). When set it is installed as every shard's
  /// ServiceOptions::source_cache_view; the caller wires the same cache into
  /// the fetch path via runtime::RuntimeOptions::source_cache.
  SourceOperationCache* source_cache = nullptr;

  /// When non-empty, each shard gets its own persistent plan/stats store at
  /// `<plan_store_dir>/shard_<i>.planstore` (DESIGN.md §12): warm restarts
  /// reload every shard's reformulation cache and learned statistics, and
  /// PersistAll() flushes them on demand. The directory must already exist.
  /// Because routing is deterministic (canonical-form hash mod num_shards),
  /// a restart with the same num_shards finds each query class's entries on
  /// its home shard. Empty = persistence disabled.
  std::string plan_store_dir;
};

/// The cluster front end (DESIGN.md §10): N independent QueryService shards
/// behind one routing function. A query is canonicalized and routed by
/// canonical-form hash, so isomorphic queries land on the same shard and
/// keep its reformulation cache hot, while distinct query classes spread
/// across shards' admission slots and eval pools. The one piece of state
/// crossing shards is the source-operation result cache: any session's fetch
/// makes that operation free for every session on every shard — both on the
/// wire (single-flight, zero latency) and in the orderers' utility models
/// (zero residual cost).
///
/// Thread-safe exactly as QueryService is: all routing state is immutable
/// after construction.
class ShardedService {
 public:
  /// `catalog` and `source_facts` must outlive the service. `executor`
  /// (optional, borrowed) is shared by all shards — runtime::SourceRuntime
  /// is thread-safe; nullptr means per-shard set-oriented evaluation.
  ShardedService(const datalog::Catalog* catalog,
                 const datalog::Database* source_facts, ClusterOptions options,
                 exec::PlanExecutor* executor = nullptr);

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// The shard `query` routes to: canonical-form hash modulo num_shards.
  /// Isomorphic queries always agree.
  int ShardFor(const datalog::ConjunctiveQuery& query) const;

  service::QueryService& shard(int index) {
    PLANORDER_CHECK_GE(index, 0);
    PLANORDER_CHECK_LT(index, num_shards());
    return *shards_[static_cast<size_t>(index)];
  }

  /// QueryService::OpenSession / RunQuery on the query's home shard
  /// (including its admission control — a full shard sheds even if others
  /// are idle; the load harness measures exactly this).
  StatusOr<std::unique_ptr<service::Session>> OpenSession(
      const datalog::ConjunctiveQuery& query,
      const exec::Mediator::RunLimits& limits);
  StatusOr<exec::MediatorResult> RunQuery(
      const datalog::ConjunctiveQuery& query,
      const exec::Mediator::RunLimits& limits);

  /// Each shard's own metrics snapshot, in shard order.
  std::vector<service::ServiceMetricsSnapshot> PerShardMetrics() const;

  /// Cluster-wide aggregate: counters summed, queue depths summed, peaks
  /// maxed, and the latency percentiles recomputed *exactly* over the union
  /// of every shard's raw samples (LatencyHistogram::Merge) — never by
  /// averaging per-shard percentiles.
  service::ServiceMetricsSnapshot MergedMetrics() const;

  /// The shared source cache, or null when none was configured.
  SourceOperationCache* source_cache() const { return options_.source_cache; }

  /// Flushes every shard's reformulation cache + learned statistics to its
  /// plan store (shutdown checkpoint). kFailedPrecondition when
  /// plan_store_dir was empty; otherwise the first shard-save error, with
  /// the remaining shards still attempted.
  Status PersistAll();

 private:
  ClusterOptions options_;
  /// Per-shard persistent stores (parallel to shards_); empty when
  /// plan_store_dir is empty. Declared before shards_ so each store outlives
  /// the QueryService borrowing it.
  std::vector<std::unique_ptr<adaptive::PlanStore>> stores_;
  std::vector<std::unique_ptr<service::QueryService>> shards_;
};

}  // namespace planorder::cluster

#endif  // PLANORDER_CLUSTER_SHARDED_SERVICE_H_
