#include "cluster/sharded_service.h"

#include <utility>

#include "datalog/canonicalize.h"

namespace planorder::cluster {

ShardedService::ShardedService(const datalog::Catalog* catalog,
                               const datalog::Database* source_facts,
                               ClusterOptions options,
                               exec::PlanExecutor* executor)
    : options_(std::move(options)) {
  PLANORDER_CHECK_GE(options_.num_shards, 1);
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    service::ServiceOptions shard_options = options_.shard;
    if (options_.source_cache != nullptr) {
      shard_options.source_cache_view = options_.source_cache;
    }
    if (!options_.plan_store_dir.empty()) {
      stores_.push_back(std::make_unique<adaptive::PlanStore>(
          options_.plan_store_dir + "/shard_" + std::to_string(i) +
          ".planstore"));
      shard_options.plan_store = stores_.back().get();
    }
    shards_.push_back(std::make_unique<service::QueryService>(
        catalog, source_facts, std::move(shard_options), executor));
  }
}

Status ShardedService::PersistAll() {
  if (stores_.empty()) {
    return FailedPreconditionError(
        "PersistAll: no plan_store_dir configured");
  }
  Status first_error = OkStatus();
  for (const std::unique_ptr<service::QueryService>& shard : shards_) {
    Status status = shard->PersistPlanStore();
    if (!status.ok() && first_error.ok()) first_error = std::move(status);
  }
  return first_error;
}

int ShardedService::ShardFor(const datalog::ConjunctiveQuery& query) const {
  // Canonical-form hash: isomorphic queries collapse to one canonical query
  // (datalog/canonicalize.h), so every member of an isomorphism class routes
  // to the same shard and shares its reformulation cache entry.
  const datalog::CanonicalQuery canonical = datalog::CanonicalizeQuery(query);
  return static_cast<int>(canonical.hash %
                          static_cast<uint64_t>(shards_.size()));
}

StatusOr<std::unique_ptr<service::Session>> ShardedService::OpenSession(
    const datalog::ConjunctiveQuery& query,
    const exec::Mediator::RunLimits& limits) {
  return shards_[static_cast<size_t>(ShardFor(query))]->OpenSession(query,
                                                                    limits);
}

StatusOr<exec::MediatorResult> ShardedService::RunQuery(
    const datalog::ConjunctiveQuery& query,
    const exec::Mediator::RunLimits& limits) {
  return shards_[static_cast<size_t>(ShardFor(query))]->RunQuery(query,
                                                                 limits);
}

std::vector<service::ServiceMetricsSnapshot> ShardedService::PerShardMetrics()
    const {
  std::vector<service::ServiceMetricsSnapshot> snapshots;
  snapshots.reserve(shards_.size());
  for (const std::unique_ptr<service::QueryService>& shard : shards_) {
    snapshots.push_back(shard->Metrics());
  }
  return snapshots;
}

service::ServiceMetricsSnapshot ShardedService::MergedMetrics() const {
  service::ServiceMetricsSnapshot merged;
  service::LatencyHistogram all;
  for (const std::unique_ptr<service::QueryService>& shard : shards_) {
    merged.Merge(shard->Metrics());
    all.Merge(shard->latency_histogram());
  }
  // Exact percentiles over the union of all shards' samples — the one part
  // of a snapshot that cannot be derived from per-shard snapshots.
  merged.latency_count = all.count();
  merged.latency_p50_ms = all.Percentile(50.0);
  merged.latency_p95_ms = all.Percentile(95.0);
  merged.latency_p99_ms = all.Percentile(99.0);
  merged.latency_max_ms = all.max_ms();
  return merged;
}

}  // namespace planorder::cluster
