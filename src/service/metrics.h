#ifndef PLANORDER_SERVICE_METRICS_H_
#define PLANORDER_SERVICE_METRICS_H_

#include <cstdint>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "exec/mediator.h"
#include "service/reformulation_cache.h"

namespace planorder::service {

/// Reservoir-free latency recorder: keeps every sample (service runs are
/// bounded to thousands of sessions, not millions) and computes exact
/// percentiles on demand. Thread-safe.
class LatencyHistogram {
 public:
  void Record(double ms) EXCLUDES(mu_);

  /// Exact percentile by nearest-rank over the recorded samples; 0.0 when
  /// empty. `p` in [0, 100].
  double Percentile(double p) const EXCLUDES(mu_);

  size_t count() const EXCLUDES(mu_);
  double max_ms() const EXCLUDES(mu_);
  double total_ms() const EXCLUDES(mu_);

  /// Folds `other`'s samples into this histogram. Because every sample is
  /// kept, the merged percentiles are *exact* over the union — identical to
  /// recording all samples into one histogram — which is what shard-level
  /// aggregation needs (percentiles of per-shard snapshots cannot be merged;
  /// raw samples can). Safe against concurrent Records on either side;
  /// `other`'s samples are snapshotted first so the two locks never nest.
  void Merge(const LatencyHistogram& other) EXCLUDES(mu_);

  /// Copy of the raw samples, in record order.
  std::vector<double> Samples() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::vector<double> samples_ GUARDED_BY(mu_);
  double max_ms_ GUARDED_BY(mu_) = 0.0;
  double total_ms_ GUARDED_BY(mu_) = 0.0;
};

/// Point-in-time service counters, safe to read while sessions run.
struct ServiceMetricsSnapshot {
  // Admission control.
  int64_t sessions_admitted = 0;
  int64_t sessions_completed = 0;
  /// Rejected with kResourceExhausted (queue full or admission deadline).
  int64_t sessions_shed = 0;
  /// Sessions that waited in the admission queue before a slot opened.
  int64_t sessions_queued = 0;
  int active_sessions = 0;
  int queue_depth = 0;
  int queue_depth_peak = 0;

  // Reformulation cache.
  ReformulationCache::Stats cache;
  int64_t canonicalizations = 0;
  /// Containment-based equivalence checks run on cache hits (when
  /// ServiceOptions::verify_cache_hits is set), and how many failed — a
  /// failure means the canonical key matched a non-equivalent query and the
  /// hit was demoted to a miss. Zero failures expected in practice.
  int64_t cache_verifications = 0;
  int64_t cache_verification_failures = 0;

  // End-to-end session latency (admission to Finish), milliseconds.
  size_t latency_count = 0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;

  // Plan-store persistence (ServiceOptions::plan_store).
  /// Reformulations restored from the store at construction (warm start).
  int64_t plan_store_entries_loaded = 0;
  /// Stores rejected at load (corruption, version/catalog mismatch) — each
  /// one is a survived cold start, not a crash.
  int64_t plan_store_load_failures = 0;
  int64_t plan_store_saves = 0;

  // Mediation totals across completed sessions.
  int64_t total_answers = 0;
  int64_t total_steps = 0;
  /// Aggregated resilient-runtime accounting of all completed sessions.
  exec::RuntimeAccounting runtime;

  /// Counter-wise sum with `other`: counts add, gauges/peaks take the max,
  /// cache and runtime accounting merge. Latency *percentiles* are NOT
  /// merged (percentiles of percentiles are meaningless) — latency_count,
  /// max and the merged percentiles must be recomputed from the raw
  /// histograms (LatencyHistogram::Merge); ShardedService::MergedMetrics
  /// does exactly that. This member only folds the countable fields and
  /// leaves the latency_* fields untouched.
  void Merge(const ServiceMetricsSnapshot& other) {
    sessions_admitted += other.sessions_admitted;
    sessions_completed += other.sessions_completed;
    sessions_shed += other.sessions_shed;
    sessions_queued += other.sessions_queued;
    active_sessions += other.active_sessions;
    queue_depth += other.queue_depth;
    if (other.queue_depth_peak > queue_depth_peak) {
      queue_depth_peak = other.queue_depth_peak;
    }
    cache.hits += other.cache.hits;
    cache.misses += other.cache.misses;
    cache.collisions += other.cache.collisions;
    cache.containment_hits += other.cache.containment_hits;
    cache.evictions += other.cache.evictions;
    cache.insertions += other.cache.insertions;
    cache.size += other.cache.size;
    cache.capacity += other.cache.capacity;
    canonicalizations += other.canonicalizations;
    cache_verifications += other.cache_verifications;
    cache_verification_failures += other.cache_verification_failures;
    plan_store_entries_loaded += other.plan_store_entries_loaded;
    plan_store_load_failures += other.plan_store_load_failures;
    plan_store_saves += other.plan_store_saves;
    total_answers += other.total_answers;
    total_steps += other.total_steps;
    runtime.Merge(other.runtime);
  }
};

}  // namespace planorder::service

#endif  // PLANORDER_SERVICE_METRICS_H_
