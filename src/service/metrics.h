#ifndef PLANORDER_SERVICE_METRICS_H_
#define PLANORDER_SERVICE_METRICS_H_

#include <cstdint>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "exec/mediator.h"
#include "service/reformulation_cache.h"

namespace planorder::service {

/// Reservoir-free latency recorder: keeps every sample (service runs are
/// bounded to thousands of sessions, not millions) and computes exact
/// percentiles on demand. Thread-safe.
class LatencyHistogram {
 public:
  void Record(double ms) EXCLUDES(mu_);

  /// Exact percentile by nearest-rank over the recorded samples; 0.0 when
  /// empty. `p` in [0, 100].
  double Percentile(double p) const EXCLUDES(mu_);

  size_t count() const EXCLUDES(mu_);
  double max_ms() const EXCLUDES(mu_);
  double total_ms() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::vector<double> samples_ GUARDED_BY(mu_);
  double max_ms_ GUARDED_BY(mu_) = 0.0;
  double total_ms_ GUARDED_BY(mu_) = 0.0;
};

/// Point-in-time service counters, safe to read while sessions run.
struct ServiceMetricsSnapshot {
  // Admission control.
  int64_t sessions_admitted = 0;
  int64_t sessions_completed = 0;
  /// Rejected with kResourceExhausted (queue full or admission deadline).
  int64_t sessions_shed = 0;
  /// Sessions that waited in the admission queue before a slot opened.
  int64_t sessions_queued = 0;
  int active_sessions = 0;
  int queue_depth = 0;
  int queue_depth_peak = 0;

  // Reformulation cache.
  ReformulationCache::Stats cache;
  int64_t canonicalizations = 0;
  /// Containment-based equivalence checks run on cache hits (when
  /// ServiceOptions::verify_cache_hits is set), and how many failed — a
  /// failure means the canonical key matched a non-equivalent query and the
  /// hit was demoted to a miss. Zero failures expected in practice.
  int64_t cache_verifications = 0;
  int64_t cache_verification_failures = 0;

  // End-to-end session latency (admission to Finish), milliseconds.
  size_t latency_count = 0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;

  // Mediation totals across completed sessions.
  int64_t total_answers = 0;
  int64_t total_steps = 0;
  /// Aggregated resilient-runtime accounting of all completed sessions.
  exec::RuntimeAccounting runtime;
};

}  // namespace planorder::service

#endif  // PLANORDER_SERVICE_METRICS_H_
