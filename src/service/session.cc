#include "service/session.h"

#include <utility>

#include "service/query_service.h"

namespace planorder::service {

Session::Session(QueryService* service,
                 std::shared_ptr<const CachedReformulation> reformulation,
                 bool cache_hit)
    : service_(service),
      reformulation_(std::move(reformulation)),
      cache_hit_(cache_hit),
      admitted_at_ms_(service->clock_->NowMs()) {}

Session::~Session() { Finish(); }

void Session::RefreshResidency() {
  const SharedOperationView* view = service_->options_.source_cache_view;
  if (view == nullptr || orderer_ == nullptr) return;
  for (size_t b = 0; b < source_names_.size(); ++b) {
    for (size_t i = 0; i < source_names_[b].size(); ++i) {
      orderer_->SetExternallyCached(static_cast<int>(b), static_cast<int>(i),
                                    view->IsResident(source_names_[b][i]));
    }
  }
}

StatusOr<exec::MediatorStep> Session::NextStep() {
  if (finished_ || !stream_.has_value()) {
    return NotFoundError("session is finished");
  }
  // Pull the cross-session cache state forward before the orderer picks the
  // next plan: another session's fetch since our last step may have zeroed
  // the residual cost of some source operations, which changes the
  // conditional utilities this emission must be ranked under.
  if (service_->options_.refresh_source_cache_view) RefreshResidency();
  if (service_->options_.record_residency_snapshots &&
      service_->options_.source_cache_view != nullptr) {
    std::vector<std::vector<char>> snapshot =
        orderer_->context().external_residency();
    residency_history_.push_back(std::move(snapshot));
  }
  return stream_->NextStep();
}

StatusOr<anyk::RankedAnswer> Session::NextRankedAnswer() {
  if (finished_ || !ranked_.has_value()) {
    return NotFoundError("session has no open ranked stream");
  }
  return ranked_->Next();
}

exec::MediatorResult Session::Finish() {
  if (finished_) return {};
  finished_ = true;
  exec::MediatorResult result;
  const double elapsed_ms = service_->clock_->NowMs() - admitted_at_ms_;
  if (stream_.has_value()) {
    result = stream_->TakeResult();
    service_->OnSessionFinished(result, elapsed_ms);
  } else if (ranked_.has_value()) {
    // Ranked sessions fold into the same service metrics: the emitted
    // distinct answers and the sound-plan count are directly comparable.
    result.total_answers = ranked_->stats().answers_emitted;
    result.sound_plans = ranked_->stats().sound_plans;
    service_->OnSessionFinished(result, elapsed_ms);
  }
  // A session that never received its stream (service-side construction
  // failure) still held a slot; either way the slot goes back.
  service_->Release();
  return result;
}

const exec::MediatorResult& Session::progress() const {
  static const exec::MediatorResult kEmpty;
  return stream_.has_value() ? stream_->result() : kEmpty;
}

exec::RuntimeAccounting Session::RuntimeSnapshot() const {
  return progress().runtime;
}

std::vector<std::vector<datalog::Term>> Session::Answers() const {
  std::vector<std::vector<datalog::Term>> tuples;
  if (!stream_.has_value()) return tuples;
  tuples.reserve(stream_->answers().size());
  for (const std::vector<datalog::Term>& tuple : stream_->answers()) {
    tuples.push_back(tuple);
  }
  return tuples;
}

}  // namespace planorder::service
