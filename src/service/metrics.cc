#include "service/metrics.h"

#include <algorithm>
#include <cmath>

namespace planorder::service {

void LatencyHistogram::Record(double ms) {
  MutexLock lock(mu_);
  samples_.push_back(ms);
  total_ms_ += ms;
  if (ms > max_ms_) max_ms_ = ms;
}

double LatencyHistogram::Percentile(double p) const {
  MutexLock lock(mu_);
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  // Nearest-rank: the smallest sample with at least p% of the mass at or
  // below it.
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  // Snapshot first, then fold: never hold both locks at once (a pair of
  // cross-merging histograms would deadlock under nested locking).
  std::vector<double> theirs = other.Samples();
  MutexLock lock(mu_);
  for (const double ms : theirs) {
    samples_.push_back(ms);
    total_ms_ += ms;
    if (ms > max_ms_) max_ms_ = ms;
  }
}

std::vector<double> LatencyHistogram::Samples() const {
  MutexLock lock(mu_);
  return samples_;
}

size_t LatencyHistogram::count() const {
  MutexLock lock(mu_);
  return samples_.size();
}

double LatencyHistogram::max_ms() const {
  MutexLock lock(mu_);
  return max_ms_;
}

double LatencyHistogram::total_ms() const {
  MutexLock lock(mu_);
  return total_ms_;
}

}  // namespace planorder::service
