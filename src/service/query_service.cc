#include "service/query_service.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/idrips.h"
#include "core/plan_space.h"
#include "core/streamer.h"
#include "datalog/canonicalize.h"
#include "datalog/containment.h"
#include "utility/measures.h"

namespace planorder::service {

QueryService::QueryService(const datalog::Catalog* catalog,
                           const datalog::Database* source_facts,
                           ServiceOptions options,
                           exec::PlanExecutor* executor)
    : catalog_(catalog),
      source_facts_(source_facts),
      options_(std::move(options)),
      owned_executor_(executor != nullptr
                          ? nullptr
                          : exec::MakeSetOrientedExecutor(source_facts)),
      executor_(executor != nullptr ? executor : owned_executor_.get()),
      eval_pool_(options_.eval_threads > 0
                     ? std::make_unique<runtime::ThreadPool>(
                           options_.eval_threads)
                     : nullptr),
      clock_(options_.clock != nullptr ? options_.clock
                                       : runtime::RealClock::Instance()),
      cache_(options_.cache_capacity) {}

Status QueryService::Admit() {
  MutexLock lock(mu_);
  if (active_ < options_.max_active_sessions) {
    ++active_;
    ++admitted_;
    return OkStatus();
  }
  if (queued_ >= options_.max_queued_admissions ||
      options_.admission_timeout_ms <= 0.0) {
    ++shed_;
    return ResourceExhaustedError(
        "admission queue full (" + std::to_string(queued_) +
        " waiting on " + std::to_string(options_.max_active_sessions) +
        " slots); load shed, retry later");
  }
  ++queued_;
  ++queued_total_;
  queue_depth_peak_ = std::max(queue_depth_peak_, queued_);
  const bool got_slot = slot_free_.WaitForMs(
      lock, options_.admission_timeout_ms,
      [this]() REQUIRES(mu_) { return active_ < options_.max_active_sessions; });
  --queued_;
  if (!got_slot) {
    ++shed_;
    return ResourceExhaustedError(
        "no admission slot within " +
        std::to_string(options_.admission_timeout_ms) +
        "ms; load shed, retry later");
  }
  ++active_;
  ++admitted_;
  return OkStatus();
}

void QueryService::Release() {
  {
    MutexLock lock(mu_);
    --active_;
  }
  slot_free_.NotifyOne();
}

void QueryService::OnSessionFinished(const exec::MediatorResult& result,
                                     double elapsed_ms) {
  latency_.Record(elapsed_ms);
  MutexLock lock(mu_);
  ++completed_;
  total_answers_ += static_cast<int64_t>(result.total_answers);
  total_steps_ += static_cast<int64_t>(result.steps.size());
  runtime_total_.Merge(result.runtime);
}

StatusOr<QueryService::ReformulationOutcome> QueryService::Reformulate(
    const datalog::ConjunctiveQuery& query) {
  datalog::CanonicalQuery canonical = datalog::CanonicalizeQuery(query);
  {
    MutexLock lock(mu_);
    ++canonicalizations_;
  }
  std::shared_ptr<const CachedReformulation> entry = cache_.Lookup(canonical);
  if (entry != nullptr) {
    bool verified = true;
    if (options_.verify_cache_hits) {
      verified =
          datalog::AreEquivalent(entry->canonical.query, canonical.query);
      MutexLock lock(mu_);
      ++cache_verifications_;
      if (!verified) ++cache_verification_failures_;
    }
    if (verified) return ReformulationOutcome{std::move(entry), true};
    // Key matched a non-equivalent query (should be impossible; counted
    // above) — fall through to the cold path rather than serve wrong plans.
  }

  auto fresh = std::make_shared<CachedReformulation>();
  fresh->canonical = std::move(canonical);
  PLANORDER_ASSIGN_OR_RETURN(
      fresh->buckets,
      reformulation::BuildBuckets(fresh->canonical.query, *catalog_));
  PLANORDER_ASSIGN_OR_RETURN(
      fresh->workload,
      reformulation::EstimateWorkloadFromInstances(
          fresh->canonical.query, *catalog_, fresh->buckets, *source_facts_,
          options_.estimate));
  cache_.Insert(fresh);
  return ReformulationOutcome{std::move(fresh), false};
}

Status QueryService::SetUpOrdering(Session& session) {
  const stats::Workload* workload = &session.reformulation_->workload;
  PLANORDER_ASSIGN_OR_RETURN(
      session.model_, utility::MakeMeasure(options_.measure, workload));
  std::vector<core::PlanSpace> spaces = {core::PlanSpace::FullSpace(*workload)};
  switch (options_.orderer) {
    case ServiceOptions::OrdererKind::kStreamer: {
      PLANORDER_ASSIGN_OR_RETURN(
          session.orderer_,
          core::StreamerOrderer::Create(workload, session.model_.get(),
                                        std::move(spaces)));
      break;
    }
    case ServiceOptions::OrdererKind::kIDrips: {
      PLANORDER_ASSIGN_OR_RETURN(
          session.orderer_,
          core::IDripsOrderer::Create(workload, session.model_.get(),
                                      std::move(spaces)));
      break;
    }
  }
  if (eval_pool_ != nullptr) session.orderer_->set_eval_pool(eval_pool_.get());
  return OkStatus();
}

StatusOr<std::unique_ptr<Session>> QueryService::PrepareSession(
    const datalog::ConjunctiveQuery& query) {
  PLANORDER_RETURN_IF_ERROR(Admit());
  auto reformed = Reformulate(query);
  if (!reformed.ok()) {
    Release();  // no session took ownership of the slot
    return reformed.status();
  }
  // From here the session owns the slot: every error path below destroys it,
  // and ~Session releases.
  std::unique_ptr<Session> session(
      new Session(this, std::move(reformed->entry), reformed->hit));
  if (options_.source_cache_view != nullptr) {
    // Resolve each (bucket, index) to its catalog source name once: the
    // per-step residency refresh is then pure lookups against the view.
    const auto& buckets = session->reformulation_->buckets.buckets;
    session->source_names_.resize(buckets.size());
    for (size_t b = 0; b < buckets.size(); ++b) {
      session->source_names_[b].reserve(buckets[b].size());
      for (const datalog::SourceId id : buckets[b]) {
        session->source_names_[b].push_back(catalog_->source(id).name);
      }
    }
  }
  PLANORDER_RETURN_IF_ERROR(SetUpOrdering(*session));
  if (options_.source_cache_view != nullptr) {
    // Initial snapshot, so even a never-refreshed session (the injected
    // stale-utility mode) orders against the open-time cache state.
    session->RefreshResidency();
  }
  return session;
}

StatusOr<std::unique_ptr<Session>> QueryService::OpenSession(
    const datalog::ConjunctiveQuery& query,
    const exec::Mediator::RunLimits& limits) {
  PLANORDER_ASSIGN_OR_RETURN(std::unique_ptr<Session> session,
                             PrepareSession(query));
  session->mediator_ = std::make_unique<exec::Mediator>(
      catalog_, session->reformulation_->canonical.query, source_facts_,
      session->reformulation_->buckets.buckets);
  PLANORDER_ASSIGN_OR_RETURN(
      exec::MediatorStream stream,
      session->mediator_->OpenStream(*session->orderer_, limits, *executor_));
  session->stream_.emplace(std::move(stream));
  return session;
}

StatusOr<std::unique_ptr<Session>> QueryService::OpenRankedSession(
    const datalog::ConjunctiveQuery& query,
    const anyk::RankedAnswerStream::Options& options) {
  PLANORDER_ASSIGN_OR_RETURN(std::unique_ptr<Session> session,
                             PrepareSession(query));
  // Ranked mode always evaluates set-oriented against the source facts: the
  // any-k DP needs the admissible tuples of every body atom, not a dependent
  // join's reachable slice.
  PLANORDER_ASSIGN_OR_RETURN(
      anyk::RankedAnswerStream stream,
      anyk::RankedAnswerStream::Open(
          *catalog_, session->reformulation_->canonical.query, *source_facts_,
          session->reformulation_->buckets.buckets, *session->orderer_,
          options));
  session->ranked_.emplace(std::move(stream));
  return session;
}

StatusOr<exec::MediatorResult> QueryService::RunQuery(
    const datalog::ConjunctiveQuery& query,
    const exec::Mediator::RunLimits& limits) {
  PLANORDER_ASSIGN_OR_RETURN(std::unique_ptr<Session> session,
                             OpenSession(query, limits));
  while (true) {
    auto step = session->NextStep();
    if (!step.ok()) {
      if (step.status().code() == StatusCode::kNotFound) break;
      return step.status();
    }
  }
  return session->Finish();
}

ServiceMetricsSnapshot QueryService::Metrics() const {
  ServiceMetricsSnapshot snapshot;
  {
    MutexLock lock(mu_);
    snapshot.sessions_admitted = admitted_;
    snapshot.sessions_completed = completed_;
    snapshot.sessions_shed = shed_;
    snapshot.sessions_queued = queued_total_;
    snapshot.active_sessions = active_;
    snapshot.queue_depth = queued_;
    snapshot.queue_depth_peak = queue_depth_peak_;
    snapshot.canonicalizations = canonicalizations_;
    snapshot.cache_verifications = cache_verifications_;
    snapshot.cache_verification_failures = cache_verification_failures_;
    snapshot.total_answers = total_answers_;
    snapshot.total_steps = total_steps_;
    snapshot.runtime = runtime_total_;
  }
  snapshot.cache = cache_.stats();
  snapshot.latency_count = latency_.count();
  snapshot.latency_p50_ms = latency_.Percentile(50.0);
  snapshot.latency_p95_ms = latency_.Percentile(95.0);
  snapshot.latency_p99_ms = latency_.Percentile(99.0);
  snapshot.latency_max_ms = latency_.max_ms();
  return snapshot;
}

}  // namespace planorder::service
