#include "service/query_service.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/idrips.h"
#include "core/plan_space.h"
#include "core/streamer.h"
#include "datalog/canonicalize.h"
#include "datalog/containment.h"
#include "datalog/parser.h"
#include "utility/measures.h"

namespace planorder::service {

QueryService::QueryService(const datalog::Catalog* catalog,
                           const datalog::Database* source_facts,
                           ServiceOptions options,
                           exec::PlanExecutor* executor)
    : catalog_(catalog),
      source_facts_(source_facts),
      options_(std::move(options)),
      owned_executor_(executor != nullptr
                          ? nullptr
                          : exec::MakeSetOrientedExecutor(source_facts)),
      executor_(executor != nullptr ? executor : owned_executor_.get()),
      eval_pool_(options_.eval_threads > 0
                     ? std::make_unique<runtime::ThreadPool>(
                           options_.eval_threads)
                     : nullptr),
      clock_(options_.clock != nullptr ? options_.clock
                                       : runtime::RealClock::Instance()),
      cache_(options_.cache_capacity) {
  WarmLoadPlanStore();
}

void QueryService::WarmLoadPlanStore() {
  if (options_.plan_store == nullptr) return;
  StatusOr<adaptive::StoreContents> loaded = options_.plan_store->Load();
  if (!loaded.ok()) {
    // kNotFound = fresh deployment; anything else = damaged store. Both are
    // cold starts, only the latter is worth counting.
    if (loaded.status().code() != StatusCode::kNotFound) {
      MutexLock lock(mu_);
      ++plan_store_load_failures_;
    }
    return;
  }
  if (loaded->num_sources != catalog_->num_sources()) {
    // The store was written against a different catalog; its SourceIds
    // would dereference arbitrary sources here.
    MutexLock lock(mu_);
    ++plan_store_load_failures_;
    return;
  }
  int64_t restored = 0;
  // The store lists entries most-recently-used first; inserting in reverse
  // reproduces that LRU order in the warm cache.
  for (auto it = loaded->entries.rbegin(); it != loaded->entries.rend(); ++it) {
    StatusOr<datalog::ConjunctiveQuery> parsed =
        datalog::ParseRule(it->canonical_text);
    if (!parsed.ok()) continue;
    bool ids_valid = true;
    for (const std::vector<int>& bucket : it->buckets) {
      for (int id : bucket) {
        if (id < 0 || id >= catalog_->num_sources()) ids_valid = false;
      }
    }
    if (!ids_valid) continue;
    StatusOr<stats::Workload> workload = stats::Workload::FromParts(
        it->stat_buckets, it->region_weights, it->access_overhead,
        it->domain_sizes);
    if (!workload.ok()) continue;
    auto entry = std::make_shared<CachedReformulation>();
    entry->canonical = datalog::CanonicalizeQuery(*parsed);
    entry->buckets.buckets = it->buckets;
    entry->workload = *std::move(workload);
    cache_.Insert(std::move(entry));
    ++restored;
  }
  if (options_.observed_stats != nullptr) {
    for (const auto& [name, estimate] : loaded->observed) {
      options_.observed_stats->Restore(name, estimate);
    }
  }
  MutexLock lock(mu_);
  plan_store_entries_loaded_ += restored;
}

Status QueryService::PersistPlanStore() {
  if (options_.plan_store == nullptr) {
    return FailedPreconditionError("no plan store configured");
  }
  adaptive::StoreContents contents;
  contents.num_sources = catalog_->num_sources();
  for (const std::shared_ptr<const CachedReformulation>& entry :
       cache_.Snapshot()) {
    adaptive::StoredReformulation stored;
    // The canonical key IS the canonical query's text form — ParseRule +
    // CanonicalizeQuery restore the exact cache key on warm load.
    stored.canonical_text = entry->canonical.key;
    stored.buckets = entry->buckets.buckets;
    const stats::Workload& w = entry->workload;
    stored.stat_buckets.resize(size_t(w.num_buckets()));
    stored.domain_sizes.reserve(size_t(w.num_buckets()));
    for (int b = 0; b < w.num_buckets(); ++b) {
      stored.stat_buckets[b].reserve(size_t(w.bucket_size(b)));
      for (int i = 0; i < w.bucket_size(b); ++i) {
        stored.stat_buckets[b].push_back(w.source(b, i));
      }
      stored.domain_sizes.push_back(w.domain_size(b));
    }
    stored.region_weights = w.region_weights();
    stored.access_overhead = w.access_overhead();
    contents.entries.push_back(std::move(stored));
  }
  if (options_.observed_stats != nullptr) {
    contents.observed = options_.observed_stats->Snapshot();
  }
  Status saved;
  {
    MutexLock lock(store_mu_);
    saved = options_.plan_store->Save(contents);
  }
  if (saved.ok()) {
    MutexLock lock(mu_);
    ++plan_store_saves_;
  }
  return saved;
}

Status QueryService::Admit() {
  MutexLock lock(mu_);
  if (active_ < options_.max_active_sessions) {
    ++active_;
    ++admitted_;
    return OkStatus();
  }
  if (queued_ >= options_.max_queued_admissions ||
      options_.admission_timeout_ms <= 0.0) {
    ++shed_;
    return ResourceExhaustedError(
        "admission queue full (" + std::to_string(queued_) +
        " waiting on " + std::to_string(options_.max_active_sessions) +
        " slots); load shed, retry later");
  }
  ++queued_;
  ++queued_total_;
  queue_depth_peak_ = std::max(queue_depth_peak_, queued_);
  const bool got_slot = slot_free_.WaitForMs(
      lock, options_.admission_timeout_ms,
      [this]() REQUIRES(mu_) { return active_ < options_.max_active_sessions; });
  --queued_;
  if (!got_slot) {
    ++shed_;
    return ResourceExhaustedError(
        "no admission slot within " +
        std::to_string(options_.admission_timeout_ms) +
        "ms; load shed, retry later");
  }
  ++active_;
  ++admitted_;
  return OkStatus();
}

void QueryService::Release() {
  {
    MutexLock lock(mu_);
    --active_;
  }
  slot_free_.NotifyOne();
}

void QueryService::OnSessionFinished(const exec::MediatorResult& result,
                                     double elapsed_ms) {
  latency_.Record(elapsed_ms);
  MutexLock lock(mu_);
  ++completed_;
  total_answers_ += static_cast<int64_t>(result.total_answers);
  total_steps_ += static_cast<int64_t>(result.steps.size());
  runtime_total_.Merge(result.runtime);
}

StatusOr<QueryService::ReformulationOutcome> QueryService::Reformulate(
    const datalog::ConjunctiveQuery& query) {
  datalog::CanonicalQuery canonical = datalog::CanonicalizeQuery(query);
  {
    MutexLock lock(mu_);
    ++canonicalizations_;
  }
  std::shared_ptr<const CachedReformulation> entry = cache_.Lookup(canonical);
  if (entry != nullptr) {
    bool verified = true;
    if (options_.verify_cache_hits) {
      verified =
          datalog::AreEquivalent(entry->canonical.query, canonical.query);
      MutexLock lock(mu_);
      ++cache_verifications_;
      if (!verified) ++cache_verification_failures_;
    }
    if (verified) return ReformulationOutcome{std::move(entry), true};
    // Key matched a non-equivalent query (should be impossible; counted
    // above) — fall through to the cold path rather than serve wrong plans.
  } else if (options_.containment_reuse) {
    // Beyond isomorphism: an equivalent-but-not-isomorphic resident entry
    // (e.g. a query with a redundant atom) can soundly serve this query —
    // equivalence means identical answers on every database, and the
    // containment test that establishes it is the verification itself.
    entry = cache_.LookupByContainment(canonical);
    if (entry != nullptr) return ReformulationOutcome{std::move(entry), true};
  }

  auto fresh = std::make_shared<CachedReformulation>();
  fresh->canonical = std::move(canonical);
  PLANORDER_ASSIGN_OR_RETURN(
      fresh->buckets,
      reformulation::BuildBuckets(fresh->canonical.query, *catalog_));
  PLANORDER_ASSIGN_OR_RETURN(
      fresh->workload,
      reformulation::EstimateWorkloadFromInstances(
          fresh->canonical.query, *catalog_, fresh->buckets, *source_facts_,
          options_.estimate));
  cache_.Insert(fresh);
  if (options_.plan_store != nullptr) {
    // Best-effort: a failed persist leaves the service fully functional
    // (the next cold miss retries); Metrics counts successful saves.
    (void)PersistPlanStore();
  }
  return ReformulationOutcome{std::move(fresh), false};
}

std::vector<std::vector<std::string>> QueryService::ResolveSourceNames(
    const std::vector<std::vector<datalog::SourceId>>& buckets) const {
  std::vector<std::vector<std::string>> names(buckets.size());
  for (size_t b = 0; b < buckets.size(); ++b) {
    names[b].reserve(buckets[b].size());
    for (const datalog::SourceId id : buckets[b]) {
      names[b].push_back(catalog_->source(id).name);
    }
  }
  return names;
}

Status QueryService::SetUpOrdering(Session& session) {
  const stats::Workload* workload = &session.reformulation_->workload;
  if (options_.adaptive_reorder) {
    // The adaptive wrapper owns its per-generation models and inner orderer;
    // the session's reformulation workload serves as the estimate baseline.
    adaptive::AdaptiveOptions adaptive_options;
    adaptive_options.inner =
        options_.orderer == ServiceOptions::OrdererKind::kIDrips
            ? adaptive::InnerOrderer::kIDrips
            : adaptive::InnerOrderer::kStreamer;
    adaptive_options.measure = options_.measure;
    adaptive_options.drift = options_.drift;
    PLANORDER_ASSIGN_OR_RETURN(
        session.orderer_,
        adaptive::AdaptiveOrderer::Create(
            workload,
            ResolveSourceNames(session.reformulation_->buckets.buckets),
            options_.observed_stats, adaptive_options));
    if (eval_pool_ != nullptr) {
      session.orderer_->set_eval_pool(eval_pool_.get());
    }
    return OkStatus();
  }
  PLANORDER_ASSIGN_OR_RETURN(
      session.model_, utility::MakeMeasure(options_.measure, workload));
  std::vector<core::PlanSpace> spaces = {core::PlanSpace::FullSpace(*workload)};
  switch (options_.orderer) {
    case ServiceOptions::OrdererKind::kStreamer: {
      PLANORDER_ASSIGN_OR_RETURN(
          session.orderer_,
          core::StreamerOrderer::Create(workload, session.model_.get(),
                                        std::move(spaces)));
      break;
    }
    case ServiceOptions::OrdererKind::kIDrips: {
      PLANORDER_ASSIGN_OR_RETURN(
          session.orderer_,
          core::IDripsOrderer::Create(workload, session.model_.get(),
                                      std::move(spaces)));
      break;
    }
  }
  if (eval_pool_ != nullptr) session.orderer_->set_eval_pool(eval_pool_.get());
  return OkStatus();
}

StatusOr<std::unique_ptr<Session>> QueryService::PrepareSession(
    const datalog::ConjunctiveQuery& query) {
  PLANORDER_RETURN_IF_ERROR(Admit());
  auto reformed = Reformulate(query);
  if (!reformed.ok()) {
    Release();  // no session took ownership of the slot
    return reformed.status();
  }
  // From here the session owns the slot: every error path below destroys it,
  // and ~Session releases.
  std::unique_ptr<Session> session(
      new Session(this, std::move(reformed->entry), reformed->hit));
  if (options_.source_cache_view != nullptr) {
    // Resolve each (bucket, index) to its catalog source name once: the
    // per-step residency refresh is then pure lookups against the view.
    session->source_names_ =
        ResolveSourceNames(session->reformulation_->buckets.buckets);
  }
  PLANORDER_RETURN_IF_ERROR(SetUpOrdering(*session));
  if (options_.source_cache_view != nullptr) {
    // Initial snapshot, so even a never-refreshed session (the injected
    // stale-utility mode) orders against the open-time cache state.
    session->RefreshResidency();
  }
  return session;
}

StatusOr<std::unique_ptr<Session>> QueryService::OpenSession(
    const datalog::ConjunctiveQuery& query,
    const exec::Mediator::RunLimits& limits) {
  PLANORDER_ASSIGN_OR_RETURN(std::unique_ptr<Session> session,
                             PrepareSession(query));
  session->mediator_ = std::make_unique<exec::Mediator>(
      catalog_, session->reformulation_->canonical.query, source_facts_,
      session->reformulation_->buckets.buckets);
  PLANORDER_ASSIGN_OR_RETURN(
      exec::MediatorStream stream,
      session->mediator_->OpenStream(*session->orderer_, limits, *executor_));
  session->stream_.emplace(std::move(stream));
  return session;
}

StatusOr<std::unique_ptr<Session>> QueryService::OpenRankedSession(
    const datalog::ConjunctiveQuery& query,
    const anyk::RankedAnswerStream::Options& options) {
  PLANORDER_ASSIGN_OR_RETURN(std::unique_ptr<Session> session,
                             PrepareSession(query));
  // Ranked mode always evaluates set-oriented against the source facts: the
  // any-k DP needs the admissible tuples of every body atom, not a dependent
  // join's reachable slice.
  PLANORDER_ASSIGN_OR_RETURN(
      anyk::RankedAnswerStream stream,
      anyk::RankedAnswerStream::Open(
          *catalog_, session->reformulation_->canonical.query, *source_facts_,
          session->reformulation_->buckets.buckets, *session->orderer_,
          options));
  session->ranked_.emplace(std::move(stream));
  return session;
}

StatusOr<exec::MediatorResult> QueryService::RunQuery(
    const datalog::ConjunctiveQuery& query,
    const exec::Mediator::RunLimits& limits) {
  PLANORDER_ASSIGN_OR_RETURN(std::unique_ptr<Session> session,
                             OpenSession(query, limits));
  while (true) {
    auto step = session->NextStep();
    if (!step.ok()) {
      if (step.status().code() == StatusCode::kNotFound) break;
      return step.status();
    }
  }
  return session->Finish();
}

ServiceMetricsSnapshot QueryService::Metrics() const {
  ServiceMetricsSnapshot snapshot;
  {
    MutexLock lock(mu_);
    snapshot.sessions_admitted = admitted_;
    snapshot.sessions_completed = completed_;
    snapshot.sessions_shed = shed_;
    snapshot.sessions_queued = queued_total_;
    snapshot.active_sessions = active_;
    snapshot.queue_depth = queued_;
    snapshot.queue_depth_peak = queue_depth_peak_;
    snapshot.canonicalizations = canonicalizations_;
    snapshot.cache_verifications = cache_verifications_;
    snapshot.cache_verification_failures = cache_verification_failures_;
    snapshot.total_answers = total_answers_;
    snapshot.total_steps = total_steps_;
    snapshot.plan_store_entries_loaded = plan_store_entries_loaded_;
    snapshot.plan_store_load_failures = plan_store_load_failures_;
    snapshot.plan_store_saves = plan_store_saves_;
    snapshot.runtime = runtime_total_;
  }
  snapshot.cache = cache_.stats();
  snapshot.latency_count = latency_.count();
  snapshot.latency_p50_ms = latency_.Percentile(50.0);
  snapshot.latency_p95_ms = latency_.Percentile(95.0);
  snapshot.latency_p99_ms = latency_.Percentile(99.0);
  snapshot.latency_max_ms = latency_.max_ms();
  return snapshot;
}

}  // namespace planorder::service
