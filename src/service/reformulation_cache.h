#ifndef PLANORDER_SERVICE_REFORMULATION_CACHE_H_
#define PLANORDER_SERVICE_REFORMULATION_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "datalog/canonicalize.h"
#include "reformulation/bucket.h"
#include "stats/workload.h"

namespace planorder::service {

/// The expensive front half of a mediation run, computed once per
/// canonical-query class: the bucket algorithm's plan space plus the
/// instance-estimated workload statistics over it. Immutable after
/// construction; sessions share entries by shared_ptr so an entry stays
/// alive while any session's orderer still points into its workload, even
/// after cache eviction.
struct CachedReformulation {
  datalog::CanonicalQuery canonical;
  reformulation::BucketResult buckets;
  stats::Workload workload;
};

/// Thread-safe LRU cache of reformulations keyed by canonical form. The
/// structural hash indexes the table; a hit additionally requires the full
/// canonical key string to match (hash collisions are counted and treated as
/// misses, never served). Callers may layer a containment-based equivalence
/// verification on top (see ServiceOptions::verify_cache_hits) — the
/// belt-and-braces check that a key match really is query equivalence.
class ReformulationCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    /// Lookups whose hash matched a resident entry with a different
    /// canonical key. Served as misses.
    int64_t collisions = 0;
    /// Hits served beyond isomorphism: the canonical key missed but a
    /// resident entry's query is logically equivalent (mutual containment,
    /// datalog::AreEquivalent). Also counted in `hits`; the preceding key
    /// miss stays counted in `misses`.
    int64_t containment_hits = 0;
    int64_t evictions = 0;
    int64_t insertions = 0;
    size_t size = 0;
    size_t capacity = 0;
  };

  /// `capacity` == 0 disables caching (every lookup misses, inserts drop).
  explicit ReformulationCache(size_t capacity) : capacity_(capacity) {}

  ReformulationCache(const ReformulationCache&) = delete;
  ReformulationCache& operator=(const ReformulationCache&) = delete;

  /// Returns the resident entry for `canonical`, bumping it to
  /// most-recently-used, or nullptr on miss/collision.
  std::shared_ptr<const CachedReformulation> Lookup(
      const datalog::CanonicalQuery& canonical) EXCLUDES(mu_);

  /// Inserts `entry` as most-recently-used, evicting from the LRU end past
  /// capacity. A same-key entry already resident is replaced (last writer
  /// wins; races between concurrent misses on the same query are benign).
  void Insert(std::shared_ptr<const CachedReformulation> entry) EXCLUDES(mu_);

  /// Containment-mapped reuse (ROADMAP "beyond isomorphism"): after Lookup
  /// missed on the canonical key, scans the resident entries most-recent
  /// first for one whose query is logically *equivalent* to `canonical`
  /// (mutual containment via datalog::AreEquivalent — equivalent queries
  /// have identical answer sets on every database, so serving the resident
  /// entry's buckets and statistics is sound by construction). Returns the
  /// first equivalent entry bumped to most-recently-used, or nullptr. The
  /// scan is O(residents × containment test); capacity bounds it.
  std::shared_ptr<const CachedReformulation> LookupByContainment(
      const datalog::CanonicalQuery& canonical) EXCLUDES(mu_);

  /// Resident entries, most-recently-used first (plan-store persistence).
  std::vector<std::shared_ptr<const CachedReformulation>> Snapshot() const
      EXCLUDES(mu_);

  Stats stats() const EXCLUDES(mu_);

 private:
  using LruList = std::list<std::shared_ptr<const CachedReformulation>>;

  mutable Mutex mu_;
  const size_t capacity_;
  LruList lru_ GUARDED_BY(mu_);  // front = most recent
  // Hash-indexed handle into the LRU list: lookup/erase by key only, never
  // iterated, so the bucket order cannot reach any output.
  // detlint: order-insensitive(keyed lookup/erase only; never iterated)
  std::unordered_map<uint64_t, LruList::iterator> by_hash_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace planorder::service

#endif  // PLANORDER_SERVICE_REFORMULATION_CACHE_H_
