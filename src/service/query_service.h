#ifndef PLANORDER_SERVICE_QUERY_SERVICE_H_
#define PLANORDER_SERVICE_QUERY_SERVICE_H_

#include <memory>

#include "adaptive/adaptive_orderer.h"
#include "adaptive/observed_stats.h"
#include "adaptive/plan_store.h"
#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "datalog/source.h"
#include "exec/mediator.h"
#include "reformulation/statistics.h"
#include "runtime/clock.h"
#include "runtime/thread_pool.h"
#include "service/metrics.h"
#include "service/reformulation_cache.h"
#include "service/session.h"
#include "service/shared_view.h"
#include "utility/measures.h"

namespace planorder::service {

/// Configuration of a QueryService.
struct ServiceOptions {
  /// Reformulation-cache entries kept resident; 0 disables the cache.
  size_t cache_capacity = 64;
  /// On each cache hit, additionally verify with the Chandra-Merlin
  /// containment test that the cached canonical query is equivalent to the
  /// incoming one (collision safety beyond the key-string comparison).
  bool verify_cache_hits = true;

  /// Admission control: at most this many sessions hold slots at once ...
  int max_active_sessions = 8;
  /// ... at most this many more may wait for a slot; beyond that OpenSession
  /// sheds immediately with kResourceExhausted.
  int max_queued_admissions = 16;
  /// How long a queued admission waits for a slot before shedding; <= 0
  /// never waits (full = shed).
  double admission_timeout_ms = 1000.0;

  enum class OrdererKind { kStreamer, kIDrips };
  OrdererKind orderer = OrdererKind::kStreamer;

  /// Utility measure every session's orderer optimizes. Non-diminishing
  /// measures (the caching variants) require OrdererKind::kIDrips —
  /// Streamer::Create rejects them, and OpenSession surfaces that error.
  utility::MeasureKind measure = utility::MeasureKind::kCoverage;

  /// Read-only residency view of a cross-session source-operation cache
  /// (borrowed, may be null). When set, each session polls it before every
  /// plan emission and marks resident sources externally cached in its
  /// orderer, so cached operations are charged zero residual cost by the
  /// cache-aware measures — see src/cluster/ and DESIGN.md §10.
  SharedOperationView* source_cache_view = nullptr;

  /// Test hook: when false, sessions poll the residency view once at open
  /// and never again — deliberately reproducing the stale-utility bug the
  /// sim multi-session property must catch (utilities no longer reflect
  /// cache state at eval time). Production code never clears this.
  bool refresh_source_cache_view = true;

  /// Test hook: sessions record the residency snapshot applied before each
  /// step (Session::residency_history), letting the sim property check each
  /// step's utility against the exact cache state it was evaluated under.
  bool record_residency_snapshots = false;

  /// Worker threads of the service-owned pool shared by every session's
  /// orderer for batched utility evaluation (plan order and utilities are
  /// identical with and without it); 0 = sessions evaluate serially.
  int eval_threads = 0;

  /// Statistics estimation knobs for cold (uncached) reformulations.
  reformulation::EstimateOptions estimate;

  /// Versioned on-disk plan/stats store (borrowed, may be null; DESIGN.md
  /// §12). At construction the service warm-loads every persisted
  /// reformulation into the cache — skipping bucket construction and the
  /// full-instance statistics scan for queries seen before the restart — and
  /// restores persisted learned statistics into `observed_stats`. A corrupt,
  /// truncated or version-mismatched store is counted and ignored (cold
  /// start, never a crash). Every cold reformulation re-persists the store;
  /// PersistPlanStore() flushes on demand (e.g. at shutdown).
  adaptive::PlanStore* plan_store = nullptr;

  /// Extends reformulation-cache reuse beyond isomorphism: when the
  /// canonical key misses, scan resident entries for a logically equivalent
  /// query (mutual containment via datalog::AreEquivalent) and serve its
  /// reformulation — the containment test is itself the hit verification.
  /// Off by default: the scan costs O(residents) containment tests per cold
  /// query.
  bool containment_reuse = false;

  /// Observed per-source statistics layer (borrowed, may be null). Wire the
  /// same object as runtime::RuntimeOptions::trace_sink to close the loop:
  /// execution traces fold into it, adaptive sessions re-rank from it, and
  /// the plan store persists/restores it across restarts.
  adaptive::ObservedStats* observed_stats = nullptr;

  /// Wraps every session's orderer in an adaptive::AdaptiveOrderer over
  /// `observed_stats`: when folded observations leave the divergence band,
  /// the session discards its remaining plan order mid-stream and reorders
  /// under the blended statistics.
  bool adaptive_reorder = false;

  /// Divergence-monitor policy for adaptive sessions.
  adaptive::DriftOptions drift;

  /// Time source for session latency metrics (borrowed; nullptr = the
  /// process-wide RealClock). Inject a runtime::VirtualClock to make latency
  /// accounting fully deterministic — the only wall-clock read the service
  /// layer performs goes through this hook.
  runtime::Clock* clock = nullptr;
};

/// The multi-query mediator front end: many concurrent client sessions over
/// one catalog, one source-facts corpus (or one shared resilient runtime)
/// and one reformulation cache.
///
/// Per query the service (1) canonicalizes — isomorphic queries collapse to
/// one canonical form; (2) consults the LRU reformulation cache, skipping
/// the bucket algorithm and workload estimation on a hit; (3) builds a
/// per-session orderer over the (shared, immutable) cached workload; and
/// (4) hands back a streaming Session. Because hit and cold paths both run
/// the mediator on the canonical query over the canonical bucket order, a
/// cache hit yields byte-identical plan order and answers to the cold run.
///
/// Thread-safe: OpenSession/RunQuery/Metrics may be called from many client
/// threads. The plan executor shared across sessions must itself be
/// thread-safe (runtime::SourceRuntime is; the default set-oriented
/// executor is stateless).
class QueryService {
 public:
  /// `catalog` and `source_facts` must outlive the service. `executor`
  /// (optional) is the shared plan-execution strategy for all sessions —
  /// pass a runtime::SourceRuntime for resilient concurrent source access;
  /// nullptr means set-oriented evaluation against `source_facts`.
  QueryService(const datalog::Catalog* catalog,
               const datalog::Database* source_facts, ServiceOptions options,
               exec::PlanExecutor* executor = nullptr);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits, reformulates (through the cache) and opens a streaming session
  /// for `query`. Blocks up to admission_timeout_ms when all slots are
  /// busy; kResourceExhausted = load shed (queue full or timeout), retry
  /// later. The session holds its slot until Finish()/destruction.
  StatusOr<std::unique_ptr<Session>> OpenSession(
      const datalog::ConjunctiveQuery& query,
      const exec::Mediator::RunLimits& limits);

  /// As OpenSession, but in ranked mode: the session's plan ordering feeds
  /// an any-k ranked answer stream (src/anyk/) instead of the per-plan step
  /// stream — NextRankedAnswer() yields the union of the sound plans'
  /// answers best-weight-first with duplicates suppressed, without
  /// materializing any plan's full join. Admission, the reformulation cache
  /// and the orderer choice are shared with plan-mode sessions.
  StatusOr<std::unique_ptr<Session>> OpenRankedSession(
      const datalog::ConjunctiveQuery& query,
      const anyk::RankedAnswerStream::Options& options);

  /// Convenience: open a session, drain it, Finish. What a non-interactive
  /// client does.
  StatusOr<exec::MediatorResult> RunQuery(
      const datalog::ConjunctiveQuery& query,
      const exec::Mediator::RunLimits& limits);

  ServiceMetricsSnapshot Metrics() const;

  /// Serializes the current reformulation cache (most-recently-used first)
  /// plus the learned statistics snapshot into the configured plan store,
  /// atomically. kFailedPrecondition when no store is configured.
  Status PersistPlanStore() EXCLUDES(store_mu_);

  /// The raw end-to-end session latency samples — shard aggregation merges
  /// these to compute exact cross-shard percentiles (percentiles of
  /// per-shard snapshots cannot be merged; raw samples can).
  const LatencyHistogram& latency_histogram() const { return latency_; }

  const ServiceOptions& options() const { return options_; }

 private:
  friend class Session;

  /// Blocks for an admission slot per the options. OK = slot held.
  Status Admit() EXCLUDES(mu_);
  /// Returns a slot (Session finish/destruction path).
  void Release() EXCLUDES(mu_);
  /// Folds a finished session's totals into the service metrics.
  void OnSessionFinished(const exec::MediatorResult& result,
                         double elapsed_ms) EXCLUDES(mu_);

  /// Canonicalize + cache lookup (+ optional containment verification),
  /// computing and inserting the reformulation on a miss. Returns the entry
  /// and whether it was a hit.
  struct ReformulationOutcome {
    std::shared_ptr<const CachedReformulation> entry;
    bool hit = false;
  };
  StatusOr<ReformulationOutcome> Reformulate(
      const datalog::ConjunctiveQuery& query);

  /// Builds `session`'s utility model and orderer over its (cached, shared)
  /// reformulation, per options_.orderer, and wires in the shared eval pool.
  Status SetUpOrdering(Session& session);

  /// Admission + reformulation + ordering — everything shared between plan
  /// and ranked sessions. On success the returned session owns its slot.
  StatusOr<std::unique_ptr<Session>> PrepareSession(
      const datalog::ConjunctiveQuery& query);

  /// Resolves each (bucket, index) of `buckets` to its catalog source name.
  std::vector<std::vector<std::string>> ResolveSourceNames(
      const std::vector<std::vector<datalog::SourceId>>& buckets) const;

  /// Restores persisted reformulations + learned stats at construction.
  void WarmLoadPlanStore();

  const datalog::Catalog* catalog_;
  const datalog::Database* source_facts_;
  const ServiceOptions options_;
  std::unique_ptr<exec::PlanExecutor> owned_executor_;
  exec::PlanExecutor* executor_;  // owned_executor_.get() or caller's
  /// Shared across all sessions' orderers (ThreadPool::Submit is
  /// thread-safe); null when options_.eval_threads == 0.
  std::unique_ptr<runtime::ThreadPool> eval_pool_;
  runtime::Clock* clock_;  // options_.clock or the process-wide RealClock
  ReformulationCache cache_;
  LatencyHistogram latency_;

  mutable Mutex mu_;
  CondVar slot_free_;
  int active_ GUARDED_BY(mu_) = 0;
  int queued_ GUARDED_BY(mu_) = 0;
  int queue_depth_peak_ GUARDED_BY(mu_) = 0;
  int64_t admitted_ GUARDED_BY(mu_) = 0;
  int64_t completed_ GUARDED_BY(mu_) = 0;
  int64_t shed_ GUARDED_BY(mu_) = 0;
  int64_t queued_total_ GUARDED_BY(mu_) = 0;
  int64_t canonicalizations_ GUARDED_BY(mu_) = 0;
  int64_t cache_verifications_ GUARDED_BY(mu_) = 0;
  int64_t cache_verification_failures_ GUARDED_BY(mu_) = 0;
  int64_t total_answers_ GUARDED_BY(mu_) = 0;
  int64_t total_steps_ GUARDED_BY(mu_) = 0;
  int64_t plan_store_entries_loaded_ GUARDED_BY(mu_) = 0;
  int64_t plan_store_load_failures_ GUARDED_BY(mu_) = 0;
  int64_t plan_store_saves_ GUARDED_BY(mu_) = 0;
  exec::RuntimeAccounting runtime_total_ GUARDED_BY(mu_);
  /// Serializes whole-store rewrites (Save is atomic per call; this orders
  /// concurrent cold-miss persists).
  Mutex store_mu_;
};

}  // namespace planorder::service

#endif  // PLANORDER_SERVICE_QUERY_SERVICE_H_
