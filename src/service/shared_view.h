#ifndef PLANORDER_SERVICE_SHARED_VIEW_H_
#define PLANORDER_SERVICE_SHARED_VIEW_H_

#include <string>

namespace planorder::service {

/// The ordering layer's read-only view of a cross-session source-operation
/// result cache (src/cluster/SourceOperationCache implements it). Sessions
/// poll it before each plan emission and mark resident sources as externally
/// cached in their orderer's ExecutionContext, so the Section 6 caching
/// measures charge them zero residual cost — another session's fetch changes
/// this session's conditional utilities.
///
/// Residency is reported per source *name*: the physical cache keys on the
/// full call content (name, bound positions, binding values), but utility
/// models only resolve (bucket, source) pairs — the same granularity at
/// which in-session caching is modeled (ExecutionContext::IsCached). A
/// name-level hit is therefore an approximation in exactly the sense the
/// paper's measures already are: "an operation against this source has been
/// paid for once".
///
/// Implementations must be thread-safe; sessions on every shard poll
/// concurrently with fetch-path insertions and evictions.
class SharedOperationView {
 public:
  virtual ~SharedOperationView() = default;

  /// True when at least one operation result of `source_name` is resident.
  virtual bool IsResident(const std::string& source_name) const = 0;
};

}  // namespace planorder::service

#endif  // PLANORDER_SERVICE_SHARED_VIEW_H_
