#include "service/reformulation_cache.h"

#include <utility>

#include "datalog/containment.h"

namespace planorder::service {

std::shared_ptr<const CachedReformulation> ReformulationCache::Lookup(
    const datalog::CanonicalQuery& canonical) {
  MutexLock lock(mu_);
  auto it = by_hash_.find(canonical.hash);
  if (it == by_hash_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  const std::shared_ptr<const CachedReformulation>& entry = *it->second;
  if (entry->canonical.key != canonical.key) {
    // Same 64-bit hash, different canonical query: never serve it.
    ++stats_.collisions;
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return entry;
}

std::shared_ptr<const CachedReformulation>
ReformulationCache::LookupByContainment(
    const datalog::CanonicalQuery& canonical) {
  MutexLock lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    const std::shared_ptr<const CachedReformulation>& entry = *it;
    if (entry->canonical.key == canonical.key) continue;  // Lookup's job
    if (!datalog::AreEquivalent(canonical.query, entry->canonical.query)) {
      continue;
    }
    std::shared_ptr<const CachedReformulation> found = entry;
    lru_.splice(lru_.begin(), lru_, it);
    ++stats_.hits;
    ++stats_.containment_hits;
    return found;
  }
  return nullptr;
}

std::vector<std::shared_ptr<const CachedReformulation>>
ReformulationCache::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<std::shared_ptr<const CachedReformulation>> entries;
  entries.reserve(lru_.size());
  for (const auto& entry : lru_) entries.push_back(entry);
  return entries;
}

void ReformulationCache::Insert(
    std::shared_ptr<const CachedReformulation> entry) {
  if (entry == nullptr || capacity_ == 0) return;
  MutexLock lock(mu_);
  auto it = by_hash_.find(entry->canonical.hash);
  if (it != by_hash_.end()) {
    // Replace in place (same key: concurrent misses raced; different key:
    // the table is hash-keyed, so the colliding older entry gives way).
    lru_.erase(it->second);
    by_hash_.erase(it);
  }
  const uint64_t hash = entry->canonical.hash;
  lru_.push_front(std::move(entry));
  by_hash_[hash] = lru_.begin();
  ++stats_.insertions;
  while (lru_.size() > capacity_) {
    by_hash_.erase(lru_.back()->canonical.hash);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

ReformulationCache::Stats ReformulationCache::stats() const {
  MutexLock lock(mu_);
  Stats snapshot = stats_;
  snapshot.size = lru_.size();
  snapshot.capacity = capacity_;
  return snapshot;
}

}  // namespace planorder::service
