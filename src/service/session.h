#ifndef PLANORDER_SERVICE_SESSION_H_
#define PLANORDER_SERVICE_SESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "anyk/ranked_stream.h"
#include "base/status.h"
#include "core/orderer.h"
#include "exec/mediator.h"
#include "service/reformulation_cache.h"
#include "utility/model.h"

namespace planorder::service {

class QueryService;

/// One admitted client query, exposed as a streaming pull API: each
/// NextStep() advances the underlying mediation run by exactly one plan and
/// yields its MediatorStep, so a client can render progressive answers and
/// stop as soon as it is satisfied — the paper's anytime behavior, per
/// session.
///
/// A Session owns its orderer, utility model and mediator, and shares the
/// reformulation (buckets + workload) with the service cache. It occupies
/// one admission slot from creation until Finish() or destruction; dropping
/// a half-consumed session is legal and releases the slot. A Session is
/// single-client state: not thread-safe (distinct sessions are independent
/// and may run on distinct threads concurrently).
class Session {
 public:
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Advances the run by one plan. kNotFound = run over (orderer exhausted
  /// or a RunLimits criterion tripped) — not an error. Plan-mode sessions
  /// only (kNotFound on ranked sessions).
  StatusOr<exec::MediatorStep> NextStep();

  /// Ranked-mode sessions (QueryService::OpenRankedSession): the
  /// best-weighted answer not yet emitted, duplicates suppressed across all
  /// sound plans. kNotFound = ranked enumeration exhausted (or this is not a
  /// ranked session) — not an error.
  StatusOr<anyk::RankedAnswer> NextRankedAnswer();

  /// True for sessions opened in ranked mode.
  bool ranked() const { return ranked_.has_value(); }

  /// Ranked-mode accounting so far; nullptr on plan-mode sessions.
  const anyk::RankedAnswerStream::Stats* ranked_stats() const {
    return ranked_.has_value() ? &ranked_->stats() : nullptr;
  }

  /// Ends the session: returns the accumulated MediatorResult, records the
  /// session's latency and runtime accounting into the service metrics, and
  /// releases the admission slot. Idempotent; after the first call the
  /// result is empty.
  exec::MediatorResult Finish();

  /// The result accumulated so far, without ending the session.
  const exec::MediatorResult& progress() const;

  /// The distinct answer tuples accumulated so far, in unspecified order.
  std::vector<std::vector<datalog::Term>> Answers() const;

  /// This session's resilient-runtime accounting so far — already
  /// per-session exact (plan-local attribution, see runtime::SourceRuntime),
  /// no cross-session subtraction needed.
  exec::RuntimeAccounting RuntimeSnapshot() const;

  /// True when this session's reformulation came from the cache.
  bool cache_hit() const { return cache_hit_; }

  /// With ServiceOptions::record_residency_snapshots: the external-residency
  /// snapshot (bucket-major, 1 = resident in the cross-session cache) that
  /// was applied to the orderer before each NextStep, in step order. The sim
  /// multi-session property replays utilities against exactly these states.
  const std::vector<std::vector<std::vector<char>>>& residency_history()
      const {
    return residency_history_;
  }

  /// The canonical form the session runs under (hit and cold sessions of
  /// one isomorphism class see the identical query and plan space).
  const datalog::CanonicalQuery& canonical() const {
    return reformulation_->canonical;
  }

  /// The full shared reformulation (canonical form, buckets, workload) this
  /// session orders over — the sim multi-session property re-evaluates step
  /// utilities against exactly this workload.
  const CachedReformulation& reformulation() const { return *reformulation_; }

 private:
  friend class QueryService;

  Session(QueryService* service,
          std::shared_ptr<const CachedReformulation> reformulation,
          bool cache_hit);

  /// Polls the service's SharedOperationView and marks each (bucket, source)
  /// externally cached in the orderer per the view's current residency. The
  /// orderer's generation counter makes unchanged polls free and changed
  /// ones invalidate exactly the stale frontier utilities.
  void RefreshResidency();

  QueryService* service_;
  std::shared_ptr<const CachedReformulation> reformulation_;
  bool cache_hit_ = false;
  std::unique_ptr<utility::UtilityModel> model_;
  std::unique_ptr<core::Orderer> orderer_;
  std::unique_ptr<exec::Mediator> mediator_;
  std::optional<exec::MediatorStream> stream_;
  std::optional<anyk::RankedAnswerStream> ranked_;
  /// Catalog name of each (bucket, index) source; populated by the service
  /// only when a SharedOperationView is configured.
  std::vector<std::vector<std::string>> source_names_;
  /// See residency_history().
  std::vector<std::vector<std::vector<char>>> residency_history_;
  /// Admission timestamp on the service's runtime::Clock — the service layer
  /// never reads the wall clock directly, so an injected VirtualClock makes
  /// latency metrics deterministic too (ServiceOptions::clock).
  double admitted_at_ms_ = 0.0;
  bool finished_ = false;
};

}  // namespace planorder::service

#endif  // PLANORDER_SERVICE_SESSION_H_
