/// planorder_sim: the deterministic simulation & differential
/// property-testing driver (DESIGN.md §7). Sweeps seeded random scenarios —
/// synthetic LAV catalogs, all Section 6 utility measures, every ordering
/// algorithm, 1..N evaluation threads, runtime fault/latency schedules —
/// and cross-checks each against the exhaustive-order oracle and the
/// metamorphic properties. On failure it greedily shrinks the scenario to a
/// minimal reproducer and prints a one-line replay command; the process
/// exits nonzero.
///
/// Usage:
///   planorder_sim --iters=500            # CI smoke sweep, seed 1
///   planorder_sim --seed=7 --iters=5000  # nightly sweep
///   planorder_sim --replay=7:123         # replay one failing step
///   planorder_sim --replay-file=min.scenario   # run a shrunk artifact
///   planorder_sim --corpus=tests/sim_corpus.txt
///   planorder_sim --artifact=min.scenario      # where to write reproducers

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/harness.h"
#include "sim/scenario.h"
#include "sim/shrink.h"

namespace planorder::sim {
namespace {

struct Flags {
  uint64_t seed = 1;
  int iters = 100;
  int start = 0;
  bool shrink = true;
  bool verbose = false;
  std::string replay;       // "seed:step"
  std::string replay_file;  // serialized Scenario
  std::string corpus;       // file of "seed:step" lines
  std::string artifact;     // where to write the minimized scenario
  std::vector<int> threads;  // overrides scenario thread counts
  std::string anyk;         // "", "force" (ranked check on everywhere),
                            // or "only" (ranked check alone)
  std::string multi;        // "", "force" (multi-session check on
                            // everywhere), or "only" (that check alone)
  std::string drift;        // "", "force" (adaptive re-ranking check on
                            // everywhere), or "only" (that check alone)
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "seed", &value)) {
      flags->seed = std::stoull(value);
    } else if (ParseFlag(arg, "iters", &value)) {
      flags->iters = std::stoi(value);
    } else if (ParseFlag(arg, "start", &value)) {
      flags->start = std::stoi(value);
    } else if (ParseFlag(arg, "replay", &value)) {
      flags->replay = value;
    } else if (ParseFlag(arg, "replay-file", &value)) {
      flags->replay_file = value;
    } else if (ParseFlag(arg, "corpus", &value)) {
      flags->corpus = value;
    } else if (ParseFlag(arg, "artifact", &value)) {
      flags->artifact = value;
    } else if (ParseFlag(arg, "threads", &value)) {
      flags->threads.clear();
      std::istringstream stream(value);
      std::string item;
      while (std::getline(stream, item, ',')) {
        if (!item.empty()) flags->threads.push_back(std::stoi(item));
      }
    } else if (ParseFlag(arg, "anyk", &value)) {
      if (value != "force" && value != "only") {
        std::cerr << "--anyk wants 'force' or 'only', got '" << value
                  << "'\n";
        return false;
      }
      flags->anyk = value;
    } else if (ParseFlag(arg, "multi", &value)) {
      if (value != "force" && value != "only") {
        std::cerr << "--multi wants 'force' or 'only', got '" << value
                  << "'\n";
        return false;
      }
      flags->multi = value;
    } else if (ParseFlag(arg, "drift", &value)) {
      if (value != "force" && value != "only") {
        std::cerr << "--drift wants 'force' or 'only', got '" << value
                  << "'\n";
        return false;
      }
      flags->drift = value;
    } else if (arg == "--no-shrink") {
      flags->shrink = false;
    } else if (arg == "--verbose") {
      flags->verbose = true;
    } else if (arg == "--help") {
      return false;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return false;
    }
  }
  return true;
}

void Usage() {
  std::cerr
      << "planorder_sim — differential simulation sweep of the plan-ordering "
         "library\n"
         "  --seed=S            sweep seed (default 1)\n"
         "  --iters=N           scenarios to run (default 100)\n"
         "  --start=K           first sweep step (default 0)\n"
         "  --threads=a,b       override scenario eval-thread counts\n"
         "  --anyk=force|only   force the ranked (any-k) check on in every\n"
         "                      scenario; 'only' also turns every other\n"
         "                      check off (the CI ranked slice)\n"
         "  --multi=force|only  likewise for the multi-session cluster\n"
         "                      check (the CI cluster slice)\n"
         "  --drift=force|only  likewise for the adaptive re-ranking\n"
         "                      check (the CI drift slice)\n"
         "  --replay=SEED:STEP  replay one sweep step\n"
         "  --replay-file=PATH  run a serialized (e.g. shrunk) scenario\n"
         "  --corpus=PATH       run every SEED:STEP line of a corpus file\n"
         "  --artifact=PATH     write the minimized failing scenario here\n"
         "  --no-shrink         report the raw failure without minimizing\n"
         "  --verbose           per-scenario progress\n";
}

/// Runs one scenario; on failure prints the report (shrinking unless
/// disabled), writes the artifact, and returns false.
bool RunOne(const Scenario& scenario, const Flags& flags,
            const SimOptions& options, SimReport* report) {
  Status status = RunScenario(scenario, options, report);
  if (status.ok()) return true;

  std::cerr << "\nFAIL " << scenario.Summary() << "\n  " << status.message()
            << "\n  replay: planorder_sim --replay=" << scenario.base_seed
            << ":" << scenario.step << "\n";
  std::string artifact_body = scenario.Serialize();
  if (flags.shrink) {
    std::cerr << "  shrinking..." << std::flush;
    const ShrinkResult minimized = Shrink(scenario, options);
    std::cerr << " done (" << minimized.attempts << " attempts, "
              << minimized.rounds << " rounds)\n";
    std::cerr << "  minimized: " << minimized.scenario.Summary() << "\n  "
              << minimized.failure << "\n  scenario: "
              << minimized.scenario.Serialize() << "\n";
    artifact_body = minimized.scenario.Serialize();
  }
  if (!flags.artifact.empty()) {
    std::ofstream out(flags.artifact);
    out << artifact_body << "\n";
    std::cerr << "  artifact written to " << flags.artifact << "\n";
  }
  return false;
}

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    Usage();
    return 2;
  }
  SimOptions options;
  SimReport report;

  auto apply_overrides = [&flags](Scenario scenario) {
    if (!flags.threads.empty()) scenario.thread_counts = flags.threads;
    if (!flags.anyk.empty()) {
      scenario.check_ranked = true;
      if (flags.anyk == "only") {
        // Ranked check alone: no (measure, algo) sweeps, no runtime check.
        scenario.measures.clear();
        scenario.check_runtime = false;
        scenario.check_multi = false;
        scenario.check_drift = false;
      }
    }
    if (!flags.multi.empty()) {
      scenario.check_multi = true;
      if (flags.multi == "only") {
        scenario.measures.clear();
        scenario.check_runtime = false;
        scenario.check_ranked = false;
        scenario.check_drift = false;
      }
    }
    if (!flags.drift.empty()) {
      scenario.check_drift = true;
      if (flags.drift == "only") {
        scenario.measures.clear();
        scenario.check_runtime = false;
        scenario.check_ranked = false;
        scenario.check_multi = false;
      }
    }
    return scenario;
  };

  if (!flags.replay_file.empty()) {
    std::ifstream in(flags.replay_file);
    if (!in) {
      std::cerr << "cannot open " << flags.replay_file << "\n";
      return 2;
    }
    std::string line;
    std::getline(in, line);
    StatusOr<Scenario> scenario = Scenario::Deserialize(line);
    if (!scenario.ok()) {
      std::cerr << "bad scenario file: " << scenario.status().message()
                << "\n";
      return 2;
    }
    if (!RunOne(apply_overrides(*scenario), flags, options, &report)) {
      return 1;
    }
    std::cout << "scenario OK (" << report.checks << " checks, "
              << report.skipped << " skipped)\n";
    return 0;
  }

  std::vector<std::pair<uint64_t, int>> steps;
  if (!flags.replay.empty()) {
    const size_t colon = flags.replay.find(':');
    if (colon == std::string::npos) {
      std::cerr << "--replay wants SEED:STEP\n";
      return 2;
    }
    steps.emplace_back(std::stoull(flags.replay.substr(0, colon)),
                       std::stoi(flags.replay.substr(colon + 1)));
  } else if (!flags.corpus.empty()) {
    std::ifstream in(flags.corpus);
    if (!in) {
      std::cerr << "cannot open " << flags.corpus << "\n";
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      const size_t colon = line.find(':');
      if (colon == std::string::npos) {
        std::cerr << "bad corpus line (want SEED:STEP): " << line << "\n";
        return 2;
      }
      steps.emplace_back(std::stoull(line.substr(0, colon)),
                         std::stoi(line.substr(colon + 1)));
    }
  } else {
    for (int i = 0; i < flags.iters; ++i) {
      steps.emplace_back(flags.seed, flags.start + i);
    }
  }

  for (size_t i = 0; i < steps.size(); ++i) {
    const Scenario scenario =
        apply_overrides(MakeScenario(steps[i].first, steps[i].second));
    if (flags.verbose) {
      std::cout << "[" << (i + 1) << "/" << steps.size() << "] "
                << scenario.Summary() << "\n";
    } else if (i > 0 && i % 50 == 0) {
      std::cout << "  ..." << i << "/" << steps.size() << " scenarios, "
                << report.checks << " checks\n"
                << std::flush;
    }
    if (!RunOne(scenario, flags, options, &report)) return 1;
  }
  std::cout << steps.size() << " scenarios OK (" << report.checks
            << " checks, " << report.skipped << " inapplicable pairs "
            << "skipped)\n";
  return 0;
}

}  // namespace
}  // namespace planorder::sim

int main(int argc, char** argv) { return planorder::sim::Main(argc, argv); }
