#ifndef PLANORDER_SIM_SCENARIO_H_
#define PLANORDER_SIM_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "anyk/weights.h"
#include "base/status.h"
#include "runtime/remote_source.h"
#include "stats/workload.h"
#include "utility/measures.h"

namespace planorder::sim {

/// The ordering algorithms under differential test.
enum class AlgoKind {
  kGreedy,         // Section 4; fully monotonic measures only
  kIDrips,         // Section 5.2, persistent frontier (DESIGN.md §6)
  kIDripsRebuild,  // Section 5.2, rebuild-from-roots mode
  kStreamer,       // Section 5.2 Figure 5; diminishing-returns measures only
  kPi,             // PI baseline (brute force + independence filter)
};

/// Stable name ("greedy", "idrips", ...), and its inverse.
std::string AlgoKindName(AlgoKind kind);
StatusOr<AlgoKind> AlgoKindFromName(const std::string& name);

/// All algorithm kinds, in enum order.
std::vector<AlgoKind> AllAlgoKinds();
/// All measure kinds, in enum order.
std::vector<utility::MeasureKind> AllMeasureKinds();

/// One fully specified simulation scenario: a synthetic LAV catalog +
/// workload, the utility measures and ordering algorithms to cross-check,
/// the evaluation thread counts, and a runtime fault/latency schedule. Every
/// field is derived deterministically from (base_seed, step) by MakeScenario,
/// so a failure report of `seed:step` replays bit-identically; the shrinker
/// then mutates fields directly, which is why the struct is flat data with a
/// text serialization rather than an opaque seed.
struct Scenario {
  /// Provenance: the sweep that produced this scenario (replay key).
  uint64_t base_seed = 1;
  int step = 0;

  // --- Workload (the LAV catalog + statistics drawn for this scenario) ---
  int query_length = 2;
  int bucket_size = 3;
  double overlap_rate = 0.3;
  int regions_per_bucket = 8;
  /// When set, every source shares one transmission cost, which makes cost
  /// measure (2) fully monotonic (kCost2UniformAlpha becomes applicable).
  bool uniform_alpha = false;
  uint64_t workload_seed = 1;

  // --- What to cross-check ---
  std::vector<utility::MeasureKind> measures;
  std::vector<AlgoKind> algos;
  /// Evaluation-pool sizes whose emissions must be byte-identical to the
  /// serial run. (1 is implied: the serial run is always the baseline.)
  std::vector<int> thread_counts;
  bool probe_lower_bounds = false;

  // --- Property toggles (the shrinker turns these off one by one) ---
  bool check_oracle = true;
  bool check_monotone = true;
  bool check_relabel = true;
  bool check_runtime = true;
  /// Ranked (any-k) differential check: stream the weighted answers of the
  /// scenario's synthetic domain through anyk::RankedAnswerStream and demand
  /// byte-identical output to the brute-force sort-all oracle, plus the
  /// ranked metamorphic properties (monotone weight transform, relabeling,
  /// serial == parallel).
  bool check_ranked = false;
  /// Multi-session cluster check (DESIGN.md §10): run several concurrent
  /// sessions of the scenario's query class through a ShardedService sharing
  /// one source-operation cache, and demand (a) every session's answer set
  /// is byte-identical to a serial replay and (b) each emitted step's
  /// utility equals a fresh evaluation under the cache residency the orderer
  /// saw at that step.
  bool check_multi = false;

  // --- Multi-session knobs (check_multi) ---
  int num_sessions = 4;
  int num_shards = 2;
  /// Fault injection: disable the per-step residency refresh
  /// (ServiceOptions::refresh_source_cache_view = false), reproducing the
  /// stale-utility bug the property exists to catch. Used by the sim self
  /// test; never set by MakeScenario.
  bool multi_inject_stale = false;

  /// Adaptive re-ranking property (DESIGN.md §12): drift the true source
  /// statistics mid-stream, feed execution observations into an
  /// adaptive::AdaptiveOrderer after every emission, and demand its whole
  /// emission sequence match an independent rebuild-from-observed-stats
  /// oracle byte-for-byte — plus per-step conditional-maximality and
  /// serial == parallel at every thread count.
  bool check_drift = false;

  // --- Drift knobs (check_drift) ---
  /// Emission index at which the true statistics jump.
  int drift_step = 2;
  /// Multiplier applied to the drifted sources' true cardinality.
  double drift_factor = 3.0;
  /// Divergence band of the adaptive orderer (adaptive::DriftOptions::band).
  double drift_band = 2.0;
  /// EWMA decay of the observation folds (ObservedStatsOptions::decay).
  double drift_decay = 0.5;
  /// How many sources drift.
  int drift_sources = 1;
  /// Seeds the drifted-source choice and the measure pick.
  uint64_t drift_seed = 1;
  /// Fault injection: clear DriftOptions::react_to_observations — the
  /// orderer keeps serving its stale initial ranking, the planted bug the
  /// property must catch. Used by the sim self test; never set by
  /// MakeScenario.
  bool drift_inject_stale = false;

  // --- Ranked-enumeration knobs (check_ranked) ---
  uint64_t weights_seed = 1;
  anyk::Aggregation ranked_aggregation = anyk::Aggregation::kSum;

  // --- Runtime fault/latency schedule (check_runtime) ---
  int num_answers = 100;
  uint64_t runtime_seed = 1;
  double base_latency_ms = 0.0;
  double per_binding_latency_ms = 0.0;
  double per_tuple_latency_ms = 0.0;
  double latency_jitter = 0.0;
  double transient_failure_rate = 0.0;
  double hedge_delay_ms = 0.0;
  int retry_max_attempts = 64;

  stats::WorkloadOptions MakeWorkloadOptions() const;
  runtime::NetworkModel MakeNetworkModel() const;

  /// Plans in the full space: bucket_size ^ query_length.
  uint64_t NumPlans() const;

  /// Short human-readable summary (one line).
  std::string Summary() const;

  /// One-line key=value serialization, Deserialize's inverse. This is the
  /// replay-artifact format: a shrunk scenario no longer matches its seed
  /// derivation, so failures are persisted in this explicit form.
  std::string Serialize() const;
  static StatusOr<Scenario> Deserialize(const std::string& line);
};

/// Derives scenario `step` of the sweep under `base_seed`. Pure function of
/// its arguments: scenario i never depends on scenarios 0..i-1, so any step
/// can be replayed in isolation (`planorder_sim --replay=<seed>:<step>`).
Scenario MakeScenario(uint64_t base_seed, int step);

}  // namespace planorder::sim

#endif  // PLANORDER_SIM_SCENARIO_H_
