#ifndef PLANORDER_SIM_PROPERTIES_H_
#define PLANORDER_SIM_PROPERTIES_H_

#include <cstdint>
#include <string>

#include "base/status.h"
#include "sim/harness.h"
#include "sim/scenario.h"
#include "stats/workload.h"
#include "utility/measures.h"
#include "utility/model.h"

namespace planorder::sim {

/// Utility-model decorator applying u' = scale * u + shift (scale > 0, a
/// strictly increasing affine map). Every structural predicate (monotonicity,
/// diminishing returns, independence, group independence, probe choice)
/// forwards to the wrapped model: an affine map changes no comparison between
/// utilities, so a correct orderer must emit the same order. With shift == 0
/// and scale a power of two the transform is floating-point-exact and the
/// emission sequence must match bit-for-bit; otherwise rounding can merge
/// near-ties and only the utility sequences are comparable.
class AffineModel : public utility::UtilityModel {
 public:
  /// `base` must outlive the decorator and be built over `workload`.
  AffineModel(const utility::UtilityModel* base,
              const stats::Workload* workload, double scale, double shift);

  std::string name() const override;
  Interval Evaluate(utility::NodeSpan nodes,
                    const utility::ExecutionContext& ctx) const override;
  bool fully_monotonic() const override { return base_->fully_monotonic(); }
  double MonotoneScore(int bucket, int source) const override {
    return base_->MonotoneScore(bucket, source);
  }
  bool diminishing_returns() const override {
    return base_->diminishing_returns();
  }
  bool fully_independent() const override {
    return base_->fully_independent();
  }
  bool Independent(const utility::ConcretePlan& a,
                   const utility::ConcretePlan& b) const override {
    return base_->Independent(a, b);
  }
  bool GroupIndependentOf(utility::NodeSpan nodes,
                          const utility::ConcretePlan& plan) const override {
    return base_->GroupIndependentOf(nodes, plan);
  }
  std::optional<utility::ConcretePlan> FindIndependentGroupPlan(
      utility::NodeSpan nodes,
      const std::vector<const utility::ConcretePlan*>& others) const override {
    return base_->FindIndependentGroupPlan(nodes, others);
  }
  int ProbeMember(const stats::StatSummary& summary) const override {
    return base_->ProbeMember(summary);
  }

 private:
  const utility::UtilityModel* base_;
  double scale_;
  double shift_;
};

/// Metamorphic property: ordering under scale * u + shift. When the
/// transform is exact (shift == 0, scale a positive power of two) the plan
/// sequence must be identical and utilities must satisfy u' == scale * u
/// exactly; otherwise utilities must match within `tolerance` after the
/// inverse transform.
Status CheckMonotoneTransform(const stats::Workload& workload,
                              utility::MeasureKind kind, AlgoKind algo,
                              bool probe_lower_bounds, double scale,
                              double shift, double tolerance);

/// Metamorphic property: relabeling invariance. Permutes the sources inside
/// every bucket (seeded Fisher-Yates), reorders the statistics via
/// Workload::FromParts, and requires (a) the permuted run's emission-utility
/// sequence to match the base run's within `tolerance` (tie-breaks are
/// index-dependent, so plan identities may differ at exact ties), and (b)
/// the permuted emissions to pass the exhaustive-order oracle in their own
/// basis when the space has at most `max_oracle_plans` plans.
Status CheckRelabelInvariance(const stats::Workload& workload,
                              utility::MeasureKind kind, AlgoKind algo,
                              bool probe_lower_bounds, uint64_t perm_seed,
                              double tolerance, uint64_t max_oracle_plans);

/// Determinism contract: a run with a shared evaluation pool of `threads`
/// workers must reproduce the serial emissions byte-identically — same
/// plans, bit-equal utilities, equal plan_evaluations().
Status CheckParallelAgreement(const stats::Workload& workload,
                              utility::MeasureKind kind, AlgoKind algo,
                              bool probe_lower_bounds,
                              const std::vector<core::OrderedPlan>& serial,
                              int64_t serial_evaluations, int threads);

/// End-to-end property: mediating through the resilient concurrent runtime
/// under the scenario's fault/latency schedule (every fault transient, ample
/// retries) must yield exactly the serial mediator's step sequence and
/// answers at every thread count — and, on a virtual clock, the same total
/// simulated elapsed time regardless of thread count (atomic time
/// accumulation commutes).
Status CheckRuntimeEquivalence(const Scenario& scenario);

/// Ranked-enumeration differential check (src/anyk/). Builds the scenario's
/// synthetic domain and streams its weighted answers through
/// anyk::RankedAnswerStream (IDrips plan order, full plan budget), then
/// demands, all byte-identical:
///  (a) the streamed sequence equals the brute-force oracle — every sound,
///      executable rewriting of the full Cartesian product materialized and
///      sorted (weight desc, tuple lex asc), duplicates keeping max weight;
///  (b) scaling every tuple weight by a power of two scales every emission
///      weight by exactly that factor without reordering anything;
///  (c) relabeling (permuting each bucket's sources) changes nothing;
///  (d) re-running with a shared evaluation pool at every scenario thread
///      count reproduces the serial emission sequence.
/// Scenarios whose full space exceeds `max_oracle_plans` are skipped (the
/// oracle is exponential).
Status CheckRankedEmission(const Scenario& scenario,
                           uint64_t max_oracle_plans);

/// Multi-session cluster property (DESIGN.md §10). Runs
/// `scenario.num_sessions` sessions of the scenario's synthetic query class
/// through a cluster::ShardedService whose shards share one
/// cluster::SourceOperationCache, under a cache-aware utility measure
/// (kFailureCache), and checks:
///  (a) serial oracle — sessions interleaved round-robin on one thread:
///      every emitted step's utility equals a fresh model evaluation under
///      the exact cache residency the view reported when the step was
///      ordered (utilities provably reflect cache state at eval time, the
///      cross-session conditional-utility contract);
///  (b) any interleaving — the same sessions driven by one client thread
///      each: every session's answer set is byte-identical to its serial
///      replay (sorted comparison; answers are interleaving-invariant
///      because cached rows equal fetched rows), and each step's utility is
///      self-consistent with the residency snapshot its session recorded;
///  (c) with `scenario.multi_inject_stale` the per-step residency refresh is
///      disabled — the deliberately planted stale-utility bug — and check
///      (a) must fail (the sim self-test asserts it does).
Status CheckMultiSession(const Scenario& scenario, double tolerance);

/// Adaptive re-ranking property (DESIGN.md §12). Drifts the true
/// cardinality of `scenario.drift_sources` sources by `drift_factor` from
/// emission `drift_step` on, feeds one synthetic execution observation per
/// emitted plan step into an adaptive::ObservedStats (folding a window after
/// every step), and drains an adaptive::AdaptiveOrderer under that feedback
/// loop. Checks:
///  (a) oracle — the adaptive emission sequence (plans AND utilities,
///      bit-for-bit) equals an independent rebuild-from-observed-stats
///      replay: an oracle that re-runs StatsDiverged/BlendWorkload itself
///      and, on each divergence, constructs a *fresh* inner orderer over the
///      blended statistics, preloads the executed prefix and skips
///      already-emitted plans — the mid-stream discard-and-reorder contract
///      stated from first principles; the rebuild counts must agree too;
///  (b) conditional maximality — every oracle emission's utility matches a
///      brute-force fresh evaluation conditioned on exactly the executed
///      prefix, and no not-yet-emitted plan beats it (within `tolerance`)
///      under the generation's blended statistics;
///  (c) determinism — re-running the adaptive loop with a shared evaluation
///      pool at every scenario thread count reproduces the serial emissions
///      byte-identically.
/// With `scenario.drift_inject_stale` the orderer's divergence reaction is
/// disabled (the planted stale-statistics bug) while the oracle still
/// reacts, so check (a) must fail once the drift actually flips the ranking
/// — the sim self-test asserts it does. Spaces above 80 plans are skipped
/// (the oracle re-ranks O(rebuilds * plans^2)).
Status CheckDriftRerank(const Scenario& scenario, double tolerance);

}  // namespace planorder::sim

#endif  // PLANORDER_SIM_PROPERTIES_H_
