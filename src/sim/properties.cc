#include "sim/properties.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "adaptive/adaptive_orderer.h"
#include "adaptive/drift_monitor.h"
#include "adaptive/observed_stats.h"
#include "anyk/brute_force.h"
#include "anyk/ranked_stream.h"
#include "base/rng.h"
#include "core/idrips.h"
#include "cluster/sharded_service.h"
#include "cluster/source_cache.h"
#include "core/pi.h"
#include "core/plan_space.h"
#include "exec/mediator.h"
#include "exec/source_access.h"
#include "exec/synthetic_domain.h"
#include "reformulation/executable_order.h"
#include "reformulation/rewriting.h"
#include "runtime/clock.h"
#include "runtime/retry_policy.h"
#include "runtime/source_runtime.h"
#include "sim/oracle.h"

namespace planorder::sim {

namespace {

std::string PlanToString(const utility::ConcretePlan& plan) {
  std::string out = "[";
  for (size_t b = 0; b < plan.size(); ++b) {
    if (b > 0) out += " ";
    out += std::to_string(plan[b]);
  }
  return out + "]";
}

/// True when `x` is a positive power of two (the scales whose multiplication
/// is exact in binary floating point).
bool IsPowerOfTwo(double x) {
  if (x <= 0.0) return false;
  int exponent = 0;
  return std::frexp(x, &exponent) == 0.5;
}

StatusOr<std::vector<core::OrderedPlan>> RunAlgo(
    const stats::Workload& workload, utility::UtilityModel* model,
    AlgoKind algo, bool probe_lower_bounds) {
  PLANORDER_ASSIGN_OR_RETURN(
      std::unique_ptr<core::Orderer> orderer,
      MakeOrderer(algo, &workload, model, probe_lower_bounds));
  return Drain(*orderer, /*pool=*/nullptr);
}

}  // namespace

AffineModel::AffineModel(const utility::UtilityModel* base,
                         const stats::Workload* workload, double scale,
                         double shift)
    : utility::UtilityModel(workload),
      base_(base),
      scale_(scale),
      shift_(shift) {
  PLANORDER_CHECK(scale > 0.0) << "affine transform must be increasing";
}

std::string AffineModel::name() const {
  return "affine(" + base_->name() + ")";
}

Interval AffineModel::Evaluate(utility::NodeSpan nodes,
                               const utility::ExecutionContext& ctx) const {
  const Interval u = base_->Evaluate(nodes, ctx);
  return Interval(scale_ * u.lo() + shift_, scale_ * u.hi() + shift_);
}

Status CheckMonotoneTransform(const stats::Workload& workload,
                              utility::MeasureKind kind, AlgoKind algo,
                              bool probe_lower_bounds, double scale,
                              double shift, double tolerance) {
  PLANORDER_ASSIGN_OR_RETURN(std::unique_ptr<utility::UtilityModel> base,
                             utility::MakeMeasure(kind, &workload));
  PLANORDER_ASSIGN_OR_RETURN(
      std::vector<core::OrderedPlan> reference,
      RunAlgo(workload, base.get(), algo, probe_lower_bounds));

  PLANORDER_ASSIGN_OR_RETURN(std::unique_ptr<utility::UtilityModel> inner,
                             utility::MakeMeasure(kind, &workload));
  AffineModel transformed(inner.get(), &workload, scale, shift);
  PLANORDER_ASSIGN_OR_RETURN(
      std::vector<core::OrderedPlan> emissions,
      RunAlgo(workload, &transformed, algo, probe_lower_bounds));

  if (emissions.size() != reference.size()) {
    std::ostringstream out;
    out << "monotone-transform: base run emitted " << reference.size()
        << " plans, transformed run " << emissions.size();
    return InternalError(out.str());
  }
  // shift != 0 rounds (binary addition is inexact), which can merge
  // near-ties; only the exact transform pins the whole emission sequence.
  const bool exact = shift == 0.0 && IsPowerOfTwo(scale);
  for (size_t i = 0; i < emissions.size(); ++i) {
    if (exact) {
      if (emissions[i].plan != reference[i].plan ||
          emissions[i].utility != scale * reference[i].utility) {
        std::ostringstream out;
        out.precision(17);
        out << "monotone-transform: exact transform u' = " << scale
            << " * u diverged at step " << i << ": base plan "
            << PlanToString(reference[i].plan) << " u="
            << reference[i].utility << ", transformed plan "
            << PlanToString(emissions[i].plan) << " u'="
            << emissions[i].utility;
        return InternalError(out.str());
      }
      continue;
    }
    const double mapped = (emissions[i].utility - shift) / scale;
    if (std::abs(mapped - reference[i].utility) >
        tolerance * std::max(1.0, std::abs(reference[i].utility))) {
      std::ostringstream out;
      out.precision(17);
      out << "monotone-transform: u' = " << scale << " * u + " << shift
          << " diverged at step " << i << ": base u="
          << reference[i].utility << ", transformed maps back to " << mapped;
      return InternalError(out.str());
    }
  }
  return OkStatus();
}

Status CheckRelabelInvariance(const stats::Workload& workload,
                              utility::MeasureKind kind, AlgoKind algo,
                              bool probe_lower_bounds, uint64_t perm_seed,
                              double tolerance, uint64_t max_oracle_plans) {
  PLANORDER_ASSIGN_OR_RETURN(std::unique_ptr<utility::UtilityModel> base,
                             utility::MakeMeasure(kind, &workload));
  PLANORDER_ASSIGN_OR_RETURN(
      std::vector<core::OrderedPlan> reference,
      RunAlgo(workload, base.get(), algo, probe_lower_bounds));

  // Seeded Fisher-Yates per bucket: permuted[b][i] = original source index
  // now sitting at position i.
  Rng rng(runtime::MixHash(perm_seed));
  std::vector<std::vector<int>> perm(workload.num_buckets());
  std::vector<std::vector<stats::SourceStats>> buckets(workload.num_buckets());
  std::vector<double> domain_sizes(workload.num_buckets());
  for (int b = 0; b < workload.num_buckets(); ++b) {
    perm[b].resize(workload.bucket_size(b));
    for (int i = 0; i < workload.bucket_size(b); ++i) perm[b][i] = i;
    for (size_t i = perm[b].size(); i > 1; --i) {
      std::swap(perm[b][i - 1], perm[b][rng.UniformInt(0, int64_t(i) - 1)]);
    }
    for (int i = 0; i < workload.bucket_size(b); ++i) {
      buckets[b].push_back(workload.source(b, perm[b][i]));
    }
    domain_sizes[b] = workload.domain_size(b);
  }
  PLANORDER_ASSIGN_OR_RETURN(
      stats::Workload relabeled,
      stats::Workload::FromParts(std::move(buckets), workload.region_weights(),
                                 workload.access_overhead(),
                                 std::move(domain_sizes)));

  PLANORDER_ASSIGN_OR_RETURN(std::unique_ptr<utility::UtilityModel> model,
                             utility::MakeMeasure(kind, &relabeled));
  PLANORDER_ASSIGN_OR_RETURN(
      std::vector<core::OrderedPlan> emissions,
      RunAlgo(relabeled, model.get(), algo, probe_lower_bounds));

  if (emissions.size() != reference.size()) {
    std::ostringstream out;
    out << "relabel: base run emitted " << reference.size()
        << " plans, relabeled run " << emissions.size();
    return InternalError(out.str());
  }
  for (size_t i = 0; i < emissions.size(); ++i) {
    if (std::abs(emissions[i].utility - reference[i].utility) >
        tolerance * std::max(1.0, std::abs(reference[i].utility))) {
      std::ostringstream out;
      out.precision(17);
      out << "relabel: utility sequence diverged at step " << i << ": base "
          << reference[i].utility << " (plan "
          << PlanToString(reference[i].plan) << "), relabeled "
          << emissions[i].utility << " (plan "
          << PlanToString(emissions[i].plan) << " in the permuted basis)";
      return InternalError(out.str());
    }
  }
  const core::PlanSpace full = core::PlanSpace::FullSpace(relabeled);
  if (full.NumPlans() <= max_oracle_plans) {
    Status oracle =
        VerifyExactOrder(relabeled, kind, {full}, emissions, tolerance);
    if (!oracle.ok()) {
      return InternalError("relabel: permuted-basis run failed the oracle: " +
                           std::string(oracle.message()));
    }
  }
  return OkStatus();
}

Status CheckParallelAgreement(const stats::Workload& workload,
                              utility::MeasureKind kind, AlgoKind algo,
                              bool probe_lower_bounds,
                              const std::vector<core::OrderedPlan>& serial,
                              int64_t serial_evaluations, int threads) {
  PLANORDER_ASSIGN_OR_RETURN(std::unique_ptr<utility::UtilityModel> model,
                             utility::MakeMeasure(kind, &workload));
  PLANORDER_ASSIGN_OR_RETURN(
      std::unique_ptr<core::Orderer> orderer,
      MakeOrderer(algo, &workload, model.get(), probe_lower_bounds));
  runtime::ThreadPool pool(threads);
  PLANORDER_ASSIGN_OR_RETURN(std::vector<core::OrderedPlan> emissions,
                             Drain(*orderer, &pool));

  if (emissions.size() != serial.size()) {
    std::ostringstream out;
    out << "parallel: " << threads << "-thread run emitted "
        << emissions.size() << " plans, serial run " << serial.size();
    return InternalError(out.str());
  }
  for (size_t i = 0; i < emissions.size(); ++i) {
    if (emissions[i].plan != serial[i].plan ||
        emissions[i].utility != serial[i].utility) {
      std::ostringstream out;
      out.precision(17);
      out << "parallel: " << threads << "-thread run diverged from serial at "
          << "step " << i << ": serial plan " << PlanToString(serial[i].plan)
          << " u=" << serial[i].utility << ", parallel plan "
          << PlanToString(emissions[i].plan) << " u="
          << emissions[i].utility << " (contract: byte-identical)";
      return InternalError(out.str());
    }
  }
  if (orderer->plan_evaluations() != serial_evaluations) {
    std::ostringstream out;
    out << "parallel: " << threads << "-thread run performed "
        << orderer->plan_evaluations() << " plan evaluations, serial run "
        << serial_evaluations << " (contract: identical work)";
    return InternalError(out.str());
  }
  return OkStatus();
}

namespace {

Status CompareMediatorSteps(const exec::MediatorResult& reference,
                            const exec::MediatorResult& run,
                            const std::string& label) {
  if (run.steps.size() != reference.steps.size()) {
    std::ostringstream out;
    out << label << ": " << run.steps.size() << " steps vs "
        << reference.steps.size() << " in the serial reference";
    return InternalError(out.str());
  }
  for (size_t i = 0; i < run.steps.size(); ++i) {
    const exec::MediatorStep& a = reference.steps[i];
    const exec::MediatorStep& b = run.steps[i];
    if (b.failed) {
      std::ostringstream out;
      out << label << ": step " << i << " lost plan "
          << PlanToString(b.plan) << " to source failure (" +
                 b.failure_reason + ") despite transient-only faults and "
          << "ample retries";
      return InternalError(out.str());
    }
    if (a.plan != b.plan || a.sound != b.sound ||
        a.executable != b.executable ||
        a.answers_from_plan != b.answers_from_plan ||
        a.new_answers != b.new_answers ||
        a.total_answers != b.total_answers) {
      std::ostringstream out;
      out << label << ": step " << i << " diverged from the serial "
          << "reference: serial plan " << PlanToString(a.plan) << " ("
          << a.answers_from_plan << " answers, " << a.new_answers
          << " new, " << a.total_answers << " total), runtime plan "
          << PlanToString(b.plan) << " (" << b.answers_from_plan
          << " answers, " << b.new_answers << " new, " << b.total_answers
          << " total)";
      return InternalError(out.str());
    }
  }
  if (run.total_answers != reference.total_answers) {
    std::ostringstream out;
    out << label << ": " << run.total_answers << " distinct answers vs "
        << reference.total_answers << " in the serial reference";
    return InternalError(out.str());
  }
  return OkStatus();
}

}  // namespace

Status CheckRuntimeEquivalence(const Scenario& scenario) {
  PLANORDER_ASSIGN_OR_RETURN(
      std::unique_ptr<exec::SyntheticDomain> domain,
      exec::BuildSyntheticDomain(scenario.MakeWorkloadOptions(),
                                 scenario.num_answers));

  exec::SourceRegistry registry;
  for (datalog::SourceId id = 0; id < domain->catalog.num_sources(); ++id) {
    const std::string& name = domain->catalog.source(id).name;
    PLANORDER_ASSIGN_OR_RETURN(exec::AccessibleSource * source,
                               registry.Register(name, 2));
    for (const auto& tuple : domain->source_facts.TuplesFor(name)) {
      PLANORDER_RETURN_IF_ERROR(source->Add(tuple));
    }
  }

  exec::Mediator mediator(&domain->catalog, domain->query,
                          &domain->source_facts, domain->source_ids);
  const int max_plans =
      int(std::min<uint64_t>(scenario.NumPlans(), uint64_t{12}));

  auto run = [&](exec::PlanExecutor* executor)
      -> StatusOr<exec::MediatorResult> {
    PLANORDER_ASSIGN_OR_RETURN(
        std::unique_ptr<utility::UtilityModel> model,
        utility::MakeMeasure(utility::MeasureKind::kCoverage,
                             &domain->workload));
    PLANORDER_ASSIGN_OR_RETURN(
        std::unique_ptr<core::PiOrderer> orderer,
        core::PiOrderer::Create(&domain->workload, model.get(),
                                {core::PlanSpace::FullSpace(domain->workload)}));
    exec::Mediator::RunLimits limits;
    limits.max_plans = max_plans;
    if (executor != nullptr) {
      return mediator.Run(*orderer, limits, *executor);
    }
    return mediator.Run(*orderer, max_plans, &registry);
  };

  // Serial reference: the classic dependent-join mediator, no simulated
  // network at all.
  PLANORDER_ASSIGN_OR_RETURN(exec::MediatorResult reference, run(nullptr));

  auto runtime_run = [&](int threads, int max_partitions, double* elapsed_ms)
      -> StatusOr<exec::MediatorResult> {
    runtime::VirtualClock clock;
    runtime::RuntimeOptions options;
    options.num_threads = threads;
    options.max_partitions_per_call = max_partitions;
    options.seed = scenario.runtime_seed;
    options.time_dilation = 0.0;
    options.clock = &clock;
    options.default_model = scenario.MakeNetworkModel();
    options.retry.max_attempts = scenario.retry_max_attempts;
    runtime::SourceRuntime runtime(&registry, options);
    PLANORDER_ASSIGN_OR_RETURN(exec::MediatorResult result, run(&runtime));
    if (elapsed_ms != nullptr) *elapsed_ms = clock.NowMs();
    return result;
  };

  // (a) Answer equivalence: at every thread count, with the runtime's
  // natural partitioning (one partition per pool worker), the step sequence
  // and answers must match the serial mediator exactly — transient faults
  // are absorbed by retries, concurrency changes nothing observable.
  std::vector<int> thread_counts = {1};
  thread_counts.insert(thread_counts.end(), scenario.thread_counts.begin(),
                       scenario.thread_counts.end());
  for (int threads : thread_counts) {
    PLANORDER_ASSIGN_OR_RETURN(
        exec::MediatorResult result,
        runtime_run(threads, /*max_partitions=*/0, /*elapsed_ms=*/nullptr));
    PLANORDER_RETURN_IF_ERROR(CompareMediatorSteps(
        reference, result,
        "runtime(threads=" + std::to_string(threads) + ")"));
  }

  // (b) Payload determinism: with single-partition calls the batch payloads
  // are identical at any thread count, so every hashed latency/fault draw —
  // and with them the accounting and the commutatively-accumulated virtual
  // elapsed time — must be bit-equal across thread counts. (Under natural
  // partitioning the payloads themselves vary with the pool size, so this
  // comparison is only meaningful with the partitioning pinned.)
  double base_elapsed_ms = 0.0;
  PLANORDER_ASSIGN_OR_RETURN(
      exec::MediatorResult base,
      runtime_run(/*threads=*/1, /*max_partitions=*/1, &base_elapsed_ms));
  PLANORDER_RETURN_IF_ERROR(
      CompareMediatorSteps(reference, base, "runtime(1 thread, 1 partition)"));
  for (int threads : scenario.thread_counts) {
    double elapsed_ms = 0.0;
    PLANORDER_ASSIGN_OR_RETURN(
        exec::MediatorResult result,
        runtime_run(threads, /*max_partitions=*/1, &elapsed_ms));
    if (elapsed_ms != base_elapsed_ms) {
      std::ostringstream out;
      out.precision(17);
      out << "runtime: virtual elapsed time depends on the thread count "
          << "despite identical call payloads: 1 thread -> "
          << base_elapsed_ms << " ms, " << threads << " threads -> "
          << elapsed_ms << " ms";
      return InternalError(out.str());
    }
    const exec::RuntimeAccounting& acct = result.runtime;
    if (acct.retries != base.runtime.retries ||
        acct.transient_failures != base.runtime.transient_failures ||
        acct.hedged_calls != base.runtime.hedged_calls ||
        acct.latency_ms_total != base.runtime.latency_ms_total) {
      std::ostringstream out;
      out.precision(17);
      out << "runtime: fault schedule depends on the thread count despite "
          << "identical call payloads: 1 thread -> (retries="
          << base.runtime.retries << " transient="
          << base.runtime.transient_failures << " hedged="
          << base.runtime.hedged_calls << " latency="
          << base.runtime.latency_ms_total << "), " << threads
          << " threads -> (retries=" << acct.retries << " transient="
          << acct.transient_failures << " hedged=" << acct.hedged_calls
          << " latency=" << acct.latency_ms_total << ")";
      return InternalError(out.str());
    }
  }

  // (c) Replay determinism: the same seed at the same thread count, with
  // genuinely concurrent partitions, reproduces the run bit-identically —
  // accounting, elapsed virtual time and all.
  if (!scenario.thread_counts.empty()) {
    const int threads = scenario.thread_counts.front();
    double first_ms = 0.0;
    double second_ms = 0.0;
    PLANORDER_ASSIGN_OR_RETURN(
        exec::MediatorResult first,
        runtime_run(threads, /*max_partitions=*/0, &first_ms));
    PLANORDER_ASSIGN_OR_RETURN(
        exec::MediatorResult second,
        runtime_run(threads, /*max_partitions=*/0, &second_ms));
    PLANORDER_RETURN_IF_ERROR(CompareMediatorSteps(
        first, second,
        "runtime replay(threads=" + std::to_string(threads) + ")"));
    if (first_ms != second_ms ||
        first.runtime.retries != second.runtime.retries ||
        first.runtime.transient_failures !=
            second.runtime.transient_failures ||
        first.runtime.hedged_calls != second.runtime.hedged_calls ||
        first.runtime.latency_ms_total != second.runtime.latency_ms_total) {
      std::ostringstream out;
      out.precision(17);
      out << "runtime: same seed, same thread count (" << threads
          << ") did not replay bit-identically: elapsed " << first_ms
          << " vs " << second_ms << " ms, retries " << first.runtime.retries
          << " vs " << second.runtime.retries << ", transient "
          << first.runtime.transient_failures << " vs "
          << second.runtime.transient_failures << ", latency "
          << first.runtime.latency_ms_total << " vs "
          << second.runtime.latency_ms_total;
      return InternalError(out.str());
    }
  }
  return OkStatus();
}

namespace {

std::string AnswerToString(const anyk::RankedAnswer& answer) {
  std::ostringstream out;
  out.precision(17);
  out << "(";
  for (size_t i = 0; i < answer.tuple.size(); ++i) {
    if (i > 0) out << ",";
    out << answer.tuple[i].ToString();
  }
  out << ") w=" << answer.weight;
  return out.str();
}

/// Element-wise byte equality of two ranked sequences (weights compare as
/// exact bits — the dyadic-rational contract makes that meaningful).
Status CompareRankedSequences(const std::vector<anyk::RankedAnswer>& reference,
                              const std::vector<anyk::RankedAnswer>& run,
                              const std::string& label) {
  if (run.size() != reference.size()) {
    std::ostringstream out;
    out << label << ": " << run.size() << " ranked answers vs "
        << reference.size() << " in the reference";
    return InternalError(out.str());
  }
  for (size_t i = 0; i < run.size(); ++i) {
    if (!(run[i] == reference[i])) {
      return InternalError(label + ": ranked emission diverged at position " +
                           std::to_string(i) + ": reference " +
                           AnswerToString(reference[i]) + ", run " +
                           AnswerToString(run[i]));
    }
  }
  return OkStatus();
}

}  // namespace

Status CheckRankedEmission(const Scenario& scenario,
                           uint64_t max_oracle_plans) {
  if (scenario.NumPlans() > max_oracle_plans) return OkStatus();
  PLANORDER_ASSIGN_OR_RETURN(
      std::unique_ptr<exec::SyntheticDomain> domain,
      exec::BuildSyntheticDomain(scenario.MakeWorkloadOptions(),
                                 scenario.num_answers));

  anyk::RankedAnswerStream::Options options;
  options.weights.seed = scenario.weights_seed;
  options.weights.aggregation = scenario.ranked_aggregation;
  // Full plan budget: the stream's answer set must be the whole union, which
  // is what makes it comparable against the sort-everything oracle.
  options.max_plans = int(scenario.NumPlans());

  auto run = [&](const std::vector<std::vector<datalog::SourceId>>& ids,
                 const anyk::WeightOptions& weights, runtime::ThreadPool* pool)
      -> StatusOr<std::vector<anyk::RankedAnswer>> {
    PLANORDER_ASSIGN_OR_RETURN(
        std::unique_ptr<utility::UtilityModel> model,
        utility::MakeMeasure(utility::MeasureKind::kCoverage,
                             &domain->workload));
    PLANORDER_ASSIGN_OR_RETURN(
        std::unique_ptr<core::Orderer> orderer,
        MakeOrderer(AlgoKind::kIDrips, &domain->workload, model.get(),
                    /*probe_lower_bounds=*/false));
    if (pool != nullptr) orderer->set_eval_pool(pool);
    anyk::RankedAnswerStream::Options run_options = options;
    run_options.weights = weights;
    PLANORDER_ASSIGN_OR_RETURN(
        anyk::RankedAnswerStream stream,
        anyk::RankedAnswerStream::Open(domain->catalog, domain->query,
                                       domain->source_facts, ids, *orderer,
                                       run_options));
    std::vector<anyk::RankedAnswer> answers;
    while (true) {
      auto next = stream.Next();
      if (!next.ok()) {
        if (next.status().code() == StatusCode::kNotFound) break;
        return next.status();
      }
      answers.push_back(*std::move(next));
    }
    return answers;
  };

  PLANORDER_ASSIGN_OR_RETURN(
      std::vector<anyk::RankedAnswer> streamed,
      run(domain->source_ids, options.weights, /*pool=*/nullptr));

  // (a) The sort-everything oracle: every sound, executable rewriting of the
  // full Cartesian product, materialized by an independent backtracking join
  // and globally sorted. Plan order plays no role here at all.
  std::vector<datalog::ConjunctiveQuery> rewritings;
  const size_t num_buckets = domain->source_ids.size();
  std::vector<size_t> odometer(num_buckets, 0);
  while (true) {
    std::vector<datalog::SourceId> choice(num_buckets);
    for (size_t b = 0; b < num_buckets; ++b) {
      choice[b] = domain->source_ids[b][odometer[b]];
    }
    PLANORDER_ASSIGN_OR_RETURN(
        auto plan,
        reformulation::BuildSoundPlan(domain->query, domain->catalog, choice));
    if (plan.has_value()) {
      auto ordered = reformulation::FindExecutableOrder(*plan,
                                                        domain->catalog);
      if (ordered.ok()) {
        rewritings.push_back((*plan).rewriting);
      } else if (ordered.status().code() != StatusCode::kFailedPrecondition) {
        return ordered.status();
      }
    }
    size_t b = 0;
    for (; b < num_buckets; ++b) {
      if (++odometer[b] < domain->source_ids[b].size()) break;
      odometer[b] = 0;
    }
    if (b == num_buckets) break;
  }
  PLANORDER_ASSIGN_OR_RETURN(
      std::vector<anyk::RankedAnswer> oracle,
      anyk::BruteForceRankedUnion(rewritings, domain->source_facts,
                                  options.weights));
  PLANORDER_RETURN_IF_ERROR(
      CompareRankedSequences(oracle, streamed, "ranked-oracle"));

  // (b) Monotone transform: scaling the tuple weights by a power of two is
  // exact, so every emission weight scales by exactly that factor and the
  // order does not budge.
  anyk::WeightOptions scaled = options.weights;
  scaled.scale = 4.0;
  PLANORDER_ASSIGN_OR_RETURN(std::vector<anyk::RankedAnswer> transformed,
                             run(domain->source_ids, scaled, /*pool=*/nullptr));
  std::vector<anyk::RankedAnswer> expected = streamed;
  for (anyk::RankedAnswer& answer : expected) answer.weight *= 4.0;
  PLANORDER_RETURN_IF_ERROR(
      CompareRankedSequences(expected, transformed, "ranked-monotone(x4)"));

  // (c) Relabeling invariance: weights are content hashes, so permuting each
  // bucket's sources permutes only which plan finds which witness — the
  // ranked union is untouched.
  Rng rng(runtime::MixHash(scenario.weights_seed ^ 0x524e4b44ull));
  std::vector<std::vector<datalog::SourceId>> permuted = domain->source_ids;
  for (std::vector<datalog::SourceId>& bucket : permuted) {
    for (size_t i = bucket.size(); i > 1; --i) {
      std::swap(bucket[i - 1], bucket[rng.UniformInt(0, int64_t(i) - 1)]);
    }
  }
  PLANORDER_ASSIGN_OR_RETURN(
      std::vector<anyk::RankedAnswer> relabeled,
      run(permuted, options.weights, /*pool=*/nullptr));
  PLANORDER_RETURN_IF_ERROR(
      CompareRankedSequences(streamed, relabeled, "ranked-relabel"));

  // (d) Serial == parallel: a shared evaluation pool may reorder utility
  // computation, never ranked emission.
  for (int threads : scenario.thread_counts) {
    runtime::ThreadPool pool(threads);
    PLANORDER_ASSIGN_OR_RETURN(std::vector<anyk::RankedAnswer> parallel,
                               run(domain->source_ids, options.weights,
                                   &pool));
    PLANORDER_RETURN_IF_ERROR(CompareRankedSequences(
        streamed, parallel,
        "ranked-parallel(threads=" + std::to_string(threads) + ")"));
  }
  return OkStatus();
}

namespace {

/// Catalog name of every (bucket, index) slot of `session`'s reformulation —
/// the coordinate system shared by the orderer's external-residency bits and
/// the cache's per-name IsResident view.
std::vector<std::vector<std::string>> SessionSourceNames(
    const datalog::Catalog& catalog, const service::Session& session) {
  const std::vector<std::vector<datalog::SourceId>>& buckets =
      session.reformulation().buckets.buckets;
  std::vector<std::vector<std::string>> names(buckets.size());
  for (size_t b = 0; b < buckets.size(); ++b) {
    names[b].reserve(buckets[b].size());
    for (datalog::SourceId id : buckets[b]) {
      names[b].push_back(catalog.source(id).name);
    }
  }
  return names;
}

/// Renders a session's distinct answers as sorted strings — the
/// interleaving-invariant fingerprint two runs must agree on byte-for-byte.
std::vector<std::string> SortedAnswerStrings(const service::Session& session) {
  std::vector<std::string> rendered;
  for (const std::vector<datalog::Term>& tuple : session.Answers()) {
    std::ostringstream out;
    for (const datalog::Term& term : tuple) out << term.ToString() << '|';
    rendered.push_back(out.str());
  }
  std::sort(rendered.begin(), rendered.end());
  return rendered;
}

/// Re-derives the utility `step` must have been emitted with: a fresh
/// kFailureCache model over the session's shared workload, an execution
/// context replaying the successful prefix plus exactly `residency` as the
/// external (cross-session) cache bits. Any mismatch beyond `tolerance`
/// means the orderer evaluated under a residency other than the one claimed
/// — the stale-utility bug.
Status VerifyStepUtility(const service::Session& session,
                         const std::vector<exec::MediatorStep>& prior,
                         const exec::MediatorStep& step,
                         const std::vector<std::vector<char>>& residency,
                         double tolerance, const std::string& label) {
  const stats::Workload& workload = session.reformulation().workload;
  PLANORDER_ASSIGN_OR_RETURN(
      std::unique_ptr<utility::UtilityModel> model,
      utility::MakeMeasure(utility::MeasureKind::kFailureCache, &workload));
  utility::ExecutionContext ctx(&workload);
  for (const exec::MediatorStep& p : prior) {
    if (p.sound && p.executable && !p.failed) ctx.MarkExecuted(p.plan);
  }
  for (size_t b = 0; b < residency.size(); ++b) {
    for (size_t i = 0; i < residency[b].size(); ++i) {
      if (residency[b][i] != 0) {
        ctx.SetExternallyCached(int(b), int(i), true);
      }
    }
  }
  const double expected = model->EvaluateConcrete(step.plan, ctx);
  if (!(std::fabs(expected - step.estimated_utility) <= tolerance)) {
    std::ostringstream out;
    out.precision(17);
    out << label << ": emitted utility " << step.estimated_utility
        << " != " << expected
        << " re-evaluated under the cache residency in effect when the step "
        << "was ordered (stale cross-session utility)";
    return InternalError(out.str());
  }
  return OkStatus();
}

}  // namespace

Status CheckMultiSession(const Scenario& scenario, double tolerance) {
  // Answer invariance requires every session to drain its *full* plan space:
  // under a truncated budget the cache-dependent plan order would select
  // different plan subsets per interleaving. Keep the full drain affordable.
  if (scenario.NumPlans() > 200) return OkStatus();

  PLANORDER_ASSIGN_OR_RETURN(
      std::unique_ptr<exec::SyntheticDomain> domain,
      exec::BuildSyntheticDomain(scenario.MakeWorkloadOptions(),
                                 scenario.num_answers));
  exec::SourceRegistry registry;
  for (datalog::SourceId id = 0; id < domain->catalog.num_sources(); ++id) {
    const std::string& name = domain->catalog.source(id).name;
    PLANORDER_ASSIGN_OR_RETURN(exec::AccessibleSource * source,
                               registry.Register(name, 2));
    for (const auto& tuple : domain->source_facts.TuplesFor(name)) {
      PLANORDER_RETURN_IF_ERROR(source->Add(tuple));
    }
  }

  const int num_sessions = std::max(2, std::min(scenario.num_sessions, 8));
  exec::Mediator::RunLimits limits;
  limits.max_plans = int(scenario.NumPlans());

  struct Fixture {
    runtime::VirtualClock clock;
    cluster::SourceOperationCache cache;
    std::unique_ptr<runtime::SourceRuntime> runtime;
    std::unique_ptr<cluster::ShardedService> service;
  };
  auto make_fixture = [&]() -> std::unique_ptr<Fixture> {
    auto fx = std::make_unique<Fixture>();
    runtime::RuntimeOptions ropts;
    ropts.num_threads = 2;
    ropts.seed = scenario.runtime_seed;
    ropts.time_dilation = 0.0;
    ropts.clock = &fx->clock;
    ropts.default_model = scenario.MakeNetworkModel();
    ropts.retry.max_attempts = scenario.retry_max_attempts;
    ropts.source_cache = &fx->cache;
    fx->runtime = std::make_unique<runtime::SourceRuntime>(&registry, ropts);

    cluster::ClusterOptions copts;
    copts.num_shards = std::max(1, std::min(scenario.num_shards, 8));
    copts.source_cache = &fx->cache;
    copts.shard.orderer = service::ServiceOptions::OrdererKind::kIDrips;
    copts.shard.measure = utility::MeasureKind::kFailureCache;
    // All sessions share one query class and therefore one home shard; size
    // that shard to admit every client with no shedding or waiting.
    copts.shard.max_active_sessions = num_sessions;
    copts.shard.max_queued_admissions = num_sessions;
    copts.shard.admission_timeout_ms = 0.0;
    copts.shard.eval_threads = 0;
    copts.shard.refresh_source_cache_view = !scenario.multi_inject_stale;
    copts.shard.record_residency_snapshots = true;
    copts.shard.clock = &fx->clock;
    fx->service = std::make_unique<cluster::ShardedService>(
        &domain->catalog, &domain->source_facts, copts, fx->runtime.get());
    return fx;
  };

  // --- Pass 1: serial round-robin interleaving with the view-read oracle.
  // Single-threaded, so the residency read here is exactly the residency the
  // session's per-step refresh applies inside the following NextStep call.
  struct SerialRun {
    std::unique_ptr<service::Session> session;
    std::vector<std::vector<std::string>> names;
    std::vector<exec::MediatorStep> steps;
    std::vector<std::string> answers;
    bool done = false;
  };
  std::unique_ptr<Fixture> serial = make_fixture();
  std::vector<SerialRun> runs(static_cast<size_t>(num_sessions));
  for (SerialRun& run : runs) {
    PLANORDER_ASSIGN_OR_RETURN(run.session,
                               serial->service->OpenSession(domain->query,
                                                            limits));
    run.names = SessionSourceNames(domain->catalog, *run.session);
  }
  bool all_done = false;
  while (!all_done) {
    all_done = true;
    for (int s = 0; s < num_sessions; ++s) {
      SerialRun& run = runs[size_t(s)];
      if (run.done) continue;
      all_done = false;
      std::vector<std::vector<char>> residency(run.names.size());
      for (size_t b = 0; b < run.names.size(); ++b) {
        residency[b].assign(run.names[b].size(), 0);
        for (size_t i = 0; i < run.names[b].size(); ++i) {
          residency[b][i] = serial->cache.IsResident(run.names[b][i]) ? 1 : 0;
        }
      }
      StatusOr<exec::MediatorStep> step = run.session->NextStep();
      if (!step.ok()) {
        if (step.status().code() != StatusCode::kNotFound) {
          return step.status();
        }
        run.done = true;
        run.answers = SortedAnswerStrings(*run.session);
        continue;
      }
      PLANORDER_RETURN_IF_ERROR(VerifyStepUtility(
          *run.session, run.steps, *step, residency, tolerance,
          "multi-serial session " + std::to_string(s) + " step " +
              std::to_string(run.steps.size())));
      run.steps.push_back(*std::move(step));
    }
  }

  // --- Pass 2: free interleaving, one client thread per session. Answers
  // must match the serial replay byte-for-byte, and every step's utility
  // must be consistent with the residency snapshot its own session recorded
  // when it applied the refresh (Session::residency_history).
  std::unique_ptr<Fixture> parallel = make_fixture();
  struct ParallelRun {
    std::unique_ptr<service::Session> session;
    std::vector<exec::MediatorStep> steps;
    Status status;
  };
  std::vector<ParallelRun> par(static_cast<size_t>(num_sessions));
  for (ParallelRun& run : par) {
    PLANORDER_ASSIGN_OR_RETURN(run.session,
                               parallel->service->OpenSession(domain->query,
                                                              limits));
  }
  std::vector<std::thread> clients;
  clients.reserve(size_t(num_sessions));
  for (int s = 0; s < num_sessions; ++s) {
    clients.emplace_back([&par, s] {
      ParallelRun& run = par[size_t(s)];
      while (true) {
        StatusOr<exec::MediatorStep> step = run.session->NextStep();
        if (!step.ok()) {
          if (step.status().code() != StatusCode::kNotFound) {
            run.status = step.status();
          }
          return;
        }
        run.steps.push_back(*std::move(step));
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (int s = 0; s < num_sessions; ++s) {
    ParallelRun& run = par[size_t(s)];
    PLANORDER_RETURN_IF_ERROR(run.status);
    const std::vector<std::string> answers = SortedAnswerStrings(*run.session);
    if (answers != runs[size_t(s)].answers) {
      std::ostringstream out;
      out << "multi-parallel session " << s << ": " << answers.size()
          << " distinct answers differ from the serial replay ("
          << runs[size_t(s)].answers.size()
          << ") — interleaving changed the answer set";
      return InternalError(out.str());
    }
    const std::vector<std::vector<std::vector<char>>>& history =
        run.session->residency_history();
    if (history.size() < run.steps.size()) {
      return InternalError(
          "multi-parallel session " + std::to_string(s) +
          ": residency history shorter than the step sequence (" +
          std::to_string(history.size()) + " < " +
          std::to_string(run.steps.size()) + ")");
    }
    for (size_t k = 0; k < run.steps.size(); ++k) {
      PLANORDER_RETURN_IF_ERROR(VerifyStepUtility(
          *run.session, {run.steps.begin(), run.steps.begin() + long(k)},
          run.steps[k], history[k], tolerance,
          "multi-parallel session " + std::to_string(s) + " step " +
              std::to_string(k)));
    }
  }
  return OkStatus();
}

namespace {

/// The drift world: which (bucket, index) coordinates drift, and by how
/// much. Derived once from drift_seed so the adaptive run, every parallel
/// re-run and the oracle feed identical observation streams.
struct DriftWorld {
  std::vector<std::vector<std::string>> names;
  std::vector<std::vector<char>> drifted;
  utility::MeasureKind kind = utility::MeasureKind::kAdditive;
};

DriftWorld MakeDriftWorld(const Scenario& scenario,
                          const stats::Workload& workload) {
  DriftWorld world;
  world.names.resize(size_t(workload.num_buckets()));
  world.drifted.resize(size_t(workload.num_buckets()));
  for (int b = 0; b < workload.num_buckets(); ++b) {
    for (int i = 0; i < workload.bucket_size(b); ++i) {
      world.names[size_t(b)].push_back("b" + std::to_string(b) + "_s" +
                                       std::to_string(i));
    }
    world.drifted[size_t(b)].assign(size_t(workload.bucket_size(b)), 0);
  }
  Rng rng(scenario.drift_seed);
  // Cardinality-sensitive measures only: drifting cardinality under pure
  // coverage would never change the ranking, making the property vacuous.
  const utility::MeasureKind kinds[] = {
      utility::MeasureKind::kAdditive, utility::MeasureKind::kCost2,
      utility::MeasureKind::kFailureNoCache, utility::MeasureKind::kMonetary};
  world.kind = kinds[rng.UniformInt(0, 3)];
  for (int k = 0; k < scenario.drift_sources; ++k) {
    const int b = int(rng.UniformInt(0, workload.num_buckets() - 1));
    const int i = int(rng.UniformInt(0, workload.bucket_size(b) - 1));
    world.drifted[size_t(b)][size_t(i)] = 1;
  }
  return world;
}

/// One synthetic execution of `plan` at emission index `step`: each of its
/// sources completes one call shipping its *true* (possibly drifted)
/// cardinality. Integer-rounded once here; every consumer sees the same
/// observation stream.
void FeedDriftObservations(const Scenario& scenario,
                           const stats::Workload& workload,
                           const DriftWorld& world, int step,
                           const core::ConcretePlan& plan,
                           adaptive::ObservedStats& observed) {
  for (size_t b = 0; b < plan.size(); ++b) {
    const int i = plan[b];
    const stats::SourceStats s = workload.source(int(b), i);
    double card = s.cardinality;
    if (step >= scenario.drift_step && world.drifted[b][size_t(i)]) {
      card *= scenario.drift_factor;
    }
    runtime::SourceObservation obs;
    obs.rows = std::max<int64_t>(0, std::llround(card));
    obs.attempts = 1;
    obs.failures = 0;
    obs.latency_micros =
        std::max<int64_t>(0, std::llround(s.transmission_cost * card * 1000.0));
    obs.call_failed = false;
    observed.RecordFetch(world.names[b][size_t(i)], obs);
  }
  observed.FoldWindow();
}

adaptive::DriftOptions MakeDriftOptions(const Scenario& scenario,
                                        bool react) {
  adaptive::DriftOptions drift;
  drift.band = scenario.drift_band;
  drift.min_calls = 1;
  drift.react_to_observations = react;
  return drift;
}

/// Drains the adaptive orderer under the drift feedback loop: after every
/// emission the emitted plan's observations are recorded and folded, so the
/// next Next() sees the updated generation.
StatusOr<std::vector<core::OrderedPlan>> RunAdaptiveDrift(
    const Scenario& scenario, const stats::Workload& workload,
    const DriftWorld& world, runtime::ThreadPool* pool,
    int64_t* rebuilds_out) {
  adaptive::ObservedStats observed(
      adaptive::ObservedStatsOptions{scenario.drift_decay});
  adaptive::AdaptiveOptions options;
  options.inner = adaptive::InnerOrderer::kIDrips;
  options.measure = world.kind;
  options.drift = MakeDriftOptions(scenario, !scenario.drift_inject_stale);
  PLANORDER_ASSIGN_OR_RETURN(
      std::unique_ptr<adaptive::AdaptiveOrderer> orderer,
      adaptive::AdaptiveOrderer::Create(&workload, world.names, &observed,
                                        options));
  orderer->set_eval_pool(pool);
  std::vector<core::OrderedPlan> emissions;
  while (true) {
    StatusOr<core::OrderedPlan> next = orderer->Next();
    if (!next.ok()) {
      if (next.status().code() == StatusCode::kNotFound) break;
      return next.status();
    }
    FeedDriftObservations(scenario, workload, world, int(emissions.size()),
                          next->plan, observed);
    emissions.push_back(std::move(*next));
  }
  if (rebuilds_out != nullptr) *rebuilds_out = orderer->rebuilds();
  return emissions;
}

}  // namespace

Status CheckDriftRerank(const Scenario& scenario, double tolerance) {
  PLANORDER_ASSIGN_OR_RETURN(
      stats::Workload workload,
      stats::Workload::Generate(scenario.MakeWorkloadOptions()));
  // The oracle re-ranks with a fresh O(plans^2)-ish IDrips build per
  // divergence and brute-forces maximality per step; keep the space small.
  if (scenario.NumPlans() > 80) return OkStatus();
  const DriftWorld world = MakeDriftWorld(scenario, workload);

  // The system under test: the adaptive orderer inside its feedback loop.
  int64_t adaptive_rebuilds = 0;
  PLANORDER_ASSIGN_OR_RETURN(
      std::vector<core::OrderedPlan> emissions,
      RunAdaptiveDrift(scenario, workload, world, /*pool=*/nullptr,
                       &adaptive_rebuilds));

  // (a)+(b) The rebuild-from-observed-stats oracle: replay the same
  // observation schedule against ITS OWN emissions, re-deciding divergence
  // with the pure predicate and re-ranking from scratch (fresh inner
  // orderer, executed prefix preloaded, emitted plans skipped) every time
  // the statistics leave the band. The oracle always reacts — under the
  // injected stale-stats bug it diverges from the system and the property
  // fails, which is the point.
  adaptive::ObservedStats observed(
      adaptive::ObservedStatsOptions{scenario.drift_decay});
  const adaptive::DriftOptions drift =
      MakeDriftOptions(scenario, /*react=*/true);
  std::vector<core::ConcretePlan> executed;
  std::set<core::ConcretePlan> emitted;
  std::unique_ptr<stats::Workload> blended;
  std::unique_ptr<utility::UtilityModel> model;
  std::unique_ptr<core::Orderer> inner;
  int64_t built_generation = -1;
  int64_t oracle_rebuilds = -1;  // first build is not a re-rank

  auto rebuild = [&]() -> Status {
    PLANORDER_ASSIGN_OR_RETURN(
        stats::Workload b,
        adaptive::BlendWorkload(workload, world.names, observed));
    blended = std::make_unique<stats::Workload>(std::move(b));
    PLANORDER_ASSIGN_OR_RETURN(model,
                               utility::MakeMeasure(world.kind, blended.get()));
    std::vector<core::PlanSpace> spaces;
    spaces.push_back(core::PlanSpace::FullSpace(*blended));
    PLANORDER_ASSIGN_OR_RETURN(
        std::unique_ptr<core::IDripsOrderer> built,
        core::IDripsOrderer::Create(blended.get(), model.get(),
                                    std::move(spaces), core::IDripsOptions{}));
    inner = std::move(built);
    for (const core::ConcretePlan& plan : executed) {
      PLANORDER_RETURN_IF_ERROR(inner->PreloadExecuted(plan));
    }
    built_generation = observed.generation();
    ++oracle_rebuilds;
    return OkStatus();
  };
  PLANORDER_RETURN_IF_ERROR(rebuild());

  std::vector<core::OrderedPlan> oracle_emissions;
  while (true) {
    if (observed.generation() != built_generation &&
        adaptive::StatsDiverged(*blended, world.names, observed, drift)) {
      PLANORDER_RETURN_IF_ERROR(rebuild());
    }
    StatusOr<core::OrderedPlan> next = inner->Next();
    if (!next.ok()) {
      if (next.status().code() == StatusCode::kNotFound) break;
      return next.status();
    }
    if (!emitted.insert(next->plan).second) {
      inner->ReportDiscarded();  // replayed pre-rebuild emission
      continue;
    }

    // (b) Conditional maximality under this generation's blended stats:
    // fresh context, executed prefix only.
    utility::ExecutionContext fresh(blended.get());
    for (const core::ConcretePlan& plan : executed) fresh.MarkExecuted(plan);
    const double recomputed = model->EvaluateConcrete(next->plan, fresh);
    if (std::abs(recomputed - next->utility) >
        tolerance * std::max(1.0, std::abs(recomputed))) {
      std::ostringstream out;
      out.precision(17);
      out << "drift-oracle step " << oracle_emissions.size() << " plan "
          << PlanToString(next->plan) << " reported utility "
          << next->utility << " but a fresh conditional evaluation gives "
          << recomputed;
      return InternalError(out.str());
    }
    for (const core::ConcretePlan& other :
         core::EnumeratePlans(core::PlanSpace::FullSpace(*blended))) {
      if (emitted.count(other) != 0) continue;
      const double u = model->EvaluateConcrete(other, fresh);
      if (u - recomputed > tolerance * std::max(1.0, std::abs(u))) {
        std::ostringstream out;
        out.precision(17);
        out << "drift-oracle step " << oracle_emissions.size()
            << " emitted plan " << PlanToString(next->plan) << " at utility "
            << recomputed << " but remaining plan " << PlanToString(other)
            << " is strictly better at " << u
            << " under the blended statistics";
        return InternalError(out.str());
      }
    }

    FeedDriftObservations(scenario, workload, world,
                          int(oracle_emissions.size()), next->plan, observed);
    executed.push_back(next->plan);
    oracle_emissions.push_back(std::move(*next));
  }

  // (a) Byte-for-byte agreement, emission by emission.
  const size_t steps = std::min(emissions.size(), oracle_emissions.size());
  for (size_t i = 0; i < steps; ++i) {
    if (emissions[i].plan != oracle_emissions[i].plan ||
        emissions[i].utility != oracle_emissions[i].utility) {
      std::ostringstream out;
      out.precision(17);
      out << "drift step " << i << ": adaptive orderer emitted "
          << PlanToString(emissions[i].plan) << " u=" << emissions[i].utility
          << " but the rebuild-from-observed-stats oracle emitted "
          << PlanToString(oracle_emissions[i].plan)
          << " u=" << oracle_emissions[i].utility
          << " (stale statistics survived the divergence band?)";
      return InternalError(out.str());
    }
  }
  if (emissions.size() != oracle_emissions.size()) {
    std::ostringstream out;
    out << "drift: adaptive orderer emitted " << emissions.size()
        << " plans, the oracle " << oracle_emissions.size();
    return InternalError(out.str());
  }
  if (adaptive_rebuilds != oracle_rebuilds) {
    std::ostringstream out;
    out << "drift: adaptive orderer re-ranked " << adaptive_rebuilds
        << " times, the oracle " << oracle_rebuilds
        << " — divergence decisions disagree";
    return InternalError(out.str());
  }

  // (c) Serial == parallel at every scenario thread count.
  for (int threads : scenario.thread_counts) {
    if (threads < 2) continue;
    runtime::ThreadPool pool(threads);
    int64_t pooled_rebuilds = 0;
    PLANORDER_ASSIGN_OR_RETURN(
        std::vector<core::OrderedPlan> pooled,
        RunAdaptiveDrift(scenario, workload, world, &pool, &pooled_rebuilds));
    if (pooled.size() != emissions.size() ||
        pooled_rebuilds != adaptive_rebuilds) {
      std::ostringstream out;
      out << "drift: " << threads << "-thread run emitted " << pooled.size()
          << " plans / " << pooled_rebuilds << " rebuilds vs serial "
          << emissions.size() << " / " << adaptive_rebuilds;
      return InternalError(out.str());
    }
    for (size_t i = 0; i < pooled.size(); ++i) {
      if (pooled[i].plan != emissions[i].plan ||
          pooled[i].utility != emissions[i].utility) {
        std::ostringstream out;
        out.precision(17);
        out << "drift step " << i << ": " << threads
            << "-thread run emitted " << PlanToString(pooled[i].plan)
            << " u=" << pooled[i].utility << " but the serial run emitted "
            << PlanToString(emissions[i].plan)
            << " u=" << emissions[i].utility;
        return InternalError(out.str());
      }
    }
  }
  return OkStatus();
}

}  // namespace planorder::sim
