#include "sim/harness.h"

#include <memory>
#include <sstream>
#include <utility>

#include "core/greedy.h"
#include "core/idrips.h"
#include "core/pi.h"
#include "core/plan_space.h"
#include "core/streamer.h"
#include "runtime/retry_policy.h"
#include "sim/oracle.h"
#include "sim/properties.h"

namespace planorder::sim {

bool Applicable(AlgoKind algo, const utility::UtilityModel& model) {
  switch (algo) {
    case AlgoKind::kGreedy:
      return model.fully_monotonic();
    case AlgoKind::kStreamer:
      return model.diminishing_returns();
    case AlgoKind::kIDrips:
    case AlgoKind::kIDripsRebuild:
    case AlgoKind::kPi:
      return true;
  }
  return false;
}

StatusOr<std::unique_ptr<core::Orderer>> MakeOrderer(
    AlgoKind algo, const stats::Workload* workload,
    utility::UtilityModel* model, bool probe_lower_bounds) {
  std::vector<core::PlanSpace> spaces = {
      core::PlanSpace::FullSpace(*workload)};
  switch (algo) {
    case AlgoKind::kGreedy: {
      PLANORDER_ASSIGN_OR_RETURN(
          std::unique_ptr<core::GreedyOrderer> orderer,
          core::GreedyOrderer::Create(workload, model, std::move(spaces)));
      return std::unique_ptr<core::Orderer>(std::move(orderer));
    }
    case AlgoKind::kIDrips:
    case AlgoKind::kIDripsRebuild: {
      core::IDripsOptions options;
      options.probe_lower_bounds = probe_lower_bounds;
      options.persistent_frontier = algo == AlgoKind::kIDrips;
      PLANORDER_ASSIGN_OR_RETURN(
          std::unique_ptr<core::IDripsOrderer> orderer,
          core::IDripsOrderer::Create(workload, model, std::move(spaces),
                                      options));
      return std::unique_ptr<core::Orderer>(std::move(orderer));
    }
    case AlgoKind::kStreamer: {
      PLANORDER_ASSIGN_OR_RETURN(
          std::unique_ptr<core::StreamerOrderer> orderer,
          core::StreamerOrderer::Create(
              workload, model, std::move(spaces),
              core::AbstractionHeuristic::kByCardinality,
              probe_lower_bounds));
      return std::unique_ptr<core::Orderer>(std::move(orderer));
    }
    case AlgoKind::kPi: {
      PLANORDER_ASSIGN_OR_RETURN(
          std::unique_ptr<core::PiOrderer> orderer,
          core::PiOrderer::Create(workload, model, std::move(spaces)));
      return std::unique_ptr<core::Orderer>(std::move(orderer));
    }
  }
  return InvalidArgumentError("unknown algorithm kind");
}

StatusOr<std::vector<core::OrderedPlan>> Drain(core::Orderer& orderer,
                                               runtime::ThreadPool* pool) {
  orderer.set_eval_pool(pool);
  std::vector<core::OrderedPlan> emissions;
  while (true) {
    StatusOr<core::OrderedPlan> next = orderer.Next();
    if (!next.ok()) {
      if (next.status().code() == StatusCode::kNotFound) break;
      return next.status();
    }
    emissions.push_back(std::move(*next));
  }
  return emissions;
}

namespace {

/// Prefixes a check failure with its full coordinates, so the sweep's
/// failure line alone pinpoints the (check, measure, algo) cell.
Status Contextualize(const Status& status, const std::string& check,
                     utility::MeasureKind kind, AlgoKind algo) {
  std::ostringstream out;
  out << "check=" << check << " measure=" << utility::MeasureKindName(kind)
      << " algo=" << AlgoKindName(algo) << ": " << status.message();
  return Status(status.code(), out.str());
}

}  // namespace

Status RunScenario(const Scenario& scenario, const SimOptions& options,
                   SimReport* report) {
  SimReport local;
  PLANORDER_ASSIGN_OR_RETURN(
      stats::Workload workload,
      stats::Workload::Generate(scenario.MakeWorkloadOptions()));
  const core::PlanSpace full = core::PlanSpace::FullSpace(workload);

  for (utility::MeasureKind kind : scenario.measures) {
    // Instantiation can reject a (measure, workload) pair — e.g. measure (2)
    // with uniform alpha over a workload whose transmission costs vary.
    // That is an applicability skip, not a failure.
    StatusOr<std::unique_ptr<utility::UtilityModel>> model =
        utility::MakeMeasure(kind, &workload);
    if (!model.ok()) {
      ++local.skipped;
      continue;
    }
    for (AlgoKind algo : scenario.algos) {
      if (!Applicable(algo, **model)) {
        ++local.skipped;
        continue;
      }

      // Serial baseline: every other check is differential against it.
      PLANORDER_ASSIGN_OR_RETURN(
          std::unique_ptr<core::Orderer> orderer,
          MakeOrderer(algo, &workload, model->get(),
                      scenario.probe_lower_bounds));
      StatusOr<std::vector<core::OrderedPlan>> serial =
          Drain(*orderer, /*pool=*/nullptr);
      if (!serial.ok()) {
        return Contextualize(serial.status(), "drain", kind, algo);
      }
      ++local.checks;

      if (scenario.check_oracle &&
          full.NumPlans() <= options.max_oracle_plans) {
        Status status = VerifyExactOrder(workload, kind, {full}, *serial,
                                         options.tolerance);
        if (!status.ok()) {
          return Contextualize(status, "oracle", kind, algo);
        }
        ++local.checks;
      }

      for (int threads : scenario.thread_counts) {
        Status status = CheckParallelAgreement(
            workload, kind, algo, scenario.probe_lower_bounds, *serial,
            orderer->plan_evaluations(), threads);
        if (!status.ok()) {
          return Contextualize(status, "parallel", kind, algo);
        }
        ++local.checks;
      }

      if (scenario.check_monotone) {
        // Exact transform (power-of-two scale): bit-identical sequence.
        Status status = CheckMonotoneTransform(workload, kind, algo,
                                               scenario.probe_lower_bounds,
                                               /*scale=*/4.0, /*shift=*/0.0,
                                               options.tolerance);
        if (!status.ok()) {
          return Contextualize(status, "monotone", kind, algo);
        }
        // Inexact shift: utility sequences match after the inverse map.
        status = CheckMonotoneTransform(workload, kind, algo,
                                        scenario.probe_lower_bounds,
                                        /*scale=*/1.0, /*shift=*/8.0,
                                        options.tolerance);
        if (!status.ok()) {
          return Contextualize(status, "monotone-shift", kind, algo);
        }
        local.checks += 2;
      }

      if (scenario.check_relabel) {
        Status status = CheckRelabelInvariance(
            workload, kind, algo, scenario.probe_lower_bounds,
            runtime::CombineHash(scenario.workload_seed,
                                 uint64_t(scenario.step)),
            options.tolerance,
            scenario.check_oracle ? options.max_oracle_plans : 0);
        if (!status.ok()) {
          return Contextualize(status, "relabel", kind, algo);
        }
        ++local.checks;
      }
    }
  }

  if (scenario.check_runtime) {
    Status status = CheckRuntimeEquivalence(scenario);
    if (!status.ok()) {
      return Status(status.code(),
                    "check=runtime: " + std::string(status.message()));
    }
    ++local.checks;
  }

  if (scenario.check_ranked) {
    Status status = CheckRankedEmission(scenario, options.max_oracle_plans);
    if (!status.ok()) {
      return Status(status.code(),
                    "check=ranked: " + std::string(status.message()));
    }
    ++local.checks;
  }

  if (scenario.check_multi) {
    Status status = CheckMultiSession(scenario, options.tolerance);
    if (!status.ok()) {
      return Status(status.code(),
                    "check=multi: " + std::string(status.message()));
    }
    ++local.checks;
  }

  if (scenario.check_drift) {
    Status status = CheckDriftRerank(scenario, options.tolerance);
    if (!status.ok()) {
      return Status(status.code(),
                    "check=drift: " + std::string(status.message()));
    }
    ++local.checks;
  }

  if (report != nullptr) report->Merge(local);
  return OkStatus();
}

}  // namespace planorder::sim
