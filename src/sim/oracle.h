#ifndef PLANORDER_SIM_ORACLE_H_
#define PLANORDER_SIM_ORACLE_H_

#include <vector>

#include "base/status.h"
#include "core/orderer.h"
#include "core/plan_space.h"
#include "stats/workload.h"
#include "utility/measures.h"

namespace planorder::sim {

/// Brute-force differential oracle for exact-decreasing-conditional-utility
/// ordering (Definition 2.1). Verification is step-wise along the orderer's
/// OWN emission sequence rather than against one precomputed reference
/// order: under a conditional measure, utility ties admit several valid
/// orders whose later utilities legitimately diverge, so the oracle instead
/// checks, for every step i, that the emitted plan's utility — recomputed
/// from scratch by a fresh model instance conditioned on emissions 0..i-1 —
/// (a) matches the utility the orderer reported, and (b) is a maximum over
/// every not-yet-emitted plan of the spaces. Finally the emissions must be
/// exactly a permutation of the enumerated plan space (no duplicates, no
/// omissions, nothing foreign).
///
/// Cost is O(plans^2) concrete evaluations; callers bound the space size
/// (the sweep keeps full spaces at <= ~80 plans).
Status VerifyExactOrder(const stats::Workload& workload,
                        utility::MeasureKind kind,
                        const std::vector<core::PlanSpace>& spaces,
                        const std::vector<core::OrderedPlan>& emissions,
                        double tolerance);

}  // namespace planorder::sim

#endif  // PLANORDER_SIM_ORACLE_H_
