#include "sim/shrink.h"

#include <functional>
#include <utility>
#include <vector>

#include "base/logging.h"

namespace planorder::sim {

namespace {

/// One shrinking pass: field by field, try every smaller variant in
/// ascending size order and adopt the first that still fails. Returns true
/// when anything was adopted.
class Shrinker {
 public:
  Shrinker(const SimOptions& options, const ScenarioPredicate& predicate,
           ShrinkResult* result)
      : options_(options), predicate_(predicate), result_(result) {}

  /// Re-runs a candidate; on failure adopts it (and its message) as the new
  /// smallest reproducer.
  bool StillFails(const Scenario& candidate) {
    ++result_->attempts;
    Status status = predicate_(candidate, options_);
    if (status.ok()) return false;
    result_->scenario = candidate;
    result_->failure = std::string(status.message());
    return true;
  }

  bool Pass() {
    bool changed = false;
    changed |= ShrinkInt(
        [](Scenario& s) -> int& { return s.query_length; }, 1);
    changed |= ShrinkInt(
        [](Scenario& s) -> int& { return s.bucket_size; }, 2);
    changed |= ShrinkMeasures();
    changed |= ShrinkAlgos();
    changed |= ShrinkThreads();
    changed |= DisableFlag([](Scenario& s) -> bool& {
      return s.probe_lower_bounds;
    });
    // Dropping a whole property class is a big simplification: the failure
    // no longer depends on that machinery at all.
    changed |= DisableFlag([](Scenario& s) -> bool& {
      return s.check_runtime;
    });
    changed |= DisableFlag([](Scenario& s) -> bool& {
      return s.check_ranked;
    });
    changed |= DisableFlag([](Scenario& s) -> bool& {
      return s.check_multi;
    });
    changed |= DisableFlag([](Scenario& s) -> bool& {
      return s.check_drift;
    });
    changed |= DisableFlag([](Scenario& s) -> bool& {
      return s.check_monotone;
    });
    changed |= DisableFlag([](Scenario& s) -> bool& {
      return s.check_relabel;
    });
    changed |= DisableFlag([](Scenario& s) -> bool& {
      return s.check_oracle;
    });
    changed |= ShrinkInt(
        [](Scenario& s) -> int& { return s.regions_per_bucket; }, 2);
    if (result_->scenario.check_runtime) {
      changed |= ShrinkInt(
          [](Scenario& s) -> int& { return s.num_answers; }, 10);
      changed |= QuietNetwork();
    }
    if (result_->scenario.check_multi) {
      changed |= ShrinkInt(
          [](Scenario& s) -> int& { return s.num_sessions; }, 2);
      changed |= ShrinkInt(
          [](Scenario& s) -> int& { return s.num_shards; }, 1);
    }
    if (result_->scenario.check_drift) {
      // drift_inject_stale is deliberately left alone: the planted bug is
      // part of the reproducer, not noise to minimize away.
      changed |= ShrinkInt(
          [](Scenario& s) -> int& { return s.drift_sources; }, 1);
      changed |= ShrinkInt(
          [](Scenario& s) -> int& { return s.drift_step; }, 1);
    }
    return changed;
  }

 private:
  /// Tries the floor, the midpoint, then current - 1 (repeated passes
  /// binary-search the rest of the way down without re-running every value).
  bool ShrinkInt(const std::function<int&(Scenario&)>& field, int floor) {
    const int current = field(result_->scenario);
    if (current <= floor) return false;
    std::vector<int> targets = {floor};
    const int half = (floor + current) / 2;
    if (half > floor && half < current) targets.push_back(half);
    if (current - 1 > floor && current - 1 != half) {
      targets.push_back(current - 1);
    }
    for (int target : targets) {
      Scenario candidate = result_->scenario;
      field(candidate) = target;
      if (StillFails(candidate)) return true;
    }
    return false;
  }

  bool DisableFlag(const std::function<bool&(Scenario&)>& field) {
    if (!field(result_->scenario)) return false;
    Scenario candidate = result_->scenario;
    field(candidate) = false;
    return StillFails(candidate);
  }

  bool ShrinkMeasures() {
    if (result_->scenario.measures.size() <= 1) return false;
    for (utility::MeasureKind kind : result_->scenario.measures) {
      Scenario candidate = result_->scenario;
      candidate.measures = {kind};
      if (StillFails(candidate)) return true;
    }
    return false;
  }

  bool ShrinkAlgos() {
    if (result_->scenario.algos.size() <= 1) return false;
    for (AlgoKind algo : result_->scenario.algos) {
      Scenario candidate = result_->scenario;
      candidate.algos = {algo};
      if (StillFails(candidate)) return true;
    }
    return false;
  }

  bool ShrinkThreads() {
    if (result_->scenario.thread_counts.empty()) return false;
    {
      // No parallel-agreement checks at all (the serial baseline stays).
      Scenario candidate = result_->scenario;
      candidate.thread_counts.clear();
      if (StillFails(candidate)) return true;
    }
    if (result_->scenario.thread_counts.size() > 1) {
      for (int threads : result_->scenario.thread_counts) {
        Scenario candidate = result_->scenario;
        candidate.thread_counts = {threads};
        if (StillFails(candidate)) return true;
      }
    }
    return false;
  }

  bool QuietNetwork() {
    Scenario& s = result_->scenario;
    if (s.base_latency_ms == 0.0 && s.per_binding_latency_ms == 0.0 &&
        s.per_tuple_latency_ms == 0.0 && s.latency_jitter == 0.0 &&
        s.transient_failure_rate == 0.0 && s.hedge_delay_ms == 0.0) {
      return false;
    }
    Scenario candidate = s;
    candidate.base_latency_ms = 0.0;
    candidate.per_binding_latency_ms = 0.0;
    candidate.per_tuple_latency_ms = 0.0;
    candidate.latency_jitter = 0.0;
    candidate.transient_failure_rate = 0.0;
    candidate.hedge_delay_ms = 0.0;
    return StillFails(candidate);
  }

  const SimOptions& options_;
  const ScenarioPredicate& predicate_;
  ShrinkResult* result_;
};

}  // namespace

ShrinkResult Shrink(const Scenario& failing, const SimOptions& options) {
  return ShrinkWith(failing, options,
                    [](const Scenario& candidate, const SimOptions& opts) {
                      return RunScenario(candidate, opts, /*report=*/nullptr);
                    });
}

ShrinkResult ShrinkWith(const Scenario& failing, const SimOptions& options,
                        const ScenarioPredicate& predicate) {
  ShrinkResult result;
  result.scenario = failing;
  Shrinker shrinker(options, predicate, &result);
  PLANORDER_CHECK(shrinker.StillFails(failing))
      << "Shrink() requires a failing scenario";
  // Greedy to fixpoint: a pass that adopts nothing terminates the search.
  // Passes are bounded as a backstop against pathological oscillation
  // (adoption strictly shrinks a well-founded measure, so this should never
  // bind).
  constexpr int kMaxRounds = 8;
  while (result.rounds < kMaxRounds) {
    ++result.rounds;
    if (!shrinker.Pass()) break;
  }
  return result;
}

}  // namespace planorder::sim
