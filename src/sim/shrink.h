#ifndef PLANORDER_SIM_SHRINK_H_
#define PLANORDER_SIM_SHRINK_H_

#include <functional>
#include <string>

#include "sim/harness.h"
#include "sim/scenario.h"

namespace planorder::sim {

/// Outcome of minimizing a failing scenario.
struct ShrinkResult {
  /// The smallest still-failing scenario found (== the input when nothing
  /// could be removed).
  Scenario scenario;
  /// The minimized scenario's failure message.
  std::string failure;
  /// Candidate scenarios re-run during the search, and full passes made.
  int attempts = 0;
  int rounds = 0;
};

/// Greedy delta debugging over the scenario's fields: repeatedly tries
/// smaller variants (shorter query, smaller buckets, a single measure, a
/// single algorithm, one thread count, properties switched off, a quiet
/// network, fewer answers/regions) and keeps any variant that still fails,
/// until a full pass changes nothing. `failing` must fail under `options`
/// (checked); the result is the fixpoint, typically a one-measure,
/// one-algorithm scenario of a handful of sources.
ShrinkResult Shrink(const Scenario& failing, const SimOptions& options);

/// The check a candidate scenario is re-run against: non-OK means "still
/// fails" and the candidate is adopted. Shrink() uses RunScenario.
using ScenarioPredicate =
    std::function<Status(const Scenario&, const SimOptions&)>;

/// Shrink against an arbitrary predicate. This is what makes the search
/// itself testable: a synthetic predicate (e.g. "fails iff bucket 2 uses
/// more than one thread") pins down exactly which fixpoint the greedy walk
/// must reach, independent of any real orderer bug.
ShrinkResult ShrinkWith(const Scenario& failing, const SimOptions& options,
                        const ScenarioPredicate& predicate);

}  // namespace planorder::sim

#endif  // PLANORDER_SIM_SHRINK_H_
