#ifndef PLANORDER_SIM_HARNESS_H_
#define PLANORDER_SIM_HARNESS_H_

#include <memory>
#include <vector>

#include "base/status.h"
#include "core/orderer.h"
#include "runtime/thread_pool.h"
#include "sim/scenario.h"
#include "stats/workload.h"
#include "utility/measures.h"

namespace planorder::sim {

/// Harness-wide knobs.
struct SimOptions {
  /// Relative tolerance of oracle / metamorphic utility comparisons. Serial
  /// vs parallel comparisons ignore it: those are byte-identical by contract.
  double tolerance = 1e-9;
  /// Spaces larger than this skip the O(plans^2) exhaustive oracle.
  uint64_t max_oracle_plans = 4096;
};

/// Counters of one scenario (or sweep) for the driver's summary line.
struct SimReport {
  int64_t checks = 0;   // individual property checks that ran
  int64_t skipped = 0;  // (measure, algo) pairs skipped as inapplicable
  void Merge(const SimReport& other) {
    checks += other.checks;
    skipped += other.skipped;
  }
};

/// True when `algo` can order under `model` (Greedy needs full monotonicity,
/// Streamer diminishing returns; the rest are universal).
bool Applicable(AlgoKind algo, const utility::UtilityModel& model);

/// Instantiates `algo` over the full plan space of `workload`.
StatusOr<std::unique_ptr<core::Orderer>> MakeOrderer(
    AlgoKind algo, const stats::Workload* workload,
    utility::UtilityModel* model, bool probe_lower_bounds);

/// Pulls every emission out of `orderer` (kNotFound terminates; any other
/// status propagates). `pool`, if non-null, is injected for batched utility
/// evaluation before the first Next().
StatusOr<std::vector<core::OrderedPlan>> Drain(core::Orderer& orderer,
                                               runtime::ThreadPool* pool);

/// Runs every enabled check of `scenario`: per (measure, algo) the serial
/// drain, the exhaustive-order oracle, serial-vs-parallel byte equality at
/// each thread count, and the metamorphic properties; plus (once per
/// scenario) the fault-free runtime-vs-direct-execution equivalence. The
/// first failing check aborts the scenario with a status whose message names
/// the check, the (measure, algo) pair and the divergence. `report`, if
/// non-null, accrues check/skip counters.
Status RunScenario(const Scenario& scenario, const SimOptions& options,
                   SimReport* report);

}  // namespace planorder::sim

#endif  // PLANORDER_SIM_HARNESS_H_
