#include "sim/scenario.h"

#include <cmath>
#include <sstream>

#include "base/rng.h"
#include "runtime/retry_policy.h"

namespace planorder::sim {

namespace {

using utility::MeasureKind;

/// Deterministic Fisher-Yates (std::shuffle is implementation-defined, which
/// would break cross-platform replay).
template <typename T>
void Shuffle(std::vector<T>& items, Rng& rng) {
  for (size_t i = items.size(); i > 1; --i) {
    std::swap(items[i - 1], items[rng.UniformInt(0, int64_t(i) - 1)]);
  }
}

std::string JoinInts(const std::vector<int>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(values[i]);
  }
  return out;
}

}  // namespace

std::string AlgoKindName(AlgoKind kind) {
  switch (kind) {
    case AlgoKind::kGreedy:
      return "greedy";
    case AlgoKind::kIDrips:
      return "idrips";
    case AlgoKind::kIDripsRebuild:
      return "idrips-rebuild";
    case AlgoKind::kStreamer:
      return "streamer";
    case AlgoKind::kPi:
      return "pi";
  }
  return "unknown";
}

StatusOr<AlgoKind> AlgoKindFromName(const std::string& name) {
  for (AlgoKind kind : AllAlgoKinds()) {
    if (AlgoKindName(kind) == name) return kind;
  }
  return InvalidArgumentError("unknown algorithm '" + name + "'");
}

std::vector<AlgoKind> AllAlgoKinds() {
  return {AlgoKind::kGreedy, AlgoKind::kIDrips, AlgoKind::kIDripsRebuild,
          AlgoKind::kStreamer, AlgoKind::kPi};
}

std::vector<MeasureKind> AllMeasureKinds() {
  return {MeasureKind::kAdditive,       MeasureKind::kCost2UniformAlpha,
          MeasureKind::kCost2,          MeasureKind::kFailureNoCache,
          MeasureKind::kFailureCache,   MeasureKind::kMonetary,
          MeasureKind::kMonetaryCache,  MeasureKind::kCoverage};
}

namespace {

StatusOr<MeasureKind> MeasureKindFromName(const std::string& name) {
  for (MeasureKind kind : AllMeasureKinds()) {
    if (utility::MeasureKindName(kind) == name) return kind;
  }
  return InvalidArgumentError("unknown measure '" + name + "'");
}

}  // namespace

stats::WorkloadOptions Scenario::MakeWorkloadOptions() const {
  stats::WorkloadOptions options;
  options.query_length = query_length;
  options.bucket_size = bucket_size;
  options.overlap_rate = overlap_rate;
  options.regions_per_bucket = regions_per_bucket;
  if (uniform_alpha) {
    options.alpha_min = 0.3;
    options.alpha_max = 0.3;
  }
  options.seed = workload_seed;
  return options;
}

runtime::NetworkModel Scenario::MakeNetworkModel() const {
  runtime::NetworkModel model;
  model.base_latency_ms = base_latency_ms;
  model.per_binding_latency_ms = per_binding_latency_ms;
  model.per_tuple_latency_ms = per_tuple_latency_ms;
  model.latency_jitter = latency_jitter;
  model.transient_failure_rate = transient_failure_rate;
  model.hedge_delay_ms = hedge_delay_ms;
  return model;
}

uint64_t Scenario::NumPlans() const {
  uint64_t plans = 1;
  for (int b = 0; b < query_length; ++b) plans *= uint64_t(bucket_size);
  return plans;
}

std::string Scenario::Summary() const {
  std::ostringstream out;
  out << "seed=" << base_seed << " step=" << step << " ql=" << query_length
      << " bs=" << bucket_size << " plans=" << NumPlans()
      << " measures=" << measures.size() << " algos=" << algos.size()
      << " threads=" << JoinInts(thread_counts)
      << " probes=" << (probe_lower_bounds ? 1 : 0)
      << " runtime=" << (check_runtime ? 1 : 0)
      << " ranked=" << (check_ranked ? 1 : 0)
      << " multi=" << (check_multi ? 1 : 0)
      << " drift=" << (check_drift ? 1 : 0);
  return out.str();
}

std::string Scenario::Serialize() const {
  std::ostringstream out;
  out << "base_seed=" << base_seed << " step=" << step;
  out << " query_length=" << query_length << " bucket_size=" << bucket_size;
  out << " overlap_rate=" << overlap_rate
      << " regions_per_bucket=" << regions_per_bucket;
  out << " uniform_alpha=" << (uniform_alpha ? 1 : 0)
      << " workload_seed=" << workload_seed;
  out << " measures=";
  for (size_t i = 0; i < measures.size(); ++i) {
    if (i > 0) out << ",";
    out << utility::MeasureKindName(measures[i]);
  }
  out << " algos=";
  for (size_t i = 0; i < algos.size(); ++i) {
    if (i > 0) out << ",";
    out << AlgoKindName(algos[i]);
  }
  out << " thread_counts=" << JoinInts(thread_counts);
  out << " probe_lower_bounds=" << (probe_lower_bounds ? 1 : 0);
  out << " check_oracle=" << (check_oracle ? 1 : 0)
      << " check_monotone=" << (check_monotone ? 1 : 0)
      << " check_relabel=" << (check_relabel ? 1 : 0)
      << " check_runtime=" << (check_runtime ? 1 : 0)
      << " check_ranked=" << (check_ranked ? 1 : 0)
      << " check_multi=" << (check_multi ? 1 : 0);
  out << " num_sessions=" << num_sessions << " num_shards=" << num_shards
      << " multi_inject_stale=" << (multi_inject_stale ? 1 : 0);
  out << " weights_seed=" << weights_seed
      << " ranked_aggregation=" << anyk::AggregationName(ranked_aggregation);
  out << " num_answers=" << num_answers << " runtime_seed=" << runtime_seed;
  out << " base_latency_ms=" << base_latency_ms
      << " per_binding_latency_ms=" << per_binding_latency_ms
      << " per_tuple_latency_ms=" << per_tuple_latency_ms
      << " latency_jitter=" << latency_jitter
      << " transient_failure_rate=" << transient_failure_rate
      << " hedge_delay_ms=" << hedge_delay_ms
      << " retry_max_attempts=" << retry_max_attempts;
  out << " check_drift=" << (check_drift ? 1 : 0)
      << " drift_step=" << drift_step << " drift_factor=" << drift_factor
      << " drift_band=" << drift_band << " drift_decay=" << drift_decay
      << " drift_sources=" << drift_sources << " drift_seed=" << drift_seed
      << " drift_inject_stale=" << (drift_inject_stale ? 1 : 0);
  return out.str();
}

StatusOr<Scenario> Scenario::Deserialize(const std::string& line) {
  Scenario s;
  s.measures.clear();
  s.algos.clear();
  s.thread_counts.clear();
  std::istringstream in(line);
  std::string token;
  bool saw_any_token = false;
  auto split_list = [](const std::string& csv) {
    std::vector<std::string> items;
    std::string item;
    std::istringstream stream(csv);
    while (std::getline(stream, item, ',')) {
      if (!item.empty()) items.push_back(item);
    }
    return items;
  };
  while (in >> token) {
    saw_any_token = true;
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError("malformed scenario token '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    try {
      if (key == "base_seed") {
        s.base_seed = std::stoull(value);
      } else if (key == "step") {
        s.step = std::stoi(value);
      } else if (key == "query_length") {
        s.query_length = std::stoi(value);
      } else if (key == "bucket_size") {
        s.bucket_size = std::stoi(value);
      } else if (key == "overlap_rate") {
        s.overlap_rate = std::stod(value);
      } else if (key == "regions_per_bucket") {
        s.regions_per_bucket = std::stoi(value);
      } else if (key == "uniform_alpha") {
        s.uniform_alpha = value != "0";
      } else if (key == "workload_seed") {
        s.workload_seed = std::stoull(value);
      } else if (key == "measures") {
        for (const std::string& name : split_list(value)) {
          PLANORDER_ASSIGN_OR_RETURN(MeasureKind kind,
                                     MeasureKindFromName(name));
          s.measures.push_back(kind);
        }
      } else if (key == "algos") {
        for (const std::string& name : split_list(value)) {
          PLANORDER_ASSIGN_OR_RETURN(AlgoKind kind, AlgoKindFromName(name));
          s.algos.push_back(kind);
        }
      } else if (key == "thread_counts") {
        for (const std::string& item : split_list(value)) {
          s.thread_counts.push_back(std::stoi(item));
        }
      } else if (key == "probe_lower_bounds") {
        s.probe_lower_bounds = value != "0";
      } else if (key == "check_oracle") {
        s.check_oracle = value != "0";
      } else if (key == "check_monotone") {
        s.check_monotone = value != "0";
      } else if (key == "check_relabel") {
        s.check_relabel = value != "0";
      } else if (key == "check_runtime") {
        s.check_runtime = value != "0";
      } else if (key == "check_ranked") {
        s.check_ranked = value != "0";
      } else if (key == "check_multi") {
        s.check_multi = value != "0";
      } else if (key == "num_sessions") {
        s.num_sessions = std::stoi(value);
      } else if (key == "num_shards") {
        s.num_shards = std::stoi(value);
      } else if (key == "multi_inject_stale") {
        s.multi_inject_stale = value != "0";
      } else if (key == "weights_seed") {
        s.weights_seed = std::stoull(value);
      } else if (key == "ranked_aggregation") {
        PLANORDER_ASSIGN_OR_RETURN(s.ranked_aggregation,
                                   anyk::AggregationFromName(value));
      } else if (key == "num_answers") {
        s.num_answers = std::stoi(value);
      } else if (key == "runtime_seed") {
        s.runtime_seed = std::stoull(value);
      } else if (key == "base_latency_ms") {
        s.base_latency_ms = std::stod(value);
      } else if (key == "per_binding_latency_ms") {
        s.per_binding_latency_ms = std::stod(value);
      } else if (key == "per_tuple_latency_ms") {
        s.per_tuple_latency_ms = std::stod(value);
      } else if (key == "latency_jitter") {
        s.latency_jitter = std::stod(value);
      } else if (key == "transient_failure_rate") {
        s.transient_failure_rate = std::stod(value);
      } else if (key == "hedge_delay_ms") {
        s.hedge_delay_ms = std::stod(value);
      } else if (key == "retry_max_attempts") {
        s.retry_max_attempts = std::stoi(value);
      } else if (key == "check_drift") {
        s.check_drift = value != "0";
      } else if (key == "drift_step") {
        s.drift_step = std::stoi(value);
      } else if (key == "drift_factor") {
        s.drift_factor = std::stod(value);
      } else if (key == "drift_band") {
        s.drift_band = std::stod(value);
      } else if (key == "drift_decay") {
        s.drift_decay = std::stod(value);
      } else if (key == "drift_sources") {
        s.drift_sources = std::stoi(value);
      } else if (key == "drift_seed") {
        s.drift_seed = std::stoull(value);
      } else if (key == "drift_inject_stale") {
        s.drift_inject_stale = value != "0";
      } else {
        return InvalidArgumentError("unknown scenario key '" + key + "'");
      }
    } catch (const std::exception&) {
      return InvalidArgumentError("bad value for scenario key '" + key +
                                  "': '" + value + "'");
    }
  }
  if (!saw_any_token) {
    return InvalidArgumentError("empty scenario line");
  }
  if (s.query_length < 1 || s.bucket_size < 1) {
    return InvalidArgumentError("scenario needs query_length/bucket_size >= 1");
  }
  return s;
}

Scenario MakeScenario(uint64_t base_seed, int step) {
  // Scenario i's stream is seeded from (base_seed, i) alone: replaying one
  // step never requires regenerating its predecessors.
  Rng rng(runtime::CombineHash(runtime::MixHash(base_seed), uint64_t(step)));
  Scenario s;
  s.base_seed = base_seed;
  s.step = step;

  s.query_length = int(rng.UniformInt(1, 4));
  s.bucket_size = int(rng.UniformInt(2, 5));
  // Keep the full space small enough for the O(plans^2) exhaustive oracle.
  while (s.NumPlans() > 80 && s.bucket_size > 2) --s.bucket_size;
  s.overlap_rate = rng.UniformReal(0.1, 0.9);
  s.regions_per_bucket = int(rng.UniformInt(4, 16));
  s.uniform_alpha = rng.Bernoulli(0.3);
  s.workload_seed = rng.engine()();

  // Every measure and every algorithm, every scenario: inapplicable pairs
  // (e.g. Greedy under a non-monotonic measure) are skipped by the harness,
  // and shrinking narrows the cross product once a failure is in hand.
  s.measures = AllMeasureKinds();
  s.algos = AllAlgoKinds();
  s.thread_counts = {2, int(rng.UniformInt(3, 8))};
  Shuffle(s.thread_counts, rng);
  s.probe_lower_bounds = rng.Bernoulli(0.5);

  s.check_runtime = rng.Bernoulli(0.5);
  s.num_answers = int(rng.UniformInt(40, 160));
  s.runtime_seed = rng.engine()();
  s.base_latency_ms = rng.UniformReal(0.0, 5.0);
  s.per_binding_latency_ms = rng.UniformReal(0.0, 1.0);
  s.per_tuple_latency_ms = rng.UniformReal(0.0, 0.2);
  s.latency_jitter = rng.UniformReal(0.0, 0.9);
  s.transient_failure_rate = rng.UniformReal(0.0, 0.35);
  s.hedge_delay_ms = rng.Bernoulli(0.3) ? rng.UniformReal(1.0, 10.0) : 0.0;
  s.retry_max_attempts = 64;

  s.check_ranked = rng.Bernoulli(0.5);
  s.check_multi = rng.Bernoulli(0.35);
  s.num_sessions = int(rng.UniformInt(2, 6));
  s.num_shards = int(rng.UniformInt(1, 3));
  s.weights_seed = rng.engine()();
  s.ranked_aggregation = rng.Bernoulli(0.5) ? anyk::Aggregation::kSum
                                            : anyk::Aggregation::kMax;

  // Drift knobs last: earlier scenarios' derivations stay stable under the
  // same (base_seed, step) across sim versions that predate check_drift.
  s.check_drift = rng.Bernoulli(0.35);
  s.drift_step = int(rng.UniformInt(1, 5));
  s.drift_factor = rng.UniformReal(0.25, 5.0);
  s.drift_band = rng.UniformReal(1.2, 3.0);
  s.drift_decay = rng.UniformReal(0.3, 1.0);
  s.drift_sources = int(rng.UniformInt(1, 3));
  s.drift_seed = rng.engine()();
  return s;
}

}  // namespace planorder::sim
