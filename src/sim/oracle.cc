#include "sim/oracle.h"

#include <cmath>
#include <sstream>

#include "utility/execution_context.h"

namespace planorder::sim {

namespace {

std::string PlanToString(const utility::ConcretePlan& plan) {
  std::string out = "[";
  for (size_t b = 0; b < plan.size(); ++b) {
    if (b > 0) out += " ";
    out += std::to_string(plan[b]);
  }
  return out + "]";
}

}  // namespace

Status VerifyExactOrder(const stats::Workload& workload,
                        utility::MeasureKind kind,
                        const std::vector<core::PlanSpace>& spaces,
                        const std::vector<core::OrderedPlan>& emissions,
                        double tolerance) {
  PLANORDER_ASSIGN_OR_RETURN(std::unique_ptr<utility::UtilityModel> model,
                             utility::MakeMeasure(kind, &workload));
  std::vector<core::ConcretePlan> remaining;
  for (const core::PlanSpace& space : spaces) {
    std::vector<core::ConcretePlan> plans = core::EnumeratePlans(space);
    remaining.insert(remaining.end(), plans.begin(), plans.end());
  }
  if (emissions.size() != remaining.size()) {
    std::ostringstream out;
    out << "oracle: orderer emitted " << emissions.size() << " plans, space "
        << "holds " << remaining.size();
    return InternalError(out.str());
  }

  utility::ExecutionContext ctx(&workload);
  for (size_t i = 0; i < emissions.size(); ++i) {
    const core::ConcretePlan& plan = emissions[i].plan;
    size_t index = remaining.size();
    for (size_t j = 0; j < remaining.size(); ++j) {
      if (remaining[j] == plan) {
        index = j;
        break;
      }
    }
    if (index == remaining.size()) {
      std::ostringstream out;
      out << "oracle: step " << i << " emitted plan " << PlanToString(plan)
          << " which is not in the remaining space (duplicate or foreign)";
      return InternalError(out.str());
    }

    const double reported = emissions[i].utility;
    const double recomputed = model->EvaluateConcrete(plan, ctx);
    if (std::abs(recomputed - reported) >
        tolerance * std::max(1.0, std::abs(recomputed))) {
      std::ostringstream out;
      out.precision(17);
      out << "oracle: step " << i << " plan " << PlanToString(plan)
          << " reported utility " << reported << " but brute-force "
          << "conditional utility is " << recomputed;
      return InternalError(out.str());
    }

    double best = recomputed;
    size_t best_index = index;
    for (size_t j = 0; j < remaining.size(); ++j) {
      if (j == index) continue;
      const double u = model->EvaluateConcrete(remaining[j], ctx);
      if (u > best) {
        best = u;
        best_index = j;
      }
    }
    if (best - recomputed > tolerance * std::max(1.0, std::abs(best))) {
      std::ostringstream out;
      out.precision(17);
      out << "oracle: step " << i << " emitted plan " << PlanToString(plan)
          << " with conditional utility " << recomputed << " but plan "
          << PlanToString(remaining[best_index])
          << " is strictly better at " << best << " (not exact decreasing "
          << "conditional-utility order)";
      return InternalError(out.str());
    }

    ctx.MarkExecuted(plan);
    remaining.erase(remaining.begin() + index);
  }
  return OkStatus();
}

}  // namespace planorder::sim
