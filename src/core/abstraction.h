#ifndef PLANORDER_CORE_ABSTRACTION_H_
#define PLANORDER_CORE_ABSTRACTION_H_

#include <cstdint>
#include <vector>

#include "core/plan_space.h"
#include "stats/source_stats.h"
#include "stats/workload.h"

namespace planorder::core {

/// How sources within a bucket are ordered before being grouped into a
/// balanced binary abstraction tree. Grouping similar sources keeps the
/// utility intervals of abstract plans tight, which is what lets Drips-style
/// pruning eliminate whole groups (Section 3, "Source Similarity").
enum class AbstractionHeuristic {
  /// Group sources with similar expected output cardinality — the heuristic
  /// the paper's experiments use (Section 6).
  kByCardinality,
  /// Group sources with similar coverage region sets (ablation).
  kByMaskSimilarity,
  /// Random grouping (ablation floor).
  kRandom,
};

/// Per-bucket binary abstraction trees over one plan space. Node 0..n-1 are
/// shared across buckets in one arena; each leaf is a concrete source of the
/// space, each inner node the abstraction of its two children with hulled
/// statistics (StatSummary::Merge).
///
/// Storage is flat and structure-of-arrays (DESIGN.md §11): summaries in one
/// contiguous array, child links as uint32_t indices in two more. The inner
/// evaluation loop reads only summaries_; the links are touched once per
/// refinement, so keeping them out of the summary array keeps it dense.
class AbstractionForest {
 public:
  /// Child sentinel of a leaf node.
  static constexpr uint32_t kNoChild = 0xffffffffu;
  /// Builds trees for every bucket of `space`. `seed` only matters for
  /// kRandom.
  static AbstractionForest Build(const stats::Workload& workload,
                                 const PlanSpace& space,
                                 AbstractionHeuristic heuristic,
                                 uint64_t seed = 0);

  int num_buckets() const { return static_cast<int>(roots_.size()); }

  /// Root node id of bucket b's tree.
  int root(int bucket) const { return roots_[bucket]; }

  const stats::StatSummary& summary(int node) const {
    return summaries_[static_cast<size_t>(node)];
  }
  bool is_leaf(int node) const {
    return left_[static_cast<size_t>(node)] == kNoChild;
  }
  int left(int node) const {
    return static_cast<int>(left_[static_cast<size_t>(node)]);
  }
  int right(int node) const {
    return static_cast<int>(right_[static_cast<size_t>(node)]);
  }

  /// For a leaf: its concrete source index within the workload bucket.
  int leaf_source(int node) const { return summary(node).members[0]; }

  int num_nodes() const { return static_cast<int>(summaries_.size()); }

  /// Per-node evaluation memo: the model's probe member for this node,
  /// -1 when not yet computed. A forest serves exactly one utility model
  /// (its owning orderer's), so the pick never needs invalidation; probe
  /// picks depend only on the node's member statistics, not on the executed
  /// set, so no epoch stamp is needed either. The memo is what keeps
  /// re-probes cheap after a split: the children recompute only their own
  /// bucket, every other bucket's node hits the memo.
  ///
  /// Concurrency contract: writes happen only from the serial phases of the
  /// batch evaluator (core/parallel_eval.h); parallel evaluation workers are
  /// read-only.
  int cached_probe_member(int node) const { return probe_members_[node]; }
  void set_cached_probe_member(int node, int member) const {
    probe_members_[node] = member;
  }

 private:
  int BuildRange(const stats::Workload& workload, int bucket,
                 const std::vector<int>& ordered, int lo, int hi);

  /// SoA node storage: summaries_[n] with child links left_[n]/right_[n]
  /// (kNoChild for leaves).
  std::vector<stats::StatSummary> summaries_;
  std::vector<uint32_t> left_;
  std::vector<uint32_t> right_;
  std::vector<int> roots_;
  /// See cached_probe_member(); sized to nodes_ by Build().
  mutable std::vector<int> probe_members_;
};

/// An abstract plan: one abstraction-tree node per bucket of one forest. The
/// plan represents the Cartesian product of its nodes' member sets; it is
/// concrete when every node is a leaf.
struct AbstractPlan {
  const AbstractionForest* forest = nullptr;
  std::vector<int> nodes;

  bool IsConcrete() const;

  /// The concrete plan, valid only when IsConcrete().
  ConcretePlan ToConcrete() const;

  /// Summaries of the nodes, bucket order, for UtilityModel::Evaluate.
  std::vector<const stats::StatSummary*> Summaries() const;

  /// Number of concrete plans represented.
  uint64_t NumConcretePlans() const;
};

}  // namespace planorder::core

#endif  // PLANORDER_CORE_ABSTRACTION_H_
