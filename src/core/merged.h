#ifndef PLANORDER_CORE_MERGED_H_
#define PLANORDER_CORE_MERGED_H_

#include <optional>
#include <vector>

#include "base/status.h"
#include "core/orderer.h"

namespace planorder::core {

/// A plan emitted by a merge of several streams, tagged with its stream.
struct MergedPlan {
  int stream = 0;
  OrderedPlan plan;
};

/// K-way merge of independently ordered plan streams, by utility.
///
/// This is the Section 7 recipe for reformulation algorithms that produce
/// several plan spaces with *different bucket structures* (MiniCon): order
/// each space with its own orderer over its own workload, then merge the
/// streams. The merge buffers one head plan per stream and repeatedly emits
/// the best head.
///
/// Correctness requires the utility measure to be fully independent
/// (utilities never depend on executed plans): with conditioning, a plan
/// executed from one stream could change the utilities buffered in another,
/// and the merge would be stale. Callers pass orderers whose models report
/// fully_independent(); this class cannot verify it and documents the
/// contract instead.
class MergedOrderer {
 public:
  /// The orderers must outlive the merger.
  explicit MergedOrderer(std::vector<Orderer*> streams)
      : streams_(std::move(streams)), heads_(streams_.size()) {}

  MergedOrderer(const MergedOrderer&) = delete;
  MergedOrderer& operator=(const MergedOrderer&) = delete;

  /// Emits the globally next best plan, or NotFound when all streams are
  /// exhausted.
  StatusOr<MergedPlan> Next();

  /// Total plan evaluations across the streams.
  int64_t plan_evaluations() const;

 private:
  std::vector<Orderer*> streams_;
  std::vector<std::optional<OrderedPlan>> heads_;
  std::vector<char> exhausted_ = {};
};

}  // namespace planorder::core

#endif  // PLANORDER_CORE_MERGED_H_
