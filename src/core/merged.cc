#include "core/merged.h"

namespace planorder::core {

StatusOr<MergedPlan> MergedOrderer::Next() {
  if (exhausted_.empty()) exhausted_.assign(streams_.size(), 0);
  // Refill empty heads.
  for (size_t i = 0; i < streams_.size(); ++i) {
    if (heads_[i].has_value() || exhausted_[i]) continue;
    auto next = streams_[i]->Next();
    if (next.ok()) {
      heads_[i] = std::move(*next);
    } else if (next.status().code() == StatusCode::kNotFound) {
      exhausted_[i] = 1;
    } else {
      return next.status();
    }
  }
  int best = -1;
  for (size_t i = 0; i < streams_.size(); ++i) {
    if (!heads_[i].has_value()) continue;
    if (best < 0 || heads_[i]->utility > heads_[best]->utility) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) return NotFoundError("all plan streams exhausted");
  MergedPlan out{best, std::move(*heads_[best])};
  heads_[best].reset();
  return out;
}

int64_t MergedOrderer::plan_evaluations() const {
  int64_t total = 0;
  for (const Orderer* stream : streams_) total += stream->plan_evaluations();
  return total;
}

}  // namespace planorder::core
