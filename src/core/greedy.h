#ifndef PLANORDER_CORE_GREEDY_H_
#define PLANORDER_CORE_GREEDY_H_

#include <memory>
#include <queue>
#include <vector>

#include "core/orderer.h"

namespace planorder::core {

/// The Greedy algorithm (Section 4). Requires a fully monotonic utility
/// measure: each bucket has a total source order such that upgrading a
/// source improves any plan, regardless of the executed set. The best plan
/// of a plan space is then the per-bucket best sources; emission removes it
/// by recursive splitting (Figure 2) and the split spaces' best plans enter
/// a max-heap. Finding each of the first k plans is O(m) heap work plus
/// O(m^2) split spaces, matching the paper's O(m n^2 k^2) overall bound.
class GreedyOrderer : public Orderer {
 public:
  /// Fails unless `model` is fully monotonic. `spaces` must share the
  /// workload's bucket structure.
  static StatusOr<std::unique_ptr<GreedyOrderer>> Create(
      const stats::Workload* workload, utility::UtilityModel* model,
      std::vector<PlanSpace> spaces);

  std::string name() const override { return "greedy"; }

 protected:
  StatusOr<OrderedPlan> ComputeNext() override;

 private:
  struct Entry {
    PlanSpace space;
    ConcretePlan best_plan;
    double utility;
  };
  struct EntryLess {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.utility < b.utility;
    }
  };

  GreedyOrderer(const stats::Workload* workload, utility::UtilityModel* model)
      : Orderer(workload, model) {}

  /// Builds the heap entries for a batch of spaces (per-bucket argmax of
  /// MonotoneScore plus one concrete evaluation each), fanning the batch
  /// over the evaluator's pool, and pushes them in index order.
  void PushEntries(std::vector<PlanSpace> spaces);

  std::priority_queue<Entry, std::vector<Entry>, EntryLess> heap_;
};

}  // namespace planorder::core

#endif  // PLANORDER_CORE_GREEDY_H_
