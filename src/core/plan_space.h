#ifndef PLANORDER_CORE_PLAN_SPACE_H_
#define PLANORDER_CORE_PLAN_SPACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "utility/execution_context.h"

namespace planorder::core {

using utility::ConcretePlan;

/// A plan space (Section 4): the set of plans formed by the Cartesian product
/// of a set of buckets. `buckets[b]` lists the workload source indices
/// available for subgoal b; a plan picks one per bucket.
struct PlanSpace {
  std::vector<std::vector<int>> buckets;

  /// The full space over a workload: bucket b = {0 .. bucket_size(b)-1}.
  static PlanSpace FullSpace(const stats::Workload& workload);

  int num_buckets() const { return static_cast<int>(buckets.size()); }

  /// Number of plans in the space (product of bucket sizes).
  uint64_t NumPlans() const;

  /// True when `plan` picks a member of every bucket.
  bool Contains(const ConcretePlan& plan) const;

  /// True when some bucket is empty, i.e. the space holds no plans.
  bool IsEmpty() const {
    for (const auto& bucket : buckets) {
      if (bucket.empty()) return true;
    }
    return false;
  }

  std::string ToString() const;
};

/// Shared orderer-construction validation: spaces must match the workload's
/// bucket structure; spaces with an empty bucket hold no plans and are
/// dropped. Returns the surviving spaces.
StatusOr<std::vector<PlanSpace>> ValidateSpaces(
    const stats::Workload& workload, std::vector<PlanSpace> spaces);

/// Materializes every concrete plan of `space` in odometer order (bucket 0
/// fastest). The oracle hook shared by the PI baseline and the simulation
/// harness's exhaustive-order oracle (src/sim/oracle.h): small plan spaces
/// are enumerated once and checked brute-force. Requires !space.IsEmpty().
std::vector<ConcretePlan> EnumeratePlans(const PlanSpace& space);

/// Removes `plan` from `space` by the paper's recursive splitting (Figure 2):
/// the result is up to m spaces that together contain exactly the plans of
/// `space` other than `plan`. Space i pins buckets 0..i-1 to the plan's
/// sources and excludes the plan's source from bucket i; empty splits are
/// dropped. Requires space.Contains(plan).
std::vector<PlanSpace> SplitAround(const PlanSpace& space,
                                   const ConcretePlan& plan);

}  // namespace planorder::core

#endif  // PLANORDER_CORE_PLAN_SPACE_H_
