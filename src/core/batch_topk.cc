#include "core/batch_topk.h"

#include <algorithm>
#include <memory>
#include <queue>

#include "core/evaluate.h"

namespace planorder::core {
namespace {

struct SearchNode {
  AbstractPlan plan;
  Interval utility;
  bool concrete = false;
};

struct ByUpperBound {
  bool operator()(const SearchNode& a, const SearchNode& b) const {
    return a.utility.hi() < b.utility.hi();
  }
};

}  // namespace

StatusOr<std::vector<OrderedPlan>> BatchTopK(
    const stats::Workload* workload, utility::UtilityModel* model,
    std::vector<PlanSpace> spaces, int k, AbstractionHeuristic heuristic,
    int64_t* evaluations) {
  if (k < 1) return InvalidArgumentError("k must be >= 1");
  if (!model->fully_independent()) {
    return FailedPreconditionError(
        "batch top-k requires a fully independent utility measure; '" +
        model->name() + "' conditions on executed plans");
  }
  PLANORDER_ASSIGN_OR_RETURN(spaces,
                             ValidateSpaces(*workload, std::move(spaces)));
  // Utilities never depend on executions, so one fresh context serves.
  utility::ExecutionContext ctx(workload);

  std::vector<std::unique_ptr<AbstractionForest>> forests;
  std::priority_queue<SearchNode, std::vector<SearchNode>, ByUpperBound> open;
  auto push = [&](AbstractPlan plan) {
    SearchNode node;
    // Best-first pruning only consults upper bounds, so skip the probe
    // evaluation EvaluateWithProbe would add.
    if (evaluations != nullptr) ++*evaluations;
    const std::vector<const stats::StatSummary*> summaries = plan.Summaries();
    node.utility = model->Evaluate(
        utility::NodeSpan(summaries.data(), summaries.size()), ctx);
    node.concrete = plan.IsConcrete();
    node.plan = std::move(plan);
    open.push(std::move(node));
  };
  for (const PlanSpace& space : spaces) {
    forests.push_back(std::make_unique<AbstractionForest>(
        AbstractionForest::Build(*workload, space, heuristic)));
    AbstractPlan top;
    top.forest = forests.back().get();
    for (int b = 0; b < forests.back()->num_buckets(); ++b) {
      top.nodes.push_back(forests.back()->root(b));
    }
    push(std::move(top));
  }

  // Best-first: when the highest upper bound belongs to a concrete plan, no
  // other plan can beat it — emit. Otherwise refine that abstract plan.
  std::vector<OrderedPlan> best;
  best.reserve(static_cast<size_t>(k));
  while (static_cast<int>(best.size()) < k && !open.empty()) {
    SearchNode node = open.top();
    open.pop();
    if (node.concrete) {
      best.push_back(OrderedPlan{node.plan.ToConcrete(), node.utility.hi()});
      continue;
    }
    const AbstractionForest& forest = *node.plan.forest;
    int bucket = -1;
    size_t most_members = 0;
    for (size_t b = 0; b < node.plan.nodes.size(); ++b) {
      if (forest.is_leaf(node.plan.nodes[b])) continue;
      const size_t members =
          forest.summary(node.plan.nodes[b]).members.size();
      if (members > most_members) {
        most_members = members;
        bucket = static_cast<int>(b);
      }
    }
    PLANORDER_CHECK_GE(bucket, 0);
    AbstractPlan left = node.plan;
    left.nodes[bucket] = forest.left(node.plan.nodes[bucket]);
    AbstractPlan right = node.plan;
    right.nodes[bucket] = forest.right(node.plan.nodes[bucket]);
    push(std::move(left));
    push(std::move(right));
  }
  return best;
}

}  // namespace planorder::core
