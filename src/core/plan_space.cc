#include "core/plan_space.h"

#include <algorithm>

#include "base/logging.h"

namespace planorder::core {

PlanSpace PlanSpace::FullSpace(const stats::Workload& workload) {
  PlanSpace space;
  space.buckets.resize(workload.num_buckets());
  for (int b = 0; b < workload.num_buckets(); ++b) {
    space.buckets[b].resize(workload.bucket_size(b));
    for (int i = 0; i < workload.bucket_size(b); ++i) space.buckets[b][i] = i;
  }
  return space;
}

uint64_t PlanSpace::NumPlans() const {
  uint64_t n = 1;
  for (const auto& bucket : buckets) n *= bucket.size();
  return n;
}

bool PlanSpace::Contains(const ConcretePlan& plan) const {
  if (plan.size() != buckets.size()) return false;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (std::find(buckets[b].begin(), buckets[b].end(), plan[b]) ==
        buckets[b].end()) {
      return false;
    }
  }
  return true;
}

std::string PlanSpace::ToString() const {
  std::string out = "{";
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (b > 0) out += " x ";
    out += "[";
    for (size_t i = 0; i < buckets[b].size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(buckets[b][i]);
    }
    out += "]";
  }
  out += "}";
  return out;
}

StatusOr<std::vector<PlanSpace>> ValidateSpaces(
    const stats::Workload& workload, std::vector<PlanSpace> spaces) {
  std::vector<PlanSpace> kept;
  kept.reserve(spaces.size());
  for (PlanSpace& space : spaces) {
    if (space.num_buckets() != workload.num_buckets()) {
      return InvalidArgumentError("plan space does not match the workload");
    }
    for (const auto& bucket : space.buckets) {
      for (int s : bucket) {
        const size_t b = static_cast<size_t>(&bucket - space.buckets.data());
        if (s < 0 || s >= workload.bucket_size(static_cast<int>(b))) {
          return InvalidArgumentError("plan space names an unknown source");
        }
      }
    }
    if (!space.IsEmpty()) kept.push_back(std::move(space));
  }
  return kept;
}

std::vector<ConcretePlan> EnumeratePlans(const PlanSpace& space) {
  PLANORDER_CHECK(!space.IsEmpty())
      << "EnumeratePlans: empty space " << space.ToString();
  std::vector<ConcretePlan> plans;
  plans.reserve(space.NumPlans());
  ConcretePlan plan(space.buckets.size());
  std::vector<size_t> cursor(space.buckets.size(), 0);
  while (true) {
    for (size_t b = 0; b < space.buckets.size(); ++b) {
      plan[b] = space.buckets[b][cursor[b]];
    }
    plans.push_back(plan);
    size_t b = 0;
    for (; b < space.buckets.size(); ++b) {
      if (++cursor[b] < space.buckets[b].size()) break;
      cursor[b] = 0;
    }
    if (b == space.buckets.size()) break;
  }
  return plans;
}

std::vector<PlanSpace> SplitAround(const PlanSpace& space,
                                   const ConcretePlan& plan) {
  PLANORDER_CHECK(space.Contains(plan))
      << "SplitAround: plan not in space " << space.ToString();
  std::vector<PlanSpace> result;
  for (size_t i = 0; i < space.buckets.size(); ++i) {
    std::vector<int> without;
    without.reserve(space.buckets[i].size() - 1);
    for (int s : space.buckets[i]) {
      if (s != plan[i]) without.push_back(s);
    }
    if (without.empty()) continue;
    PlanSpace split;
    split.buckets.reserve(space.buckets.size());
    for (size_t b = 0; b < i; ++b) split.buckets.push_back({plan[b]});
    split.buckets.push_back(std::move(without));
    for (size_t b = i + 1; b < space.buckets.size(); ++b) {
      split.buckets.push_back(space.buckets[b]);
    }
    result.push_back(std::move(split));
  }
  return result;
}

}  // namespace planorder::core
