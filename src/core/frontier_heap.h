#ifndef PLANORDER_CORE_FRONTIER_HEAP_H_
#define PLANORDER_CORE_FRONTIER_HEAP_H_

#include <cstdint>
#include <vector>

#include "base/logging.h"

namespace planorder::core {

/// Indexed d-ary (d = 4) max-heap over frontier slots with lazy decrease-key
/// — the selection structure of the flat ordering core (DESIGN.md §11),
/// replacing the per-round linear rescans of the frontier.
///
/// Keys are (key1 desc, key2 desc, rank asc): upper bound, interval width and
/// creation rank for the abstract frontier; exact lower bound and rank for
/// the concrete one. Ranks reproduce the legacy vector positions (a child
/// replacing its parent in place inherits the parent's rank), so heap order
/// ties break exactly as the old index-ordered scans did.
///
/// There is no decrease-key: a slot whose bounds change (re-evaluation after
/// an emission, overwrite by a refinement child, release on emission) bumps
/// its version counter and pushes a fresh entry; entries whose stored version
/// no longer matches the slot's are dead and are skipped during Peek/Pop.
/// Versions are an eval-epoch analogue that never resets — slot reuse through
/// the arena free list cannot resurrect a stale entry. The heap compacts
/// itself when dead entries outnumber live slots enough to matter, keeping
/// Push/Pop O(log live) amortized.
///
/// Determinism: push order, versions and ranks are fixed by the algorithm
/// (never thread count); ties in (key1, key2) resolve by rank, which is
/// unique per entry, so Peek/Pop order is a total order independent of the
/// heap's internal layout history.
class FrontierHeap {
 public:
  struct Entry {
    double key1 = 0.0;
    double key2 = 0.0;
    uint64_t rank = 0;
    uint32_t slot = 0;
    uint32_t version = 0;
  };

  void Clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }

  void Push(const Entry& entry) {
    entries_.push_back(entry);
    SiftUp(entries_.size() - 1);
  }

  /// Highest live entry, or nullptr when none. `live(entry)` must return
  /// true iff the entry's version still matches its slot; dead entries found
  /// on the way are popped. The returned pointer is valid until the next
  /// mutating call.
  template <typename LiveFn>
  const Entry* Peek(const LiveFn& live) {
    while (!entries_.empty() && !live(entries_[0])) PopRoot();
    return entries_.empty() ? nullptr : &entries_[0];
  }

  /// Removes the current root (after a Peek that returned non-null).
  void PopTop() {
    PLANORDER_DCHECK(!entries_.empty());
    PopRoot();
  }

  /// Drops every entry `live` rejects. Called by the owner when dead entries
  /// accumulate (the owner knows the live-slot count; the heap does not).
  template <typename LiveFn>
  void Compact(const LiveFn& live) {
    size_t kept = 0;
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (live(entries_[i])) entries_[kept++] = entries_[i];
    }
    entries_.resize(kept);
    if (entries_.size() > 1) {
      for (size_t i = (entries_.size() - 2) / kArity + 1; i-- > 0;) {
        SiftDown(i);
      }
    }
  }

 private:
  static constexpr size_t kArity = 4;

  /// Max-heap order: key1 desc, key2 desc, rank asc (rank is unique).
  static bool Above(const Entry& a, const Entry& b) {
    if (a.key1 != b.key1) return a.key1 > b.key1;
    if (a.key2 != b.key2) return a.key2 > b.key2;
    return a.rank < b.rank;
  }

  void PopRoot() {
    entries_[0] = entries_.back();
    entries_.pop_back();
    if (!entries_.empty()) SiftDown(0);
  }

  void SiftUp(size_t i) {
    Entry e = entries_[i];
    while (i != 0) {
      const size_t parent = (i - 1) / kArity;
      if (!Above(e, entries_[parent])) break;
      entries_[i] = entries_[parent];
      i = parent;
    }
    entries_[i] = e;
  }

  void SiftDown(size_t i) {
    Entry e = entries_[i];
    const size_t n = entries_.size();
    while (true) {
      const size_t first = i * kArity + 1;
      if (first >= n) break;
      size_t best = first;
      const size_t last = first + kArity < n ? first + kArity : n;
      for (size_t c = first + 1; c < last; ++c) {
        if (Above(entries_[c], entries_[best])) best = c;
      }
      if (!Above(entries_[best], e)) break;
      entries_[i] = entries_[best];
      i = best;
    }
    entries_[i] = e;
  }

  std::vector<Entry> entries_;
};

}  // namespace planorder::core

#endif  // PLANORDER_CORE_FRONTIER_HEAP_H_
