#include "core/streamer.h"

#include <algorithm>

#include "core/evaluate.h"

namespace planorder::core {

StatusOr<std::unique_ptr<StreamerOrderer>> StreamerOrderer::Create(
    const stats::Workload* workload, utility::UtilityModel* model,
    std::vector<PlanSpace> spaces, AbstractionHeuristic heuristic,
    bool probe_lower_bounds) {
  if (!model->diminishing_returns()) {
    return FailedPreconditionError(
        "Streamer requires utility-diminishing returns; '" + model->name() +
        "' does not provide it");
  }
  PLANORDER_ASSIGN_OR_RETURN(spaces,
                             ValidateSpaces(*workload, std::move(spaces)));
  auto orderer = std::unique_ptr<StreamerOrderer>(
      new StreamerOrderer(workload, model, probe_lower_bounds));
  // Step 1 (Figure 5): abstract every bucket once; the top plan of each
  // space enters the graph with nil utility.
  for (const PlanSpace& space : spaces) {
    orderer->forests_.push_back(std::make_unique<AbstractionForest>(
        AbstractionForest::Build(*workload, space, heuristic)));
    const AbstractionForest& forest = *orderer->forests_.back();
    AbstractPlan top;
    top.forest = &forest;
    top.nodes.resize(forest.num_buckets());
    for (int b = 0; b < forest.num_buckets(); ++b) {
      top.nodes[b] = forest.root(b);
    }
    orderer->AddNode(std::move(top));
  }
  return orderer;
}

int StreamerOrderer::AddNode(AbstractPlan plan) {
  Node node;
  node.concrete = plan.IsConcrete();
  node.summaries = plan.Summaries();
  node.plan = std::move(plan);
  nodes_.push_back(std::move(node));
  out_links_.emplace_back();
  node_version_.push_back(0);
  const int id = static_cast<int>(nodes_.size() - 1);
  alive_.insert(id);
  nondominated_.insert(id);
  // No heap entry yet: the node has no utility until its first evaluation,
  // which pushes one.
  return id;
}

void StreamerOrderer::PushNodeEntry(int node_index) {
  const Node& node = nodes_[node_index];
  FrontierHeap::Entry entry;
  entry.rank = static_cast<uint64_t>(node_index);
  entry.slot = static_cast<uint32_t>(node_index);
  entry.version = node_version_[node_index];
  if (node.concrete) {
    entry.key1 = node.utility.lo();
    concrete_heap_.Push(entry);
  } else {
    entry.key1 = node.utility.hi();
    entry.key2 = node.utility.width();
    abstract_heap_.Push(entry);
  }
}

void StreamerOrderer::AddLink(int from, int to) {
  Link link;
  link.from = from;
  link.to = to;
  // Justification: if even the min-over-members bound dominates, any member
  // dominates and a failed witness may be replaced; otherwise only the probe
  // member is known to dominate.
  link.any_member = nodes_[from].model_lo >= nodes_[to].utility.hi();
  link.witness = nodes_[from].probe;
  link.created_epoch = ctx().epoch();
  int index;
  if (!free_links_.empty()) {
    index = free_links_.back();
    free_links_.pop_back();
    links_[index] = std::move(link);
  } else {
    links_.push_back(std::move(link));
    index = static_cast<int>(links_.size() - 1);
  }
  out_links_[from].push_back(index);
  alive_links_.insert(index);
  if (nodes_[to].incoming++ == 0) nondominated_.erase(to);
}

void StreamerOrderer::KillLink(int link_index) {
  Link& link = links_[link_index];
  if (!link.alive) return;
  link.alive = false;
  link.witness.clear();
  alive_links_.erase(link_index);
  free_links_.push_back(link_index);
  if (--nodes_[link.to].incoming == 0 && nodes_[link.to].alive) {
    nondominated_.insert(link.to);
    // Back in the frontier: re-push its (unchanged) bounds, since the heap
    // entry may have been consumed by a Peek while the node was dominated.
    // A duplicate entry is benign — consuming one always ends in RemoveNode
    // or a version bump, which kills the other.
    if (node_version_[link.to] > 0) PushNodeEntry(link.to);
  }
  auto& out = out_links_[link.from];
  out.erase(std::remove(out.begin(), out.end(), link_index), out.end());
}

void StreamerOrderer::RemoveNode(int node_index) {
  nodes_[node_index].alive = false;
  alive_.erase(node_index);
  nondominated_.erase(node_index);
  // Copy: KillLink edits out_links_[node_index].
  const std::vector<int> out = out_links_[node_index];
  for (int link_index : out) KillLink(link_index);
}

bool StreamerOrderer::UtilityCurrent(Node& node) {
  if (node.eval_epoch < 0) return false;
  const std::vector<ConcretePlan>& executed = ctx().executed();
  const utility::NodeSpan span(node.summaries.data(), node.summaries.size());
  for (size_t i = static_cast<size_t>(node.eval_epoch); i < executed.size();
       ++i) {
    if (!model().GroupIndependentOf(span, executed[i])) {
      node.eval_epoch = -1;
      return false;
    }
  }
  node.eval_epoch = static_cast<int64_t>(executed.size());
  return true;
}

bool StreamerOrderer::Dominates(int a, int b) const {
  const Interval& ua = nodes_[a].utility;
  const Interval& ub = nodes_[b].utility;
  if (!ua.DominatesOrEquals(ub)) return false;
  // Mutual domination (point-tied utilities): only the lower id dominates,
  // keeping the dominance relation acyclic.
  if (ub.DominatesOrEquals(ua)) return a < b;
  return true;
}

bool StreamerOrderer::Precedes(int a, int b) const {
  if (nodes_[a].utility.lo() != nodes_[b].utility.lo()) {
    return nodes_[a].utility.lo() > nodes_[b].utility.lo();
  }
  return a < b;
}

void StreamerOrderer::LinkFullPass(std::vector<int>& snapshot) {
  // Create domination links among the nondominated plans. Any dominating
  // pair is sound (Figure 5 links all of them); we link each dominated plan
  // from its CLOSEST preceding dominator in utility order, so the frontier
  // forms a chain rather than a star: emitting the best plan then frees only
  // its immediate successors instead of resurfacing the whole frontier.
  // Plans dominated earlier in the pass still serve as dominators — the
  // snapshot is fixed — which is what makes the per-node scans independent.
  std::sort(snapshot.begin(), snapshot.end(),
            [this](int a, int b) { return Precedes(a, b); });
  for (size_t j = 0; j < snapshot.size(); ++j) {
    for (size_t i = j; i-- > 0;) {
      if (Dominates(snapshot[i], snapshot[j])) {
        AddLink(snapshot[i], snapshot[j]);
        break;
      }
    }
  }
}

void StreamerOrderer::LinkFresh(const std::vector<int>& fresh,
                                const std::vector<int>& candidates) {
  // Equivalent to LinkFullPass over `candidates` given that survivor-vs-
  // survivor relations are already settled: a fresh node searches the whole
  // candidate set for its closest preceding dominator, a survivor only the
  // fresh set (no survivor dominates another — their utilities have not
  // changed since the pass that left them all nondominated). "Closest
  // preceding" is the latest dominator in (lower bound desc, id asc) order,
  // exactly the one the full pass's backward scan finds first.
  const auto is_fresh = [&fresh](int n) {
    return std::find(fresh.begin(), fresh.end(), n) != fresh.end();
  };
  for (int f : fresh) {
    int best = -1;
    for (int n : candidates) {
      if (n == f || !Precedes(n, f) || !Dominates(n, f)) continue;
      if (best < 0 || Precedes(best, n)) best = n;
    }
    if (best >= 0) AddLink(best, f);
  }
  for (int s : candidates) {
    if (is_fresh(s)) continue;
    int best = -1;
    for (int f : fresh) {
      if (f == s || !Precedes(f, s) || !Dominates(f, s)) continue;
      if (best < 0 || Precedes(best, f)) best = f;
    }
    if (best >= 0) AddLink(best, s);
  }
}

StatusOr<OrderedPlan> StreamerOrderer::ComputeNext() {
  // Step 2 of Figure 5, restructured around the selection heaps (DESIGN.md
  // §11): the staleness/refresh pass and the full dominance-link pass run
  // ONCE per emission, then a heap-driven loop refines abstract frontier
  // tops — evaluating and linking only the two children per round — until
  // every nondominated plan is concrete.
  if (nondominated_.empty()) return NotFoundError("plan spaces exhausted");

  const auto abstract_live = [this](const FrontierHeap::Entry& entry) {
    const Node& node = nodes_[entry.slot];
    return node.alive && node.incoming == 0 && !node.concrete &&
           entry.version == node_version_[entry.slot];
  };
  const auto concrete_live = [this](const FrontierHeap::Entry& entry) {
    const Node& node = nodes_[entry.slot];
    return node.alive && node.incoming == 0 && node.concrete &&
           entry.version == node_version_[entry.slot];
  };
  if (abstract_heap_.size() + concrete_heap_.size() >
      4 * alive_.size() + 64) {
    abstract_heap_.Compact(abstract_live);
    concrete_heap_.Compact(concrete_live);
  }

  // (2.a) Recompute nil (or stale) utilities of nondominated plans — once
  // per emission, not once per refinement (see num_staleness_checks()). The
  // staleness walk (one group-independence test per executed plan since a
  // node's evaluation) and the re-evaluations both fan out over the
  // evaluator's pool: every index touches only its own node, and the
  // evaluation counter is folded in nondominated (= index) order, so the
  // result is identical to the serial loop.
  std::vector<int>& snapshot = scratch_;
  snapshot.clear();
  snapshot.insert(snapshot.end(), nondominated_.begin(), nondominated_.end());
  num_staleness_checks_ += static_cast<int64_t>(snapshot.size());
  std::vector<uint8_t> is_stale(snapshot.size(), 0);
  evaluator().ParallelFor(snapshot.size(), [&](size_t j) {
    is_stale[j] = UtilityCurrent(nodes_[snapshot[j]]) ? 0 : 1;
  });
  std::vector<int> stale;
  std::vector<const AbstractPlan*> batch;
  for (size_t j = 0; j < snapshot.size(); ++j) {
    if (is_stale[j] != 0) {
      stale.push_back(snapshot[j]);
      batch.push_back(&nodes_[snapshot[j]].plan);
    }
  }
  std::vector<PlanEvaluation> evals = evaluator().EvaluateBatch(
      batch, model(), ctx(), &evaluations_, probe_lower_bounds_);
  for (size_t j = 0; j < stale.size(); ++j) {
    Node& node = nodes_[stale[j]];
    node.utility = evals[j].utility;
    node.model_lo = evals[j].model_lo;
    node.probe = evals[j].probe;
    node.eval_epoch = ctx().epoch();
    ++node_version_[stale[j]];
    PushNodeEntry(stale[j]);
  }

  // (2.b) One full dominance-link pass now that every frontier utility is
  // current; refinements below only re-link incrementally.
  LinkFullPass(snapshot);

  // (2.c) Refine the most promising abstract frontier plan — highest upper
  // bound, ties by widest interval then lowest id — until none remains.
  // Within one emission the surviving utilities are fixed, so each round
  // only evaluates the refinement's two children and links fresh nodes.
  std::vector<int> fresh;
  std::vector<int> candidates;
  while (true) {
    const FrontierHeap::Entry* top = abstract_heap_.Peek(abstract_live);
    if (top == nullptr) break;
    const int pick = static_cast<int>(top->slot);
    abstract_heap_.PopTop();

    // Refine the bucket whose abstract source has the most members. Copies
    // of the plan (and anything else read from nodes_) are taken before
    // AddNode, which may reallocate nodes_ and out_links_.
    const AbstractPlan& plan = nodes_[pick].plan;
    const AbstractionForest& forest = *plan.forest;
    int bucket = -1;
    size_t best_members = 0;
    for (size_t b = 0; b < plan.nodes.size(); ++b) {
      if (forest.is_leaf(plan.nodes[b])) continue;
      const size_t members = forest.summary(plan.nodes[b]).members.size();
      if (members > best_members) {
        best_members = members;
        bucket = static_cast<int>(b);
      }
    }
    PLANORDER_CHECK_GE(bucket, 0);
    AbstractPlan left = plan;
    left.nodes[bucket] = forest.left(plan.nodes[bucket]);
    AbstractPlan right = plan;
    right.nodes[bucket] = forest.right(plan.nodes[bucket]);
    const double parent_model_lo = nodes_[pick].model_lo;
    const int left_id = AddNode(std::move(left));
    const int right_id = AddNode(std::move(right));
    // Transfer the refined node's outgoing links to the child containing
    // each link's dominance witness: the witness (a concrete plan of the
    // parent) lies in exactly one child and its justification carries
    // over. Any-member links carry over to either child (its members are
    // a subset of the parent's), at the price of a more conservative
    // validity check later.
    for (int link_index : out_links_[pick]) {
      Link& link = links_[link_index];
      const std::vector<int>& left_members =
          nodes_[left_id].summaries[bucket]->members;
      int new_from = left_id;
      if (!std::binary_search(left_members.begin(), left_members.end(),
                              link.witness[bucket])) {
        new_from = right_id;
      }
      link.from = new_from;
      out_links_[new_from].push_back(link_index);
    }
    out_links_[pick].clear();
    // Conservative until the evaluation below overwrites it, in case a
    // link consults the bound in between.
    nodes_[left_id].model_lo = parent_model_lo;
    nodes_[right_id].model_lo = parent_model_lo;
    RemoveNode(pick);

    // Evaluate the children (one batch; counter order left-then-right
    // matches the old nondominated-order refresh).
    batch.clear();
    batch.push_back(&nodes_[left_id].plan);
    batch.push_back(&nodes_[right_id].plan);
    evals = evaluator().EvaluateBatch(batch, model(), ctx(), &evaluations_,
                                      probe_lower_bounds_);
    const int child_ids[2] = {left_id, right_id};
    for (int j = 0; j < 2; ++j) {
      Node& node = nodes_[child_ids[j]];
      node.utility = evals[j].utility;
      node.model_lo = evals[j].model_lo;
      node.probe = evals[j].probe;
      node.eval_epoch = ctx().epoch();
      ++node_version_[child_ids[j]];
      PushNodeEntry(child_ids[j]);
    }

    // Incremental link pass. Fresh is exactly the two children: the
    // parent's outgoing links were transferred (not killed), so no node
    // came back into the frontier this round.
    fresh.clear();
    fresh.push_back(left_id);
    fresh.push_back(right_id);
    candidates.clear();
    candidates.insert(candidates.end(), nondominated_.begin(),
                      nondominated_.end());
    LinkFresh(fresh, candidates);
  }

  // (2.d) All nondominated plans are concrete; emit the best (exact utility
  // desc, id asc — the order the old set scan produced).
  const FrontierHeap::Entry* best = concrete_heap_.Peek(concrete_live);
  PLANORDER_CHECK(best != nullptr);
  const int emit = static_cast<int>(best->slot);
  concrete_heap_.PopTop();
  OrderedPlan result{nodes_[emit].plan.ToConcrete(),
                     nodes_[emit].utility.lo()};
  RemoveNode(emit);
  return result;
}

void StreamerOrderer::OnExecuted(const ConcretePlan& plan) {
  // Fully independent measures: no utility ever changes, so every link is
  // valid forever and there is nothing to recycle or invalidate.
  if (model().fully_independent()) return;
  // Link recycling (step 2.d, lines 2-3): a link q -> q' survives the
  // execution of `plan` iff some concrete plan in q is independent of every
  // plan executed since the link was created, including this one. The cached
  // witness makes the common case one independence test; only when it fails
  // does an any-member link search E(p,q) for a replacement.
  const std::vector<ConcretePlan>& executed = ctx().executed();
  std::vector<const ConcretePlan*> suffix;
  std::vector<int> to_check(alive_links_.begin(), alive_links_.end());
  for (int li : to_check) {
    Link& link = links_[li];
    if (!link.alive) continue;
    if (model().Independent(link.witness, plan)) continue;
    if (!link.any_member) {
      // Only the probe member was known to dominate; it is now stale.
      KillLink(li);
      continue;
    }
    suffix.clear();
    for (size_t i = static_cast<size_t>(link.created_epoch);
         i < executed.size(); ++i) {
      suffix.push_back(&executed[i]);
    }
    const Node& from = nodes_[link.from];
    std::optional<ConcretePlan> replacement = model().FindIndependentGroupPlan(
        utility::NodeSpan(from.summaries.data(), from.summaries.size()),
        suffix);
    if (replacement.has_value()) {
      link.witness = std::move(*replacement);
    } else {
      KillLink(li);
    }
  }
  // Utility invalidation is lazy: UtilityCurrent() verifies independence
  // against the plans executed since a node's evaluation at access time, so
  // dominated nodes cost nothing here.
}

}  // namespace planorder::core
