#include "core/streamer.h"

#include <algorithm>

#include "core/evaluate.h"

namespace planorder::core {

StatusOr<std::unique_ptr<StreamerOrderer>> StreamerOrderer::Create(
    const stats::Workload* workload, utility::UtilityModel* model,
    std::vector<PlanSpace> spaces, AbstractionHeuristic heuristic,
    bool probe_lower_bounds) {
  if (!model->diminishing_returns()) {
    return FailedPreconditionError(
        "Streamer requires utility-diminishing returns; '" + model->name() +
        "' does not provide it");
  }
  PLANORDER_ASSIGN_OR_RETURN(spaces,
                             ValidateSpaces(*workload, std::move(spaces)));
  auto orderer = std::unique_ptr<StreamerOrderer>(
      new StreamerOrderer(workload, model, probe_lower_bounds));
  // Step 1 (Figure 5): abstract every bucket once; the top plan of each
  // space enters the graph with nil utility.
  for (const PlanSpace& space : spaces) {
    orderer->forests_.push_back(std::make_unique<AbstractionForest>(
        AbstractionForest::Build(*workload, space, heuristic)));
    const AbstractionForest& forest = *orderer->forests_.back();
    AbstractPlan top;
    top.forest = &forest;
    top.nodes.resize(forest.num_buckets());
    for (int b = 0; b < forest.num_buckets(); ++b) {
      top.nodes[b] = forest.root(b);
    }
    orderer->AddNode(std::move(top));
  }
  return orderer;
}

int StreamerOrderer::AddNode(AbstractPlan plan) {
  Node node;
  node.concrete = plan.IsConcrete();
  node.summaries = plan.Summaries();
  node.plan = std::move(plan);
  nodes_.push_back(std::move(node));
  out_links_.emplace_back();
  const int id = static_cast<int>(nodes_.size() - 1);
  alive_.insert(id);
  nondominated_.insert(id);
  return id;
}

void StreamerOrderer::AddLink(int from, int to) {
  Link link;
  link.from = from;
  link.to = to;
  // Justification: if even the min-over-members bound dominates, any member
  // dominates and a failed witness may be replaced; otherwise only the probe
  // member is known to dominate.
  link.any_member = nodes_[from].model_lo >= nodes_[to].utility.hi();
  link.witness = nodes_[from].probe;
  link.created_epoch = ctx().epoch();
  int index;
  if (!free_links_.empty()) {
    index = free_links_.back();
    free_links_.pop_back();
    links_[index] = std::move(link);
  } else {
    links_.push_back(std::move(link));
    index = static_cast<int>(links_.size() - 1);
  }
  out_links_[from].push_back(index);
  alive_links_.insert(index);
  if (nodes_[to].incoming++ == 0) nondominated_.erase(to);
}

void StreamerOrderer::KillLink(int link_index) {
  Link& link = links_[link_index];
  if (!link.alive) return;
  link.alive = false;
  link.witness.clear();
  alive_links_.erase(link_index);
  free_links_.push_back(link_index);
  if (--nodes_[link.to].incoming == 0 && nodes_[link.to].alive) {
    nondominated_.insert(link.to);
  }
  auto& out = out_links_[link.from];
  out.erase(std::remove(out.begin(), out.end(), link_index), out.end());
}

void StreamerOrderer::RemoveNode(int node_index) {
  nodes_[node_index].alive = false;
  alive_.erase(node_index);
  nondominated_.erase(node_index);
  // Copy: KillLink edits out_links_[node_index].
  const std::vector<int> out = out_links_[node_index];
  for (int link_index : out) KillLink(link_index);
}

bool StreamerOrderer::UtilityCurrent(Node& node) {
  if (node.eval_epoch < 0) return false;
  const std::vector<ConcretePlan>& executed = ctx().executed();
  const utility::NodeSpan span(node.summaries.data(), node.summaries.size());
  for (size_t i = static_cast<size_t>(node.eval_epoch); i < executed.size();
       ++i) {
    if (!model().GroupIndependentOf(span, executed[i])) {
      node.eval_epoch = -1;
      return false;
    }
  }
  node.eval_epoch = static_cast<int64_t>(executed.size());
  return true;
}

bool StreamerOrderer::Dominates(int a, int b) const {
  const Interval& ua = nodes_[a].utility;
  const Interval& ub = nodes_[b].utility;
  if (!ua.DominatesOrEquals(ub)) return false;
  // Mutual domination (point-tied utilities): only the lower id dominates,
  // keeping the dominance relation acyclic.
  if (ub.DominatesOrEquals(ua)) return a < b;
  return true;
}

StatusOr<OrderedPlan> StreamerOrderer::ComputeNext() {
  // Step 2 of Figure 5.
  std::vector<int>& snapshot = scratch_;
  while (true) {
    if (nondominated_.empty()) return NotFoundError("plan spaces exhausted");

    // (2.a) Recompute nil (or stale) utilities of nondominated plans. The
    // staleness walk (one group-independence test per executed plan since a
    // node's evaluation) and the re-evaluations both fan out over the
    // evaluator's pool: every index touches only its own node, and the
    // evaluation counter is folded in nondominated (= index) order, so the
    // result is identical to the serial loop.
    snapshot.clear();
    snapshot.insert(snapshot.end(), nondominated_.begin(), nondominated_.end());
    std::vector<uint8_t> is_stale(snapshot.size(), 0);
    evaluator().ParallelFor(snapshot.size(), [&](size_t j) {
      is_stale[j] = UtilityCurrent(nodes_[snapshot[j]]) ? 0 : 1;
    });
    std::vector<int> stale;
    std::vector<const AbstractPlan*> batch;
    for (size_t j = 0; j < snapshot.size(); ++j) {
      if (is_stale[j] != 0) {
        stale.push_back(snapshot[j]);
        batch.push_back(&nodes_[snapshot[j]].plan);
      }
    }
    const std::vector<PlanEvaluation> evals = evaluator().EvaluateBatch(
        batch, model(), ctx(), &evaluations_, probe_lower_bounds_);
    for (size_t j = 0; j < stale.size(); ++j) {
      Node& node = nodes_[stale[j]];
      node.utility = evals[j].utility;
      node.model_lo = evals[j].model_lo;
      node.probe = evals[j].probe;
      node.eval_epoch = ctx().epoch();
    }

    // (2.b) Create domination links among the nondominated plans. Any
    // dominating pair is sound (Figure 5 links all of them); we link each
    // dominated plan from its CLOSEST dominator in utility order, so the
    // frontier forms a chain rather than a star: emitting the best plan
    // then frees only its immediate successors instead of resurfacing the
    // whole frontier. Pick the refinement target (2.c) in the same pass:
    // highest upper bound among the surviving abstract plans (ties: widest
    // interval).
    std::sort(snapshot.begin(), snapshot.end(), [&](int a, int b) {
      if (nodes_[a].utility.lo() != nodes_[b].utility.lo()) {
        return nodes_[a].utility.lo() > nodes_[b].utility.lo();
      }
      return a < b;
    });
    int pick = -1;
    for (size_t j = 0; j < snapshot.size(); ++j) {
      const int n = snapshot[j];
      bool dominated = false;
      for (size_t i = j; i-- > 0;) {
        if (Dominates(snapshot[i], n)) {
          AddLink(snapshot[i], n);
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      const Node& node = nodes_[n];
      if (node.concrete) continue;
      if (pick < 0 || node.utility.hi() > nodes_[pick].utility.hi() ||
          (node.utility.hi() == nodes_[pick].utility.hi() &&
           node.utility.width() > nodes_[pick].utility.width())) {
        pick = n;
      }
    }
    if (pick >= 0) {
      const AbstractPlan& plan = nodes_[pick].plan;
      const AbstractionForest& forest = *plan.forest;
      // Refine the bucket whose abstract source has the most members.
      int bucket = -1;
      size_t best_members = 0;
      for (size_t b = 0; b < plan.nodes.size(); ++b) {
        if (forest.is_leaf(plan.nodes[b])) continue;
        const size_t members = forest.summary(plan.nodes[b]).members.size();
        if (members > best_members) {
          best_members = members;
          bucket = static_cast<int>(b);
        }
      }
      PLANORDER_CHECK_GE(bucket, 0);
      AbstractPlan left = plan;
      left.nodes[bucket] = forest.left(plan.nodes[bucket]);
      AbstractPlan right = plan;
      right.nodes[bucket] = forest.right(plan.nodes[bucket]);
      const double parent_model_lo = nodes_[pick].model_lo;
      const int left_id = AddNode(std::move(left));
      const int right_id = AddNode(std::move(right));
      // Transfer the refined node's outgoing links to the child containing
      // each link's dominance witness: the witness (a concrete plan of the
      // parent) lies in exactly one child and its justification carries
      // over. Any-member links carry over to either child (its members are
      // a subset of the parent's), at the price of a more conservative
      // validity check later.
      for (int link_index : out_links_[pick]) {
        Link& link = links_[link_index];
        const std::vector<int>& left_members =
            nodes_[left_id].summaries[bucket]->members;
        int new_from = left_id;
        if (!std::binary_search(left_members.begin(), left_members.end(),
                                link.witness[bucket])) {
          new_from = right_id;
        }
        link.from = new_from;
        out_links_[new_from].push_back(link_index);
      }
      out_links_[pick].clear();
      // The children have no utilities yet; keep the lower bound the links
      // may consult conservative until 2.a refreshes them.
      nodes_[left_id].model_lo = parent_model_lo;
      nodes_[right_id].model_lo = parent_model_lo;
      RemoveNode(pick);
      continue;
    }

    // (2.d) All nondominated plans are concrete. The star links leave
    // exactly one (the max); scan for it for robustness.
    int best = -1;
    for (int n : nondominated_) {
      if (best < 0 || nodes_[n].utility.lo() > nodes_[best].utility.lo()) {
        best = n;
      }
    }
    OrderedPlan result{nodes_[best].plan.ToConcrete(),
                       nodes_[best].utility.lo()};
    RemoveNode(best);
    return result;
  }
}

void StreamerOrderer::OnExecuted(const ConcretePlan& plan) {
  // Fully independent measures: no utility ever changes, so every link is
  // valid forever and there is nothing to recycle or invalidate.
  if (model().fully_independent()) return;
  // Link recycling (step 2.d, lines 2-3): a link q -> q' survives the
  // execution of `plan` iff some concrete plan in q is independent of every
  // plan executed since the link was created, including this one. The cached
  // witness makes the common case one independence test; only when it fails
  // does an any-member link search E(p,q) for a replacement.
  const std::vector<ConcretePlan>& executed = ctx().executed();
  std::vector<const ConcretePlan*> suffix;
  std::vector<int> to_check(alive_links_.begin(), alive_links_.end());
  for (int li : to_check) {
    Link& link = links_[li];
    if (!link.alive) continue;
    if (model().Independent(link.witness, plan)) continue;
    if (!link.any_member) {
      // Only the probe member was known to dominate; it is now stale.
      KillLink(li);
      continue;
    }
    suffix.clear();
    for (size_t i = static_cast<size_t>(link.created_epoch);
         i < executed.size(); ++i) {
      suffix.push_back(&executed[i]);
    }
    const Node& from = nodes_[link.from];
    std::optional<ConcretePlan> replacement = model().FindIndependentGroupPlan(
        utility::NodeSpan(from.summaries.data(), from.summaries.size()),
        suffix);
    if (replacement.has_value()) {
      link.witness = std::move(*replacement);
    } else {
      KillLink(li);
    }
  }
  // Utility invalidation is lazy: UtilityCurrent() verifies independence
  // against the plans executed since a node's evaluation at access time, so
  // dominated nodes cost nothing here.
}

}  // namespace planorder::core
