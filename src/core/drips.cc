#include "core/drips.h"

#include <algorithm>

#include "base/logging.h"
#include "core/evaluate.h"

namespace planorder::core {
namespace {

struct Candidate {
  AbstractPlan plan;
  Interval utility;
  bool concrete = false;
  bool alive = true;
};

/// Picks the bucket to refine: the non-leaf node with the most members, so
/// refinement halves the largest remaining group.
int PickRefinementBucket(const AbstractPlan& plan) {
  int best = -1;
  size_t best_members = 0;
  for (size_t b = 0; b < plan.nodes.size(); ++b) {
    if (plan.forest->is_leaf(plan.nodes[b])) continue;
    const size_t members = plan.forest->summary(plan.nodes[b]).members.size();
    if (members > best_members) {
      best_members = members;
      best = static_cast<int>(b);
    }
  }
  return best;
}

}  // namespace

StatusOr<DripsResult> RunDrips(const std::vector<AbstractPlan>& starts,
                               utility::UtilityModel& model,
                               const utility::ExecutionContext& ctx,
                               int64_t* evaluations,
                               bool probe_lower_bounds) {
  if (starts.empty()) return NotFoundError("no plans to order");
  std::vector<Candidate> candidates;
  candidates.reserve(starts.size() + 64);
  auto add_candidate = [&](AbstractPlan plan) {
    Candidate c;
    c.utility =
        EvaluateWithProbe(plan, model, ctx, evaluations, probe_lower_bounds)
            .utility;
    c.concrete = plan.IsConcrete();
    c.plan = std::move(plan);
    candidates.push_back(std::move(c));
    return candidates.size() - 1;
  };

  // Domination is static within one run (utilities don't change), so each
  // candidate is compared against the rest exactly once, when it enters.
  auto eliminate_against_all = [&](size_t fresh) {
    for (size_t i = 0; i < candidates.size() && candidates[fresh].alive; ++i) {
      if (i == fresh || !candidates[i].alive) continue;
      const Interval& a = candidates[i].utility;
      const Interval& b = candidates[fresh].utility;
      if (a.DominatesOrEquals(b)) {
        // Mutual (point-tied) domination keeps the earlier candidate.
        candidates[fresh].alive = false;
      } else if (b.DominatesOrEquals(a)) {
        candidates[i].alive = false;
      }
    }
  };

  for (const AbstractPlan& start : starts) {
    eliminate_against_all(add_candidate(start));
  }

  while (true) {
    Candidate* best_abstract = nullptr;
    Candidate* best_concrete = nullptr;
    for (Candidate& c : candidates) {
      if (!c.alive) continue;
      if (c.concrete) {
        if (best_concrete == nullptr ||
            c.utility.lo() > best_concrete->utility.lo()) {
          best_concrete = &c;
        }
      } else if (best_abstract == nullptr ||
                 c.utility.hi() > best_abstract->utility.hi() ||
                 (c.utility.hi() == best_abstract->utility.hi() &&
                  c.utility.width() > best_abstract->utility.width())) {
        best_abstract = &c;
      }
    }
    if (best_abstract == nullptr) {
      PLANORDER_CHECK(best_concrete != nullptr);
      DripsResult result;
      result.winner = best_concrete->plan;
      result.plan = best_concrete->plan.ToConcrete();
      result.utility = best_concrete->utility.lo();
      return result;
    }

    // Refinement: replace the most promising abstract plan by the two plans
    // splitting its largest abstract source.
    const int bucket = PickRefinementBucket(best_abstract->plan);
    PLANORDER_CHECK_GE(bucket, 0);
    const AbstractionForest& forest = *best_abstract->plan.forest;
    const int node = best_abstract->plan.nodes[bucket];
    AbstractPlan left = best_abstract->plan;
    left.nodes[bucket] = forest.left(node);
    AbstractPlan right = best_abstract->plan;
    right.nodes[bucket] = forest.right(node);
    best_abstract->alive = false;
    eliminate_against_all(add_candidate(std::move(left)));
    eliminate_against_all(add_candidate(std::move(right)));
  }
}

}  // namespace planorder::core
