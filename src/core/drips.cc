#include "core/drips.h"

#include <algorithm>

#include "base/logging.h"
#include "core/evaluate.h"
#include "core/frontier_heap.h"
#include "core/parallel_eval.h"

namespace planorder::core {
namespace {

struct Candidate {
  AbstractPlan plan;
  Interval utility;
  bool concrete = false;
  bool alive = true;
};

/// Picks the bucket to refine: the non-leaf node with the most members, so
/// refinement halves the largest remaining group.
int PickRefinementBucket(const AbstractPlan& plan) {
  int best = -1;
  size_t best_members = 0;
  for (size_t b = 0; b < plan.nodes.size(); ++b) {
    if (plan.forest->is_leaf(plan.nodes[b])) continue;
    const size_t members = plan.forest->summary(plan.nodes[b]).members.size();
    if (members > best_members) {
      best_members = members;
      best = static_cast<int>(b);
    }
  }
  return best;
}

}  // namespace

int RefinementBucket(const AbstractPlan& plan) {
  return PickRefinementBucket(plan);
}

StatusOr<DripsResult> RunDrips(const std::vector<AbstractPlan>& starts,
                               const utility::UtilityModel& model,
                               const utility::ExecutionContext& ctx,
                               int64_t* evaluations, bool probe_lower_bounds,
                               const BatchEvaluator* evaluator) {
  if (starts.empty()) return NotFoundError("no plans to order");
  const BatchEvaluator serial_evaluator;
  if (evaluator == nullptr) evaluator = &serial_evaluator;
  std::vector<Candidate> candidates;
  candidates.reserve(starts.size() + 64);
  // Candidate utilities never change within one run, so selection is two
  // static lazy heaps (core/frontier_heap.h) over candidate indices instead
  // of a full rescan per refinement: abstract candidates by (upper bound
  // desc, width desc, index asc) — the rescan's exact tie-break — concrete
  // ones by (exact utility desc, index asc). Eliminated candidates just drop
  // their alive flag; their entries die lazily at the next Peek.
  FrontierHeap abstract_heap;
  FrontierHeap concrete_heap;
  const auto entry_live = [&candidates](const FrontierHeap::Entry& entry) {
    return candidates[entry.slot].alive;
  };
  // All bookkeeping is by index: add_candidates may grow (and reallocate)
  // `candidates`, so no reference or pointer into it survives an insertion.
  auto add_candidates = [&](std::vector<AbstractPlan> plans) {
    std::vector<const AbstractPlan*> batch;
    batch.reserve(plans.size());
    for (const AbstractPlan& plan : plans) batch.push_back(&plan);
    std::vector<PlanEvaluation> evals = evaluator->EvaluateBatch(
        batch, model, ctx, evaluations, probe_lower_bounds);
    std::vector<size_t> added;
    added.reserve(plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
      Candidate c;
      c.utility = evals[i].utility;
      c.concrete = plans[i].IsConcrete();
      c.plan = std::move(plans[i]);
      candidates.push_back(std::move(c));
      const size_t index = candidates.size() - 1;
      added.push_back(index);
      FrontierHeap::Entry entry;
      entry.rank = index;
      entry.slot = static_cast<uint32_t>(index);
      const Candidate& added_c = candidates[index];
      if (added_c.concrete) {
        entry.key1 = added_c.utility.lo();
        concrete_heap.Push(entry);
      } else {
        entry.key1 = added_c.utility.hi();
        entry.key2 = added_c.utility.width();
        abstract_heap.Push(entry);
      }
    }
    return added;
  };

  // Domination is static within one run (utilities don't change), so each
  // candidate is compared against the rest exactly once, when it enters.
  auto eliminate_against_all = [&](size_t fresh) {
    for (size_t i = 0; i < candidates.size() && candidates[fresh].alive; ++i) {
      if (i == fresh || !candidates[i].alive) continue;
      const Interval& a = candidates[i].utility;
      const Interval& b = candidates[fresh].utility;
      if (a.DominatesOrEquals(b)) {
        // Mutual (point-tied) domination keeps the earlier candidate.
        candidates[fresh].alive = false;
      } else if (b.DominatesOrEquals(a)) {
        candidates[i].alive = false;
      }
    }
  };

  for (size_t fresh : add_candidates(starts)) eliminate_against_all(fresh);

  while (true) {
    const FrontierHeap::Entry* top = abstract_heap.Peek(entry_live);
    if (top == nullptr) {
      const FrontierHeap::Entry* best = concrete_heap.Peek(entry_live);
      PLANORDER_CHECK(best != nullptr);
      DripsResult result;
      result.winner = candidates[best->slot].plan;
      result.plan = candidates[best->slot].plan.ToConcrete();
      result.utility = candidates[best->slot].utility.lo();
      return result;
    }
    const size_t best_abstract = top->slot;
    abstract_heap.PopTop();

    // Refinement: replace the most promising abstract plan by the two plans
    // splitting its largest abstract source.
    const int bucket = PickRefinementBucket(candidates[best_abstract].plan);
    PLANORDER_CHECK_GE(bucket, 0);
    const AbstractionForest& forest = *candidates[best_abstract].plan.forest;
    const int node = candidates[best_abstract].plan.nodes[bucket];
    AbstractPlan left = candidates[best_abstract].plan;
    left.nodes[bucket] = forest.left(node);
    AbstractPlan right = candidates[best_abstract].plan;
    right.nodes[bucket] = forest.right(node);
    candidates[best_abstract].alive = false;
    std::vector<AbstractPlan> children;
    children.push_back(std::move(left));
    children.push_back(std::move(right));
    for (size_t fresh : add_candidates(std::move(children))) {
      eliminate_against_all(fresh);
    }
  }
}

}  // namespace planorder::core
