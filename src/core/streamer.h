#ifndef PLANORDER_CORE_STREAMER_H_
#define PLANORDER_CORE_STREAMER_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "core/abstraction.h"
#include "core/frontier_heap.h"
#include "core/orderer.h"

namespace planorder::core {

/// The Streamer algorithm (Section 5.2, Figure 5). Applicable when the
/// utility measure has diminishing returns. Abstracts sources once, then
/// maintains a dominance graph whose alive nodes partition the not-yet
/// emitted plan space:
///
///  - nodes are (possibly abstract) plans with interval utilities;
///  - a link b -> c records that b's utility interval dominated c's when the
///    link was created; a node with no incoming link is nondominated;
///  - nondominated abstract plans are refined (children replace the parent);
///  - when every nondominated plan is concrete, the best one is emitted.
///
/// After emitting d, instead of rebuilding dominance information (iDrips),
/// Streamer recycles it: each link p -> q carries the set E(p,q) of plans
/// emitted since its creation, and stays valid as long as some concrete plan
/// in p is independent of all of E(p,q) — that plan's utility is unchanged
/// while q's can only have fallen (diminishing returns), so p still
/// dominates q. Links that fail the check are dropped; utilities of plans
/// not independent of d are invalidated and lazily recomputed.
///
/// Implementation notes relative to Figure 5:
///  - Links are created star-wise from the current best nondominated plan
///    rather than between every dominating pair; this leaves the same
///    nondominated frontier with O(frontier) instead of O(frontier^2) links.
///  - Abstract lower bounds are lifted by probe members (core/evaluate.h);
///    a link justified only by the probe carries it as its witness and is
///    revalidated by checking the witness's independence incrementally.
class StreamerOrderer : public Orderer {
 public:
  /// Fails when `model` lacks diminishing returns (e.g. cost with caching).
  static StatusOr<std::unique_ptr<StreamerOrderer>> Create(
      const stats::Workload* workload, utility::UtilityModel* model,
      std::vector<PlanSpace> spaces,
      AbstractionHeuristic heuristic = AbstractionHeuristic::kByCardinality,
      bool probe_lower_bounds = false);

  std::string name() const override { return "streamer"; }

  /// Introspection for tests/benchmarks.
  int num_alive_nodes() const { return static_cast<int>(alive_.size()); }
  int num_alive_links() const { return static_cast<int>(alive_links_.size()); }

  /// Per-node staleness walks performed by ComputeNext (the utility-currency
  /// checks of step 2.a). Regression guard: the frontier is checked once per
  /// emission, not once per refinement — a drain of E emissions with a
  /// frontier of ~F nodes performs O(E * F) checks, not O(E * F *
  /// refinements). See tests/streamer_test.cc.
  int64_t num_staleness_checks() const { return num_staleness_checks_; }

 protected:
  StatusOr<OrderedPlan> ComputeNext() override;
  void OnExecuted(const ConcretePlan& plan) override;

 private:
  struct Node {
    AbstractPlan plan;
    /// Cached plan.Summaries() (stable: forests are immutable).
    std::vector<const stats::StatSummary*> summaries;
    Interval utility;
    /// Min-over-members lower bound (see core/evaluate.h): when a link was
    /// justified by this bound, every member dominated the target.
    double model_lo = 0.0;
    /// Probe member whose exact utility lifted utility.lo().
    ConcretePlan probe;
    /// Number of executed plans the stored utility is conditioned on; -1
    /// when never evaluated. Staleness is checked lazily on access: the
    /// utility is current iff the node is independent of every plan executed
    /// since (diminishing-returns measures only shift dependent utilities).
    int64_t eval_epoch = -1;
    bool alive = true;
    bool concrete = false;
    int incoming = 0;  // alive incoming links
  };
  struct Link {
    int from;
    int to;
    bool alive = true;
    /// True when every member of `from` dominated `to` at creation (plain
    /// interval justification); false when only the probe member is known to
    /// dominate. Decides whether a failed witness may be replaced.
    bool any_member = true;
    /// A concrete member of `from` known to dominate `to` at creation and
    /// verified independent of everything executed since. Checked
    /// incrementally per emission; on failure, any-member links search for a
    /// replacement witness over E(p,q), probe links die.
    ConcretePlan witness;
    /// Epoch at creation: E(p,q) is the suffix of the context's executed
    /// list starting here — no per-link storage needed.
    int64_t created_epoch = 0;
  };

  StreamerOrderer(const stats::Workload* workload, utility::UtilityModel* model,
                  bool probe_lower_bounds)
      : Orderer(workload, model), probe_lower_bounds_(probe_lower_bounds) {}

  int AddNode(AbstractPlan plan);
  void AddLink(int from, int to);
  void KillLink(int link_index);
  /// Kills `node` and every link leaving it.
  void RemoveNode(int node_index);
  /// Lower-id-wins interval domination (keeps the relation acyclic on ties).
  bool Dominates(int a, int b) const;
  /// True when the node's stored utility still reflects the executed set;
  /// fast-forwards eval_epoch when it does.
  bool UtilityCurrent(Node& node);
  /// Pushes the node's current bounds into its selection heap (abstract
  /// nodes by upper bound, concrete ones by exact utility).
  void PushNodeEntry(int node_index);
  /// True iff `a` precedes `b` in the dominator-scan order (utility lower
  /// bound descending, id ascending) — only preceding nodes can dominate.
  bool Precedes(int a, int b) const;
  /// Full dominance-link pass over `snapshot` (sorted in place), used once
  /// per ComputeNext after the refresh; each node links from its closest
  /// preceding dominator.
  void LinkFullPass(std::vector<int>& snapshot);
  /// Incremental pass after one refinement: `fresh` is the set of nodes
  /// whose dominance relations changed this round — the refinement's two
  /// children (the parent's links are transferred, so nothing re-enters the
  /// frontier mid-loop). Survivor-vs-survivor relations did not change
  /// (their utilities are fixed within one ComputeNext), so only
  /// fresh-vs-candidate and candidate-vs-fresh pairs are checked.
  void LinkFresh(const std::vector<int>& fresh,
                 const std::vector<int>& candidates);

  std::vector<std::unique_ptr<AbstractionForest>> forests_;
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<int> free_links_;                       // recyclable slots
  std::vector<std::vector<int>> out_links_;           // node -> link indices
  std::set<int> alive_;                               // alive node ids
  std::set<int> nondominated_;                        // alive, incoming == 0
  std::set<int> alive_links_;                         // alive link indices
  std::vector<int> scratch_;                          // reusable buffer
  /// Selection heaps over nondominated nodes (DESIGN.md §11), replacing the
  /// per-refinement rescans: abstract nodes by (upper bound desc, width
  /// desc, id asc), concrete ones by (exact utility desc, id asc). Entries
  /// carry node_version_ at push time; an entry is live iff its node is
  /// alive, currently nondominated, and the version still matches (lazy
  /// decrease-key, as in idrips.cc). A node freed by KillLink re-pushes its
  /// unchanged bounds, so a previously consumed entry cannot be missed.
  FrontierHeap abstract_heap_;
  FrontierHeap concrete_heap_;
  std::vector<uint32_t> node_version_;
  int64_t num_staleness_checks_ = 0;
  bool probe_lower_bounds_ = true;
};

}  // namespace planorder::core

#endif  // PLANORDER_CORE_STREAMER_H_
