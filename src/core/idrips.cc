#include "core/idrips.h"

#include <algorithm>
#include <limits>

#include "core/evaluate.h"

namespace planorder::core {
namespace {

/// Hard cap on buckets per plan, matching UtilityModel::EvaluateConcrete's
/// stack buffer; lets refinement stage parent rows on the stack.
constexpr int kMaxBuckets = 16;

}  // namespace

StatusOr<std::unique_ptr<IDripsOrderer>> IDripsOrderer::Create(
    const stats::Workload* workload, utility::UtilityModel* model,
    std::vector<PlanSpace> spaces, const IDripsOptions& options) {
  PLANORDER_ASSIGN_OR_RETURN(spaces,
                             ValidateSpaces(*workload, std::move(spaces)));
  auto orderer = std::unique_ptr<IDripsOrderer>(
      new IDripsOrderer(workload, model, options));
  if (options.persistent_frontier) {
    for (const PlanSpace& space : spaces) {
      orderer->forests_.push_back(std::make_unique<AbstractionForest>(
          AbstractionForest::Build(*workload, space, options.heuristic)));
    }
  } else {
    for (PlanSpace& space : spaces) orderer->AddSpace(std::move(space));
  }
  return orderer;
}

StatusOr<std::unique_ptr<IDripsOrderer>> IDripsOrderer::Create(
    const stats::Workload* workload, utility::UtilityModel* model,
    std::vector<PlanSpace> spaces, AbstractionHeuristic heuristic,
    bool probe_lower_bounds) {
  IDripsOptions options;
  options.heuristic = heuristic;
  options.probe_lower_bounds = probe_lower_bounds;
  return Create(workload, model, std::move(spaces), options);
}

StatusOr<OrderedPlan> IDripsOrderer::ComputeNext() {
  return options_.persistent_frontier ? ComputeNextPersistent()
                                      : ComputeNextRebuild();
}

void IDripsOrderer::GrowFrontierArrays() {
  const size_t m = static_cast<size_t>(arena_.width());
  const size_t slots = arena_.num_slots();
  if (alive_.size() >= slots) return;
  summaries_.resize(slots * m);
  group_keys_.resize(slots * m);
  lo_.resize(slots);
  hi_.resize(slots);
  width_.resize(slots);
  model_lo_.resize(slots);
  eval_epoch_.resize(slots);
  eval_generation_.resize(slots);
  rank_.resize(slots);
  // resize() preserves existing counters; released slots keep theirs so a
  // reused slot cannot validate an entry pushed for its previous occupant.
  heap_version_.resize(slots, 0);
  forest_of_.resize(slots);
  concrete_.resize(slots);
  alive_.resize(slots, 0);
}

void IDripsOrderer::FillSlot(uint32_t slot) {
  const int m = arena_.width();
  const AbstractionForest& forest = *forests_[forest_of_[slot]];
  const uint32_t* row = arena_.row(slot);
  bool concrete = true;
  for (int b = 0; b < m; ++b) {
    const int node = static_cast<int>(row[b]);
    summaries_[static_cast<size_t>(slot) * static_cast<size_t>(m) +
               static_cast<size_t>(b)] = &forest.summary(node);
    concrete = concrete && forest.is_leaf(node);
  }
  concrete_[slot] = concrete ? 1 : 0;
}

PlanView IDripsOrderer::MakeView(uint32_t slot) const {
  PlanView view;
  view.forest = forests_[forest_of_[slot]].get();
  view.nodes = arena_.row(slot);
  view.summaries = &summaries_[static_cast<size_t>(slot) *
                               static_cast<size_t>(arena_.width())];
  view.width = arena_.width();
  view.concrete = concrete_[slot] != 0;
  return view;
}

void IDripsOrderer::PushHeapEntry(uint32_t slot) {
  FrontierHeap::Entry entry;
  entry.rank = rank_[slot];
  entry.slot = slot;
  entry.version = heap_version_[slot];
  if (concrete_[slot] != 0) {
    entry.key1 = lo_[slot];
    concrete_heap_.Push(entry);
  } else {
    entry.key1 = hi_[slot];
    entry.key2 = width_[slot];
    abstract_heap_.Push(entry);
  }
}

void IDripsOrderer::CommitCandidate(uint32_t slot, const EvalResult& eval) {
  const size_t m = static_cast<size_t>(arena_.width());
  lo_[slot] = eval.utility.lo();
  hi_[slot] = eval.utility.hi();
  width_[slot] = eval.utility.width();
  model_lo_[slot] = eval.model_lo;
  eval_epoch_[slot] = static_cast<int64_t>(ctx().epoch());
  eval_generation_[slot] = ctx().external_generation();
  alive_[slot] = 1;
  if (keys_supported_) {
    const utility::NodeSpan span(&summaries_[static_cast<size_t>(slot) * m],
                                 m);
    model().IndependenceKeys(span, &group_keys_[static_cast<size_t>(slot) * m]);
  }
  ++heap_version_[slot];
  PushHeapEntry(slot);
}

void IDripsOrderer::MaybeCompactHeaps() {
  // Lazy deletion leaves one dead entry behind per re-evaluation, overwrite
  // or release; compact when they clearly dominate the heap.
  const size_t live = arena_.num_live();
  const auto live_fn = [this](const FrontierHeap::Entry& entry) {
    return EntryLive(entry);
  };
  if (abstract_heap_.size() > 4 * live + 64) abstract_heap_.Compact(live_fn);
  if (concrete_heap_.size() > 4 * live + 64) concrete_heap_.Compact(live_fn);
}

ConcretePlan IDripsOrderer::SlotToConcrete(uint32_t slot) const {
  const int m = arena_.width();
  const AbstractionForest& forest = *forests_[forest_of_[slot]];
  const uint32_t* row = arena_.row(slot);
  ConcretePlan plan(static_cast<size_t>(m));
  for (int b = 0; b < m; ++b) {
    plan[static_cast<size_t>(b)] =
        forest.leaf_source(static_cast<int>(row[b]));
  }
  return plan;
}

void IDripsOrderer::SeedFrontier() {
  frontier_seeded_ = true;
  if (forests_.empty()) return;
  const int m = forests_[0]->num_buckets();
  PLANORDER_CHECK_LE(m, kMaxBuckets);
  arena_.Reset(m);
  for (size_t f = 0; f < forests_.size(); ++f) {
    const uint32_t slot = arena_.Allocate();
    GrowFrontierArrays();
    uint32_t* row = arena_.row(slot);
    const AbstractionForest& forest = *forests_[f];
    for (int b = 0; b < m; ++b) {
      row[b] = static_cast<uint32_t>(forest.root(b));
    }
    forest_of_[slot] = static_cast<uint32_t>(f);
    // Seed ranks are the legacy frontier's initial vector positions.
    rank_[slot] = slot;
  }
  next_rank_ = arena_.num_slots();
  for (uint32_t slot = 0; slot < arena_.num_slots(); ++slot) FillSlot(slot);
  // Keyed staleness support is a model property; probe it once on a root.
  uint64_t scratch[kMaxBuckets];
  keys_supported_ = model().IndependenceKeys(
      utility::NodeSpan(summaries_.data(), static_cast<size_t>(m)), scratch);
  view_batch_.clear();
  for (uint32_t slot = 0; slot < arena_.num_slots(); ++slot) {
    view_batch_.push_back(MakeView(slot));
  }
  const std::vector<EvalResult> evals = evaluator().EvaluateViews(
      view_batch_, model(), ctx(), &evaluations_, options_.probe_lower_bounds);
  for (uint32_t slot = 0; slot < arena_.num_slots(); ++slot) {
    CommitCandidate(slot, evals[slot]);
  }
  refreshed_generation_ = ctx().external_generation();
}

void IDripsOrderer::EnsureExecutedKeys() {
  if (!keys_supported_) return;
  const std::vector<ConcretePlan>& executed = ctx().executed();
  const size_t m = static_cast<size_t>(arena_.width());
  while (keys_epoch_ < static_cast<int64_t>(executed.size())) {
    executed_keys_.resize(static_cast<size_t>(keys_epoch_ + 1) * m);
    if (!model().PlanIndependenceKeys(
            executed[static_cast<size_t>(keys_epoch_)],
            &executed_keys_[static_cast<size_t>(keys_epoch_) * m])) {
      // A model that keys groups but not plans gets the fallback for good.
      keys_supported_ = false;
      return;
    }
    ++keys_epoch_;
  }
}

bool IDripsOrderer::IsStale(uint32_t slot) {
  const int64_t epoch = static_cast<int64_t>(ctx().epoch());
  if (eval_epoch_[slot] == epoch) return false;
  if (model().fully_independent()) {
    eval_epoch_[slot] = epoch;
    return false;
  }
  const size_t m = static_cast<size_t>(arena_.width());
  if (keys_supported_) {
    const uint64_t* group = &group_keys_[static_cast<size_t>(slot) * m];
    for (int64_t e = eval_epoch_[slot]; e < epoch; ++e) {
      const uint64_t* plan = &executed_keys_[static_cast<size_t>(e) * m];
      bool independent = false;
      for (size_t b = 0; b < m; ++b) {
        if ((group[b] & plan[b]) == 0) {
          independent = true;
          break;
        }
      }
      if (!independent) return true;
    }
  } else {
    const std::vector<ConcretePlan>& executed = ctx().executed();
    const utility::NodeSpan span(&summaries_[static_cast<size_t>(slot) * m],
                                 m);
    for (size_t e = static_cast<size_t>(eval_epoch_[slot]);
         e < executed.size(); ++e) {
      if (!model().GroupIndependentOf(span, executed[e])) return true;
    }
  }
  eval_epoch_[slot] = epoch;
  return false;
}

void IDripsOrderer::RefreshSlot(uint32_t slot) {
  const EvalResult eval =
      EvaluateView(MakeView(slot), model(), ctx(), &evaluations_,
                   options_.probe_lower_bounds);
  eval_epoch_[slot] = static_cast<int64_t>(ctx().epoch());
  eval_generation_[slot] = ctx().external_generation();
  const Interval& u = eval.utility;
  // Push a fresh heap entry only when the bounds actually moved; an
  // unchanged candidate's existing entry stays valid (version untouched).
  if (u.lo() != lo_[slot] || u.hi() != hi_[slot] ||
      eval.model_lo != model_lo_[slot]) {
    lo_[slot] = u.lo();
    hi_[slot] = u.hi();
    width_[slot] = u.width();
    model_lo_[slot] = eval.model_lo;
    ++heap_version_[slot];
    PushHeapEntry(slot);
  }
}

void IDripsOrderer::RefreshStaleCandidates() {
  // Fully independent measures: no executed plan ever changes a utility.
  if (model().fully_independent()) return;
  const std::vector<ConcretePlan>& executed = ctx().executed();
  const int64_t epoch = static_cast<int64_t>(executed.size());
  const int64_t generation = ctx().external_generation();
  const int m = arena_.width();
  const uint32_t num_slots = arena_.num_slots();
  stale_slots_.clear();

  // Phase 1 — staleness test. A candidate proven group-independent of
  // everything executed since its evaluation keeps its utility and just
  // fast-forwards its epoch: this is the incremental win over rebuilding the
  // forests every emission. With model-provided independence keys the test
  // is a word-AND scan over flat arrays; otherwise fall back to the virtual
  // per-(candidate, emission) test, fanned out.
  bool keyed = keys_supported_;
  int64_t min_epoch = epoch;
  if (keyed) {
    for (uint32_t slot = 0; slot < num_slots; ++slot) {
      // Generation-stale slots are unconditionally re-evaluated; their
      // epochs don't constrain which executed plans need keys.
      if (alive_[slot] != 0 && eval_generation_[slot] == generation &&
          eval_epoch_[slot] < min_epoch) {
        min_epoch = eval_epoch_[slot];
      }
    }
    for (int64_t e = min_epoch; e < epoch && keyed; ++e) {
      plan_keys_.resize(static_cast<size_t>(epoch - min_epoch) *
                        static_cast<size_t>(m));
      keyed = model().PlanIndependenceKeys(
          executed[static_cast<size_t>(e)],
          &plan_keys_[static_cast<size_t>(e - min_epoch) *
                      static_cast<size_t>(m)]);
    }
    // A model that keys groups but not plans gets the fallback for good.
    if (!keyed) keys_supported_ = false;
  }

  if (keyed) {
    for (uint32_t slot = 0; slot < num_slots; ++slot) {
      if (alive_[slot] == 0) continue;
      // A flipped cross-session cache bit changes residual costs everywhere;
      // the group-independence test only covers this session's executions,
      // so a generation mismatch forces re-evaluation unconditionally.
      if (eval_generation_[slot] != generation) {
        stale_slots_.push_back(slot);
        continue;
      }
      const uint64_t* group = &group_keys_[static_cast<size_t>(slot) *
                                           static_cast<size_t>(m)];
      bool stale = false;
      for (int64_t e = eval_epoch_[slot]; e < epoch && !stale; ++e) {
        const uint64_t* plan = &plan_keys_[static_cast<size_t>(e - min_epoch) *
                                           static_cast<size_t>(m)];
        bool independent = false;
        for (int b = 0; b < m; ++b) {
          if ((group[b] & plan[b]) == 0) {
            independent = true;
            break;
          }
        }
        stale = !independent;
      }
      if (stale) {
        stale_slots_.push_back(slot);
      } else {
        eval_epoch_[slot] = epoch;
      }
    }
  } else {
    live_snapshot_.clear();
    for (uint32_t slot = 0; slot < num_slots; ++slot) {
      if (alive_[slot] != 0) live_snapshot_.push_back(slot);
    }
    stale_flags_.assign(live_snapshot_.size(), 0);
    // Read-only on model and context; each index touches only its own slot
    // metadata and flag.
    evaluator().ParallelFor(live_snapshot_.size(), [&](size_t i) {
      const uint32_t slot = live_snapshot_[i];
      if (eval_generation_[slot] != generation) {
        stale_flags_[i] = 1;
        return;
      }
      const utility::NodeSpan span(
          &summaries_[static_cast<size_t>(slot) * static_cast<size_t>(m)],
          static_cast<size_t>(m));
      for (size_t e = static_cast<size_t>(eval_epoch_[slot]);
           e < executed.size(); ++e) {
        if (!model().GroupIndependentOf(span, executed[e])) {
          stale_flags_[i] = 1;
          return;
        }
      }
      eval_epoch_[slot] = epoch;
    });
    for (size_t i = 0; i < live_snapshot_.size(); ++i) {
      if (stale_flags_[i] != 0) stale_slots_.push_back(live_snapshot_[i]);
    }
  }

  // Phase 2 — batch re-evaluation of the stale candidates, in slot order.
  if (stale_slots_.empty()) return;
  view_batch_.clear();
  for (uint32_t slot : stale_slots_) view_batch_.push_back(MakeView(slot));
  const std::vector<EvalResult> evals = evaluator().EvaluateViews(
      view_batch_, model(), ctx(), &evaluations_, options_.probe_lower_bounds);
  for (size_t j = 0; j < stale_slots_.size(); ++j) {
    const uint32_t slot = stale_slots_[j];
    eval_epoch_[slot] = epoch;
    eval_generation_[slot] = generation;
    const Interval& u = evals[j].utility;
    // Push a fresh heap entry only when the bounds actually moved; an
    // unchanged candidate's existing entry stays valid (version untouched).
    if (u.lo() != lo_[slot] || u.hi() != hi_[slot] ||
        evals[j].model_lo != model_lo_[slot]) {
      lo_[slot] = u.lo();
      hi_[slot] = u.hi();
      width_[slot] = u.width();
      model_lo_[slot] = evals[j].model_lo;
      ++heap_version_[slot];
      PushHeapEntry(slot);
    }
  }
}

StatusOr<OrderedPlan> IDripsOrderer::ComputeNextPersistent() {
  if (!frontier_seeded_) SeedFrontier();
  if (arena_.num_live() == 0) return NotFoundError("plan spaces exhausted");
  // Under diminishing returns a candidate's utility only falls as plans
  // execute, so stale heap keys are sound upper bounds and candidates are
  // brought current lazily, when they surface at a heap top. Other models
  // (and generation flips, which can raise utilities) take the eager full
  // refresh.
  const bool lazy = model().diminishing_returns();
  if (lazy && !model().fully_independent()) EnsureExecutedKeys();
  if (!lazy || ctx().external_generation() != refreshed_generation_) {
    RefreshStaleCandidates();
    refreshed_generation_ = ctx().external_generation();
  }
  MaybeCompactHeaps();
  const auto live = [this](const FrontierHeap::Entry& entry) {
    return EntryLive(entry);
  };
  const int m = arena_.width();
  while (true) {
    // The frontier partitions the un-emitted plans and every enclosure at a
    // heap top is settled current, so the best concrete candidate whose
    // exact utility reaches every abstract upper bound is the true
    // conditional maximum.
    const FrontierHeap::Entry* best_concrete;
    while ((best_concrete = concrete_heap_.Peek(live)) != nullptr && lazy &&
           IsStale(best_concrete->slot)) {
      RefreshSlot(best_concrete->slot);
    }
    const double bar = best_concrete == nullptr
                           ? -std::numeric_limits<double>::infinity()
                           : best_concrete->key1;
    // Speculative top-K refinement: pop the most promising abstract
    // candidates (highest upper bound first; ties by wider interval, then
    // lower rank — the legacy index order). K is fixed by options, never by
    // the thread count, so the refinement sequence — and with it every
    // emitted plan — is identical in serial and parallel runs.
    targets_.clear();
    while (targets_.size() < static_cast<size_t>(options_.refine_width)) {
      const FrontierHeap::Entry* top = abstract_heap_.Peek(live);
      if (top == nullptr || !(top->key1 > bar)) break;
      if (lazy && IsStale(top->slot)) {
        // Re-settle: the refreshed bound may fall below the bar or behind
        // other entries.
        RefreshSlot(top->slot);
        continue;
      }
      targets_.push_back(top->slot);
      abstract_heap_.PopTop();
    }
    if (targets_.empty()) {
      PLANORDER_CHECK(best_concrete != nullptr);
      const uint32_t slot = best_concrete->slot;
      OrderedPlan result{SlotToConcrete(slot), lo_[slot]};
      // The winner cell is a single plan, so releasing it keeps the
      // remaining cells a partition of the un-emitted plans — no
      // re-abstraction.
      concrete_heap_.PopTop();
      alive_[slot] = 0;
      ++heap_version_[slot];
      arena_.Release(slot);
      return result;
    }
    // Each target is split in place: the left child overwrites the parent's
    // slot (inheriting its rank), the right child takes a fresh slot and the
    // next rank. Allocation may grow the arena, so the parent row is staged
    // on the stack first.
    right_slots_.clear();
    for (const uint32_t target : targets_) {
      const AbstractionForest& forest = *forests_[forest_of_[target]];
      const uint32_t* parent_row = arena_.row(target);
      // The bucket Drips refines: first non-leaf node with strictly the most
      // members (must match PickRefinementBucket in drips.cc).
      int bucket = -1;
      size_t best_members = 0;
      uint32_t staged[kMaxBuckets];
      for (int b = 0; b < m; ++b) {
        staged[b] = parent_row[b];
        const int node = static_cast<int>(parent_row[b]);
        if (forest.is_leaf(node)) continue;
        const size_t members = forest.summary(node).members.size();
        if (members > best_members) {
          best_members = members;
          bucket = b;
        }
      }
      PLANORDER_CHECK_GE(bucket, 0);
      const int node = static_cast<int>(staged[bucket]);
      const uint32_t right = arena_.Allocate();
      GrowFrontierArrays();
      uint32_t* right_row = arena_.row(right);
      for (int b = 0; b < m; ++b) right_row[b] = staged[b];
      right_row[bucket] = static_cast<uint32_t>(forest.right(node));
      forest_of_[right] = forest_of_[target];
      rank_[right] = next_rank_++;
      arena_.row(target)[bucket] = static_cast<uint32_t>(forest.left(node));
      right_slots_.push_back(right);
    }
    // Children evaluate as one batch in [left0, right0, left1, right1, ...]
    // order — the order the legacy implementation evaluated (and counted)
    // them. All allocation is done, so views borrow stable storage.
    view_batch_.clear();
    for (size_t k = 0; k < targets_.size(); ++k) {
      FillSlot(targets_[k]);
      FillSlot(right_slots_[k]);
      view_batch_.push_back(MakeView(targets_[k]));
      view_batch_.push_back(MakeView(right_slots_[k]));
    }
    const std::vector<EvalResult> evals = evaluator().EvaluateViews(
        view_batch_, model(), ctx(), &evaluations_,
        options_.probe_lower_bounds);
    for (size_t k = 0; k < targets_.size(); ++k) {
      CommitCandidate(targets_[k], evals[2 * k]);
      CommitCandidate(right_slots_[k], evals[2 * k + 1]);
    }
  }
}

void IDripsOrderer::AddSpace(PlanSpace space) {
  auto entry = std::make_unique<SpaceEntry>();
  entry->forest =
      AbstractionForest::Build(ctx().workload(), space, options_.heuristic);
  entry->space = std::move(space);
  spaces_.push_back(std::move(entry));
}

StatusOr<OrderedPlan> IDripsOrderer::ComputeNextRebuild() {
  if (spaces_.empty()) return NotFoundError("plan spaces exhausted");
  std::vector<AbstractPlan> starts;
  starts.reserve(spaces_.size());
  for (const std::unique_ptr<SpaceEntry>& entry : spaces_) {
    AbstractPlan top;
    top.forest = &entry->forest;
    top.nodes.resize(entry->forest.num_buckets());
    for (int b = 0; b < entry->forest.num_buckets(); ++b) {
      top.nodes[b] = entry->forest.root(b);
    }
    starts.push_back(std::move(top));
  }
  PLANORDER_ASSIGN_OR_RETURN(
      DripsResult best,
      RunDrips(starts, model(), ctx(), &evaluations_,
               options_.probe_lower_bounds, &evaluator()));

  // Remove the winner from its space and re-abstract the split spaces.
  size_t winner_index = spaces_.size();
  for (size_t i = 0; i < spaces_.size(); ++i) {
    if (&spaces_[i]->forest == best.winner.forest) {
      winner_index = i;
      break;
    }
  }
  PLANORDER_CHECK_LT(winner_index, spaces_.size());
  const PlanSpace removed = std::move(spaces_[winner_index]->space);
  spaces_.erase(spaces_.begin() + static_cast<ptrdiff_t>(winner_index));
  for (PlanSpace& split : SplitAround(removed, best.plan)) {
    AddSpace(std::move(split));
  }
  return OrderedPlan{best.plan, best.utility};
}

}  // namespace planorder::core
