#include "core/idrips.h"

#include <algorithm>
#include <limits>

#include "core/evaluate.h"

namespace planorder::core {

StatusOr<std::unique_ptr<IDripsOrderer>> IDripsOrderer::Create(
    const stats::Workload* workload, utility::UtilityModel* model,
    std::vector<PlanSpace> spaces, const IDripsOptions& options) {
  PLANORDER_ASSIGN_OR_RETURN(spaces,
                             ValidateSpaces(*workload, std::move(spaces)));
  auto orderer = std::unique_ptr<IDripsOrderer>(
      new IDripsOrderer(workload, model, options));
  if (options.persistent_frontier) {
    for (const PlanSpace& space : spaces) {
      orderer->forests_.push_back(std::make_unique<AbstractionForest>(
          AbstractionForest::Build(*workload, space, options.heuristic)));
    }
  } else {
    for (PlanSpace& space : spaces) orderer->AddSpace(std::move(space));
  }
  return orderer;
}

StatusOr<std::unique_ptr<IDripsOrderer>> IDripsOrderer::Create(
    const stats::Workload* workload, utility::UtilityModel* model,
    std::vector<PlanSpace> spaces, AbstractionHeuristic heuristic,
    bool probe_lower_bounds) {
  IDripsOptions options;
  options.heuristic = heuristic;
  options.probe_lower_bounds = probe_lower_bounds;
  return Create(workload, model, std::move(spaces), options);
}

StatusOr<OrderedPlan> IDripsOrderer::ComputeNext() {
  return options_.persistent_frontier ? ComputeNextPersistent()
                                      : ComputeNextRebuild();
}

IDripsOrderer::Candidate IDripsOrderer::MakeCandidate(
    AbstractPlan plan, const PlanEvaluation& eval) {
  Candidate c;
  c.utility = eval.utility;
  c.model_lo = eval.model_lo;
  c.concrete = plan.IsConcrete();
  c.eval_epoch = static_cast<int64_t>(ctx().epoch());
  c.eval_generation = ctx().external_generation();
  c.summaries = plan.Summaries();
  c.plan = std::move(plan);
  return c;
}

void IDripsOrderer::SeedFrontier() {
  frontier_seeded_ = true;
  std::vector<AbstractPlan> roots;
  roots.reserve(forests_.size());
  for (const std::unique_ptr<AbstractionForest>& forest : forests_) {
    AbstractPlan top;
    top.forest = forest.get();
    top.nodes.resize(forest->num_buckets());
    for (int b = 0; b < forest->num_buckets(); ++b) {
      top.nodes[b] = forest->root(b);
    }
    roots.push_back(std::move(top));
  }
  std::vector<const AbstractPlan*> batch;
  batch.reserve(roots.size());
  for (const AbstractPlan& plan : roots) batch.push_back(&plan);
  std::vector<PlanEvaluation> evals = evaluator().EvaluateBatch(
      batch, model(), ctx(), &evaluations_, options_.probe_lower_bounds);
  frontier_.reserve(roots.size() + 64);
  for (size_t i = 0; i < roots.size(); ++i) {
    frontier_.push_back(MakeCandidate(std::move(roots[i]), evals[i]));
  }
}

void IDripsOrderer::RefreshStaleCandidates() {
  // Fully independent measures: no executed plan ever changes a utility.
  if (model().fully_independent()) return;
  const std::vector<ConcretePlan>& executed = ctx().executed();
  const int64_t epoch = static_cast<int64_t>(executed.size());
  // Phase 1 — staleness test, fanned out (read-only on model and context;
  // each index touches only its own candidate and flag slot). A candidate
  // proven group-independent of everything executed since its evaluation
  // keeps its utility and just fast-forwards its epoch: this is the
  // incremental win over rebuilding the forests every emission.
  const int64_t generation = ctx().external_generation();
  std::vector<uint8_t> stale(frontier_.size(), 0);
  evaluator().ParallelFor(frontier_.size(), [&](size_t i) {
    Candidate& c = frontier_[i];
    // A flipped cross-session cache bit changes residual costs everywhere;
    // the group-independence test only covers this session's executions, so
    // a generation mismatch forces re-evaluation unconditionally.
    if (c.eval_generation != generation) {
      stale[i] = 1;
      return;
    }
    const utility::NodeSpan span(c.summaries.data(), c.summaries.size());
    for (size_t e = static_cast<size_t>(c.eval_epoch); e < executed.size();
         ++e) {
      if (!model().GroupIndependentOf(span, executed[e])) {
        stale[i] = 1;
        return;
      }
    }
    c.eval_epoch = epoch;
  });
  // Phase 2 — batch re-evaluation of the stale candidates, in index order.
  std::vector<size_t> stale_indices;
  std::vector<const AbstractPlan*> batch;
  for (size_t i = 0; i < frontier_.size(); ++i) {
    if (stale[i] != 0) {
      stale_indices.push_back(i);
      batch.push_back(&frontier_[i].plan);
    }
  }
  if (batch.empty()) return;
  std::vector<PlanEvaluation> evals = evaluator().EvaluateBatch(
      batch, model(), ctx(), &evaluations_, options_.probe_lower_bounds);
  for (size_t j = 0; j < stale_indices.size(); ++j) {
    Candidate& c = frontier_[stale_indices[j]];
    c.utility = evals[j].utility;
    c.model_lo = evals[j].model_lo;
    c.eval_epoch = epoch;
    c.eval_generation = generation;
  }
}

StatusOr<OrderedPlan> IDripsOrderer::ComputeNextPersistent() {
  if (!frontier_seeded_) SeedFrontier();
  if (frontier_.empty()) return NotFoundError("plan spaces exhausted");
  RefreshStaleCandidates();
  while (true) {
    // The frontier partitions the un-emitted plans and every enclosure is
    // current, so the best concrete candidate whose exact utility reaches
    // every abstract upper bound is the true conditional maximum.
    size_t best_concrete = frontier_.size();
    for (size_t i = 0; i < frontier_.size(); ++i) {
      const Candidate& c = frontier_[i];
      if (!c.concrete) continue;
      if (best_concrete == frontier_.size() ||
          c.utility.lo() > frontier_[best_concrete].utility.lo()) {
        best_concrete = i;
      }
    }
    const double bar = best_concrete == frontier_.size()
                           ? -std::numeric_limits<double>::infinity()
                           : frontier_[best_concrete].utility.lo();
    std::vector<size_t> targets;
    for (size_t i = 0; i < frontier_.size(); ++i) {
      const Candidate& c = frontier_[i];
      if (!c.concrete && c.utility.hi() > bar) targets.push_back(i);
    }
    if (targets.empty()) {
      PLANORDER_CHECK(best_concrete != frontier_.size());
      OrderedPlan result{frontier_[best_concrete].plan.ToConcrete(),
                         frontier_[best_concrete].utility.lo()};
      // The winner cell is a single plan, so erasing it keeps the remaining
      // cells a partition of the un-emitted plans — no re-abstraction.
      frontier_.erase(frontier_.begin() +
                      static_cast<ptrdiff_t>(best_concrete));
      return result;
    }
    // Speculative top-K refinement: split the most promising abstract
    // candidates (highest upper bound first; ties by wider interval, then
    // lower index) and evaluate all 2K children as one batch. K is fixed by
    // options, never by the thread count, so the refinement sequence — and
    // with it every emitted plan — is identical in serial and parallel runs.
    std::sort(targets.begin(), targets.end(), [&](size_t a, size_t b) {
      const Interval& ua = frontier_[a].utility;
      const Interval& ub = frontier_[b].utility;
      if (ua.hi() != ub.hi()) return ua.hi() > ub.hi();
      if (ua.width() != ub.width()) return ua.width() > ub.width();
      return a < b;
    });
    if (targets.size() > static_cast<size_t>(options_.refine_width)) {
      targets.resize(static_cast<size_t>(options_.refine_width));
    }
    std::vector<AbstractPlan> children;
    children.reserve(targets.size() * 2);
    for (size_t t : targets) {
      const AbstractPlan& plan = frontier_[t].plan;
      const int bucket = RefinementBucket(plan);
      PLANORDER_CHECK_GE(bucket, 0);
      const AbstractionForest& forest = *plan.forest;
      const int node = plan.nodes[bucket];
      AbstractPlan left = plan;
      left.nodes[bucket] = forest.left(node);
      AbstractPlan right = plan;
      right.nodes[bucket] = forest.right(node);
      children.push_back(std::move(left));
      children.push_back(std::move(right));
    }
    std::vector<const AbstractPlan*> batch;
    batch.reserve(children.size());
    for (const AbstractPlan& plan : children) batch.push_back(&plan);
    std::vector<PlanEvaluation> evals = evaluator().EvaluateBatch(
        batch, model(), ctx(), &evaluations_, options_.probe_lower_bounds);
    // Each target is replaced in place by its left child; right children
    // append. Deterministic because targets and children are index-ordered.
    for (size_t k = 0; k < targets.size(); ++k) {
      Candidate right =
          MakeCandidate(std::move(children[2 * k + 1]), evals[2 * k + 1]);
      frontier_[targets[k]] =
          MakeCandidate(std::move(children[2 * k]), evals[2 * k]);
      frontier_.push_back(std::move(right));
    }
  }
}

void IDripsOrderer::AddSpace(PlanSpace space) {
  auto entry = std::make_unique<SpaceEntry>();
  entry->forest =
      AbstractionForest::Build(ctx().workload(), space, options_.heuristic);
  entry->space = std::move(space);
  spaces_.push_back(std::move(entry));
}

StatusOr<OrderedPlan> IDripsOrderer::ComputeNextRebuild() {
  if (spaces_.empty()) return NotFoundError("plan spaces exhausted");
  std::vector<AbstractPlan> starts;
  starts.reserve(spaces_.size());
  for (const std::unique_ptr<SpaceEntry>& entry : spaces_) {
    AbstractPlan top;
    top.forest = &entry->forest;
    top.nodes.resize(entry->forest.num_buckets());
    for (int b = 0; b < entry->forest.num_buckets(); ++b) {
      top.nodes[b] = entry->forest.root(b);
    }
    starts.push_back(std::move(top));
  }
  PLANORDER_ASSIGN_OR_RETURN(
      DripsResult best,
      RunDrips(starts, model(), ctx(), &evaluations_,
               options_.probe_lower_bounds, &evaluator()));

  // Remove the winner from its space and re-abstract the split spaces.
  size_t winner_index = spaces_.size();
  for (size_t i = 0; i < spaces_.size(); ++i) {
    if (&spaces_[i]->forest == best.winner.forest) {
      winner_index = i;
      break;
    }
  }
  PLANORDER_CHECK_LT(winner_index, spaces_.size());
  const PlanSpace removed = std::move(spaces_[winner_index]->space);
  spaces_.erase(spaces_.begin() + static_cast<ptrdiff_t>(winner_index));
  for (PlanSpace& split : SplitAround(removed, best.plan)) {
    AddSpace(std::move(split));
  }
  return OrderedPlan{best.plan, best.utility};
}

}  // namespace planorder::core
