#include "core/idrips.h"

namespace planorder::core {

StatusOr<std::unique_ptr<IDripsOrderer>> IDripsOrderer::Create(
    const stats::Workload* workload, utility::UtilityModel* model,
    std::vector<PlanSpace> spaces, AbstractionHeuristic heuristic,
    bool probe_lower_bounds) {
  PLANORDER_ASSIGN_OR_RETURN(spaces,
                             ValidateSpaces(*workload, std::move(spaces)));
  auto orderer = std::unique_ptr<IDripsOrderer>(
      new IDripsOrderer(workload, model, heuristic, probe_lower_bounds));
  for (PlanSpace& space : spaces) orderer->AddSpace(std::move(space));
  return orderer;
}

void IDripsOrderer::AddSpace(PlanSpace space) {
  auto entry = std::make_unique<SpaceEntry>();
  entry->forest = AbstractionForest::Build(ctx().workload(), space, heuristic_);
  entry->space = std::move(space);
  spaces_.push_back(std::move(entry));
}

StatusOr<OrderedPlan> IDripsOrderer::ComputeNext() {
  if (spaces_.empty()) return NotFoundError("plan spaces exhausted");
  std::vector<AbstractPlan> starts;
  starts.reserve(spaces_.size());
  for (const std::unique_ptr<SpaceEntry>& entry : spaces_) {
    AbstractPlan top;
    top.forest = &entry->forest;
    top.nodes.resize(entry->forest.num_buckets());
    for (int b = 0; b < entry->forest.num_buckets(); ++b) {
      top.nodes[b] = entry->forest.root(b);
    }
    starts.push_back(std::move(top));
  }
  PLANORDER_ASSIGN_OR_RETURN(DripsResult best,
                             RunDrips(starts, model(), ctx(), &evaluations_,
                                      probe_lower_bounds_));

  // Remove the winner from its space and re-abstract the split spaces.
  size_t winner_index = spaces_.size();
  for (size_t i = 0; i < spaces_.size(); ++i) {
    if (&spaces_[i]->forest == best.winner.forest) {
      winner_index = i;
      break;
    }
  }
  PLANORDER_CHECK_LT(winner_index, spaces_.size());
  const PlanSpace removed = std::move(spaces_[winner_index]->space);
  spaces_.erase(spaces_.begin() + static_cast<ptrdiff_t>(winner_index));
  for (PlanSpace& split : SplitAround(removed, best.plan)) {
    AddSpace(std::move(split));
  }
  return OrderedPlan{best.plan, best.utility};
}

}  // namespace planorder::core
