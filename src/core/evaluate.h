#ifndef PLANORDER_CORE_EVALUATE_H_
#define PLANORDER_CORE_EVALUATE_H_

#include <algorithm>

#include "core/abstraction.h"
#include "utility/model.h"

namespace planorder::core {

/// Utility evaluation of a (possibly abstract) plan, optionally with a
/// probe-lifted lower bound.
///
/// The model's interval is an enclosure of every member's utility, so its
/// lower bound is min-over-members — often loose (e.g. coverage of a group
/// intersection box is usually 0). The paper's dominance notion (Section
/// 5.1) only requires ONE concrete plan of p to be at least every plan of q,
/// so a valid lower bound for pruning is the exact utility of any single
/// member: with use_probes the model-suggested probe member is evaluated and
/// max(model lower bound, probe utility) becomes the pruning bound,
/// remembering which justification applies:
///  - utility.lo() == model_lo: every member dominates (any-member witness);
///  - otherwise only the probe member is known to dominate (probe witness).
///
/// In practice the measures' tightened upper bounds (e.g. the coverage
/// model's best-member bound) make best-first refinement locate a strong
/// concrete plan quickly, whose exact point utility then prunes as well as
/// a probe would — without the extra evaluation per abstract plan. Probes
/// are therefore off by default; bench/bench_probe_ablation.cc quantifies
/// the tradeoff.
struct PlanEvaluation {
  Interval utility = Interval::Point(0.0);
  /// The min-over-members lower bound from the model's enclosure.
  double model_lo = 0.0;
  /// The probe member plan (equals the plan itself when concrete).
  utility::ConcretePlan probe;
};

/// Zero-copy view of a plan stored in a PlanArena row (DESIGN.md §11): node
/// ids and pre-resolved summaries in bucket order. The view borrows both
/// arrays; the frontier guarantees they outlive the evaluation batch and
/// stay unwritten while workers read them.
struct PlanView {
  const AbstractionForest* forest = nullptr;
  const uint32_t* nodes = nullptr;
  const stats::StatSummary* const* summaries = nullptr;
  int width = 0;
  bool concrete = false;
};

/// Evaluation result of a view — PlanEvaluation without the probe plan
/// (the flat frontier never materializes probe members; Streamer, which
/// does, keeps the AbstractPlan-based path below).
struct EvalResult {
  Interval utility = Interval::Point(0.0);
  double model_lo = 0.0;
};

/// EvaluateWithProbe semantics over a PlanView, allocation-free on the
/// probes-off path: enclosure straight from the pre-resolved summaries, and
/// — with use_probes, for abstract views — the probe member's exact utility
/// lifted into the lower bound. Counter semantics match EvaluateWithProbe
/// exactly (one per enclosure, one more per probe evaluation).
inline EvalResult EvaluateView(const PlanView& view,
                               const utility::UtilityModel& model,
                               const utility::ExecutionContext& ctx,
                               int64_t* evaluations, bool use_probes) {
  const utility::NodeSpan nodes(view.summaries,
                                static_cast<size_t>(view.width));
  if (evaluations != nullptr) ++*evaluations;
  const Interval enclosure = model.Evaluate(nodes, ctx);
  EvalResult result;
  result.model_lo = enclosure.lo();
  result.utility = enclosure;
  if (view.concrete || !use_probes) return result;
  utility::ConcretePlan probe(static_cast<size_t>(view.width));
  for (int b = 0; b < view.width; ++b) {
    const int node = static_cast<int>(view.nodes[b]);
    const int cached = view.forest->cached_probe_member(node);
    probe[static_cast<size_t>(b)] =
        cached >= 0 ? cached : model.ProbeMember(*view.summaries[b]);
  }
  if (evaluations != nullptr) ++*evaluations;
  const double probe_utility = model.EvaluateConcrete(probe, ctx);
  // The probe lies inside the enclosure up to rounding; clamp defensively.
  const double lo =
      std::min(std::max(enclosure.lo(), probe_utility), enclosure.hi());
  result.utility = Interval(lo, enclosure.hi());
  return result;
}

inline PlanEvaluation EvaluateWithProbe(const AbstractPlan& plan,
                                        const utility::UtilityModel& model,
                                        const utility::ExecutionContext& ctx,
                                        int64_t* evaluations,
                                        bool use_probes = true) {
  const std::vector<const stats::StatSummary*> summaries = plan.Summaries();
  const utility::NodeSpan nodes(summaries.data(), summaries.size());
  PlanEvaluation result;
  if (evaluations != nullptr) ++*evaluations;
  const Interval enclosure = model.Evaluate(nodes, ctx);
  result.model_lo = enclosure.lo();
  if (plan.IsConcrete()) {
    result.utility = enclosure;
    result.probe = plan.ToConcrete();
    return result;
  }
  if (!use_probes) {
    // Plain interval semantics (the paper's original evaluation): the lower
    // bound stays min-over-members and no witness member is identified.
    result.utility = enclosure;
    result.probe.assign(summaries.size(), -1);
    for (size_t b = 0; b < summaries.size(); ++b) {
      result.probe[b] = summaries[b]->members.front();
    }
    return result;
  }
  result.probe.resize(summaries.size());
  for (size_t b = 0; b < summaries.size(); ++b) {
    // Consult the forest's per-node probe memo; the miss path recomputes
    // without writing so this stays safe under concurrent batch evaluation
    // (the batch evaluator prefills the memo from its serial phase).
    const int cached = plan.forest->cached_probe_member(plan.nodes[b]);
    result.probe[b] = cached >= 0 ? cached : model.ProbeMember(*summaries[b]);
  }
  if (evaluations != nullptr) ++*evaluations;
  const double probe_utility = model.EvaluateConcrete(result.probe, ctx);
  // The probe lies inside the enclosure up to rounding; clamp defensively.
  const double lo =
      std::min(std::max(enclosure.lo(), probe_utility), enclosure.hi());
  result.utility = Interval(lo, enclosure.hi());
  return result;
}

}  // namespace planorder::core

#endif  // PLANORDER_CORE_EVALUATE_H_
