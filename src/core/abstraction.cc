#include "core/abstraction.h"

#include <algorithm>
#include <numeric>

#include "base/logging.h"
#include "base/rng.h"

namespace planorder::core {
namespace {

/// Sort key for kByMaskSimilarity: sources whose region arcs start nearby end
/// up adjacent, so groups have large intersections and small unions.
uint64_t MaskKey(stats::RegionMask mask) {
  if (mask.bits == 0) return 0;
  const int first = __builtin_ctzll(mask.bits);
  return (static_cast<uint64_t>(first) << 8) |
         static_cast<uint64_t>(mask.count());
}

}  // namespace

AbstractionForest AbstractionForest::Build(const stats::Workload& workload,
                                           const PlanSpace& space,
                                           AbstractionHeuristic heuristic,
                                           uint64_t seed) {
  AbstractionForest forest;
  forest.roots_.resize(space.num_buckets());
  Rng rng(seed ^ 0xabcdef12345ull);
  for (int b = 0; b < space.num_buckets(); ++b) {
    std::vector<int> ordered = space.buckets[b];
    switch (heuristic) {
      case AbstractionHeuristic::kByCardinality:
        std::sort(ordered.begin(), ordered.end(), [&](int x, int y) {
          return workload.source(b, x).cardinality <
                 workload.source(b, y).cardinality;
        });
        break;
      case AbstractionHeuristic::kByMaskSimilarity:
        std::sort(ordered.begin(), ordered.end(), [&](int x, int y) {
          return MaskKey(workload.source(b, x).regions) <
                 MaskKey(workload.source(b, y).regions);
        });
        break;
      case AbstractionHeuristic::kRandom:
        std::shuffle(ordered.begin(), ordered.end(), rng.engine());
        break;
    }
    forest.roots_[b] = forest.BuildRange(workload, b, ordered, 0,
                                         static_cast<int>(ordered.size()));
  }
  forest.probe_members_.assign(forest.summaries_.size(), -1);
  return forest;
}

int AbstractionForest::BuildRange(const stats::Workload& workload, int bucket,
                                  const std::vector<int>& ordered, int lo,
                                  int hi) {
  PLANORDER_CHECK_LT(lo, hi);
  if (hi - lo == 1) {
    summaries_.push_back(workload.summary(bucket, ordered[lo]));
    left_.push_back(kNoChild);
    right_.push_back(kNoChild);
    return static_cast<int>(summaries_.size() - 1);
  }
  const int mid = lo + (hi - lo) / 2;
  const int left = BuildRange(workload, bucket, ordered, lo, mid);
  const int right = BuildRange(workload, bucket, ordered, mid, hi);
  summaries_.push_back(stats::StatSummary::Merge(
      summaries_[static_cast<size_t>(left)],
      summaries_[static_cast<size_t>(right)]));
  left_.push_back(static_cast<uint32_t>(left));
  right_.push_back(static_cast<uint32_t>(right));
  return static_cast<int>(summaries_.size() - 1);
}

bool AbstractPlan::IsConcrete() const {
  for (int node : nodes) {
    if (!forest->is_leaf(node)) return false;
  }
  return true;
}

ConcretePlan AbstractPlan::ToConcrete() const {
  ConcretePlan plan(nodes.size());
  for (size_t b = 0; b < nodes.size(); ++b) {
    PLANORDER_CHECK(forest->is_leaf(nodes[b]));
    plan[b] = forest->leaf_source(nodes[b]);
  }
  return plan;
}

std::vector<const stats::StatSummary*> AbstractPlan::Summaries() const {
  std::vector<const stats::StatSummary*> out(nodes.size());
  for (size_t b = 0; b < nodes.size(); ++b) {
    out[b] = &forest->summary(nodes[b]);
  }
  return out;
}

uint64_t AbstractPlan::NumConcretePlans() const {
  uint64_t n = 1;
  for (int node : nodes) n *= forest->summary(node).members.size();
  return n;
}

}  // namespace planorder::core
