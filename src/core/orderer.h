#ifndef PLANORDER_CORE_ORDERER_H_
#define PLANORDER_CORE_ORDERER_H_

#include <optional>
#include <string>

#include "base/status.h"
#include "core/parallel_eval.h"
#include "core/plan_space.h"
#include "utility/model.h"

namespace planorder::core {

/// One emission of a plan orderer.
struct OrderedPlan {
  ConcretePlan plan;
  /// The plan's utility conditioned on everything executed before it.
  double utility = 0.0;
};

/// The common interface of the plan-ordering algorithms (Definition 2.1):
/// repeated calls to Next() yield the plans of the input plan spaces in
/// exact decreasing order of conditional utility.
///
/// Conditioning protocol: by default an emitted plan is assumed executed
/// before the following Next() call, per the problem definition. A mediator
/// that finds an emitted plan unsound (Section 2's strategy: order the whole
/// Cartesian product, test soundness afterwards) must call ReportDiscarded()
/// before the next Next(), so the discarded plan does not condition
/// subsequent utilities.
class Orderer {
 public:
  virtual ~Orderer() = default;

  Orderer(const Orderer&) = delete;
  Orderer& operator=(const Orderer&) = delete;

  virtual std::string name() const = 0;

  /// Emits the next best plan, or NotFound when the spaces are exhausted.
  StatusOr<OrderedPlan> Next();

  /// Declares the previously emitted plan discarded (not executed). Virtual
  /// so delegating orderers (adaptive re-ranking, src/adaptive/) can forward
  /// the discard to an inner orderer.
  virtual void ReportDiscarded() { pending_.reset(); }

  /// Conditions this orderer on a plan that was executed before it was
  /// built — the re-rank / warm-restart entry point (src/adaptive/): the
  /// plan covers its coverage box, marks its operations cached and
  /// conditions every subsequent utility exactly as a live emission would
  /// have. Must be called before the first Next(); the plan stays a member
  /// of the plan spaces, so callers replacing an orderer mid-stream must
  /// filter the preloaded plans out of the new emission stream themselves.
  Status PreloadExecuted(const ConcretePlan& plan) {
    if (started_ || pending_.has_value()) {
      return FailedPreconditionError(
          "PreloadExecuted must precede the first Next()");
    }
    ctx_.MarkExecuted(plan);
    OnExecuted(plan);
    return OkStatus();
  }

  /// Number of utility evaluations performed so far (concrete + abstract) —
  /// the paper's plan-evaluation metric.
  int64_t plan_evaluations() const { return evaluations_; }

  const utility::ExecutionContext& context() const { return ctx_; }

  /// Declares the (bucket, source) operation resident (or evicted) in a
  /// cross-session result cache (src/cluster/). Cached operations are charged
  /// zero residual cost by the Section 6 caching measures, so flipping a bit
  /// here changes the conditional utilities of every not-yet-emitted plan;
  /// incremental orderers detect the change through the context's external
  /// generation counter and re-evaluate stale frontier entries.
  virtual void SetExternallyCached(int bucket, int source, bool cached) {
    ctx_.SetExternallyCached(bucket, source, cached);
  }

  /// Injects a thread pool for batched utility evaluation. The pool is
  /// borrowed (callers keep ownership; a service shares one pool across all
  /// sessions) and may be null to run serially. Emission order, utilities
  /// and plan_evaluations() are byte-identical with and without a pool —
  /// parallelism only changes wall-clock time.
  virtual void set_eval_pool(runtime::ThreadPool* pool) {
    evaluator_.set_pool(pool);
  }

 protected:
  Orderer(const stats::Workload* workload, utility::UtilityModel* model)
      : ctx_(workload), model_(model) {}

  /// Computes (and internally removes) the next best plan given ctx_.
  virtual StatusOr<OrderedPlan> ComputeNext() = 0;

  /// Algorithm-specific bookkeeping after `plan` is committed as executed
  /// (Streamer's link revalidation, PI's dirty marking). The context has
  /// already recorded the execution.
  virtual void OnExecuted(const ConcretePlan& plan) { (void)plan; }

  utility::ExecutionContext& ctx() { return ctx_; }
  utility::UtilityModel& model() { return *model_; }
  const utility::UtilityModel& model() const { return *model_; }
  const BatchEvaluator& evaluator() const { return evaluator_; }

  /// Evaluates a concrete plan, counting the evaluation.
  double Evaluate(const ConcretePlan& plan) {
    ++evaluations_;
    return model_->EvaluateConcrete(plan, ctx_);
  }

  int64_t evaluations_ = 0;

 private:
  utility::ExecutionContext ctx_;
  utility::UtilityModel* model_;
  BatchEvaluator evaluator_;
  std::optional<ConcretePlan> pending_;
  bool started_ = false;
};

inline StatusOr<OrderedPlan> Orderer::Next() {
  started_ = true;
  if (pending_.has_value()) {
    ctx_.MarkExecuted(*pending_);
    OnExecuted(*pending_);
    pending_.reset();
  }
  PLANORDER_ASSIGN_OR_RETURN(OrderedPlan next, ComputeNext());
  pending_ = next.plan;
  return next;
}

}  // namespace planorder::core

#endif  // PLANORDER_CORE_ORDERER_H_
