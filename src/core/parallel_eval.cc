#include "core/parallel_eval.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace planorder::core {
namespace {

/// Fan-out threshold in evaluation-equivalents. One model evaluation on the
/// compiled universe costs a few hundred nanoseconds; the pool's submit +
/// wake + join overhead is on the order of a couple of microseconds, so
/// batches below ~16 evaluations are pure loss to split (measured on
/// bench_core_parallel). Affects scheduling only, never results.
constexpr size_t kMinParallelUnits = 16;

}  // namespace

bool BatchEvaluator::MultiCoreHost() {
  static const bool multi = std::thread::hardware_concurrency() >= 2;
  return multi;
}

void BatchEvaluator::ParallelFor(size_t n,
                                 const std::function<void(size_t)>& fn) const {
  // Generic per-index fan-out: item cost unknown, estimate one unit each.
  RunChunked(n, n, fn);
}

void BatchEvaluator::RunChunked(size_t n, size_t units,
                                const std::function<void(size_t)>& fn) const {
  // Self-scheduling loop over an atomic chunk cursor: the caller submits up
  // to `threads - 1` helper tasks and then works through chunks itself, so a
  // batch never blocks on worker wakeup latency and the queue sees a handful
  // of submissions instead of one per chunk. Chunking affects only
  // scheduling, never results (every index writes its own slot).
  const size_t threads =
      pool_ == nullptr ? 1 : static_cast<size_t>(pool_->num_threads());
  const size_t chunks = std::min(n, threads * 4);
  const bool worth_fanning_out =
      threads >= 2 && units >= kMinParallelUnits && MultiCoreHost();
  const size_t helpers =
      worth_fanning_out ? std::min(threads, chunks) - 1 : 0;
  if (helpers == 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const size_t grain = (n + chunks - 1) / chunks;
  std::atomic<size_t> cursor{0};
  const auto run = [&cursor, &fn, n, grain] {
    while (true) {
      const size_t begin = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) break;
      const size_t end = std::min(n, begin + grain);
      for (size_t i = begin; i < end; ++i) fn(i);
    }
  };
  runtime::TaskGroup group(pool_);
  for (size_t t = 0; t < helpers; ++t) group.Submit(run);
  run();
  group.Wait();
}

std::vector<PlanEvaluation> BatchEvaluator::EvaluateBatch(
    const std::vector<const AbstractPlan*>& plans,
    const utility::UtilityModel& model, const utility::ExecutionContext& ctx,
    int64_t* evaluations, bool use_probes) const {
  std::vector<PlanEvaluation> results(plans.size());
  if (plans.empty()) return results;
  // Serial phase: fill the per-node probe memo so workers only read it. The
  // probe count doubles as the cost estimate: each abstract plan will run a
  // second (concrete) evaluation under use_probes.
  size_t probe_evals = 0;
  if (use_probes) {
    for (const AbstractPlan* plan : plans) {
      if (!plan->IsConcrete()) ++probe_evals;
      for (size_t b = 0; b < plan->nodes.size(); ++b) {
        const int node = plan->nodes[b];
        if (plan->forest->cached_probe_member(node) < 0) {
          plan->forest->set_cached_probe_member(
              node, model.ProbeMember(plan->forest->summary(node)));
        }
      }
    }
  }
  std::vector<int64_t> counts(plans.size(), 0);
  RunChunked(plans.size(), plans.size() + probe_evals, [&](size_t i) {
    results[i] =
        EvaluateWithProbe(*plans[i], model, ctx, &counts[i], use_probes);
  });
  // Index-ordered merge of the counters: the shared total advances exactly
  // as a serial loop would have advanced it.
  if (evaluations != nullptr) {
    for (size_t i = 0; i < plans.size(); ++i) *evaluations += counts[i];
  }
  return results;
}

std::vector<EvalResult> BatchEvaluator::EvaluateViews(
    const std::vector<PlanView>& views, const utility::UtilityModel& model,
    const utility::ExecutionContext& ctx, int64_t* evaluations,
    bool use_probes) const {
  std::vector<EvalResult> results(views.size());
  if (views.empty()) return results;
  size_t probe_evals = 0;
  if (use_probes) {
    for (const PlanView& view : views) {
      if (view.concrete) continue;
      ++probe_evals;
      for (int b = 0; b < view.width; ++b) {
        const int node = static_cast<int>(view.nodes[b]);
        if (view.forest->cached_probe_member(node) < 0) {
          view.forest->set_cached_probe_member(
              node, model.ProbeMember(view.forest->summary(node)));
        }
      }
    }
  }
  std::vector<int64_t> counts(views.size(), 0);
  RunChunked(views.size(), views.size() + probe_evals, [&](size_t i) {
    results[i] = EvaluateView(views[i], model, ctx, &counts[i], use_probes);
  });
  if (evaluations != nullptr) {
    for (size_t i = 0; i < views.size(); ++i) *evaluations += counts[i];
  }
  return results;
}

}  // namespace planorder::core
