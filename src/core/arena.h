#ifndef PLANORDER_CORE_ARENA_H_
#define PLANORDER_CORE_ARENA_H_

#include <cstdint>
#include <vector>

#include "base/logging.h"

namespace planorder::core {

/// Slot-addressed pool of fixed-width plan rows — the storage layer of the
/// flat ordering core (DESIGN.md §11).
///
/// A row is one plan: `width` uint32_t abstraction-forest node ids, bucket
/// order. The frontier's per-candidate metadata (utility bounds, epochs,
/// ranks) lives in parallel arrays indexed by the same slot id, so the whole
/// frontier is a handful of contiguous arrays instead of a vector of
/// heap-allocated objects: refinement overwrites a parent row in place,
/// emission pushes the winner's slot onto an intrusive free list (the next
/// pointer reuses the row's first cell — no side allocation), and the next
/// Allocate() pops it in LIFO order.
///
/// Determinism: slots are allocated and released only from the orderer's own
/// thread, in an order fixed by the algorithm (never by the pool), so slot
/// ids — and everything keyed by them — are identical in serial and parallel
/// runs. Concurrency contract (the one audited by the -Wthread-safety build
/// and DESIGN.md §6): batch-evaluation workers hold `const` views into rows
/// and never allocate, release or write; all mutation is single-threaded
/// between fan-outs.
class PlanArena {
 public:
  /// Null slot / end-of-free-list sentinel.
  static constexpr uint32_t kNone = 0xffffffffu;

  PlanArena() = default;

  /// Drops every row and fixes the row width (buckets per plan).
  void Reset(int width) {
    PLANORDER_CHECK_GT(width, 0);
    width_ = static_cast<size_t>(width);
    cells_.clear();
    num_slots_ = 0;
    num_live_ = 0;
    free_head_ = kNone;
  }

  int width() const { return static_cast<int>(width_); }

  /// Slots ever allocated (live + free). Parallel metadata arrays are sized
  /// to this; slot ids are always < num_slots().
  uint32_t num_slots() const { return num_slots_; }

  /// Currently live rows.
  uint32_t num_live() const { return num_live_; }

  /// Returns a row to write, reusing the most recently released slot if any
  /// (LIFO keeps the hot end of the arrays hot). The row contents are
  /// unspecified until written.
  uint32_t Allocate() {
    uint32_t slot;
    if (free_head_ != kNone) {
      slot = free_head_;
      free_head_ = cells_[static_cast<size_t>(slot) * width_];
    } else {
      slot = num_slots_++;
      cells_.resize(static_cast<size_t>(num_slots_) * width_);
    }
    ++num_live_;
    return slot;
  }

  /// Releases a live row. The slot id stays valid as an index (metadata such
  /// as heap version counters must survive reuse); only the row cells are
  /// repurposed for the free-list link.
  void Release(uint32_t slot) {
    PLANORDER_DCHECK(slot < num_slots_);
    cells_[static_cast<size_t>(slot) * width_] = free_head_;
    free_head_ = slot;
    --num_live_;
  }

  uint32_t* row(uint32_t slot) {
    return cells_.data() + static_cast<size_t>(slot) * width_;
  }
  const uint32_t* row(uint32_t slot) const {
    return cells_.data() + static_cast<size_t>(slot) * width_;
  }

 private:
  size_t width_ = 1;
  /// num_slots_ * width_ node ids; released rows hold the free-list link in
  /// their first cell.
  std::vector<uint32_t> cells_;
  uint32_t num_slots_ = 0;
  uint32_t num_live_ = 0;
  uint32_t free_head_ = kNone;
};

}  // namespace planorder::core

#endif  // PLANORDER_CORE_ARENA_H_
