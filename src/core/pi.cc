#include "core/pi.h"

namespace planorder::core {

StatusOr<std::unique_ptr<PiOrderer>> PiOrderer::Create(
    const stats::Workload* workload, utility::UtilityModel* model,
    std::vector<PlanSpace> spaces, bool use_independence) {
  PLANORDER_ASSIGN_OR_RETURN(spaces,
                             ValidateSpaces(*workload, std::move(spaces)));
  auto orderer = std::unique_ptr<PiOrderer>(
      new PiOrderer(workload, model, use_independence));
  for (const PlanSpace& space : spaces) {
    std::vector<ConcretePlan> plans = EnumeratePlans(space);
    orderer->plans_.insert(orderer->plans_.end(),
                           std::make_move_iterator(plans.begin()),
                           std::make_move_iterator(plans.end()));
  }
  orderer->utilities_.resize(orderer->plans_.size(), 0.0);
  orderer->dirty_.assign(orderer->plans_.size(), 1);
  return orderer;
}

StatusOr<OrderedPlan> PiOrderer::ComputeNext() {
  if (plans_.empty()) return NotFoundError("plan spaces exhausted");
  size_t best = plans_.size();
  for (size_t i = 0; i < plans_.size(); ++i) {
    if (dirty_[i]) {
      utilities_[i] = Evaluate(plans_[i]);
      dirty_[i] = 0;
    }
    if (best == plans_.size() || utilities_[i] > utilities_[best]) best = i;
  }
  OrderedPlan result{std::move(plans_[best]), utilities_[best]};
  plans_[best] = std::move(plans_.back());
  utilities_[best] = utilities_.back();
  dirty_[best] = dirty_.back();
  plans_.pop_back();
  utilities_.pop_back();
  dirty_.pop_back();
  return result;
}

void PiOrderer::OnExecuted(const ConcretePlan& plan) {
  for (size_t i = 0; i < plans_.size(); ++i) {
    if (!use_independence_ || !model().Independent(plans_[i], plan)) {
      dirty_[i] = 1;
    }
  }
}

}  // namespace planorder::core
