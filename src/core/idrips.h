#ifndef PLANORDER_CORE_IDRIPS_H_
#define PLANORDER_CORE_IDRIPS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/arena.h"
#include "core/drips.h"
#include "core/frontier_heap.h"
#include "core/orderer.h"

namespace planorder::core {

/// Tuning knobs of IDripsOrderer (defaults reproduce the paper's exact
/// ordering semantics at the lowest evaluation cost).
struct IDripsOptions {
  AbstractionHeuristic heuristic = AbstractionHeuristic::kByCardinality;
  bool probe_lower_bounds = false;
  /// Persistent candidate frontier (DESIGN.md §6): keep the surviving Drips
  /// candidates across ComputeNext() calls, re-evaluate only candidates whose
  /// utility the executed suffix may have changed (epoch + group-independence
  /// test), and remove just the winner's cell instead of re-abstracting from
  /// the forest roots. Emission order and utilities are identical to the
  /// rebuild mode; only the evaluation count (and wall clock) drops. When
  /// false, reproduces the original behavior — re-run Drips from the roots
  /// each emission and re-abstract the split spaces — kept for the
  /// evaluations-per-emission comparison in bench_core_parallel.
  bool persistent_frontier = true;
  /// Number of abstract candidates refined per round in persistent mode
  /// (each contributes two children to one evaluation batch). Fixed
  /// independently of the thread count so serial and parallel runs perform
  /// the same refinements in the same order.
  int refine_width = 8;
};

/// The iDrips algorithm (Section 5.2): run Drips across the current plan
/// spaces to find the best plan, emit it, remove it, repeat. Works for any
/// utility measure. The persistent-frontier mode (default; DESIGN.md §6)
/// keeps the Drips candidate partition alive between emissions so dominance
/// information is carried forward instead of rebuilt every iteration.
///
/// The persistent frontier is stored flat (DESIGN.md §11): plan rows in a
/// PlanArena, per-candidate metadata in parallel arrays indexed by slot, and
/// two lazy FrontierHeaps — abstract candidates by (upper bound, width,
/// rank), concrete ones by (exact utility, rank) — in place of per-round
/// linear rescans. Ranks replicate the legacy frontier's vector positions
/// (a left child refined in place inherits its parent's rank), so heap ties
/// break exactly as the old index-ordered scans did and the emission
/// sequence is unchanged.
class IDripsOrderer : public Orderer {
 public:
  static StatusOr<std::unique_ptr<IDripsOrderer>> Create(
      const stats::Workload* workload, utility::UtilityModel* model,
      std::vector<PlanSpace> spaces, const IDripsOptions& options);

  /// Legacy signature (pre-options); forwards to the options overload.
  static StatusOr<std::unique_ptr<IDripsOrderer>> Create(
      const stats::Workload* workload, utility::UtilityModel* model,
      std::vector<PlanSpace> spaces,
      AbstractionHeuristic heuristic = AbstractionHeuristic::kByCardinality,
      bool probe_lower_bounds = false);

  std::string name() const override { return "idrips"; }

  /// Candidates currently alive in the persistent frontier (0 in rebuild
  /// mode); exposed for tests and benchmarks.
  size_t frontier_size() const { return arena_.num_live(); }

 protected:
  StatusOr<OrderedPlan> ComputeNext() override;

 private:
  struct SpaceEntry {
    PlanSpace space;
    AbstractionForest forest;
  };

  IDripsOrderer(const stats::Workload* workload, utility::UtilityModel* model,
                const IDripsOptions& options)
      : Orderer(workload, model), options_(options) {}

  StatusOr<OrderedPlan> ComputeNextPersistent();
  StatusOr<OrderedPlan> ComputeNextRebuild();

  /// Rebuild mode: (re-)abstract a split space.
  void AddSpace(PlanSpace space);

  /// Persistent mode: populate the frontier with the root plan of every
  /// forest (the initial partition of the whole plan space).
  void SeedFrontier();

  /// Persistent mode, eager path: bring every candidate's utility up to the
  /// current epoch. Candidates group-independent of the executed suffix
  /// fast-forward without re-evaluation; the rest are re-evaluated in one
  /// batch. Used for models without diminishing returns (whose utilities may
  /// rise, so stale heap keys are not upper bounds) and after an external
  /// cache-generation change (same reason).
  void RefreshStaleCandidates();

  /// Lazy path (diminishing-returns models): a candidate evaluated at an
  /// earlier epoch has utility at most its recorded bounds, so its stale heap
  /// key is a sound upper bound and it can stay untouched until it surfaces
  /// at a heap top. IsStale tests the surfacing slot against the executed
  /// suffix (keyed word-ANDs or the virtual fallback), fast-forwarding its
  /// epoch when independent; RefreshSlot re-evaluates it and pushes the
  /// updated entry when the bounds moved.
  bool IsStale(uint32_t slot);
  void RefreshSlot(uint32_t slot);
  /// Appends independence keys of newly executed plans to executed_keys_.
  void EnsureExecutedKeys();

  /// Grows the slot-indexed metadata arrays to the arena's slot count.
  void GrowFrontierArrays();
  /// Resolves a slot's summaries and concreteness from its arena row.
  void FillSlot(uint32_t slot);
  PlanView MakeView(uint32_t slot) const;
  /// Writes a fresh evaluation into a slot's metadata, bumps its heap
  /// version and pushes the new heap entry.
  void CommitCandidate(uint32_t slot, const EvalResult& eval);
  void PushHeapEntry(uint32_t slot);
  /// Drops dead heap entries when they outnumber live candidates enough to
  /// matter (lazy deletion keeps Push O(log live) otherwise).
  void MaybeCompactHeaps();
  ConcretePlan SlotToConcrete(uint32_t slot) const;
  /// True when the entry's version still matches its slot (the lazy
  /// decrease-key test).
  bool EntryLive(const FrontierHeap::Entry& entry) const {
    return alive_[entry.slot] != 0 &&
           entry.version == heap_version_[entry.slot];
  }

  IDripsOptions options_;
  /// Rebuild mode state.
  std::vector<std::unique_ptr<SpaceEntry>> spaces_;
  /// Persistent mode state. Forests are never rebuilt; stable addresses.
  std::vector<std::unique_ptr<AbstractionForest>> forests_;
  bool frontier_seeded_ = false;

  /// Flat frontier storage (DESIGN.md §11). Plan rows live in the arena;
  /// everything below is indexed by arena slot id (per-bucket arrays are
  /// slot * width + bucket). heap_version_ never resets — slot reuse through
  /// the free list cannot resurrect a stale heap entry.
  PlanArena arena_;
  std::vector<const stats::StatSummary*> summaries_;
  std::vector<uint64_t> group_keys_;
  std::vector<double> lo_;
  std::vector<double> hi_;
  std::vector<double> width_;
  std::vector<double> model_lo_;
  std::vector<int64_t> eval_epoch_;
  std::vector<int64_t> eval_generation_;
  std::vector<uint64_t> rank_;
  std::vector<uint32_t> heap_version_;
  std::vector<uint32_t> forest_of_;
  std::vector<uint8_t> concrete_;
  std::vector<uint8_t> alive_;
  FrontierHeap abstract_heap_;
  FrontierHeap concrete_heap_;
  uint64_t next_rank_ = 0;
  /// Model supports the keyed staleness fast path (set at seed time; turned
  /// off permanently if PlanIndependenceKeys ever declines).
  bool keys_supported_ = false;
  /// External cache generation the frontier was last eagerly refreshed
  /// against (lazy mode only re-runs the full scan when this moves).
  int64_t refreshed_generation_ = 0;
  /// Independence keys of executed[0..keys_epoch_), keys_epoch_ * width
  /// words, appended per emission for the lazy staleness test.
  std::vector<uint64_t> executed_keys_;
  int64_t keys_epoch_ = 0;

  /// Reusable scratch (cleared per use; kept to avoid per-round allocation).
  std::vector<PlanView> view_batch_;
  std::vector<uint32_t> stale_slots_;
  std::vector<uint32_t> targets_;
  std::vector<uint32_t> right_slots_;
  std::vector<uint64_t> plan_keys_;
  std::vector<uint32_t> live_snapshot_;
  std::vector<uint8_t> stale_flags_;
};

}  // namespace planorder::core

#endif  // PLANORDER_CORE_IDRIPS_H_
