#ifndef PLANORDER_CORE_IDRIPS_H_
#define PLANORDER_CORE_IDRIPS_H_

#include <memory>
#include <vector>

#include "core/drips.h"
#include "core/orderer.h"

namespace planorder::core {

/// The iDrips algorithm (Section 5.2): run Drips across the current plan
/// spaces to find the best plan, emit it, remove it from its space by
/// recursive splitting, re-abstract the new spaces, repeat. Works for any
/// utility measure; rebuilds all dominance information every iteration
/// (the inefficiency Streamer addresses).
class IDripsOrderer : public Orderer {
 public:
  static StatusOr<std::unique_ptr<IDripsOrderer>> Create(
      const stats::Workload* workload, utility::UtilityModel* model,
      std::vector<PlanSpace> spaces,
      AbstractionHeuristic heuristic = AbstractionHeuristic::kByCardinality,
      bool probe_lower_bounds = false);

  std::string name() const override { return "idrips"; }

 protected:
  StatusOr<OrderedPlan> ComputeNext() override;

 private:
  struct SpaceEntry {
    PlanSpace space;
    AbstractionForest forest;
  };

  IDripsOrderer(const stats::Workload* workload, utility::UtilityModel* model,
                AbstractionHeuristic heuristic, bool probe_lower_bounds)
      : Orderer(workload, model),
        heuristic_(heuristic),
        probe_lower_bounds_(probe_lower_bounds) {}

  void AddSpace(PlanSpace space);

  AbstractionHeuristic heuristic_;
  bool probe_lower_bounds_ = true;
  std::vector<std::unique_ptr<SpaceEntry>> spaces_;
};

}  // namespace planorder::core

#endif  // PLANORDER_CORE_IDRIPS_H_
