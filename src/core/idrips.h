#ifndef PLANORDER_CORE_IDRIPS_H_
#define PLANORDER_CORE_IDRIPS_H_

#include <memory>
#include <vector>

#include "core/drips.h"
#include "core/orderer.h"

namespace planorder::core {

/// Tuning knobs of IDripsOrderer (defaults reproduce the paper's exact
/// ordering semantics at the lowest evaluation cost).
struct IDripsOptions {
  AbstractionHeuristic heuristic = AbstractionHeuristic::kByCardinality;
  bool probe_lower_bounds = false;
  /// Persistent candidate frontier (DESIGN.md §6): keep the surviving Drips
  /// candidates across ComputeNext() calls, re-evaluate only candidates whose
  /// utility the executed suffix may have changed (epoch + group-independence
  /// test), and remove just the winner's cell instead of re-abstracting from
  /// the forest roots. Emission order and utilities are identical to the
  /// rebuild mode; only the evaluation count (and wall clock) drops. When
  /// false, reproduces the original behavior — re-run Drips from the roots
  /// each emission and re-abstract the split spaces — kept for the
  /// evaluations-per-emission comparison in bench_core_parallel.
  bool persistent_frontier = true;
  /// Number of abstract candidates refined per round in persistent mode
  /// (each contributes two children to one evaluation batch). Fixed
  /// independently of the thread count so serial and parallel runs perform
  /// the same refinements in the same order.
  int refine_width = 8;
};

/// The iDrips algorithm (Section 5.2): run Drips across the current plan
/// spaces to find the best plan, emit it, remove it, repeat. Works for any
/// utility measure. The persistent-frontier mode (default; DESIGN.md §6)
/// keeps the Drips candidate partition alive between emissions so dominance
/// information is carried forward instead of rebuilt every iteration.
class IDripsOrderer : public Orderer {
 public:
  static StatusOr<std::unique_ptr<IDripsOrderer>> Create(
      const stats::Workload* workload, utility::UtilityModel* model,
      std::vector<PlanSpace> spaces, const IDripsOptions& options);

  /// Legacy signature (pre-options); forwards to the options overload.
  static StatusOr<std::unique_ptr<IDripsOrderer>> Create(
      const stats::Workload* workload, utility::UtilityModel* model,
      std::vector<PlanSpace> spaces,
      AbstractionHeuristic heuristic = AbstractionHeuristic::kByCardinality,
      bool probe_lower_bounds = false);

  std::string name() const override { return "idrips"; }

  /// Candidates currently alive in the persistent frontier (0 in rebuild
  /// mode); exposed for tests and benchmarks.
  size_t frontier_size() const { return frontier_.size(); }

 protected:
  StatusOr<OrderedPlan> ComputeNext() override;

 private:
  struct SpaceEntry {
    PlanSpace space;
    AbstractionForest forest;
  };

  /// One cell of the persistent frontier: an abstract plan (concrete = all
  /// leaves), its utility enclosure, and the epoch at which that enclosure
  /// was computed. The alive cells always partition the un-emitted plans.
  struct Candidate {
    AbstractPlan plan;
    std::vector<const stats::StatSummary*> summaries;
    Interval utility = Interval::Point(0.0);
    double model_lo = 0.0;
    bool concrete = false;
    int64_t eval_epoch = 0;
    /// External-residency generation (ExecutionContext::external_generation)
    /// at evaluation time; a mismatch means a cross-session cache bit flipped
    /// since, so the enclosure must be recomputed regardless of
    /// group-independence from the executed suffix.
    int64_t eval_generation = 0;
  };

  IDripsOrderer(const stats::Workload* workload, utility::UtilityModel* model,
                const IDripsOptions& options)
      : Orderer(workload, model), options_(options) {}

  StatusOr<OrderedPlan> ComputeNextPersistent();
  StatusOr<OrderedPlan> ComputeNextRebuild();

  /// Rebuild mode: (re-)abstract a split space.
  void AddSpace(PlanSpace space);

  /// Persistent mode: populate the frontier with the root plan of every
  /// forest (the initial partition of the whole plan space).
  void SeedFrontier();

  /// Persistent mode: bring every candidate's utility up to the current
  /// epoch. Candidates group-independent of the executed suffix fast-forward
  /// without re-evaluation; the rest are re-evaluated in one batch.
  void RefreshStaleCandidates();

  Candidate MakeCandidate(AbstractPlan plan, const PlanEvaluation& eval);

  IDripsOptions options_;
  /// Rebuild mode state.
  std::vector<std::unique_ptr<SpaceEntry>> spaces_;
  /// Persistent mode state. Forests are never rebuilt; stable addresses.
  std::vector<std::unique_ptr<AbstractionForest>> forests_;
  std::vector<Candidate> frontier_;
  bool frontier_seeded_ = false;
};

}  // namespace planorder::core

#endif  // PLANORDER_CORE_IDRIPS_H_
