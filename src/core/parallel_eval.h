#ifndef PLANORDER_CORE_PARALLEL_EVAL_H_
#define PLANORDER_CORE_PARALLEL_EVAL_H_

#include <functional>
#include <vector>

#include "core/evaluate.h"
#include "runtime/thread_pool.h"

namespace planorder::core {

/// Deterministic batched utility evaluation — the fan-out point every
/// ordering algorithm shares (iDrips frontier refreshes and refinements,
/// Greedy's split-space entries, Streamer's step-2.a recomputations).
///
/// The evaluator borrows an optional runtime::ThreadPool; with a pool the
/// batch runs on the workers, without one it runs inline. Either way the
/// outcome is byte-identical to a serial loop over the batch:
///  - every item writes only its own index-addressed slot, so the merged
///    result vector does not depend on scheduling;
///  - evaluation counts are accumulated per item and folded into the shared
///    counter in index order after the join;
///  - the forest probe memo is prefilled in the serial phase before fan-out,
///    so workers never write shared caches.
/// UtilityModel::Evaluate is const and models hold no mutable state (the
/// thread-safety contract audited in DESIGN.md §6), so concurrent evaluation
/// over one shared ExecutionContext snapshot is race-free.
class BatchEvaluator {
 public:
  explicit BatchEvaluator(runtime::ThreadPool* pool = nullptr) : pool_(pool) {}

  runtime::ThreadPool* pool() const { return pool_; }
  void set_pool(runtime::ThreadPool* pool) { pool_ = pool; }

  /// Runs fn(0..n-1), on the pool when available and the batch is worth
  /// fanning out, inline otherwise. fn must only touch state owned by its
  /// index. Blocks until every call returned.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) const;

  /// Evaluates every plan of the batch (EvaluateWithProbe semantics) and
  /// returns the results in batch order. `*evaluations`, when non-null, is
  /// advanced exactly as the serial loop would advance it.
  std::vector<PlanEvaluation> EvaluateBatch(
      const std::vector<const AbstractPlan*>& plans,
      const utility::UtilityModel& model, const utility::ExecutionContext& ctx,
      int64_t* evaluations, bool use_probes) const;

  /// View-based batch evaluation (EvaluateView semantics) — the flat
  /// frontier's path: no per-plan allocation, results in batch order, the
  /// shared counter advanced exactly as a serial loop would advance it.
  std::vector<EvalResult> EvaluateViews(const std::vector<PlanView>& views,
                                        const utility::UtilityModel& model,
                                        const utility::ExecutionContext& ctx,
                                        int64_t* evaluations,
                                        bool use_probes) const;

  /// True when this host can actually run two things at once. Fanning out on
  /// a 1-core host only adds queueing and oversubscription, so every batch
  /// stays serial by construction there (scheduling only — results are
  /// byte-identical either way).
  static bool MultiCoreHost();

 private:
  /// Shared fan-out decision + chunked execution. `units` estimates the
  /// parallelizable work in evaluation-equivalents (one unit ~ one model
  /// evaluation); batches below the measured threshold run inline because
  /// the pool's submit/wake/join overhead exceeds the work being split.
  void RunChunked(size_t n, size_t units,
                  const std::function<void(size_t)>& fn) const;

  runtime::ThreadPool* pool_ = nullptr;
};

}  // namespace planorder::core

#endif  // PLANORDER_CORE_PARALLEL_EVAL_H_
