#ifndef PLANORDER_CORE_BATCH_TOPK_H_
#define PLANORDER_CORE_BATCH_TOPK_H_

#include <vector>

#include "base/status.h"
#include "core/abstraction.h"
#include "core/orderer.h"

namespace planorder::core {

/// Batch top-k plan selection by abstraction-guided branch and bound — the
/// style of algorithm the related work discusses (Leser & Naumann, Section
/// 7): it "assumes full plan independence" and "is designed to return all k
/// plans at once" rather than incrementally. Included as a comparison
/// baseline and as the right tool when k is known up front and the measure
/// never conditions on executed plans.
///
/// Strategy: best-first search over the abstraction forests, expanding the
/// abstract plan with the highest utility upper bound; abstract plans whose
/// upper bound cannot reach the current k-th best concrete utility are
/// pruned. Requires model->fully_independent().
StatusOr<std::vector<OrderedPlan>> BatchTopK(
    const stats::Workload* workload, utility::UtilityModel* model,
    std::vector<PlanSpace> spaces, int k,
    AbstractionHeuristic heuristic = AbstractionHeuristic::kByCardinality,
    int64_t* evaluations = nullptr);

}  // namespace planorder::core

#endif  // PLANORDER_CORE_BATCH_TOPK_H_
