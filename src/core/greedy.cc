#include "core/greedy.h"

namespace planorder::core {

StatusOr<std::unique_ptr<GreedyOrderer>> GreedyOrderer::Create(
    const stats::Workload* workload, utility::UtilityModel* model,
    std::vector<PlanSpace> spaces) {
  if (!model->fully_monotonic()) {
    return FailedPreconditionError(
        "Greedy requires a fully monotonic utility measure; '" +
        model->name() + "' is not");
  }
  PLANORDER_ASSIGN_OR_RETURN(spaces,
                             ValidateSpaces(*workload, std::move(spaces)));
  auto orderer =
      std::unique_ptr<GreedyOrderer>(new GreedyOrderer(workload, model));
  orderer->PushEntries(std::move(spaces));
  return orderer;
}

void GreedyOrderer::PushEntries(std::vector<PlanSpace> spaces) {
  // Each space's best plan (per-bucket MonotoneScore argmax) and its utility
  // are independent of the other spaces, so the whole batch fans out over
  // the evaluator's pool. Scores, evaluation counts and — crucially for
  // heap tie-breaking — the push order are all index-ordered, so the heap
  // ends up byte-identical to the serial construction.
  std::vector<Entry> entries(spaces.size());
  std::vector<int64_t> counts(spaces.size(), 0);
  evaluator().ParallelFor(spaces.size(), [&](size_t s) {
    const PlanSpace& space = spaces[s];
    Entry& entry = entries[s];
    entry.best_plan.resize(space.buckets.size());
    for (size_t b = 0; b < space.buckets.size(); ++b) {
      int best = space.buckets[b][0];
      double best_score = model().MonotoneScore(static_cast<int>(b), best);
      for (size_t i = 1; i < space.buckets[b].size(); ++i) {
        const int candidate = space.buckets[b][i];
        const double score =
            model().MonotoneScore(static_cast<int>(b), candidate);
        if (score > best_score) {
          best = candidate;
          best_score = score;
        }
      }
      entry.best_plan[b] = best;
    }
    ++counts[s];
    entry.utility = model().EvaluateConcrete(entry.best_plan, ctx());
  });
  for (size_t s = 0; s < spaces.size(); ++s) {
    evaluations_ += counts[s];
    entries[s].space = std::move(spaces[s]);
    heap_.push(std::move(entries[s]));
  }
}

StatusOr<OrderedPlan> GreedyOrderer::ComputeNext() {
  if (heap_.empty()) return NotFoundError("plan spaces exhausted");
  Entry top = heap_.top();
  heap_.pop();
  PushEntries(SplitAround(top.space, top.best_plan));
  return OrderedPlan{top.best_plan, top.utility};
}

}  // namespace planorder::core
